//! # qoz-suite — QoZ reproduction workspace
//!
//! A from-scratch Rust reproduction of *"Dynamic Quality Metric Oriented
//! Error-bounded Lossy Compression for Scientific Datasets"* (Liu, Di,
//! Zhao, Liang, Chen, Cappello — SC 2022), including the QoZ compressor
//! itself, the four baselines it is evaluated against (SZ2.1, SZ3, ZFP,
//! MGARD+), the shared codec substrate, quality metrics, synthetic
//! stand-ins for the six SDRBench datasets, and the parallel-I/O model.
//!
//! This umbrella crate re-exports every workspace crate under one name.
//! The public door is [`api`] ([`qoz_api`]): builder sessions over a
//! single backend registry, with bound-first *and* quality-first
//! targets:
//!
//! ```
//! use qoz_suite::api::{BackendId, Session, Target};
//! use qoz_suite::codec::ErrorBound;
//! use qoz_suite::tensor::{NdArray, Shape};
//!
//! let data = NdArray::from_fn(Shape::d2(64, 64), |i| {
//!     ((i[0] as f32) * 0.1).sin() + ((i[1] as f32) * 0.08).cos()
//! });
//! // State the goal — a bound, a PSNR, an SSIM, or a ratio — and let
//! // the session drive any backend toward it.
//! let session = Session::builder()
//!     .backend(BackendId::Qoz)
//!     .bound(ErrorBound::Rel(1e-3))
//!     .build()
//!     .unwrap();
//! let out = session.compress(&data).unwrap();
//! let recon: NdArray<f32> = session.decompress(&out.blob).unwrap();
//! assert!(data.max_abs_diff(&recon) <= ErrorBound::Rel(1e-3).absolute(&data));
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and per-experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results. The `repro` binary (in `qoz-bench`)
//! regenerates every table and figure.

pub use qoz_api as api;
pub use qoz_archive as archive;
pub use qoz_codec as codec;
pub use qoz_core as qoz;
pub use qoz_datagen as datagen;
pub use qoz_metrics as metrics;
pub use qoz_mgard as mgard;
pub use qoz_pario as pario;
pub use qoz_predict as predict;
pub use qoz_serve as serve;
pub use qoz_sz2 as sz2;
pub use qoz_sz3 as sz3;
pub use qoz_telemetry as telemetry;
pub use qoz_temporal as temporal;
pub use qoz_tensor as tensor;
pub use qoz_zfp as zfp;
