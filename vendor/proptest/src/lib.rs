//! Minimal, deterministic stand-in for the `proptest` crate (offline
//! build).
//!
//! Implements the surface this workspace uses: the [`proptest!`] test
//! macro with `#![proptest_config(...)]`, strategies over numeric
//! ranges, tuples, [`strategy::Just`], `any::<T>()`,
//! [`collection::vec`], the `prop_map`/`prop_flat_map` combinators, the
//! weighted [`prop_oneof!`] union, and the `prop_assert!` family.
//!
//! Differences from real proptest, by design:
//!
//! - Sampling is **deterministic**: every test derives its RNG seed
//!   from the test's name (FNV-1a hash), so runs are reproducible
//!   across machines with no persistence files.
//! - No shrinking. A failing case panics with the case index and the
//!   assertion message; re-running reproduces it exactly.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing `Vec<S::Value>` with a length drawn from
    /// `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait: types with a canonical strategy.

    use crate::strategy::ArbitraryStrategy;
    use crate::test_runner::Rng;

    /// Types that can be generated from nothing but an RNG.
    pub trait Arbitrary: Sized {
        /// Draw a uniformly-distributed value.
        fn arbitrary_value(rng: &mut Rng) -> Self;
    }

    /// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy::new()
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut Rng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut Rng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut Rng) -> Self {
            (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e6
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut Rng) -> Self {
            (rng.unit_f64() * 2.0 - 1.0) * 1e12
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted union of strategies with a common value type.
///
/// `prop_oneof![a, b]` gives equal weights; `prop_oneof![3 => a, 1 => b]`
/// draws `a` three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// message instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples `cases` inputs deterministically and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::Rng::from_seed_phrase(
                    stringify!($name),
                    cfg.rng_seed,
                );
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {}: case {}/{} failed: {}\ninputs: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            e,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
}
