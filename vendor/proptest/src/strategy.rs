//! Strategy trait and combinators for the proptest stand-in.

use crate::arbitrary::Arbitrary;
use crate::test_runner::Rng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Map produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produce a new strategy from each value and sample that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase into a boxed strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut Rng) -> V {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut Rng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Canonical strategy for an [`Arbitrary`] type (see `any`).
#[derive(Debug)]
pub struct ArbitraryStrategy<T>(PhantomData<fn() -> T>);

impl<T> ArbitraryStrategy<T> {
    pub(crate) fn new() -> Self {
        ArbitraryStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                let off = rng.below(span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut Rng) -> f32 {
        let t = rng.unit_f64() as f32;
        self.start + t * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        let t = rng.unit_f64();
        self.start + t * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection size specification: a fixed length or a half-open range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Weighted union built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms; weights must sum > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut Rng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights changed mid-sample")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    fn rng() -> Rng {
        Rng::from_seed_phrase("strategy-tests", 0)
    }

    #[test]
    fn int_range_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10usize..20).sample(&mut r);
            assert!((10..20).contains(&v));
            let s = (-5i64..5).sample(&mut r);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-1.0f32..1.0).sample(&mut r);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.sample(&mut r);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn union_respects_arms() {
        let mut r = rng();
        let s = crate::prop_oneof![2 => 0u32..1, 1 => 10u32..11];
        let mut saw = [false; 2];
        for _ in 0..200 {
            match s.sample(&mut r) {
                0 => saw[0] = true,
                10 => saw[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn vec_sizes() {
        let mut r = rng();
        let s = crate::collection::vec(any::<u8>(), 0..8);
        for _ in 0..200 {
            assert!(s.sample(&mut r).len() < 8);
        }
        let fixed = crate::collection::vec(any::<u8>(), 5usize);
        assert_eq!(fixed.sample(&mut r).len(), 5);
    }
}
