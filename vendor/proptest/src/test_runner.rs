//! Deterministic RNG, config, and failure type for the proptest
//! stand-in.

use std::fmt;

/// Per-test configuration. `cases` is the number of sampled inputs;
/// `rng_seed` perturbs the deterministic per-test seed (0 = default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Extra seed material mixed with the test-name hash. Keeping this
    /// fixed makes runs reproducible across machines.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            rng_seed: 0,
        }
    }
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }

    /// Builder: set the seed perturbation.
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 RNG.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed from an arbitrary phrase (FNV-1a) plus a perturbation, so
    /// each test gets an independent but reproducible stream.
    pub fn from_seed_phrase(phrase: &str, perturb: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in phrase.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Rng {
            state: h ^ perturb.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible
        // for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::from_seed_phrase("x", 0);
        let mut b = Rng::from_seed_phrase("x", 0);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_phrases_diverge() {
        let mut a = Rng::from_seed_phrase("x", 0);
        let mut b = Rng::from_seed_phrase("y", 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = Rng::from_seed_phrase("bounds", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = Rng::from_seed_phrase("unit", 0);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
