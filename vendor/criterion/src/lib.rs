//! Minimal stand-in for the `criterion` crate (offline build).
//!
//! Provides the macro/entry-point surface the workspace benches use and
//! a simple timing loop: each benchmark runs `sample_size` samples and
//! prints the mean wall-clock time per iteration (plus derived
//! throughput when set). No statistics, HTML reports, or baselines.

use std::fmt::{self, Display};
use std::time::Instant;

/// Opaque measurement driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Time `f`, running it `samples` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call keeps first-touch page faults and lazy init
        // out of the measurement.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / self.samples as f64;
    }
}

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier composing a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `new("huffman", "miranda")` → `huffman/miranda`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let sample_size = self.sample_size;
        run_one(&id.to_string(), sample_size, None, f);
    }
}

/// Group of related benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration throughput for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, f);
    }

    /// Benchmark a closure that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
    }

    /// Finish the group (marker for API parity; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        mean_ns: 0.0,
    };
    f(&mut b);
    let per_iter_s = b.mean_ns / 1e9;
    match throughput {
        Some(Throughput::Bytes(n)) if per_iter_s > 0.0 => {
            let mibs = n as f64 / per_iter_s / (1024.0 * 1024.0);
            println!("{name:<48} {:>12.1} ns/iter  {mibs:>10.1} MiB/s", b.mean_ns);
        }
        Some(Throughput::Elements(n)) if per_iter_s > 0.0 => {
            let meps = n as f64 / per_iter_s / 1e6;
            println!(
                "{name:<48} {:>12.1} ns/iter  {meps:>10.1} Melem/s",
                b.mean_ns
            );
        }
        _ => println!("{name:<48} {:>12.1} ns/iter", b.mean_ns),
    }
}

/// Declare a benchmark group: either the short form
/// `criterion_group!(benches, f1, f2)` or the configured form with
/// `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `fn main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("id", 7), &7u64, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
