//! Minimal stand-in for the `parking_lot` crate (offline build).
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly instead of a `Result`.

use std::sync::TryLockError;

/// Mutual exclusion lock whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, yielding the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poisoning (a panic
    /// while the lock was held) is ignored, matching `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
