//! Minimal stand-in for the `crossbeam` crate (offline build).
//!
//! Implements only `crossbeam::scope` scoped threads on top of
//! `std::thread::scope`. One behavioural difference: a panicking child
//! thread propagates as a panic from `scope` instead of an `Err` —
//! every caller in this workspace immediately `.expect()`s the result,
//! so the observable behaviour (a panic with the same message origin)
//! is equivalent.

use std::any::Any;

/// Handle passed to the `scope` closure; spawns scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope handle so
    /// workers can themselves spawn (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope handle; all spawned threads are joined before
/// this returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_share_stack_data() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
