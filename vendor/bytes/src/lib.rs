//! Minimal stand-in for the `bytes` crate (offline build).
//!
//! Implements only the surface used by `qoz_codec::byteio`: a growable
//! byte buffer ([`BytesMut`]) and the little-endian put methods of the
//! [`BufMut`] trait.

/// Growable byte buffer backed by a `Vec<u8>`.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy the contents out into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consume the buffer, yielding the underlying `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Byte-sink trait: little-endian put methods.
pub trait BufMut {
    /// Append a slice of raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0102_0304_0506_0708);
        b.put_f64_le(-2.5);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 8 + 3);
        let v = b.to_vec();
        assert_eq!(v[0], 0xAB);
        assert_eq!(u16::from_le_bytes([v[1], v[2]]), 0x1234);
    }
}
