//! Property-based tests: for *arbitrary* finite inputs, shapes and
//! bounds, every compressor must round-trip within the bound; the
//! lossless substrate must be exact.

use proptest::prelude::*;
use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::tensor::{NdArray, Shape};

/// Strategy: a small array of 1-3 dimensions with finite values drawn
/// from a wide magnitude range (including negatives and exact zeros).
fn small_array() -> impl Strategy<Value = NdArray<f32>> {
    let dims = prop_oneof![
        (1usize..40).prop_map(|a| vec![a]),
        ((1usize..14), (1usize..14)).prop_map(|(a, b)| vec![a, b]),
        ((1usize..7), (1usize..7), (1usize..7)).prop_map(|(a, b, c)| vec![a, b, c]),
    ];
    dims.prop_flat_map(|d| {
        let n: usize = d.iter().product();
        (
            Just(d),
            proptest::collection::vec(
                prop_oneof![
                    5 => -1e6f32..1e6f32,
                    2 => -1.0f32..1.0f32,
                    1 => Just(0.0f32),
                ],
                n,
            ),
        )
    })
    .prop_map(|(d, v)| NdArray::from_vec(Shape::new(&d), v))
}

fn bound_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(1e-1), Just(1e-3), Just(1e-6),]
}

macro_rules! roundtrip_property {
    ($name:ident, $compressor:expr) => {
        proptest! {
            // Bounded and reproducible: fixed case count, pinned RNG
            // seed. Tier-1 runs the same 48 inputs on every machine.
            #![proptest_config(ProptestConfig::with_cases(48).with_rng_seed(0x51_C0DE))]
            #[test]
            fn $name(data in small_array(), eps in bound_strategy()) {
                let c = $compressor;
                let bound = ErrorBound::Rel(eps);
                let abs = bound.absolute(&data);
                let blob = c.compress(&data, bound);
                let recon: NdArray<f32> = c.decompress(&blob).unwrap();
                prop_assert_eq!(recon.shape(), data.shape());
                prop_assert!(
                    data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9),
                    "bound {} violated: max err {}",
                    abs,
                    data.max_abs_diff(&recon)
                );
            }
        }
    };
}

roundtrip_property!(sz2_roundtrip_bound, qoz_suite::sz2::Sz2::default());
roundtrip_property!(sz3_roundtrip_bound, qoz_suite::sz3::Sz3::default());
roundtrip_property!(zfp_roundtrip_bound, qoz_suite::zfp::Zfp);
roundtrip_property!(mgard_roundtrip_bound, qoz_suite::mgard::Mgard);
roundtrip_property!(qoz_roundtrip_bound, qoz_suite::qoz::Qoz::default());

proptest! {
    // Same discipline as above: explicit bounded case count, pinned
    // deterministic seed.
    #![proptest_config(ProptestConfig::with_cases(64).with_rng_seed(0x51_C0DE))]
    #[test]
    fn lossless_backend_is_exact(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = qoz_suite::codec::lossless_compress(&data);
        prop_assert_eq!(qoz_suite::codec::lossless_decompress(&packed).unwrap(), data);
    }

    #[test]
    fn bins_backend_is_exact(bins in proptest::collection::vec(0u32..70_000, 0..4096)) {
        let blob = qoz_suite::codec::encode_bins(&bins);
        prop_assert_eq!(qoz_suite::codec::decode_bins(&blob).unwrap(), bins);
    }

    #[test]
    fn quantizer_respects_bound(
        value in -1e12f64..1e12f64,
        pred in -1e12f64..1e12f64,
        eb in prop_oneof![Just(1e-9f64), Just(1e-3), Just(1.0), Just(1e6)],
    ) {
        let q = qoz_suite::codec::LinearQuantizer::new(eb);
        let out = q.quantize(value, pred);
        prop_assert!((out.reconstructed - value).abs() <= eb * (1.0 + 1e-12));
        if out.code != 0 {
            let r: f64 = q.reconstruct(out.code, pred);
            prop_assert_eq!(r, out.reconstructed);
        }
    }

    #[test]
    fn zfp_transform_exactly_invertible(
        vals in proptest::collection::vec(-(1i64 << 40)..(1i64 << 40), 64)
    ) {
        let mut t = vals.clone();
        qoz_suite::zfp::transform::forward(&mut t, 3);
        qoz_suite::zfp::transform::inverse(&mut t, 3);
        prop_assert_eq!(t, vals);
    }

    #[test]
    fn anchor_grid_always_covered(
        a in 1usize..30, b in 1usize..30, stride_pow in 1u32..6
    ) {
        // Every point must be either an anchor or predicted exactly once.
        let shape = Shape::d2(a, b);
        let stride = 1usize << stride_pow;
        let mut seen = vec![0u32; shape.len()];
        qoz_suite::predict::for_each_base_point(shape, stride, |off| seen[off] += 1);
        let mut dummy = vec![0f32; shape.len()];
        for level in (1..=stride_pow).rev() {
            qoz_suite::predict::traverse_level(
                &mut dummy,
                shape,
                level,
                Default::default(),
                &mut |_, off, _| seen[off] += 1,
            );
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}
