//! Plan-cache and scratch-arena reuse across the whole stack.
//!
//! The pipeline refactor's contract has three legs, each pinned here:
//!
//! 1. **Byte identity** — compressing *unchanged* data through a warm
//!    pipeline (cached plan + reused scratch) emits exactly the cold
//!    path's stream, for every backend.
//! 2. **Drift safety** — when the data stops resembling what the plan
//!    was tuned on (or the resolved bound moves), the cache re-tunes
//!    instead of replaying a stale plan, and warm streams always honor
//!    the bound resolved against *their own* snapshot.
//! 3. **Shape safety** — one pipeline fed differently-shaped inputs
//!    re-grows its buffers and re-tunes; nothing is ever served from a
//!    mismatched plan.
//!
//! The `#[ignore]`d smoke at the bottom is the CI warm-vs-cold check on
//! `SizeClass::Tiny` (run explicitly with `--ignored`, like the sanity
//! table): steady-state warm compression must beat cold compression.

use qoz_suite::api::{BackendId, PlanOutcome, Session};
use qoz_suite::codec::ErrorBound;
use qoz_suite::datagen::{self, Dataset, SizeClass};
use qoz_suite::tensor::{NdArray, Region, Shape};

/// Six consecutive same-shape snapshots of one evolving 3D field.
fn snapshots() -> Vec<NdArray<f32>> {
    let base = Dataset::Miranda.shape(SizeClass::Tiny);
    let shape4 = Shape::new(&[6, base.dim(0), base.dim(1), base.dim(2)]);
    let field = datagen::time_series_like(shape4, 42);
    let step = base.len();
    (0..6)
        .map(|t| NdArray::from_vec(base, field.as_slice()[t * step..(t + 1) * step].to_vec()))
        .collect()
}

#[test]
fn warm_blob_byte_identical_to_cold_for_every_backend() {
    let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
    for backend in [
        BackendId::Qoz,
        BackendId::Sz3,
        BackendId::Sz2,
        BackendId::Zfp,
        BackendId::Mgard,
    ] {
        let session = Session::builder()
            .backend(backend)
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let cold = session.compress(&data).unwrap().blob;
        let mut pipe = session.pipeline::<f32>();
        for pass in 0..3 {
            let warm = pipe.compress(&data).unwrap().blob;
            assert_eq!(warm, cold, "{backend:?} pass {pass} diverged from cold");
        }
        if backend == BackendId::Qoz {
            assert_eq!(pipe.stats().cold_tunes, 1);
            assert_eq!(pipe.stats().warm_hits, 2);
        }
    }
}

#[test]
fn evolving_series_stays_bounded_and_mostly_warm() {
    let snaps = snapshots();
    let bound = ErrorBound::Rel(1e-3);
    let session = Session::builder().bound(bound).build().unwrap();
    let mut pipe = session.pipeline::<f32>();
    for (t, snap) in snaps.iter().enumerate() {
        let out = pipe.compress(snap).unwrap();
        // The hard bound is resolved against THIS snapshot, warm or not.
        let abs = bound.absolute(snap);
        let recon: NdArray<f32> = pipe.decompress(&out.blob).unwrap();
        assert!(
            snap.max_abs_diff(&recon) <= abs * (1.0 + 1e-9),
            "snapshot {t} violated its bound (outcome {:?})",
            pipe.last_outcome()
        );
    }
    let stats = pipe.stats();
    assert_eq!(stats.cold_tunes, 1);
    assert!(
        stats.warm() >= 1,
        "consecutive snapshots should reuse the plan at least once: {stats:?}"
    );
    assert_eq!(
        stats.cold_tunes + stats.warm() + stats.retunes,
        snaps.len() as u64
    );
}

#[test]
fn drift_to_unrelated_data_retunes() {
    let smooth = Dataset::Miranda.generate(SizeClass::Tiny, 0);
    let session = Session::builder()
        .bound(ErrorBound::Abs(1e-3))
        .drift_tolerance(0.1)
        .build()
        .unwrap();
    assert_eq!(session.drift_tolerance(), 0.1);
    let mut pipe = session.pipeline::<f32>();
    pipe.compress(&smooth).unwrap();
    // Same shape, same bound, completely different (noisy) field: the
    // sampled drift check must reject the cached plan.
    let noisy = NdArray::from_fn(smooth.shape(), |i| {
        let h = datagen::noise::splitmix64((i[0] * 7919 + i[1] * 104_729 + i[2]) as u64);
        (h as f32 / u64::MAX as f32) * 4.0
    });
    let out = pipe.compress(&noisy).unwrap();
    assert_eq!(pipe.last_outcome(), Some(PlanOutcome::Retuned));
    // The retuned stream equals the cold stream for the new data.
    assert_eq!(out.blob, session.compress(&noisy).unwrap().blob);
}

#[test]
fn shape_changes_regrow_scratch_and_retune() {
    let big = Dataset::Miranda.generate(SizeClass::Tiny, 0);
    let shrink = |d: usize| {
        big.extract_region(&Region::new(
            &[0, 0, 0],
            &[
                big.shape().dim(0) / d,
                big.shape().dim(1) / d,
                big.shape().dim(2),
            ],
        ))
    };
    let small = shrink(2);
    let session = Session::builder()
        .bound(ErrorBound::Rel(1e-3))
        .build()
        .unwrap();
    let mut pipe = session.pipeline::<f32>();
    // big -> small -> big -> small: every stream equals its cold twin,
    // no stale buffer content leaks between shapes.
    for (i, data) in [&big, &small, &big, &small].into_iter().enumerate() {
        let warm = pipe.compress(data).unwrap().blob;
        let cold = session.compress(data).unwrap().blob;
        assert_eq!(warm, cold, "call {i}");
        if i > 0 {
            assert_eq!(pipe.last_outcome(), Some(PlanOutcome::Retuned), "call {i}");
        }
    }
}

#[test]
fn f64_series_reuses_plans_too() {
    let base = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
    let wide = NdArray::from_vec(
        base.shape(),
        base.as_slice().iter().map(|&v| v as f64).collect(),
    );
    let session = Session::builder()
        .bound(ErrorBound::Rel(1e-3))
        .build()
        .unwrap();
    let cold = session.compress(&wide).unwrap().blob;
    let mut pipe = session.pipeline::<f64>();
    pipe.compress(&wide).unwrap();
    let warm = pipe.compress(&wide).unwrap().blob;
    assert_eq!(warm, cold);
    assert_eq!(pipe.stats().warm_hits, 1);
}

/// CI warm-vs-cold smoke (`cargo test --release --test pipeline_reuse --
/// --ignored`): over a tiny six-snapshot series, the pipeline's
/// steady-state (post-tune) calls must be faster in total than the same
/// series compressed cold. Tuning dominates cold QoZ compression, so
/// the margin is large; this is a regression tripwire, not a benchmark.
#[test]
#[ignore]
fn warm_vs_cold_smoke() {
    let snaps = snapshots();
    let session = Session::builder()
        .bound(ErrorBound::Rel(1e-3))
        .build()
        .unwrap();

    let t0 = std::time::Instant::now();
    let cold_blobs: Vec<_> = snaps
        .iter()
        .map(|s| session.compress(s).unwrap().blob)
        .collect();
    let t_cold = t0.elapsed();

    let mut pipe = session.pipeline::<f32>();
    pipe.compress(&snaps[0]).unwrap(); // pay the one cold tune
    let t0 = std::time::Instant::now();
    let warm_blobs: Vec<_> = snaps[1..]
        .iter()
        .map(|s| pipe.compress(s).unwrap().blob)
        .collect();
    let t_warm = t0.elapsed();

    // Correctness first: a warm repeat of snapshot 0 through a fresh
    // pipeline reproduces the cold bytes.
    let mut fresh = session.pipeline::<f32>();
    fresh.compress(&snaps[0]).unwrap();
    assert_eq!(fresh.compress(&snaps[0]).unwrap().blob, cold_blobs[0]);
    assert_eq!(warm_blobs.len(), snaps.len() - 1);

    let per_cold = t_cold.as_secs_f64() / snaps.len() as f64;
    let per_warm = t_warm.as_secs_f64() / (snaps.len() - 1) as f64;
    println!(
        "cold {:.2} ms/snapshot, warm {:.2} ms/snapshot ({:.2}x)",
        per_cold * 1e3,
        per_warm * 1e3,
        per_cold / per_warm
    );
    assert!(
        per_warm < per_cold,
        "warm path ({per_warm:.4}s/snap) must beat cold ({per_cold:.4}s/snap)"
    );
}
