//! Behavioural tests of QoZ's quality-metric orientation: switching the
//! tuning mode must move the corresponding metric in the right direction
//! (or at minimum never make it substantially worse), mirroring the
//! paper's Figs. 8-10 observations.

use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::metrics::{self, QualityMetric};
use qoz_suite::qoz::{level_error_bounds, Qoz, QozConfig};
use qoz_suite::tensor::NdArray;

fn run(qoz: &Qoz, data: &NdArray<f32>, bound: ErrorBound) -> (f64, NdArray<f32>) {
    let blob = qoz.compress(data, bound);
    let recon = qoz.decompress(&blob).unwrap();
    let bitrate = blob.len() as f64 * 8.0 / data.len() as f64;
    (bitrate, recon)
}

#[test]
fn ac_mode_improves_or_matches_autocorrelation() {
    for ds in [Dataset::Miranda, Dataset::CesmAtm] {
        let data = ds.generate(SizeClass::Tiny, 0);
        let bound = ErrorBound::Rel(1e-3);
        let (_, recon_cr) = run(
            &Qoz::for_metric(QualityMetric::CompressionRatio),
            &data,
            bound,
        );
        let (_, recon_ac) = run(
            &Qoz::for_metric(QualityMetric::AutoCorrelation),
            &data,
            bound,
        );
        let ac_cr = metrics::error_autocorrelation(&data, &recon_cr, 1).abs();
        let ac_ac = metrics::error_autocorrelation(&data, &recon_ac, 1).abs();
        assert!(
            ac_ac <= ac_cr + 0.05,
            "{}: AC mode {ac_ac:.4} vs CR mode {ac_cr:.4}",
            ds.name()
        );
    }
}

#[test]
fn psnr_mode_never_much_worse_than_cr_mode_on_psnr() {
    let data = Dataset::Nyx.generate(SizeClass::Tiny, 0);
    let bound = ErrorBound::Rel(1e-3);
    let (_, recon_psnr) = run(&Qoz::for_metric(QualityMetric::Psnr), &data, bound);
    let (_, recon_cr) = run(
        &Qoz::for_metric(QualityMetric::CompressionRatio),
        &data,
        bound,
    );
    let p_psnr = metrics::psnr(&data, &recon_psnr);
    let p_cr = metrics::psnr(&data, &recon_cr);
    assert!(
        p_psnr >= p_cr - 1.0,
        "PSNR mode {p_psnr:.2} dB should not trail CR mode {p_cr:.2} dB"
    );
}

#[test]
fn autotuning_at_least_matches_worst_fixed_setting() {
    // The tuner picks among candidate (alpha, beta); its bitrate should
    // never exceed the worst fixed candidate's by more than noise.
    let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 1);
    let bound = ErrorBound::Rel(1e-3);
    let (auto_bits, _) = run(
        &Qoz::for_metric(QualityMetric::CompressionRatio),
        &data,
        bound,
    );
    let mut fixed_bits = Vec::new();
    for (a, b) in [(1.0, 1.0), (1.5, 3.0), (2.0, 4.0)] {
        let qoz = Qoz::new(QozConfig {
            param_autotuning: false,
            fixed_params: Some((a, b)),
            ..Default::default()
        });
        fixed_bits.push(run(&qoz, &data, bound).0);
    }
    let worst = fixed_bits.iter().cloned().fold(f64::MIN, f64::max);
    let best = fixed_bits.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        auto_bits <= worst * 1.05,
        "autotuned bitrate {auto_bits:.3} worse than worst fixed {worst:.3}"
    );
    // And it should land reasonably close to the best fixed setting.
    assert!(
        auto_bits <= best * 1.30,
        "autotuned bitrate {auto_bits:.3} far from best fixed {best:.3}"
    );
}

#[test]
fn level_bounds_follow_eq5_for_all_candidates() {
    let cfg = QozConfig::default();
    for (a, b) in cfg.param_candidates() {
        let ebs = level_error_bounds(1e-2, a, b, 6);
        assert_eq!(ebs[0], 1e-2);
        for (l, &e) in ebs.iter().enumerate() {
            let expect = 1e-2 / (a.powi(l as i32)).min(b);
            assert!((e - expect).abs() < 1e-18, "a={a} b={b} l={}", l + 1);
        }
    }
}

#[test]
fn ablation_ladder_rate_psnr_never_collapses() {
    // Each added component should keep rate-PSNR in a sane band; the
    // full QoZ must beat plain anchors-only on at least one of the two
    // paper datasets (CESM / Miranda).
    use qoz_suite::qoz::ablation::AblationVariant;
    let bound = ErrorBound::Rel(1e-2);
    let mut qoz_wins = 0;
    for ds in [Dataset::CesmAtm, Dataset::Miranda] {
        let data = ds.generate(SizeClass::Tiny, 0);
        let bits_of = |v: AblationVariant| {
            let c = v.compressor(QualityMetric::Psnr);
            run(&c, &data, bound).0
        };
        let ap = bits_of(AblationVariant::Sz3Ap);
        let full = bits_of(AblationVariant::QozFull);
        if full <= ap {
            qoz_wins += 1;
        }
    }
    assert!(
        qoz_wins >= 1,
        "full QoZ never beat the anchors-only variant"
    );
}
