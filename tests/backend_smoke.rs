//! Fast smoke test: one compress→decompress roundtrip per backend at
//! `ErrorBound::Rel(1e-3)`, asserting the pointwise bound holds. This is
//! the first test to look at when a change breaks "everything" — it
//! names the backend that went wrong without any property-test noise.

use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::tensor::{NdArray, Shape};

fn field() -> NdArray<f32> {
    // Smooth + mild high-frequency content, exercising both the
    // interpolation sweet spot and the quantizer's outlier path.
    NdArray::from_fn(Shape::d3(24, 24, 24), |i| {
        let (x, y, z) = (i[0] as f32, i[1] as f32, i[2] as f32);
        (x * 0.21).sin() * (y * 0.17).cos() + (z * 0.13).sin() + (x * y * 0.011).sin() * 0.2
    })
}

fn smoke<C: Compressor<f32>>(name: &str, c: C) {
    let data = field();
    let bound = ErrorBound::Rel(1e-3);
    let abs = bound.absolute(&data);

    let blob = c.compress(&data, bound);
    assert!(!blob.is_empty(), "{name}: empty blob");
    let recon: NdArray<f32> = c
        .decompress(&blob)
        .unwrap_or_else(|e| panic!("{name}: decompress failed: {e:?}"));

    assert_eq!(recon.shape(), data.shape(), "{name}: shape mismatch");
    let err = data.max_abs_diff(&recon);
    assert!(
        err <= abs * (1.0 + 1e-9),
        "{name}: bound violated: max |err| = {err:e} > {abs:e}"
    );
    // An error-bounded compressor that expands smooth data is broken
    // even if the bound technically holds.
    let raw = data.len() * core::mem::size_of::<f32>();
    assert!(
        blob.len() < raw,
        "{name}: no compression ({} -> {} bytes)",
        raw,
        blob.len()
    );
}

#[test]
fn qoz_smoke() {
    smoke("qoz", qoz_suite::qoz::Qoz::default());
}

#[test]
fn sz3_smoke() {
    smoke("sz3", qoz_suite::sz3::Sz3::default());
}

#[test]
fn sz2_smoke() {
    smoke("sz2", qoz_suite::sz2::Sz2::default());
}

#[test]
fn zfp_smoke() {
    smoke("zfp", qoz_suite::zfp::Zfp);
}

#[test]
fn mgard_smoke() {
    smoke("mgard", qoz_suite::mgard::Mgard);
}
