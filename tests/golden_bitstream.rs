//! Golden-bitstream regression tests.
//!
//! The compressed stream format is a compatibility contract: the
//! line-kernel traversal, the table-driven Huffman coder, and the
//! parallel chunk pipeline are all required to produce output
//! byte-identical to the original scalar implementations. These tests
//! pin the exact bytes (FNV-1a hash + length) of the streams produced
//! from a fixed datagen seed, so any refactor that perturbs traversal
//! order, canonical code assignment, or bit packing fails loudly here
//! rather than silently breaking archived data.
//!
//! The recorded constants were captured from the pre-refactor
//! (odometer-traversal, bit-at-a-time Huffman) implementation.

use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::datagen::{Dataset, SizeClass};

/// FNV-1a, 64-bit. Dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn golden_case<C: Compressor<f32>>(c: &C, ds: Dataset, eps: f64) -> (usize, u64) {
    let data = ds.generate(SizeClass::Tiny, 0);
    let blob = c.compress(&data, ErrorBound::Rel(eps));
    // The stream must still round-trip within bound — a hash match on a
    // broken stream would be meaningless.
    let recon = c.decompress(&blob).expect("golden blob must decode");
    let abs = ErrorBound::Rel(eps).absolute(&data);
    assert!(data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9));
    (blob.len(), fnv1a(&blob))
}

#[test]
fn sz3_streams_are_byte_identical_to_seed() {
    let c = qoz_suite::sz3::Sz3::default();
    let expect: [(Dataset, f64, usize, u64); 4] = [
        (Dataset::Miranda, 1e-3, 12836, 0xa60626d62c4385a4),
        (Dataset::Miranda, 1e-2, 3729, 0x0120643a2f223cca),
        (Dataset::CesmAtm, 1e-3, 6130, 0x3f8ccbf2c4fb0557),
        (Dataset::Nyx, 1e-3, 25639, 0x625f05a81f3e63a4),
    ];
    for (ds, eps, len, hash) in expect {
        let (got_len, got_hash) = golden_case(&c, ds, eps);
        assert_eq!(
            (got_len, got_hash),
            (len, hash),
            "sz3 stream changed for {ds:?} eps={eps:e}: got ({got_len}, {got_hash:#x})"
        );
    }
}

#[test]
fn qoz_streams_are_byte_identical_to_seed() {
    let c = qoz_suite::qoz::Qoz::default();
    let expect: [(Dataset, f64, usize, u64); 3] = [
        (Dataset::Miranda, 1e-3, 12809, 0xf09f5ff06c6c54f4),
        (Dataset::CesmAtm, 1e-3, 6143, 0x1a46cc7eb06a1027),
        (Dataset::Hurricane, 1e-2, 8246, 0x096d288f9fe01d4e),
    ];
    for (ds, eps, len, hash) in expect {
        let (got_len, got_hash) = golden_case(&c, ds, eps);
        assert_eq!(
            (got_len, got_hash),
            (len, hash),
            "qoz stream changed for {ds:?} eps={eps:e}: got ({got_len}, {got_hash:#x})"
        );
    }
}

/// Deterministic f64 field: the seeded f32 dataset widened per element
/// (exact, so the stream depends only on the datagen seed).
fn wide_field(ds: Dataset) -> qoz_suite::tensor::NdArray<f64> {
    let f = ds.generate(SizeClass::Tiny, 0);
    qoz_suite::tensor::NdArray::from_vec(
        f.shape(),
        f.as_slice().iter().map(|&v| v as f64).collect(),
    )
}

fn golden_case_f64<C: Compressor<f64>>(c: &C, ds: Dataset, eps: f64) -> (usize, u64) {
    let data = wide_field(ds);
    let blob = c.compress(&data, ErrorBound::Rel(eps));
    let recon = c.decompress(&blob).expect("golden blob must decode");
    let abs = ErrorBound::Rel(eps).absolute(&data);
    assert!(data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9));
    (blob.len(), fnv1a(&blob))
}

/// The f64 side of the format contract: the double-precision encode path
/// (8-byte unpredictable/anchor records, f64 Kraft accounting in the
/// Huffman table check) is pinned with its own golden constants.
#[test]
fn sz3_f64_streams_are_byte_identical_to_seed() {
    let c = qoz_suite::sz3::Sz3::default();
    let expect: [(Dataset, f64, usize, u64); 2] = [
        (Dataset::Miranda, 1e-3, 12852, 0xa2b3a336bc7e5a8e),
        (Dataset::CesmAtm, 1e-3, 6130, 0x912a9908483c668d),
    ];
    for (ds, eps, len, hash) in expect {
        let (got_len, got_hash) = golden_case_f64(&c, ds, eps);
        assert_eq!(
            (got_len, got_hash),
            (len, hash),
            "sz3 f64 stream changed for {ds:?} eps={eps:e}: got ({got_len}, {got_hash:#x})"
        );
    }
}

#[test]
fn qoz_f64_streams_are_byte_identical_to_seed() {
    let c = qoz_suite::qoz::Qoz::default();
    let expect: [(Dataset, f64, usize, u64); 2] = [
        (Dataset::Miranda, 1e-3, 12813, 0xd7806195949d9ed7),
        (Dataset::Hurricane, 1e-2, 8262, 0xb44c6fab85a98c7a),
    ];
    for (ds, eps, len, hash) in expect {
        let (got_len, got_hash) = golden_case_f64(&c, ds, eps);
        assert_eq!(
            (got_len, got_hash),
            (len, hash),
            "qoz f64 stream changed for {ds:?} eps={eps:e}: got ({got_len}, {got_hash:#x})"
        );
    }
}

/// The warm pipeline path (cached plan + reused scratch arena) must emit
/// the same pinned bytes as the cold path: caching changes when work
/// happens, never what is written. Both the cold (first) and warm
/// (second) pipeline calls are checked against the golden constants of
/// the allocating implementation above.
#[test]
fn warm_pipeline_streams_match_cold_golden() {
    use qoz_suite::api::Session;

    let expect: [(Dataset, f64, usize, u64); 2] = [
        (Dataset::Miranda, 1e-3, 12809, 0xf09f5ff06c6c54f4),
        (Dataset::CesmAtm, 1e-3, 6143, 0x1a46cc7eb06a1027),
    ];
    for (ds, eps, len, hash) in expect {
        let data = ds.generate(SizeClass::Tiny, 0);
        let session = Session::builder()
            .bound(ErrorBound::Rel(eps))
            .build()
            .unwrap();
        let mut pipe = session.pipeline::<f32>();
        for (pass, label) in [(0, "cold"), (1, "warm")] {
            let blob = pipe.compress(&data).unwrap().blob;
            assert_eq!(
                (blob.len(), fnv1a(&blob)),
                (len, hash),
                "{label} pipeline stream changed for {ds:?} eps={eps:e} (pass {pass})"
            );
        }
        assert_eq!(
            pipe.stats().warm_hits,
            1,
            "{ds:?}: second pass must be warm"
        );
    }
}
