//! Fine-grained invariants of the level-adapted engine: each
//! interpolation level must respect *its own* (tighter) bound, not just
//! the global one — the mechanism behind Eq. 5's quality gains.

use qoz_suite::predict::{base_stride, for_each_base_point, max_level, traverse_level};
use qoz_suite::sz3::{compress_with_spec, InterpSpec};
use qoz_suite::tensor::{NdArray, Shape};

fn field() -> NdArray<f64> {
    NdArray::from_fn(Shape::d2(65, 65), |i| {
        (i[0] as f64 * 0.11).sin() * (i[1] as f64 * 0.07).cos() * 3.0
    })
}

/// Collect, per level, the set of linear offsets that level predicts.
fn offsets_by_level(shape: Shape, spec: &InterpSpec) -> Vec<(u32, Vec<usize>)> {
    let mut out = Vec::new();
    let mut dummy = vec![0f64; shape.len()];
    for level in (1..=spec.max_level).rev() {
        let mut offs = Vec::new();
        traverse_level(
            &mut dummy,
            shape,
            level,
            spec.config_of(level),
            &mut |_, off, _| offs.push(off),
        );
        out.push((level, offs));
    }
    out
}

#[test]
fn per_level_bounds_hold_pointwise() {
    let data = field();
    let shape = data.shape();
    let mut spec = InterpSpec::anchored(16, 8e-3, Default::default());
    // Strongly tiered bounds.
    spec.level_ebs = vec![8e-3, 4e-3, 2e-3, 1e-3];

    let out = compress_with_spec(&data, &spec);
    for (level, offs) in offsets_by_level(shape, &spec) {
        let eb = spec.eb_of(level);
        for off in offs {
            let err = (out.recon.as_slice()[off] - data.as_slice()[off]).abs();
            assert!(
                err <= eb * (1.0 + 1e-12),
                "level {level}: err {err} > eb {eb} at offset {off}"
            );
        }
    }
}

#[test]
fn anchors_not_counted_as_level_points() {
    let shape = Shape::d2(33, 33);
    let spec = InterpSpec::anchored(8, 1e-3, Default::default());
    let mut anchor_offs = std::collections::HashSet::new();
    for_each_base_point(shape, 8, |off| {
        anchor_offs.insert(off);
    });
    for (_, offs) in offsets_by_level(shape, &spec) {
        for off in offs {
            assert!(!anchor_offs.contains(&off), "level visited an anchor");
        }
    }
}

#[test]
fn sz3_mode_levels_cover_exactly_the_non_base_points() {
    let shape = Shape::d3(17, 9, 21);
    let data = NdArray::from_fn(shape, |i| (i[0] + i[1] * 2 + i[2]) as f64);
    let spec = InterpSpec::sz3(shape, 1e-3, Default::default());
    assert_eq!(spec.max_level, max_level(shape));
    let mut count = 0usize;
    for (_, offs) in offsets_by_level(shape, &spec) {
        count += offs.len();
    }
    let mut base = 0usize;
    for_each_base_point(shape, base_stride(spec.max_level), |_| base += 1);
    assert_eq!(count + base, data.len());
}

#[test]
fn tiered_bounds_improve_low_level_prediction() {
    // Tightening high-level bounds should reduce the mean absolute
    // prediction error observed at the (dense) lowest level — the
    // causal mechanism the paper's Eq. 5 exploits.
    let data = field();
    let loose = InterpSpec::anchored(16, 8e-3, Default::default());
    let mut tiered = loose.clone();
    tiered.level_ebs = vec![8e-3, 2e-3, 2e-3, 2e-3];

    // Instrument level-1 errors only.
    let err_level1 = |spec: &InterpSpec| -> f64 {
        // Run levels max..2 with the spec, then measure level-1
        // prediction errors against the original values.
        let shape = data.shape();
        let mut work = data.clone();
        let q = |eb: f64| qoz_suite::codec::LinearQuantizer::new(eb);
        for level in (2..=spec.max_level).rev() {
            let quant = q(spec.eb_of(level));
            traverse_level(
                work.as_mut_slice(),
                shape,
                level,
                spec.config_of(level),
                &mut |buf, off, pred| {
                    buf[off] = quant.quantize(buf[off], pred).reconstructed;
                },
            );
        }
        let mut sum = 0.0;
        let mut n = 0u64;
        traverse_level(
            work.as_mut_slice(),
            shape,
            1,
            spec.config_of(1),
            &mut |buf, off, pred| {
                sum += (buf[off] - pred).abs();
                n += 1;
                // Do not quantize: we only probe predictions.
            },
        );
        sum / n as f64
    };

    let e_loose = err_level1(&loose);
    let e_tiered = err_level1(&tiered);
    assert!(
        e_tiered <= e_loose * 1.001,
        "tiered {e_tiered} should not exceed loose {e_loose}"
    );
}
