//! End-to-end 4D (time-varying volume) coverage: every compressor must
//! handle `[t, x, y, z]` arrays — the form in which multi-snapshot
//! archives like Hurricane-Isabel actually ship.

use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::datagen::time_series_like;
use qoz_suite::metrics::verify_error_bound;
use qoz_suite::tensor::{NdArray, Shape};

fn data() -> NdArray<f32> {
    time_series_like(Shape::new(&[5, 12, 12, 12]), 42)
}

fn compressors() -> Vec<(&'static str, Box<dyn Compressor<f32>>)> {
    vec![
        ("SZ2.1", Box::new(qoz_suite::sz2::Sz2::default())),
        ("SZ3", Box::new(qoz_suite::sz3::Sz3::default())),
        ("ZFP", Box::new(qoz_suite::zfp::Zfp)),
        ("MGARD+", Box::new(qoz_suite::mgard::Mgard)),
        ("QoZ", Box::new(qoz_suite::qoz::Qoz::default())),
    ]
}

#[test]
fn all_compressors_roundtrip_4d_within_bound() {
    let data = data();
    for eps in [1e-2, 1e-4] {
        let bound = ErrorBound::Rel(eps);
        let abs = bound.absolute(&data);
        for (name, c) in compressors() {
            let blob = c.compress(&data, bound);
            let recon = c.decompress(&blob).unwrap();
            assert_eq!(recon.shape(), data.shape(), "{name}");
            assert_eq!(
                verify_error_bound(&data, &recon, abs),
                None,
                "{name} violated eps={eps} in 4D"
            );
        }
    }
}

#[test]
fn temporal_correlation_helps_interpolation_compressors() {
    // The same volume flattened to independent 3D steps compressed one
    // by one must not beat the joint 4D compression by much: the 4D
    // traversal can exploit temporal smoothness.
    let data = data();
    let bound = ErrorBound::Abs(1e-3 * data.value_range());
    let qoz = qoz_suite::qoz::Qoz::default();
    let joint = qoz.compress(&data, bound).len();

    let step = 12 * 12 * 12;
    let mut per_step_total = 0usize;
    for t in 0..5 {
        let slice = NdArray::from_vec(
            Shape::d3(12, 12, 12),
            data.as_slice()[t * step..(t + 1) * step].to_vec(),
        );
        per_step_total += qoz.compress(&slice, bound).len();
    }
    assert!(
        (joint as f64) < per_step_total as f64 * 1.2,
        "4D joint {joint} vs per-step {per_step_total}"
    );
}

#[test]
fn four_d_streams_decode_to_identical_recon() {
    let data = data();
    let qoz = qoz_suite::qoz::Qoz::default();
    let b1 = qoz.compress(&data, ErrorBound::Rel(1e-3));
    let b2 = qoz.compress(&data, ErrorBound::Rel(1e-3));
    assert_eq!(b1, b2, "compression must be deterministic");
    let r1: NdArray<f32> = qoz.decompress(&b1).unwrap();
    let r2: NdArray<f32> = qoz.decompress(&b2).unwrap();
    assert_eq!(r1.as_slice(), r2.as_slice());
}
