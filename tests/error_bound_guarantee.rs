//! The cardinal contract of error-bounded lossy compression: every
//! compressor, every dataset family, every bound — each reconstructed
//! point within the absolute bound. (Paper §III, verified in Fig. 7.)

use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::metrics::{verify_error_bound, QualityMetric};
use qoz_suite::tensor::NdArray;

fn all_compressors() -> Vec<(&'static str, Box<dyn Compressor<f32>>)> {
    vec![
        ("SZ2.1", Box::new(qoz_suite::sz2::Sz2::default())),
        ("SZ3", Box::new(qoz_suite::sz3::Sz3::default())),
        ("ZFP", Box::new(qoz_suite::zfp::Zfp)),
        ("MGARD+", Box::new(qoz_suite::mgard::Mgard)),
        (
            "QoZ",
            Box::new(qoz_suite::qoz::Qoz::for_metric(
                QualityMetric::CompressionRatio,
            )),
        ),
    ]
}

#[test]
fn every_compressor_respects_every_bound_on_every_dataset() {
    for ds in Dataset::ALL {
        let data = ds.generate(SizeClass::Tiny, 0);
        for eps in [1e-2, 1e-3, 1e-4] {
            let bound = ErrorBound::Rel(eps);
            let abs = bound.absolute(&data);
            for (name, c) in all_compressors() {
                let blob = c.compress(&data, bound);
                let recon = c.decompress(&blob).unwrap_or_else(|e| {
                    panic!(
                        "{name} failed to decode its own stream on {}: {e}",
                        ds.name()
                    )
                });
                assert_eq!(recon.shape(), data.shape());
                assert_eq!(
                    verify_error_bound(&data, &recon, abs),
                    None,
                    "{name} violated eps={eps} on {}",
                    ds.name()
                );
            }
        }
    }
}

#[test]
fn absolute_bounds_respected_for_f64() {
    let data = Dataset::Nyx.generate(SizeClass::Tiny, 3);
    // Promote to f64 with extra precision demands.
    let data64 = NdArray::from_vec(
        data.shape(),
        data.as_slice()
            .iter()
            .map(|&v| v as f64 * 1.000001)
            .collect(),
    );
    let abs = 1e-7 * data64.value_range();
    let compressors: Vec<(&str, Box<dyn Compressor<f64>>)> = vec![
        ("SZ2.1", Box::new(qoz_suite::sz2::Sz2::default())),
        ("SZ3", Box::new(qoz_suite::sz3::Sz3::default())),
        ("ZFP", Box::new(qoz_suite::zfp::Zfp)),
        ("MGARD+", Box::new(qoz_suite::mgard::Mgard)),
        ("QoZ", Box::new(qoz_suite::qoz::Qoz::default())),
    ];
    for (name, c) in compressors {
        let blob = c.compress(&data64, ErrorBound::Abs(abs));
        let recon = c.decompress(&blob).unwrap();
        assert!(
            data64.max_abs_diff(&recon) <= abs * (1.0 + 1e-9),
            "{name} violated tight f64 bound"
        );
    }
}

#[test]
fn qoz_all_tuning_modes_same_hard_bound() {
    let data = Dataset::ScaleLetkf.generate(SizeClass::Tiny, 0);
    let bound = ErrorBound::Rel(5e-3);
    let abs = bound.absolute(&data);
    for metric in [
        QualityMetric::CompressionRatio,
        QualityMetric::Psnr,
        QualityMetric::Ssim,
        QualityMetric::AutoCorrelation,
    ] {
        let qoz = qoz_suite::qoz::Qoz::for_metric(metric);
        let blob = qoz.compress(&data, bound);
        let recon: NdArray<f32> = qoz.decompress(&blob).unwrap();
        assert_eq!(
            verify_error_bound(&data, &recon, abs),
            None,
            "mode {metric:?} broke the bound"
        );
    }
}

#[test]
fn extreme_bounds_still_hold() {
    let data = Dataset::Miranda.generate(SizeClass::Tiny, 1);
    for (name, c) in all_compressors() {
        // Very loose: everything collapses but the bound must hold.
        let blob = c.compress(&data, ErrorBound::Rel(0.25));
        let recon = c.decompress(&blob).unwrap();
        let abs = ErrorBound::Rel(0.25).absolute(&data);
        assert!(
            data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9),
            "{name} loose"
        );
        // Very tight: near-lossless.
        let blob = c.compress(&data, ErrorBound::Rel(1e-7));
        let recon = c.decompress(&blob).unwrap();
        let abs = ErrorBound::Rel(1e-7).absolute(&data);
        assert!(
            data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9),
            "{name} tight"
        );
    }
}
