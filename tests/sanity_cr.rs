//! Quick sanity integration test: QoZ vs SZ3 compression ratios.
use qoz_codec::{Compressor, ErrorBound};
use qoz_datagen::{Dataset, SizeClass};

#[test]
#[ignore] // run explicitly: cargo test --release --test sanity_cr -- --ignored --nocapture
fn print_cr_comparison() {
    for ds in Dataset::ALL {
        let data = ds.generate(SizeClass::Small, 0);
        for eps in [1e-2, 1e-3] {
            let bound = ErrorBound::Rel(eps);
            let t0 = std::time::Instant::now();
            let sz3 = qoz_sz3::Sz3::default().compress(&data, bound);
            let t_sz3 = t0.elapsed();
            let t0 = std::time::Instant::now();
            let qoz = Compressor::<f32>::compress(&qoz_core::Qoz::default(), &data, bound);
            let t_qoz = t0.elapsed();
            let raw = (data.len() * 4) as f64;
            println!(
                "{:12} eps={:.0e}  SZ3 CR={:7.1} ({:5.0} ms)   QoZ CR={:7.1} ({:5.0} ms)",
                ds.name(),
                eps,
                raw / sz3.len() as f64,
                t_sz3.as_millis(),
                raw / qoz.len() as f64,
                t_qoz.as_millis()
            );
        }
    }
}
