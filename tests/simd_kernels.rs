//! Scalar-vs-SIMD kernel equivalence suite.
//!
//! The vectorized hot loops (linear-scale quantizer, fused
//! interpolation stencils, Huffman histogramming) carry a hard
//! contract: **bit-identical output on every dispatch path**. These
//! tests check the contract at three layers — kernel blocks against the
//! scalar oracle under proptest (all lane widths, odd tails, f32 + f64,
//! unpredictable-heavy inputs), the whole engine byte-for-byte across
//! paths, and the golden-bitstream pins re-asserted under every
//! supported path via the `KernelSelect` config knob. The CI
//! `test-scalar` job runs this same suite with `QOZ_FORCE_SCALAR=1`, so
//! both the env override and the dispatched path are covered.

use proptest::prelude::*;
use qoz_suite::codec::huffman::dense_counts;
use qoz_suite::codec::simd::{quantize_block, supported_paths, KernelPath, QuantSpec, BLOCK};
use qoz_suite::codec::{Compressor, ErrorBound, LinearQuantizer};
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::predict::simd::fill_preds;
use qoz_suite::predict::{InterpKind, LineRun, RunStencil};
use qoz_suite::qoz::{KernelSelect, Qoz, QozConfig};
use qoz_suite::tensor::{NdArray, Scalar};

/// FNV-1a, 64-bit — same pinning hash as `golden_bitstream.rs`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn qoz_with(kernels: KernelSelect) -> Qoz {
    Qoz::new(QozConfig {
        kernels,
        ..QozConfig::default()
    })
}

/// Every path worth testing on this machine: each supported SIMD path
/// plus the scalar reference (always last in `supported_paths`).
fn paths() -> Vec<KernelPath> {
    supported_paths()
}

// ---------------------------------------------------------------------------
// Kernel-block equivalence (proptest)
// ---------------------------------------------------------------------------

/// Run `quantize_block` on one path and flatten the outputs.
fn quantize_via<T: Scalar>(
    path: KernelPath,
    spec: &QuantSpec,
    vals: &[T],
    preds: &[f64],
) -> (Vec<u32>, Vec<u64>) {
    let n = vals.len();
    let mut vals_f = vec![0f64; n];
    let mut codes = vec![0u32; n];
    let mut recons = vec![T::from_f64(0.0); n];
    for (k, (v, p)) in vals.chunks(BLOCK).zip(preds.chunks(BLOCK)).enumerate() {
        let lo = k * BLOCK;
        let hi = lo + v.len();
        quantize_block(
            path,
            spec,
            v,
            p,
            &mut vals_f[lo..hi],
            &mut codes[lo..hi],
            &mut recons[lo..hi],
        );
    }
    (codes, recons.iter().map(|r| r.to_f64().to_bits()).collect())
}

/// Value/prediction pairs spanning the regular case, the
/// unpredictable-heavy case (predictions far off), and specials.
fn quant_inputs(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    let val = prop_oneof![
        8 => -1e6f64..1e6f64,
        2 => -1.0f64..1.0f64,
        1 => Just(0.0f64),
        1 => Just(-0.0f64),
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(1e300f64),
    ];
    let off = prop_oneof![
        // Near the prediction: regular codes.
        6 => -1e-2f64..1e-2f64,
        // Way off: unpredictable lanes.
        3 => prop_oneof![-1e12f64..-1e9, 1e9f64..1e12],
        1 => Just(0.0f64),
    ];
    (
        proptest::collection::vec(val, n),
        proptest::collection::vec(off, n),
    )
        .prop_map(|(vals, offs)| {
            let preds = vals
                .iter()
                .zip(&offs)
                .map(|(v, o)| if v.is_finite() { v + o } else { *o })
                .collect();
            (vals, preds)
        })
}

proptest! {
    // Bounded and reproducible, like the tier-1 roundtrip properties.
    #![proptest_config(ProptestConfig::with_cases(48).with_rng_seed(0x51_C0DE))]

    /// Quantizer blocks: every supported path must agree bit-for-bit
    /// with the per-point scalar quantizer on codes AND
    /// reconstructions, for f64 and the narrowing f32 case, on odd
    /// tail lengths.
    #[test]
    fn quantize_block_matches_scalar_oracle(
        vp in (1usize..3 * BLOCK + 6).prop_flat_map(quant_inputs),
        eb in prop_oneof![Just(1e-9f64), Just(1e-3), Just(1.0), Just(1e6)],
    ) {
        let (vals, preds) = vp;
        let n = vals.len();
        let q = LinearQuantizer::new(eb);
        let spec = QuantSpec::from_quantizer(&q).expect("default radius fits SIMD");

        // Scalar oracle: the pre-SIMD per-point quantizer.
        let oracle: Vec<(u32, u64)> = vals
            .iter()
            .zip(&preds)
            .map(|(&v, &p)| {
                let out = q.quantize(v, p);
                (out.code, out.reconstructed.to_bits())
            })
            .collect();
        let oracle32: Vec<(u32, u64)> = vals
            .iter()
            .zip(&preds)
            .map(|(&v, &p)| {
                let out = q.quantize(v as f32, p);
                (out.code, (out.reconstructed as f64).to_bits())
            })
            .collect();

        let vals32: Vec<f32> = vals.iter().map(|&v| v as f32).collect();
        for path in paths() {
            let (codes, recons) = quantize_via(path, &spec, &vals, &preds);
            for k in 0..n {
                prop_assert!(
                    (codes[k], recons[k]) == oracle[k],
                    "f64 lane {k} diverged on {path}: got {:?}, want {:?}",
                    (codes[k], recons[k]),
                    oracle[k]
                );
            }
            let (codes, recons) = quantize_via(path, &spec, &vals32, &preds);
            for k in 0..n {
                prop_assert!(
                    (codes[k], recons[k]) == oracle32[k],
                    "f32 lane {k} diverged on {path}: got {:?}, want {:?}",
                    (codes[k], recons[k]),
                    oracle32[k]
                );
            }
        }
    }

    /// Stencil runs: every path's `fill_preds` must reproduce the
    /// scalar path bit-for-bit for each stencil variant, stride
    /// geometry, and odd run length.
    #[test]
    fn fill_preds_matches_scalar_on_all_stencils(
        data in proptest::collection::vec(
            prop_oneof![6 => -1e6f64..1e6f64, 1 => -1.0f64..1.0],
            64..700,
        ),
        s in 1usize..4,
        cnt in 1usize..BLOCK + 1,
        kind in prop_oneof![
            Just(RunStencil::Interp(InterpKind::Linear)),
            Just(RunStencil::Interp(InterpKind::Cubic)),
            Just(RunStencil::Interp(InterpKind::Quadratic)),
            Just(RunStencil::CopyLeft),
        ],
    ) {
        // Interior-run geometry: step 2s, neighbours at ±s and ±3s.
        // Clamp the run so every gather stays in bounds.
        let d3 = 3 * s;
        let max_cnt = (data.len() - 1 - 2 * d3) / (2 * s) + 1;
        let cnt = cnt.min(max_cnt);
        let run = LineRun {
            off0: d3,
            step: 2 * s,
            cnt,
            d1: s,
            d3,
            stencil: kind,
        };
        let mut want = vec![0f64; cnt];
        fill_preds(KernelPath::Scalar, &data, &run, &mut want);
        for path in paths() {
            let mut got = vec![1f64; cnt];
            fill_preds(path, &data, &run, &mut got);
            for k in 0..cnt {
                prop_assert!(
                    got[k].to_bits() == want[k].to_bits(),
                    "{:?} lane {k} diverged on {path}: got {}, want {}",
                    run.stencil,
                    got[k],
                    want[k]
                );
            }
        }
    }

    /// Histogramming: the split-table count is exactly the naive count
    /// for arbitrary symbol streams (run-heavy by construction of the
    /// strategy weights).
    #[test]
    fn split_histogram_matches_naive(
        symbols in proptest::collection::vec(
            prop_oneof![5 => Just(77u32), 3 => 0u32..256, 1 => 0u32..70_000],
            0..10_000,
        ),
    ) {
        let max = symbols.iter().max().copied().unwrap_or(0) as usize;
        let mut split = Vec::new();
        let mut naive = Vec::new();
        dense_counts(&symbols, max, &mut split, true);
        dense_counts(&symbols, max, &mut naive, false);
        prop_assert_eq!(&split[..max + 1], &naive[..max + 1]);
    }
}

// ---------------------------------------------------------------------------
// Whole-engine byte equality across paths
// ---------------------------------------------------------------------------

/// A full compress on every supported path must emit the same bytes as
/// the scalar path, and every blob must decode to the same bits under
/// every decode path.
#[test]
fn engine_streams_identical_on_every_path() {
    for ds in [Dataset::Miranda, Dataset::CesmAtm, Dataset::Hurricane] {
        let data = ds.generate(SizeClass::Tiny, 0);
        let scalar = qoz_with(KernelSelect::ForceScalar);
        let want: Vec<u8> = scalar.compress(&data, ErrorBound::Rel(1e-3));
        let want_recon: NdArray<f32> = scalar.decompress(&want).unwrap();
        for path in paths() {
            let c = qoz_with(KernelSelect::Fixed(path));
            let blob: Vec<u8> = c.compress(&data, ErrorBound::Rel(1e-3));
            assert_eq!(blob, want, "{ds:?}: compress bytes diverged on {path}");
            let recon: NdArray<f32> = c.decompress(&blob).unwrap();
            let same = recon
                .as_slice()
                .iter()
                .zip(want_recon.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{ds:?}: decode bits diverged on {path}");
        }
    }
}

/// The same contract for the f64 engine (8-byte unpredictable records,
/// wider loads in every kernel).
#[test]
fn engine_streams_identical_on_every_path_f64() {
    let f = Dataset::Miranda.generate(SizeClass::Tiny, 0);
    let data = NdArray::from_vec(f.shape(), f.as_slice().iter().map(|&v| v as f64).collect());
    let scalar = qoz_with(KernelSelect::ForceScalar);
    let want: Vec<u8> = scalar.compress(&data, ErrorBound::Rel(1e-3));
    for path in paths() {
        let c = qoz_with(KernelSelect::Fixed(path));
        let blob: Vec<u8> = c.compress(&data, ErrorBound::Rel(1e-3));
        assert_eq!(blob, want, "f64 compress bytes diverged on {path}");
        let a: NdArray<f64> = c.decompress(&blob).unwrap();
        let b: NdArray<f64> = scalar.decompress(&want).unwrap();
        assert!(
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "f64 decode bits diverged on {path}"
        );
    }
}

// ---------------------------------------------------------------------------
// Golden pins under explicit paths
// ---------------------------------------------------------------------------

/// The golden-bitstream constants from `golden_bitstream.rs`, re-pinned
/// here under *explicit* kernel selection: the scalar reference and
/// every SIMD path this machine supports must all reproduce the exact
/// pre-SIMD bytes.
#[test]
fn golden_pins_hold_on_every_path() {
    let expect: [(Dataset, f64, usize, u64); 3] = [
        (Dataset::Miranda, 1e-3, 12809, 0xf09f5ff06c6c54f4),
        (Dataset::CesmAtm, 1e-3, 6143, 0x1a46cc7eb06a1027),
        (Dataset::Hurricane, 1e-2, 8246, 0x096d288f9fe01d4e),
    ];
    let mut selects = vec![KernelSelect::ForceScalar, KernelSelect::Auto];
    selects.extend(paths().into_iter().map(KernelSelect::Fixed));
    for select in selects {
        let c = qoz_with(select);
        for (ds, eps, len, hash) in expect {
            let data = ds.generate(SizeClass::Tiny, 0);
            let blob: Vec<u8> = c.compress(&data, ErrorBound::Rel(eps));
            assert_eq!(
                (blob.len(), fnv1a(&blob)),
                (len, hash),
                "golden pin broke for {ds:?} eps={eps:e} under {select:?}"
            );
        }
    }
}

/// The f64 golden pins under the same explicit-path sweep.
#[test]
fn golden_f64_pins_hold_on_every_path() {
    let expect: [(Dataset, f64, usize, u64); 2] = [
        (Dataset::Miranda, 1e-3, 12813, 0xd7806195949d9ed7),
        (Dataset::Hurricane, 1e-2, 8262, 0xb44c6fab85a98c7a),
    ];
    let mut selects = vec![KernelSelect::ForceScalar, KernelSelect::Auto];
    selects.extend(paths().into_iter().map(KernelSelect::Fixed));
    for select in selects {
        let c = qoz_with(select);
        for (ds, eps, len, hash) in expect {
            let f = ds.generate(SizeClass::Tiny, 0);
            let data =
                NdArray::from_vec(f.shape(), f.as_slice().iter().map(|&v| v as f64).collect());
            let blob: Vec<u8> = c.compress(&data, ErrorBound::Rel(eps));
            assert_eq!(
                (blob.len(), fnv1a(&blob)),
                (len, hash),
                "f64 golden pin broke for {ds:?} eps={eps:e} under {select:?}"
            );
        }
    }
}
