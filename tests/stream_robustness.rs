//! Malformed-stream robustness: corrupted, truncated, or cross-codec
//! blobs must produce errors, never panics or silent garbage.

use qoz_suite::archive::{ArchiveReader, ArchiveWriter};
use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::tensor::NdArray;

fn compressors() -> Vec<(&'static str, Box<dyn Compressor<f32>>)> {
    vec![
        ("SZ2.1", Box::new(qoz_suite::sz2::Sz2::default())),
        ("SZ3", Box::new(qoz_suite::sz3::Sz3::default())),
        ("ZFP", Box::new(qoz_suite::zfp::Zfp)),
        ("MGARD+", Box::new(qoz_suite::mgard::Mgard)),
        ("QoZ", Box::new(qoz_suite::qoz::Qoz::default())),
    ]
}

fn sample_blob(c: &dyn Compressor<f32>) -> Vec<u8> {
    let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
    c.compress(&data, ErrorBound::Rel(1e-3))
}

#[test]
fn truncation_at_every_eighth_byte_errors() {
    for (name, c) in compressors() {
        let blob = sample_blob(c.as_ref());
        for cut in (0..blob.len()).step_by(8) {
            let r = c.decompress(&blob[..cut]);
            assert!(r.is_err(), "{name}: truncation at {cut} accepted");
        }
    }
}

#[test]
fn cross_codec_streams_rejected() {
    let comps = compressors();
    let blobs: Vec<Vec<u8>> = comps.iter().map(|(_, c)| sample_blob(c.as_ref())).collect();
    for (i, (name_i, c)) in comps.iter().enumerate() {
        for (j, blob) in blobs.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(
                c.decompress(blob).is_err(),
                "{name_i} accepted a stream from {}",
                comps[j].0
            );
        }
    }
}

#[test]
fn single_byte_corruptions_never_panic() {
    // Flip one byte at a spread of positions; decoding may succeed with
    // different data (payload bits), may error — but must never panic.
    for (name, c) in compressors() {
        let blob = sample_blob(c.as_ref());
        let step = (blob.len() / 64).max(1);
        for pos in (0..blob.len()).step_by(step) {
            let mut bad = blob.clone();
            bad[pos] ^= 0xA5;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = c.decompress(&bad);
            }));
            assert!(result.is_ok(), "{name}: panic on corruption at byte {pos}");
        }
    }
}

#[test]
fn garbage_input_rejected() {
    for (name, c) in compressors() {
        assert!(c.decompress(&[]).is_err(), "{name} accepted empty");
        assert!(
            c.decompress(b"not a stream").is_err(),
            "{name} accepted garbage"
        );
        let zeros = vec![0u8; 1024];
        assert!(c.decompress(&zeros).is_err(), "{name} accepted zeros");
    }
}

/// A small archive whose superblock + TOC can be fuzzed exhaustively.
fn sample_archive() -> (Vec<u8>, usize) {
    let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
    let mut w = ArchiveWriter::new().with_chunk_side(32);
    w.add_variable(
        "v",
        &data,
        &qoz_suite::sz3::Sz3::default(),
        ErrorBound::Rel(1e-3),
    )
    .unwrap();
    let bytes = w.finish();
    let payload: u64 = {
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        r.toc().vars[0].compressed_len()
    };
    let header_len = bytes.len() - payload as usize;
    (bytes, header_len)
}

/// Exercise one mutated archive end-to-end; must error, never panic.
fn archive_must_reject(bytes: &[u8], what: &str) {
    let outcome = std::panic::catch_unwind(|| match ArchiveReader::from_bytes(bytes) {
        Err(_) => true,
        Ok(r) => {
            let read = r.read_full::<f32>("v").is_err();
            let verified = r.verify().is_err();
            read && verified
        }
    });
    match outcome {
        Err(_) => panic!("panic on {what}"),
        Ok(rejected) => assert!(rejected, "{what} accepted"),
    }
}

#[test]
fn container_truncation_at_every_boundary_errors() {
    let (bytes, _) = sample_archive();
    for cut in 0..bytes.len() {
        archive_must_reject(&bytes[..cut], &format!("truncation at {cut}"));
    }
}

#[test]
fn container_superblock_and_index_bitflip_fuzz() {
    // Every single-bit flip in the superblock, TOC, or TOC checksum must
    // be detected: the magic/version/flags are validated field by field
    // and everything else is covered by the TOC's FNV-1a checksum.
    let (bytes, header_len) = sample_archive();
    for pos in 0..header_len {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[pos] ^= 1 << bit;
            archive_must_reject(&bad, &format!("bit flip at byte {pos} bit {bit}"));
        }
    }
}

#[test]
fn header_shape_mismatch_on_giant_dims_rejected() {
    // A hand-built header with absurd dimensions must not cause a huge
    // allocation or a panic — headers cap dimension sizes.
    let mut w = qoz_suite::codec::ByteWriter::new();
    w.put_bytes(b"QZWS");
    w.put_u8(1); // version
    w.put_u8(2); // SZ3
    w.put_u8(0x32); // f32
    w.put_u8(2); // 2D
    w.put_varint(u64::MAX); // absurd dim
    w.put_varint(4);
    w.put_f64(1e-3);
    let blob = w.finish();
    let c = qoz_suite::sz3::Sz3::default();
    let r: Result<NdArray<f32>, _> = c.decompress(&blob);
    assert!(r.is_err());
}
