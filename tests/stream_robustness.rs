//! Malformed-stream robustness: corrupted, truncated, or cross-codec
//! blobs must produce errors, never panics or silent garbage.

use qoz_suite::archive::{ArchiveReader, ArchiveWriter};
use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::tensor::NdArray;

fn compressors() -> Vec<(&'static str, Box<dyn Compressor<f32>>)> {
    vec![
        ("SZ2.1", Box::new(qoz_suite::sz2::Sz2::default())),
        ("SZ3", Box::new(qoz_suite::sz3::Sz3::default())),
        ("ZFP", Box::new(qoz_suite::zfp::Zfp)),
        ("MGARD+", Box::new(qoz_suite::mgard::Mgard)),
        ("QoZ", Box::new(qoz_suite::qoz::Qoz::default())),
    ]
}

fn sample_blob(c: &dyn Compressor<f32>) -> Vec<u8> {
    let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
    c.compress(&data, ErrorBound::Rel(1e-3))
}

#[test]
fn truncation_at_every_eighth_byte_errors() {
    for (name, c) in compressors() {
        let blob = sample_blob(c.as_ref());
        for cut in (0..blob.len()).step_by(8) {
            let r = c.decompress(&blob[..cut]);
            assert!(r.is_err(), "{name}: truncation at {cut} accepted");
        }
    }
}

#[test]
fn cross_codec_streams_rejected() {
    let comps = compressors();
    let blobs: Vec<Vec<u8>> = comps.iter().map(|(_, c)| sample_blob(c.as_ref())).collect();
    for (i, (name_i, c)) in comps.iter().enumerate() {
        for (j, blob) in blobs.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(
                c.decompress(blob).is_err(),
                "{name_i} accepted a stream from {}",
                comps[j].0
            );
        }
    }
}

#[test]
fn single_byte_corruptions_never_panic() {
    // Flip one byte at a spread of positions; decoding may succeed with
    // different data (payload bits), may error — but must never panic.
    for (name, c) in compressors() {
        let blob = sample_blob(c.as_ref());
        let step = (blob.len() / 64).max(1);
        for pos in (0..blob.len()).step_by(step) {
            let mut bad = blob.clone();
            bad[pos] ^= 0xA5;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = c.decompress(&bad);
            }));
            assert!(result.is_ok(), "{name}: panic on corruption at byte {pos}");
        }
    }
}

#[test]
fn garbage_input_rejected() {
    for (name, c) in compressors() {
        assert!(c.decompress(&[]).is_err(), "{name} accepted empty");
        assert!(
            c.decompress(b"not a stream").is_err(),
            "{name} accepted garbage"
        );
        let zeros = vec![0u8; 1024];
        assert!(c.decompress(&zeros).is_err(), "{name} accepted zeros");
    }
}

/// A small archive whose superblock + TOC can be fuzzed exhaustively.
fn sample_archive() -> (Vec<u8>, usize) {
    let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
    let mut w = ArchiveWriter::new().with_chunk_side(32);
    w.add_variable(
        "v",
        &data,
        &qoz_suite::sz3::Sz3::default(),
        ErrorBound::Rel(1e-3),
    )
    .unwrap();
    let bytes = w.finish();
    let payload: u64 = {
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        r.toc().vars[0].compressed_len()
    };
    let header_len = bytes.len() - payload as usize;
    (bytes, header_len)
}

/// Exercise one mutated archive end-to-end; must error, never panic.
fn archive_must_reject(bytes: &[u8], what: &str) {
    let outcome = std::panic::catch_unwind(|| match ArchiveReader::from_bytes(bytes) {
        Err(_) => true,
        Ok(r) => {
            let read = r.read_full::<f32>("v").is_err();
            // verify() reports damage instead of erroring: "rejected"
            // means the scan found at least one fault (or itself died).
            let verified = r.verify().map(|rep| !rep.is_clean()).unwrap_or(true);
            read && verified
        }
    });
    match outcome {
        Err(_) => panic!("panic on {what}"),
        Ok(rejected) => assert!(rejected, "{what} accepted"),
    }
}

#[test]
fn container_truncation_at_every_boundary_errors() {
    let (bytes, _) = sample_archive();
    for cut in 0..bytes.len() {
        archive_must_reject(&bytes[..cut], &format!("truncation at {cut}"));
    }
}

#[test]
fn container_superblock_and_index_bitflip_fuzz() {
    // Every single-bit flip in the superblock, TOC, or TOC checksum must
    // be detected: the magic/version/flags are validated field by field
    // and everything else is covered by the TOC's FNV-1a checksum.
    let (bytes, header_len) = sample_archive();
    for pos in 0..header_len {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[pos] ^= 1 << bit;
            archive_must_reject(&bad, &format!("bit flip at byte {pos} bit {bit}"));
        }
    }
}

// ---------------------------------------------------------------------
// Serve protocol: the daemon's wire layer under the same discipline as
// the codecs — malformed bytes earn typed errors and the server stays
// up, whatever a client throws at it.

mod serve_wire {
    use super::*;
    use qoz_suite::serve::protocol::{self, kind, read_frame, write_frame};
    use qoz_suite::serve::{
        Client, ClientConfig, Endpoint, ErrorCode, Response, Server, ServerConfig,
    };
    use std::io::Write;
    use std::time::Duration;

    fn unix_ep(tag: &str) -> Endpoint {
        Endpoint::Unix(
            std::env::temp_dir()
                .join(format!("qoz_wire_{tag}_{}.sock", std::process::id()))
                .to_string_lossy()
                .into_owned(),
        )
    }

    /// SplitMix64 — deterministic frame mutations from a seed.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn seeded_frame_fuzz_gets_typed_errors_and_server_survives() {
        let server = Server::start(ServerConfig::new(unix_ep("fuzz"))).unwrap();
        let ep = server.endpoint();

        // A sound PING frame as the mutation substrate.
        let mut sound = Vec::new();
        write_frame(&mut sound, kind::PING, &[]).unwrap();

        // Bytes of a PING frame that are NOT the payload length: the
        // magic (0–3), the kind (4), and the payload checksum (9–16).
        // Flips there always provoke an immediate typed reply; flips in
        // the length field are covered by the oversized case below (a
        // *small* length lie just leaves the server waiting for payload
        // bytes — a stall for the client, nothing for the server).
        const REPLY_SAFE_FLIPS: [usize; 13] = [0, 1, 2, 3, 4, 9, 10, 11, 12, 13, 14, 15, 16];

        for seed in 0..48u64 {
            let mut s = seed;
            let mut wire = sound.clone();
            let expect_reply = match mix(&mut s) % 4 {
                // Truncated header/frame: the server sees a dead
                // connection mid-frame; no response is owed.
                0 => {
                    wire.truncate((mix(&mut s) as usize) % wire.len());
                    false
                }
                // Oversized declared length: typed BadFrame, rejected
                // before any allocation.
                1 => {
                    let len = protocol::MAX_PAYLOAD as u32 + 1 + (mix(&mut s) as u32 % 1024);
                    wire[5..9].copy_from_slice(&len.to_le_bytes());
                    true
                }
                // Garbage frame: random bytes, with byte 0 forced off
                // the real magic so the rejection is immediate.
                2 => {
                    wire = (0..16 + mix(&mut s) % 48)
                        .map(|_| mix(&mut s) as u8)
                        .collect();
                    wire[0] = b'X';
                    true
                }
                // Single bit flip at a position that guarantees a reply.
                _ => {
                    let pos = REPLY_SAFE_FLIPS[(mix(&mut s) as usize) % REPLY_SAFE_FLIPS.len()];
                    wire[pos] ^= 1 << (mix(&mut s) % 8);
                    true
                }
            };

            let mut chan = ep.connect().unwrap();
            chan.set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            if chan.write_all(&wire).is_err() {
                continue; // server already hung up — fine
            }
            if expect_reply {
                let (k, payload) = read_frame(&mut chan, protocol::MAX_PAYLOAD)
                    .unwrap_or_else(|e| panic!("seed {seed}: no reply: {e}"));
                match Response::decode(k, &payload) {
                    Ok(Response::Error { code, .. }) => {
                        assert_eq!(code, ErrorCode::BadFrame, "seed {seed}")
                    }
                    Ok(other) => panic!("seed {seed}: accepted fuzzed frame: {other:?}"),
                    Err(e) => panic!("seed {seed}: undecodable response: {e}"),
                }
            } else {
                // Sever mid-frame: the daemon must treat it as a dead
                // peer, not die with it.
                chan.shutdown().unwrap();
            }
        }

        // The one invariant every seed shares: the daemon still serves.
        let mut config = ClientConfig::new(ep);
        config.base_backoff = Duration::from_millis(1);
        let mut client = Client::with_config(config);
        client.ping().expect("daemon survives the fuzz sweep");
        assert!(client.stats().unwrap().bad_frames >= 1);
        server.shutdown().unwrap();
    }

    /// Kill-and-restart smoke across the full stack (slow: two daemon
    /// generations + two tunes' worth of work). Run with `--ignored`.
    #[test]
    #[ignore]
    fn kill_and_restart_smoke_reuses_warm_plan() {
        let plan_path =
            std::env::temp_dir().join(format!("qoz_wire_plans_{}.qzpl", std::process::id()));
        let _ = std::fs::remove_file(&plan_path);
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);

        let mut config = ServerConfig::new(unix_ep("smoke1"));
        config.plan_path = Some(plan_path.clone());
        let server = Server::start(config).unwrap();
        let mut client = Client::connect(server.endpoint());
        let (outcome, cold_blob) = client
            .compress("smoke", &data, ErrorBound::Rel(1e-3), 0)
            .unwrap();
        assert_eq!(outcome, 1, "first generation cold-tunes");
        assert!(server.shutdown().unwrap() >= 1);

        let mut config = ServerConfig::new(unix_ep("smoke2"));
        config.plan_path = Some(plan_path.clone());
        let server = Server::start(config).unwrap();
        let mut client = Client::connect(server.endpoint());
        let (outcome, warm_blob) = client
            .compress("smoke", &data, ErrorBound::Rel(1e-3), 0)
            .unwrap();
        assert_eq!(outcome, 2, "second generation serves its first call warm");
        assert_eq!(warm_blob, cold_blob, "warm restart is byte-identical");
        server.shutdown().unwrap();
        let _ = std::fs::remove_file(&plan_path);
    }
}

#[test]
fn header_shape_mismatch_on_giant_dims_rejected() {
    // A hand-built header with absurd dimensions must not cause a huge
    // allocation or a panic — headers cap dimension sizes.
    let mut w = qoz_suite::codec::ByteWriter::new();
    w.put_bytes(b"QZWS");
    w.put_u8(1); // version
    w.put_u8(2); // SZ3
    w.put_u8(0x32); // f32
    w.put_u8(2); // 2D
    w.put_varint(u64::MAX); // absurd dim
    w.put_varint(4);
    w.put_f64(1e-3);
    let blob = w.finish();
    let c = qoz_suite::sz3::Sz3::default();
    let r: Result<NdArray<f32>, _> = c.decompress(&blob);
    assert!(r.is_err());
}
