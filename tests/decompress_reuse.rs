//! Scratch-arena reuse across the whole *read* path.
//!
//! The symmetric-read-path refactor's contract, pinned here:
//!
//! 1. **Value identity** — decoding through a scratch arena (registry,
//!    pipeline, archive reader) returns arrays bitwise identical to the
//!    allocating path, for every backend and both scalar types.
//! 2. **Arena safety** — one arena serves arbitrary interleavings of
//!    shapes and stream sizes; nothing stale ever leaks into a decode.
//! 3. **Zero-allocation steady state** — a warm `Pipeline::decompress_into`
//!    (same shape as the previous decode, reused destination) records
//!    zero stage-buffer growth events.
//! 4. **Appendable container** — a QZAR grown by `ArchiveAppender`
//!    serves the old payload byte-for-byte and the new variables
//!    correctly, including through concurrent region queries over one
//!    shared reader handle.
//!
//! The `#[ignore]`d smoke at the bottom is the CI append + concurrent
//! read check (run explicitly with `--ignored`).

use qoz_suite::api::{BackendId, BackendRegistry, Session};
use qoz_suite::archive::{snapshot_name, ArchiveAppender, ArchiveReader, ArchiveWriter};
use qoz_suite::codec::{ErrorBound, Scratch};
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::tensor::{NdArray, Region, Shape};

const ALL_BACKENDS: [BackendId; 5] = [
    BackendId::Qoz,
    BackendId::Sz3,
    BackendId::Sz2,
    BackendId::Zfp,
    BackendId::Mgard,
];

fn field_f32() -> NdArray<f32> {
    Dataset::Miranda.generate(SizeClass::Tiny, 0)
}

fn field_f64() -> NdArray<f64> {
    let f = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
    NdArray::from_vec(f.shape(), f.as_slice().iter().map(|&v| v as f64).collect())
}

#[test]
fn scratch_decode_identical_to_allocating_for_every_backend() {
    let reg = BackendRegistry::new();
    let data32 = field_f32();
    let data64 = field_f64();
    for backend in ALL_BACKENDS {
        let session = Session::builder()
            .backend(backend)
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        // f32: allocating vs with-scratch vs into-destination.
        let blob = session.compress(&data32).unwrap().blob;
        let cold: NdArray<f32> = reg.decompress(&blob).unwrap();
        let mut scratch = Scratch::<f32>::new();
        let warm = reg.decompress_with_scratch(&blob, &mut scratch).unwrap();
        assert_eq!(cold.as_slice(), warm.as_slice(), "{backend:?} f32");
        let mut dest = NdArray::<f32>::zeros(Shape::d1(1));
        reg.decompress_into(&blob, &mut scratch, &mut dest).unwrap();
        assert_eq!(dest.shape(), cold.shape(), "{backend:?} f32 into-shape");
        assert_eq!(cold.as_slice(), dest.as_slice(), "{backend:?} f32 into");

        // f64 through the same machinery.
        let blob = session.compress(&data64).unwrap().blob;
        let cold: NdArray<f64> = reg.decompress(&blob).unwrap();
        let mut scratch = Scratch::<f64>::new();
        let warm = reg.decompress_with_scratch(&blob, &mut scratch).unwrap();
        assert_eq!(cold.as_slice(), warm.as_slice(), "{backend:?} f64");
    }
}

#[test]
fn one_arena_survives_shape_and_size_interleavings() {
    let session = Session::builder()
        .bound(ErrorBound::Rel(1e-3))
        .build()
        .unwrap();
    let reg = BackendRegistry::new();
    let big = field_f32();
    let small = big.extract_region(&Region::new(
        &[0, 0, 0],
        &[big.shape().dim(0) / 2, big.shape().dim(1) / 2, 3],
    ));
    let tiny = NdArray::from_fn(Shape::d1(7), |i| i[0] as f32 * 0.5);
    let blobs: Vec<Vec<u8>> = [&big, &small, &tiny, &big, &tiny, &small]
        .iter()
        .map(|d| session.compress(d).unwrap().blob)
        .collect();
    let mut scratch = Scratch::<f32>::new();
    let mut dest = NdArray::<f32>::zeros(Shape::d1(1));
    for (i, blob) in blobs.iter().enumerate() {
        let cold: NdArray<f32> = reg.decompress(blob).unwrap();
        reg.decompress_into(blob, &mut scratch, &mut dest).unwrap();
        assert_eq!(dest.shape(), cold.shape(), "decode {i}");
        assert_eq!(dest.as_slice(), cold.as_slice(), "decode {i}");
    }
}

#[test]
fn corrupt_stream_does_not_poison_the_arena() {
    let session = Session::builder()
        .bound(ErrorBound::Rel(1e-3))
        .build()
        .unwrap();
    let reg = BackendRegistry::new();
    let data = field_f32();
    let blob = session.compress(&data).unwrap().blob;
    let mut scratch = Scratch::<f32>::new();
    let mut dest = NdArray::<f32>::zeros(Shape::d1(1));
    reg.decompress_into(&blob, &mut scratch, &mut dest).unwrap();
    // Truncations at several depths fail cleanly...
    for cut in [8, blob.len() / 3, blob.len() - 2] {
        assert!(reg
            .decompress_into(&blob[..cut], &mut scratch, &mut dest)
            .is_err());
    }
    // ...and the same arena still decodes the intact stream exactly.
    reg.decompress_into(&blob, &mut scratch, &mut dest).unwrap();
    let cold: NdArray<f32> = reg.decompress(&blob).unwrap();
    assert_eq!(dest.as_slice(), cold.as_slice());
}

/// The acceptance criterion of the read-path refactor: with the arena
/// and the destination already grown, a repeated same-shape
/// `Pipeline::decompress_into` performs **zero** stage-buffer
/// allocations, observed through the arena's growth counters.
#[test]
fn warm_pipeline_decode_allocates_nothing() {
    let data = field_f32();
    for backend in [BackendId::Qoz, BackendId::Sz3] {
        let session = Session::builder()
            .backend(backend)
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let blob = session.compress(&data).unwrap().blob;
        let mut pipe = session.pipeline::<f32>();
        let mut dest = NdArray::<f32>::zeros(Shape::d1(1));
        // Cold decode: buffers grow (that's what the counter counts).
        pipe.decompress_into(&blob, &mut dest).unwrap();
        assert!(
            pipe.stats().decode_grow_events > 0,
            "{backend:?}: cold decode must have grown stage buffers"
        );
        // Warm decodes: same stream, same destination — zero growth.
        for pass in 0..3 {
            let before = pipe.stats().decode_grow_events;
            pipe.decompress_into(&blob, &mut dest).unwrap();
            assert_eq!(
                pipe.stats().decode_grow_events,
                before,
                "{backend:?} warm pass {pass} allocated a stage buffer"
            );
        }
        let cold: NdArray<f32> = session.decompress(&blob).unwrap();
        assert_eq!(dest.as_slice(), cold.as_slice(), "{backend:?} values");
    }
}

fn tiled_archive() -> (Vec<u8>, NdArray<f32>, NdArray<f32>) {
    let rho = field_f32();
    let vel = NdArray::from_fn(rho.shape(), |i| {
        (i[0] as f32 * 0.21).cos() + (i[1] as f32 + i[2] as f32) * 0.03
    });
    let codec = BackendRegistry::new().codec::<f32>(BackendId::Sz3);
    let mut w = ArchiveWriter::new().with_chunk_side(8);
    w.add_variable("rho", &rho, &*codec, ErrorBound::Abs(1e-3))
        .unwrap();
    let bytes = w.finish();
    (bytes, rho, vel)
}

#[test]
fn append_then_read_roundtrip() {
    let (bytes, rho, vel) = tiled_archive();
    let codec = BackendRegistry::new().codec::<f32>(BackendId::Qoz);
    let mut app = ArchiveAppender::from_bytes(&bytes)
        .unwrap()
        .with_chunk_side(8);
    app.add_variable("vel", &vel, &*codec, ErrorBound::Abs(1e-3))
        .unwrap();
    app.add_snapshot("rho", 1, &vel, &*codec, ErrorBound::Abs(1e-3))
        .unwrap();
    let grown = app.finish();

    let old = ArchiveReader::from_bytes(&bytes).unwrap();
    let new = ArchiveReader::from_bytes(&grown).unwrap();
    // The old variable's bytes were kept in place: identical index
    // entries, identical decoded values.
    assert_eq!(old.toc().vars[0], new.toc().vars[0]);
    let a: NdArray<f32> = old.read_full("rho").unwrap();
    let b: NdArray<f32> = new.read_full("rho").unwrap();
    assert_eq!(a.as_slice(), b.as_slice());
    // New variables decode within bound; snapshots list back.
    let v: NdArray<f32> = new.read_full("vel").unwrap();
    assert!(vel.max_abs_diff(&v) <= 1e-3 * (1.0 + 1e-9));
    assert_eq!(rho.shape(), v.shape());
    let snaps = new.toc().snapshots("rho");
    assert_eq!(snaps.len(), 1);
    assert_eq!(snaps[0].0, 1);
    assert_eq!(snaps[0].1.name, snapshot_name("rho", 1));
    // Every chunk of the grown archive verifies.
    assert_eq!(new.verify().unwrap().vars, 3);
}

#[test]
fn concurrent_region_reads_match_serial_over_one_shared_reader() {
    let (bytes, _, vel) = tiled_archive();
    let codec = BackendRegistry::new().codec::<f32>(BackendId::Sz3);
    let mut app = ArchiveAppender::from_bytes(&bytes)
        .unwrap()
        .with_chunk_side(8);
    app.add_variable("vel", &vel, &*codec, ErrorBound::Abs(1e-3))
        .unwrap();
    let grown = app.finish();
    let reader = ArchiveReader::from_bytes(&grown).unwrap();
    let shape = reader.toc().vars[0].shape;

    // Overlapping probe regions spanning chunk interiors and borders.
    let regions: Vec<Region> = (0..12)
        .map(|k| {
            let o = [k % 5, (k * 3) % 4, (k * 7) % 3];
            let s = [
                (3 + k % 6).min(shape.dim(0) - o[0]),
                (2 + k % 7).min(shape.dim(1) - o[1]),
                (1 + k % 5).min(shape.dim(2) - o[2]),
            ];
            Region::new(&o, &s)
        })
        .collect();
    let names = ["rho", "vel"];

    // Serial baseline through the allocating path.
    let baseline: Vec<Vec<f32>> = names
        .iter()
        .flat_map(|name| {
            regions
                .iter()
                .map(|r| reader.read_region::<f32>(name, r).unwrap().into_vec())
        })
        .collect();

    // Many threads, one shared reader, one scratch arena per thread.
    std::thread::scope(|s| {
        let reader = &reader;
        let regions = &regions;
        let baseline = &baseline;
        for t in 0..4usize {
            s.spawn(move || {
                let mut scratch = Scratch::<f32>::new();
                for round in 0..3 {
                    for (n, name) in names.iter().enumerate() {
                        for (i, region) in regions.iter().enumerate() {
                            let got = reader
                                .read_region_with::<f32>(name, region, &mut scratch)
                                .unwrap();
                            assert_eq!(
                                got.as_slice(),
                                &baseline[n * regions.len() + i][..],
                                "thread {t} round {round} {name} region {i}"
                            );
                        }
                    }
                }
            });
        }
    });
}

/// CI smoke (`cargo test --release --test decompress_reuse -- --ignored`):
/// append a timestep to an archive on disk, then hammer the grown file
/// with concurrent region queries through one shared handle and check
/// them against single-threaded reads.
#[test]
#[ignore]
fn append_and_concurrent_read_smoke() {
    let (bytes, rho, vel) = tiled_archive();
    let dir = std::env::temp_dir();
    let path = dir
        .join(format!("qoz_decomp_reuse_{}.qza", std::process::id()))
        .to_string_lossy()
        .into_owned();
    std::fs::write(&path, &bytes).unwrap();

    let codec = BackendRegistry::new().codec::<f32>(BackendId::Sz3);
    let mut app = ArchiveAppender::open(&path).unwrap().with_chunk_side(8);
    app.add_snapshot("rho", 1, &vel, &*codec, ErrorBound::Abs(1e-3))
        .unwrap();
    app.write_to(&path).unwrap();

    let reader = ArchiveReader::open(&path).unwrap();
    let t1 = snapshot_name("rho", 1);
    let full0: NdArray<f32> = reader.read_full("rho").unwrap();
    let full1: NdArray<f32> = reader.read_full(&t1).unwrap();
    assert!(rho.max_abs_diff(&full0) <= 1e-3 * (1.0 + 1e-9));
    assert!(vel.max_abs_diff(&full1) <= 1e-3 * (1.0 + 1e-9));

    let region = Region::new(&[2, 1, 1], &[7, 6, 5]);
    let want0 = full0.extract_region(&region);
    let want1 = full1.extract_region(&region);
    std::thread::scope(|s| {
        let reader = &reader;
        let (want0, want1, t1) = (&want0, &want1, &t1);
        for _ in 0..4 {
            s.spawn(move || {
                let mut scratch = Scratch::<f32>::new();
                for _ in 0..5 {
                    let a = reader
                        .read_region_with::<f32>("rho", &region, &mut scratch)
                        .unwrap();
                    assert_eq!(a.as_slice(), want0.as_slice());
                    let b = reader
                        .read_region_with::<f32>(t1, &region, &mut scratch)
                        .unwrap();
                    assert_eq!(b.as_slice(), want1.as_slice());
                }
            });
        }
    });
    std::fs::remove_file(&path).ok();
}
