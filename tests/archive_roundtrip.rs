//! Integration tests for the QZAR archive container: per-backend
//! round-trips, region queries vs. full decompression, random-access
//! I/O accounting, and corruption rejection.

use qoz_suite::archive::{ArchiveError, ArchiveReader, ArchiveWriter};
use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::tensor::{NdArray, Region, Shape};

fn backends() -> Vec<(&'static str, Box<dyn Compressor<f32> + Sync>)> {
    vec![
        ("SZ2.1", Box::new(qoz_suite::sz2::Sz2::default())),
        ("SZ3", Box::new(qoz_suite::sz3::Sz3::default())),
        ("ZFP", Box::new(qoz_suite::zfp::Zfp)),
        ("MGARD+", Box::new(qoz_suite::mgard::Mgard)),
        ("QoZ", Box::new(qoz_suite::qoz::Qoz::default())),
    ]
}

fn field(shape: Shape) -> NdArray<f32> {
    NdArray::from_fn(shape, |i| {
        (i[0] as f32 * 0.21).sin() * (i[1] as f32 * 0.13).cos() + (i[2] as f32 * 0.08).sin() * 0.5
    })
}

/// Round-trip through the container for every backend: the archived
/// variable honors the error bound, and region queries are bitwise
/// equal to slicing a full decompress.
#[test]
fn per_backend_roundtrip_and_region_equality() {
    let data = field(Shape::d3(40, 36, 28));
    let bound = ErrorBound::Abs(1e-3);
    let regions = [
        Region::new(&[0, 0, 0], &[1, 1, 1]),
        Region::new(&[15, 15, 15], &[2, 2, 2]), // chunk-interior
        Region::new(&[10, 12, 6], &[21, 9, 17]), // straddles chunk boundaries
        Region::new(&[39, 35, 27], &[1, 1, 1]), // far corner (ragged chunks)
        Region::new(&[0, 0, 0], &[40, 36, 28]), // everything
    ];
    for (name, c) in backends() {
        let mut w = ArchiveWriter::new().with_chunk_side(16);
        w.add_variable("v", &data, c.as_ref(), bound).unwrap();
        let bytes = w.finish();

        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let full: NdArray<f32> = r.read_full("v").unwrap();
        assert!(
            data.max_abs_diff(&full) <= 1e-3 * (1.0 + 1e-9),
            "{name}: bound violated through the archive"
        );
        for region in &regions {
            let slab: NdArray<f32> = r.read_region("v", region).unwrap();
            assert_eq!(
                slab.as_slice(),
                full.extract_region(region).as_slice(),
                "{name}: region {region:?} != full-decompress slice"
            );
        }
    }
}

/// Multiple variables of mixed scalar types and backends coexist.
#[test]
fn multi_variable_mixed_types() {
    let a = field(Shape::d3(20, 20, 12));
    let b = NdArray::<f64>::from_fn(Shape::d2(30, 26), |i| {
        (i[0] as f64 * 0.3).sin() + i[1] as f64 * 0.01
    });
    let mut w = ArchiveWriter::new().with_chunk_side(8);
    w.add_variable(
        "temp",
        &a,
        &qoz_suite::sz3::Sz3::default(),
        ErrorBound::Abs(1e-3),
    )
    .unwrap();
    w.add_variable(
        "pres",
        &b,
        &qoz_suite::qoz::Qoz::default(),
        ErrorBound::Rel(1e-4),
    )
    .unwrap();
    let bytes = w.finish();

    let r = ArchiveReader::from_bytes(&bytes).unwrap();
    assert_eq!(r.toc().vars.len(), 2);
    let ra: NdArray<f32> = r.read_full("temp").unwrap();
    assert!(a.max_abs_diff(&ra) <= 1e-3 * (1.0 + 1e-9));
    let abs_b = ErrorBound::Rel(1e-4).absolute(&b);
    let rb: NdArray<f64> = r.read_full("pres").unwrap();
    assert!(b.max_abs_diff(&rb) <= abs_b * (1.0 + 1e-9));
    // Type confusion is an error, not garbage.
    assert!(matches!(
        r.read_full::<f64>("temp"),
        Err(ArchiveError::TypeMismatch { .. })
    ));
}

/// The acceptance criterion of the archive subsystem: a ~1% region of a
/// 256^3 field must be served by decompressing only the intersecting
/// chunks — under 5% of the archive's bytes are read (TOC included).
#[test]
fn one_percent_region_of_256cubed_reads_under_5_percent() {
    let n = 256usize;
    let data = NdArray::from_fn(Shape::d3(n, n, n), |i| {
        (i[0] as f32 * 0.045).sin() + (i[1] as f32 * 0.03).cos() * (i[2] as f32 * 0.02).sin()
    });
    let mut w = ArchiveWriter::new().with_chunk_side(32);
    w.add_variable(
        "v",
        &data,
        &qoz_suite::sz3::Sz3::default(),
        ErrorBound::Abs(1e-3),
    )
    .unwrap();
    let bytes = w.finish();

    // 55^3 = 166,375 points ~= 1.0% of 256^3; deliberately unaligned so
    // it straddles chunk boundaries in every dimension (8 chunks).
    let region = Region::new(&[37, 70, 101], &[55, 55, 55]);
    assert!((region.len() as f64 / data.len() as f64 - 0.01).abs() < 0.002);

    let r = ArchiveReader::from_bytes(&bytes).unwrap();
    let slab: NdArray<f32> = r.read_region("v", &region).unwrap();
    let read = r.bytes_read();
    let total = r.archive_len();
    assert!(
        (read as f64) < total as f64 * 0.05,
        "1% region read {read} of {total} bytes ({:.2}%)",
        read as f64 / total as f64 * 100.0
    );

    // And the slab is still exactly what a full decompress would give.
    let r2 = ArchiveReader::from_bytes(&bytes).unwrap();
    let full: NdArray<f32> = r2.read_full("v").unwrap();
    assert_eq!(slab.as_slice(), full.extract_region(&region).as_slice());
    // Bound still holds end to end.
    assert!(data.extract_region(&region).max_abs_diff(&slab) <= 1e-3 * (1.0 + 1e-9));
}

/// Truncations at every boundary must error, never panic.
#[test]
fn truncated_archive_rejected() {
    let data = field(Shape::d3(12, 12, 12));
    let mut w = ArchiveWriter::new().with_chunk_side(8);
    w.add_variable(
        "v",
        &data,
        &qoz_suite::sz3::Sz3::default(),
        ErrorBound::Abs(1e-3),
    )
    .unwrap();
    let bytes = w.finish();
    for cut in 0..bytes.len() {
        let truncated = &bytes[..cut];
        let outcome = match ArchiveReader::from_bytes(truncated) {
            Err(_) => Err(()),
            Ok(r) => r.read_full::<f32>("v").map(|_| ()).map_err(|_| ()),
        };
        assert!(outcome.is_err(), "truncation at {cut} accepted");
    }
}

/// A flipped bit anywhere in the payload is caught by verify(), and by
/// any read that touches the damaged chunk.
#[test]
fn payload_bitflips_detected_by_verify() {
    let data = field(Shape::d3(12, 12, 12));
    let mut w = ArchiveWriter::new().with_chunk_side(8);
    w.add_variable(
        "v",
        &data,
        &qoz_suite::sz3::Sz3::default(),
        ErrorBound::Abs(1e-3),
    )
    .unwrap();
    let bytes = w.finish();
    let payload_start = {
        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        (bytes.len() as u64 - r.toc().vars[0].compressed_len()) as usize
    };
    let step = ((bytes.len() - payload_start) / 97).max(1);
    for pos in (payload_start..bytes.len()).step_by(step) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x10;
        let r = ArchiveReader::from_bytes(&bad).unwrap();
        let report = r.verify().unwrap();
        assert!(!report.is_clean(), "payload flip at {pos} not caught");
        assert!(
            report
                .faults
                .iter()
                .all(|f| f.kind == qoz_suite::archive::FaultKind::BitFlip),
            "payload flip at {pos} misclassified: {:?}",
            report.faults
        );
        assert!(r.read_full::<f32>("v").is_err());
    }
}

/// A plain compressed stream is not an archive, and an archive is not a
/// plain compressed stream.
#[test]
fn container_and_stream_formats_do_not_cross() {
    let data = field(Shape::d3(12, 12, 12));
    let c = qoz_suite::sz3::Sz3::default();
    let stream = c.compress(&data, ErrorBound::Abs(1e-3));
    assert_eq!(
        ArchiveReader::from_bytes(&stream).unwrap_err(),
        ArchiveError::BadMagic
    );
    let mut w = ArchiveWriter::new();
    w.add_variable("v", &data, &c, ErrorBound::Abs(1e-3))
        .unwrap();
    let qza = w.finish();
    assert!(Compressor::<f32>::decompress(&c, &qza).is_err());
}

/// File-backed archives behave identically to in-memory ones.
#[test]
fn file_backed_archive_roundtrip() {
    let path = std::env::temp_dir()
        .join(format!("qoz_archive_it_{}.qza", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let data = field(Shape::d3(16, 16, 16));
    let mut w = ArchiveWriter::new().with_chunk_side(8);
    w.add_variable(
        "v",
        &data,
        &qoz_suite::qoz::Qoz::default(),
        ErrorBound::Rel(1e-3),
    )
    .unwrap();
    let written = w.write_to(&path).unwrap();

    let r = ArchiveReader::open(&path).unwrap();
    assert_eq!(r.archive_len(), written);
    // Fits inside the first 8x8x8 chunk: only one chunk is fetched.
    let region = Region::new(&[1, 1, 1], &[6, 6, 6]);
    let slab: NdArray<f32> = r.read_region("v", &region).unwrap();
    assert_eq!(slab.shape().dims(), &[6, 6, 6]);
    assert!(r.bytes_read() < written);
    let report = r.verify().unwrap();
    assert_eq!(report.chunks, 8);
    std::fs::remove_file(&path).ok();
}
