//! End-to-end contract for temporal residual chains.
//!
//! The temporal coder's promise is pointwise and per-snapshot: because
//! each residual is formed against the *previous reconstruction* (never
//! the previous raw input) and quantized to the bound resolved against
//! its own snapshot, decoding a chain of any length reproduces every
//! snapshot within that snapshot's bound — errors do not accumulate.
//! These tests pin that promise across long chains, both scalar widths,
//! and chains where the estimator falls back to keyframes mid-stream.

use qoz_suite::api::{Session, TemporalMode};
use qoz_suite::codec::ErrorBound;
use qoz_suite::datagen;
use qoz_suite::tensor::{NdArray, Shape};

const SNAPSHOTS: usize = 10;
const EPS: f64 = 1e-3;

/// Consecutive same-shape 3D snapshots of one slowly evolving field.
fn series_f32(snapshots: usize, seed: u64) -> Vec<NdArray<f32>> {
    let base = Shape::d3(20, 24, 24);
    let shape4 = Shape::new(&[snapshots, 20, 24, 24]);
    let field = datagen::time_series_like(shape4, seed);
    let step = base.len();
    (0..snapshots)
        .map(|t| NdArray::from_vec(base, field.as_slice()[t * step..(t + 1) * step].to_vec()))
        .collect()
}

fn widen(s: &NdArray<f32>) -> NdArray<f64> {
    NdArray::from_vec(s.shape(), s.as_slice().iter().map(|&v| v as f64).collect())
}

/// Per-snapshot bound plus a couple of ULPs for the chain accumulate.
fn slack(abs: f64, ulp: f64) -> f64 {
    abs * (1.0 + 1e-9) + 4.0 * ulp
}

#[test]
fn long_chain_decodes_every_snapshot_within_bound_f32() {
    let snaps = series_f32(SNAPSHOTS, 0xA11CE);
    let session = Session::builder()
        .bound(ErrorBound::Rel(EPS))
        .build()
        .unwrap();

    let mut enc = session.pipeline::<f32>();
    let frames: Vec<Vec<u8>> = snaps
        .iter()
        .map(|s| enc.compress_next(s).unwrap().1.blob)
        .collect();
    let stats = enc.stats();
    assert!(stats.chain_keyframes >= 1, "a chain starts at a keyframe");
    assert!(
        stats.chain_deltas >= SNAPSHOTS as u64 / 2,
        "a slowly evolving series should mostly delta-code, got {stats:?}"
    );

    let mut dec = session.pipeline::<f32>();
    for (t, (s, frame)) in snaps.iter().zip(&frames).enumerate() {
        let recon = dec.decompress_next(frame).unwrap();
        let abs = ErrorBound::Rel(EPS).absolute(s);
        let err = s.max_abs_diff(recon);
        assert!(
            err <= slack(abs, f32::EPSILON as f64),
            "snapshot {t}: max error {err:e} exceeds bound {abs:e}"
        );
    }
}

#[test]
fn long_chain_decodes_every_snapshot_within_bound_f64() {
    let snaps: Vec<NdArray<f64>> = series_f32(SNAPSHOTS, 0xB0B).iter().map(widen).collect();
    let session = Session::builder()
        .bound(ErrorBound::Rel(EPS))
        .build()
        .unwrap();

    let mut enc = session.pipeline::<f64>();
    let frames: Vec<Vec<u8>> = snaps
        .iter()
        .map(|s| enc.compress_next(s).unwrap().1.blob)
        .collect();
    assert!(enc.stats().chain_deltas >= 1, "f64 chains delta-code too");

    let mut dec = session.pipeline::<f64>();
    for (t, (s, frame)) in snaps.iter().zip(&frames).enumerate() {
        let recon = dec.decompress_next(frame).unwrap();
        let abs = ErrorBound::Rel(EPS).absolute(s);
        let err = s.max_abs_diff(recon);
        assert!(
            err <= slack(abs, f64::EPSILON),
            "snapshot {t}: max error {err:e} exceeds bound {abs:e}"
        );
    }
}

#[test]
fn regime_change_falls_back_to_keyframe_and_chain_still_holds() {
    // Eight snapshots: a smooth series that flips sign halfway through.
    // The flipped snapshot's residual is ~2x the data itself, so the
    // estimator must refuse to delta-code it (a fallback keyframe), and
    // the bound must hold on every snapshot either side of the break.
    let mut snaps = series_f32(8, 0xF1A5);
    for s in snaps.iter_mut().skip(4) {
        let flipped: Vec<f32> = s.as_slice().iter().map(|v| -v).collect();
        *s = NdArray::from_vec(s.shape(), flipped);
    }
    let session = Session::builder()
        .bound(ErrorBound::Rel(EPS))
        .build()
        .unwrap();

    let mut enc = session.pipeline::<f32>();
    let mut frames = Vec::new();
    let mut outcomes = Vec::new();
    for s in &snaps {
        let (outcome, out) = enc.compress_next(s).unwrap();
        outcomes.push(outcome);
        frames.push(out.blob);
    }
    assert!(
        enc.stats().chain_fallbacks >= 1,
        "the sign flip must trigger an estimator fallback, got {outcomes:?}"
    );
    assert_eq!(
        outcomes[4].mode(),
        TemporalMode::Keyframe,
        "the regime-change snapshot must restart the chain"
    );

    let mut dec = session.pipeline::<f32>();
    for (t, (s, frame)) in snaps.iter().zip(&frames).enumerate() {
        let recon = dec.decompress_next(frame).unwrap();
        let abs = ErrorBound::Rel(EPS).absolute(s);
        let err = s.max_abs_diff(recon);
        assert!(
            err <= slack(abs, f32::EPSILON as f64),
            "snapshot {t}: max error {err:e} exceeds bound {abs:e}"
        );
    }
}

#[test]
fn advecting_series_delta_codes_and_beats_independent() {
    // The advecting workload moves structure through the volume without
    // decaying it; the temporal win here is from motion coherence.
    let base = Shape::d3(16, 24, 24);
    let shape4 = Shape::new(&[8, 16, 24, 24]);
    let field = datagen::time_series_advect(shape4, 7);
    let step = base.len();
    let snaps: Vec<NdArray<f32>> = (0..8)
        .map(|t| NdArray::from_vec(base, field.as_slice()[t * step..(t + 1) * step].to_vec()))
        .collect();
    let session = Session::builder()
        .bound(ErrorBound::Rel(EPS))
        .build()
        .unwrap();

    let mut ind = session.pipeline::<f32>();
    let ind_bytes: usize = snaps
        .iter()
        .map(|s| ind.compress(s).unwrap().blob.len())
        .sum();

    let mut enc = session.pipeline::<f32>();
    let chain_bytes: usize = snaps
        .iter()
        .map(|s| enc.compress_next(s).unwrap().1.blob.len())
        .sum();
    assert!(enc.stats().chain_deltas >= 4, "motion should delta-code");
    assert!(
        chain_bytes < ind_bytes,
        "temporal coding should beat independent on an advecting series \
         ({chain_bytes} vs {ind_bytes} bytes)"
    );
}
