//! Integration tests for the `qoz_api` facade: every backend × every
//! `Target` variant, plus streaming/buffered equivalence and f64
//! coverage through the registry.
//!
//! Tolerances asserted here are the documented ones (see the `qoz_api`
//! crate docs): bounds are hard; PSNR/SSIM targets are met or exceeded
//! when reachable; ratio targets land within ±50% worst case.

use qoz_suite::api::{BackendId, BackendRegistry, Session};
use qoz_suite::codec::ErrorBound;
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::metrics;
use qoz_suite::tensor::NdArray;

fn field() -> NdArray<f32> {
    Dataset::CesmAtm.generate(SizeClass::Tiny, 0)
}

#[test]
fn every_backend_bound_target_roundtrips() {
    let data = field();
    let bound = ErrorBound::Rel(1e-3);
    let abs = bound.absolute(&data);
    for id in BackendRegistry::ALL {
        let session = Session::builder().backend(id).bound(bound).build().unwrap();
        let out = session.compress(&data).unwrap();
        let recon: NdArray<f32> = session.decompress(&out.blob).unwrap();
        assert_eq!(recon.shape(), data.shape(), "{id:?}");
        assert!(
            data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9),
            "{id:?} violated the bound"
        );
        assert_eq!(out.stats.compressed_bytes, out.blob.len() as u64);
    }
}

#[test]
fn every_backend_psnr_target_achieved() {
    let data = field();
    for id in BackendRegistry::ALL {
        let session = Session::builder().backend(id).psnr(50.0).build().unwrap();
        let out = session.compress(&data).unwrap();
        let recon: NdArray<f32> = session.decompress(&out.blob).unwrap();
        let measured = metrics::psnr(&data, &recon);
        let achieved = out.achieved.expect("quality sessions report achieved");
        assert!(achieved >= 50.0, "{id:?}: achieved {achieved:.2} dB");
        // The reported value is the real full-reconstruction PSNR.
        assert!(
            (measured - achieved).abs() < 1e-6,
            "{id:?}: reported {achieved:.3} but measured {measured:.3}"
        );
        // Bisection should not wildly overshoot a reachable target.
        assert!(achieved <= 50.0 + 30.0, "{id:?}: overshoot {achieved:.2}");
        assert!(out.rel_bound.unwrap() > 0.0);
    }
}

#[test]
fn every_backend_ssim_target_achieved() {
    let data = field();
    for id in BackendRegistry::ALL {
        let session = Session::builder().backend(id).ssim(0.9).build().unwrap();
        let out = session.compress(&data).unwrap();
        let recon: NdArray<f32> = session.decompress(&out.blob).unwrap();
        let achieved = out.achieved.unwrap();
        assert!(achieved >= 0.9, "{id:?}: achieved SSIM {achieved:.4}");
        assert!(
            (metrics::ssim(&data, &recon) - achieved).abs() < 1e-6,
            "{id:?}: reported SSIM diverges from measured"
        );
    }
}

#[test]
fn every_backend_ratio_target_within_tolerance() {
    let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
    for id in BackendRegistry::ALL {
        let session = Session::builder().backend(id).ratio(20.0).build().unwrap();
        let out = session.compress(&data).unwrap();
        let achieved = out.achieved.unwrap();
        let actual = out.stats.ratio();
        assert!(
            (actual - achieved).abs() < 1e-9,
            "{id:?}: reported CR {achieved:.2} vs actual {actual:.2}"
        );
        // Documented worst-case tolerance: within ±50% of the request.
        assert!(
            achieved > 10.0 && achieved < 30.0,
            "{id:?}: CR {achieved:.2} too far from target 20"
        );
        // The stream stays decodable at the bound the search chose.
        let recon: NdArray<f32> = session.decompress(&out.blob).unwrap();
        let abs = out.rel_bound.unwrap() * data.value_range();
        assert!(data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9), "{id:?}");
    }
}

#[test]
fn streaming_and_buffered_paths_are_byte_identical() {
    let data = field();
    for id in BackendRegistry::ALL {
        let session = Session::builder()
            .backend(id)
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let out = session.compress(&data).unwrap();
        let mut sink = Vec::new();
        let stats = session.compress_into(&data, &mut sink).unwrap();
        assert_eq!(sink, out.blob, "{id:?}: compress_into diverged");
        assert_eq!(stats, out.stats, "{id:?}: stats diverged");

        let direct: NdArray<f32> = session.decompress(&out.blob).unwrap();
        let mut cursor = std::io::Cursor::new(&sink);
        let streamed: NdArray<f32> = session.decompress_from(&mut cursor).unwrap();
        assert_eq!(direct.as_slice(), streamed.as_slice(), "{id:?}");
    }
    // A quality-target session streams the same bytes it would buffer.
    let session = Session::builder().psnr(50.0).build().unwrap();
    let out = session.compress(&data).unwrap();
    let mut sink = Vec::new();
    session.compress_into(&data, &mut sink).unwrap();
    assert_eq!(sink, out.blob, "quality-target compress_into diverged");
}

#[test]
fn every_backend_f64_roundtrips_through_api() {
    let f32_data = field();
    let data = NdArray::from_vec(
        f32_data.shape(),
        f32_data.as_slice().iter().map(|&v| v as f64).collect(),
    );
    let bound = ErrorBound::Rel(1e-3);
    let abs = bound.absolute(&data);
    for id in BackendRegistry::ALL {
        let session = Session::builder().backend(id).bound(bound).build().unwrap();
        let out = session.compress(&data).unwrap();
        let recon: NdArray<f64> = session.decompress(&out.blob).unwrap();
        assert!(
            data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9),
            "{id:?} f64 roundtrip violated the bound"
        );
        // The registry dispatches on the header alone, f64 included.
        let again: NdArray<f64> = BackendRegistry::new().decompress(&out.blob).unwrap();
        assert_eq!(again.as_slice(), recon.as_slice(), "{id:?}");
    }
}

#[test]
fn sessions_decode_streams_from_other_backends() {
    // Decompression dispatches on the stream header, so a session built
    // for one backend reads any workspace stream.
    let data = field();
    let sz3_out = Session::builder()
        .backend(BackendId::Sz3)
        .bound(ErrorBound::Rel(1e-3))
        .build()
        .unwrap()
        .compress(&data)
        .unwrap();
    let qoz_session = Session::builder()
        .backend(BackendId::Qoz)
        .bound(ErrorBound::Rel(1e-3))
        .build()
        .unwrap();
    let recon: NdArray<f32> = qoz_session.decompress(&sz3_out.blob).unwrap();
    assert_eq!(recon.shape(), data.shape());
}
