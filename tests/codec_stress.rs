//! Stress tests for the shared lossless substrate: large alphabets,
//! window-boundary matches, pathological distributions.

use qoz_suite::codec::{
    decode_bins, encode_bins, lossless_compress, lossless_decompress, ByteReader, ByteWriter,
    HuffmanDecoder, HuffmanEncoder,
};

#[test]
fn huffman_handles_large_alphabet() {
    // ~60k distinct symbols (the full default quantizer code space).
    let symbols: Vec<u32> = (0..60_000u32).flat_map(|s| [s, s]).collect();
    let enc = HuffmanEncoder::from_symbols(&symbols).unwrap();
    assert_eq!(enc.num_symbols(), 60_000);
    let mut w = ByteWriter::new();
    enc.encode(&symbols, &mut w);
    let buf = w.finish();
    let mut r = ByteReader::new(&buf);
    assert_eq!(HuffmanDecoder::decode(&mut r).unwrap(), symbols);
}

#[test]
fn huffman_extreme_skew_stays_within_max_code_len() {
    // Fibonacci-like frequencies drive naive Huffman depth ~n; the
    // flattening rebuild must cap it at MAX_CODE_LEN.
    let mut symbols = Vec::new();
    let mut f0: u64 = 1;
    let mut f1: u64 = 1;
    for s in 0..48u32 {
        let reps = f0.min(5000); // cap memory but keep the skew shape
        symbols.extend(std::iter::repeat_n(s, reps as usize));
        let f2 = f0.saturating_add(f1);
        f0 = f1;
        f1 = f2;
    }
    let enc = HuffmanEncoder::from_symbols(&symbols).unwrap();
    for s in 0..48u32 {
        assert!(enc.length_of(s).unwrap() <= qoz_suite::codec::huffman::MAX_CODE_LEN);
    }
    let mut w = ByteWriter::new();
    enc.encode(&symbols, &mut w);
    let buf = w.finish();
    let mut r = ByteReader::new(&buf);
    assert_eq!(HuffmanDecoder::decode(&mut r).unwrap(), symbols);
}

#[test]
fn lzss_match_across_window_boundary_distances() {
    // Repeats separated by close to the 64 KiB window: matches near the
    // maximum distance must round-trip.
    let motif: Vec<u8> = (0..64u8).collect();
    let mut data = motif.clone();
    data.extend(vec![0xEEu8; (1 << 16) - 100]);
    data.extend(&motif); // distance ~65436 from first copy
    let packed = lossless_compress(&data);
    assert_eq!(lossless_decompress(&packed).unwrap(), data);
}

#[test]
fn lzss_just_beyond_window_still_correct() {
    let motif: Vec<u8> = (0..64u8).map(|b| b.wrapping_mul(37)).collect();
    let mut data = motif.clone();
    data.extend(vec![0x11u8; (1 << 16) + 50]); // push motif out of window
    data.extend(&motif);
    let packed = lossless_compress(&data);
    assert_eq!(lossless_decompress(&packed).unwrap(), data);
}

#[test]
fn bins_with_all_identical_values_compress_hugely() {
    let bins = vec![32768u32; 1_000_000];
    let blob = encode_bins(&bins);
    assert!(blob.len() < 2_000, "constant bins -> {} bytes", blob.len());
    assert_eq!(decode_bins(&blob).unwrap().len(), 1_000_000);
}

#[test]
fn alternating_bins_roundtrip() {
    let bins: Vec<u32> = (0..100_000)
        .map(|i| if i % 2 == 0 { 32768 } else { 32769 })
        .collect();
    let blob = encode_bins(&bins);
    assert_eq!(decode_bins(&blob).unwrap(), bins);
    // 1 bit/symbol + LZSS on top: far below raw.
    assert!(blob.len() < 100_000 / 4);
}

#[test]
fn empty_and_single_byte_lossless() {
    for data in [vec![], vec![0x42u8]] {
        let packed = lossless_compress(&data);
        assert_eq!(lossless_decompress(&packed).unwrap(), data);
    }
}
