//! Cross-cutting behavioural guarantees not covered elsewhere:
//! determinism, degenerate inputs, and compression-quality orderings the
//! paper's narrative relies on.

use qoz_suite::codec::{Compressor, ErrorBound};
use qoz_suite::datagen::{Dataset, SizeClass};
use qoz_suite::tensor::{NdArray, Shape};

fn compressors() -> Vec<(&'static str, Box<dyn Compressor<f32>>)> {
    vec![
        ("SZ2.1", Box::new(qoz_suite::sz2::Sz2::default())),
        ("SZ3", Box::new(qoz_suite::sz3::Sz3::default())),
        ("ZFP", Box::new(qoz_suite::zfp::Zfp)),
        ("MGARD+", Box::new(qoz_suite::mgard::Mgard)),
        ("QoZ", Box::new(qoz_suite::qoz::Qoz::default())),
    ]
}

#[test]
fn compression_is_deterministic() {
    let data = Dataset::Nyx.generate(SizeClass::Tiny, 2);
    for (name, c) in compressors() {
        let a = c.compress(&data, ErrorBound::Rel(1e-3));
        let b = c.compress(&data, ErrorBound::Rel(1e-3));
        assert_eq!(a, b, "{name} is not deterministic");
    }
}

#[test]
fn decompression_is_idempotent() {
    let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
    for (name, c) in compressors() {
        let blob = c.compress(&data, ErrorBound::Rel(1e-3));
        let r1 = c.decompress(&blob).unwrap();
        let r2 = c.decompress(&blob).unwrap();
        assert_eq!(r1.as_slice(), r2.as_slice(), "{name}");
    }
}

#[test]
fn constant_arrays_compress_to_tiny_streams() {
    let data = NdArray::from_vec(Shape::d3(24, 24, 24), vec![7.25f32; 24 * 24 * 24]);
    let raw = data.len() * 4;
    for (name, c) in compressors() {
        let blob = c.compress(&data, ErrorBound::Abs(1e-4));
        let recon = c.decompress(&blob).unwrap();
        // Constant data is exactly predictable everywhere.
        assert!(
            data.max_abs_diff(&recon) <= 1e-4,
            "{name} bound on constant data"
        );
        // ZFP codes each block independently (exponent + DC header per
        // block), so its floor is higher than the prediction codecs'.
        let ceiling = if name == "ZFP" { raw / 10 } else { raw / 20 };
        assert!(
            blob.len() < ceiling,
            "{name}: constant data gave only {} bytes from {raw}",
            blob.len()
        );
    }
}

#[test]
fn monotone_rate_in_bound() {
    // Loosening the bound must never enlarge the stream (beyond tiny
    // header jitter) for any compressor.
    let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
    for (name, c) in compressors() {
        let sizes: Vec<usize> = [1e-4, 1e-3, 1e-2]
            .iter()
            .map(|&e| c.compress(&data, ErrorBound::Rel(e)).len())
            .collect();
        assert!(
            sizes[0] >= sizes[1] && sizes[1] >= sizes[2],
            "{name}: sizes not monotone: {sizes:?}"
        );
    }
}

#[test]
fn prediction_based_codecs_beat_transform_codec_on_smooth_data() {
    // The paper's core Table III ordering at matched bound.
    let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
    let bound = ErrorBound::Rel(1e-3);
    let zfp = qoz_suite::zfp::Zfp.compress(&data, bound).len();
    for (name, c) in compressors() {
        if name == "ZFP" {
            continue;
        }
        let sz = c.compress(&data, bound).len();
        assert!(
            sz < zfp,
            "{name} ({sz}) should beat ZFP ({zfp}) on smooth data"
        );
    }
}

#[test]
fn f64_streams_are_larger_than_f32_at_same_bound() {
    // Same field, widened: unpredictable values and anchors cost 8 bytes.
    let f32_data = Dataset::Hurricane.generate(SizeClass::Tiny, 0);
    let f64_data = NdArray::from_vec(
        f32_data.shape(),
        f32_data.as_slice().iter().map(|&v| v as f64).collect(),
    );
    let abs = 1e-3 * f32_data.value_range();
    let qoz = qoz_suite::qoz::Qoz::default();
    let b32 = Compressor::<f32>::compress(&qoz, &f32_data, ErrorBound::Abs(abs)).len();
    let b64 = Compressor::<f64>::compress(&qoz, &f64_data, ErrorBound::Abs(abs)).len();
    // Quantized payload is similar; only side streams grow, so allow a
    // modest factor while asserting direction.
    assert!(b64 >= b32, "f64 {b64} vs f32 {b32}");
    assert!((b64 as f64) < b32 as f64 * 3.0, "f64 blow-up too large");
}

#[test]
fn mixed_magnitude_fields_respect_bound() {
    // Fields spanning many decades (like NYX) stress block-exponent and
    // quantizer paths.
    let data = NdArray::from_fn(Shape::d2(48, 48), |i| {
        let t = (i[0] * 48 + i[1]) as f32 / 2304.0;
        (t * 30.0).exp() - 1.0 // 0 .. ~1e13
    });
    for eps in [1e-2, 1e-5] {
        let bound = ErrorBound::Rel(eps);
        let abs = bound.absolute(&data);
        for (name, c) in compressors() {
            let blob = c.compress(&data, bound);
            let recon = c.decompress(&blob).unwrap();
            assert!(
                data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9),
                "{name} eps {eps}"
            );
        }
    }
}

#[test]
fn single_row_and_column_shapes() {
    // Degenerate 2D/3D shapes exercise the dimension-skip logic in the
    // traversal and the block tilers.
    for dims in [
        vec![1usize, 64],
        vec![64, 1],
        vec![1, 1, 64],
        vec![64, 1, 1],
    ] {
        let shape = Shape::new(&dims);
        let data = NdArray::from_fn(shape, |i| (i.iter().sum::<usize>() as f32 * 0.21).sin());
        for (name, c) in compressors() {
            let blob = c.compress(&data, ErrorBound::Abs(1e-3));
            let recon = c.decompress(&blob).unwrap();
            assert!(
                data.max_abs_diff(&recon) <= 1e-3,
                "{name} failed on {dims:?}"
            );
        }
    }
}
