//! Residual delta coding across snapshot chains.
//!
//! Scientific simulations dump the same variable every timestep, and
//! consecutive snapshots are usually far closer to each other than to
//! zero. This crate extends the workspace's spatial compressors along
//! the time axis: instead of coding snapshot `x_t` independently, a
//! [`TemporalSession`] codes the **residual against the previous
//! reconstruction**,
//!
//! ```text
//! r_t = x_t - x̂_{t-1}
//! ```
//!
//! routes that residual field through the ordinary predictor →
//! quantizer → entropy engine, and reconstructs
//!
//! ```text
//! x̂_t = x̂_{t-1} + r̂_t .
//! ```
//!
//! # The composed-bound contract
//!
//! The residual is always formed against the prior **reconstruction**
//! `x̂_{t-1}`, never the prior raw data. That single choice is what keeps
//! the pointwise error bound exact across a chain of any length: the
//! inner codec guarantees `|r̂_t - r_t| <= e`, and
//!
//! ```text
//! |x̂_t - x_t| = |(x̂_{t-1} + r̂_t) - (x̂_{t-1} + r_t)| = |r̂_t - r_t| <= e ,
//! ```
//!
//! so error **never accumulates** — every snapshot in the chain honors
//! the same per-point bound an independent encode would, regardless of
//! how many deltas precede it. (Had the residual been formed against the
//! raw `x_{t-1}`, each step would add up to `e` of drift.) Relative
//! bounds are resolved against each *snapshot* (`x_t`), not against the
//! residual field, whose value range would yield a much looser absolute
//! bound. The only slack on top of `e` is floating-point rounding of the
//! subtraction/addition themselves — a few ULPs, orders of magnitude
//! below any practical bound.
//!
//! # Keyframe policy
//!
//! Delta coding only pays off while the residual field is *cheaper to
//! code* than the snapshot itself. Before each snapshot the session runs
//! a cheap sampled estimate ([`TemporalSession::residual_beats_spatial`])
//! comparing the local variation of the residual against that of the raw
//! data; when the residual is the denser signal (first snapshot, shape
//! change, regime change, fast motion) the session falls back to an
//! independent **keyframe**. The decision is recorded per snapshot in
//! the stream header ([`TemporalMode`], format
//! [`qoz_codec::stream::VERSION_TEMPORAL`]) so decode is fully
//! self-describing — no out-of-band chain metadata.
//!
//! The session is engine-agnostic: encode/decode of the inner plain
//! streams is delegated to caller closures, so `qoz_api::Pipeline` can
//! route chain members through its plan-cached warm path and this crate
//! stays below the facade in the dependency order.

use qoz_codec::stream::{read_header, unwrap_temporal, wrap_temporal, ErrorBound};
use qoz_codec::{ByteReader, CodecError, Result};
use qoz_tensor::{NdArray, Scalar, Shape};

pub use qoz_codec::TemporalMode;

/// Target number of sampled probe pairs for the keyframe decision.
const PROBE_PAIRS: usize = 1024;

/// What [`TemporalSession::compress_next`] did for one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalOutcome {
    /// Independent coding was forced: chain start, or the snapshot's
    /// shape/scalar changed so no usable predecessor existed.
    Keyframe,
    /// The residual against the prior reconstruction was coded.
    Delta,
    /// A predecessor existed but the sampled estimate judged the
    /// residual denser than the spatial stream, so the snapshot was
    /// coded independently. Stored as a keyframe in the stream.
    Fallback,
}

impl TemporalOutcome {
    /// The mode recorded in the stream header (fallbacks *are*
    /// keyframes as far as any decoder is concerned).
    pub fn mode(self) -> TemporalMode {
        match self {
            TemporalOutcome::Delta => TemporalMode::Delta,
            _ => TemporalMode::Keyframe,
        }
    }

    /// Stable lowercase name (telemetry label / CLI tag).
    pub fn name(self) -> &'static str {
        match self {
            TemporalOutcome::Keyframe => "keyframe",
            TemporalOutcome::Delta => "delta",
            TemporalOutcome::Fallback => "fallback",
        }
    }
}

fn record_outcome(outcome: TemporalOutcome) {
    qoz_telemetry::global()
        .counter("qoz_temporal_outcomes_total", &[("mode", outcome.name())])
        .inc();
}

/// Stateful temporal coder for one snapshot chain.
///
/// Holds the reconstruction of the previous chain member (the encoder
/// maintains it by decoding its *own* output, so encoder and decoder
/// state are bit-identical) and a recycled residual arena; both buffers
/// are reused across snapshots, so the steady state allocates only what
/// the inner codec does.
///
/// One session per chain (per variable of one simulation). Feed
/// snapshots in order; [`TemporalSession::reset`] starts a new chain.
#[derive(Debug)]
pub struct TemporalSession<T: Scalar> {
    /// Reconstruction of the last chain member, `None` before the first
    /// snapshot (and after `reset`).
    prev: Option<NdArray<T>>,
    /// Recycled residual arena (encode side only).
    residual: NdArray<T>,
    /// Chain members coded so far (diagnostics only).
    coded: u64,
}

impl<T: Scalar> Default for TemporalSession<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> TemporalSession<T> {
    /// A fresh session: the next snapshot starts a chain with a keyframe.
    pub fn new() -> Self {
        TemporalSession {
            prev: None,
            residual: NdArray::zeros(Shape::d1(1)),
            coded: 0,
        }
    }

    /// Forget the chain: the next snapshot is coded as a keyframe.
    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// The reconstruction of the last chain member, if any.
    pub fn prev(&self) -> Option<&NdArray<T>> {
        self.prev.as_ref()
    }

    /// Chain members coded (encode) or decoded so far.
    pub fn coded(&self) -> u64 {
        self.coded
    }

    /// The sampled keyframe-vs-delta estimate: `true` when the residual
    /// field looks cheaper to code than the snapshot itself.
    ///
    /// Walks ~1K strided pairs of adjacent points and compares the mean
    /// local variation of the residual `x - prev` against that of `x`.
    /// Local variation is what the interpolation predictor leaves for
    /// the quantizer, so it is a cheap, allocation-free proxy for the
    /// entropy of the quantized stream. Cost is O(probes), independent
    /// of the field size.
    pub fn residual_beats_spatial(data: &NdArray<T>, prev: &NdArray<T>) -> bool {
        debug_assert_eq!(data.shape(), prev.shape());
        let x = data.as_slice();
        let p = prev.as_slice();
        if x.len() < 2 {
            // A single point has no variation either way; the residual
            // (usually near zero) is the safer stream.
            return true;
        }
        let stride = (x.len() / PROBE_PAIRS).max(1);
        let mut dr_sum = 0.0f64;
        let mut dx_sum = 0.0f64;
        let mut i = 1;
        while i < x.len() {
            let r_here = x[i].to_f64() - p[i].to_f64();
            let r_left = x[i - 1].to_f64() - p[i - 1].to_f64();
            dr_sum += (r_here - r_left).abs();
            dx_sum += (x[i].to_f64() - x[i - 1].to_f64()).abs();
            i += stride;
        }
        dr_sum <= dx_sum
    }

    /// Code one snapshot as the next chain member.
    ///
    /// Decides keyframe vs delta, hands the field to code (snapshot or
    /// residual) to `encode` together with the bound it must honor, and
    /// wraps the returned plain stream as a self-describing temporal
    /// frame. `decode` must invert `encode` (it is called once, on
    /// `encode`'s own output) — the session uses it to maintain the
    /// prior-*reconstruction* state on the encode side.
    ///
    /// Bound handling per the composed-error contract: keyframes are
    /// coded at the caller's bound unchanged (their inner stream is
    /// byte-identical to an independent encode of the snapshot); deltas
    /// are coded at `ErrorBound::Abs` of the bound resolved against the
    /// *snapshot*, never against the residual field.
    pub fn compress_next(
        &mut self,
        data: &NdArray<T>,
        bound: ErrorBound,
        encode: impl FnOnce(&NdArray<T>, ErrorBound) -> Vec<u8>,
        decode: impl FnOnce(&[u8]) -> Result<NdArray<T>>,
    ) -> Result<(TemporalOutcome, Vec<u8>)> {
        if !bound.is_valid() {
            return Err(CodecError::Corrupt("invalid error bound"));
        }
        let outcome = match &self.prev {
            Some(p) if p.shape() == data.shape() => {
                if Self::residual_beats_spatial(data, p) {
                    TemporalOutcome::Delta
                } else {
                    TemporalOutcome::Fallback
                }
            }
            _ => TemporalOutcome::Keyframe,
        };
        let frame = match outcome {
            TemporalOutcome::Keyframe | TemporalOutcome::Fallback => {
                let inner = encode(data, bound);
                self.prev = Some(decode(&inner)?);
                wrap_temporal(TemporalMode::Keyframe, &inner)?
            }
            TemporalOutcome::Delta => {
                let p = self.prev.as_ref().expect("delta implies a predecessor");
                // Resolve the bound against the snapshot, not the
                // residual: a relative bound on the residual's (small)
                // value range would silently loosen the contract.
                let abs = bound.absolute(data);
                form_residual(&mut self.residual, data, p)?;
                let inner = encode(&self.residual, ErrorBound::Abs(abs));
                let rhat = decode(&inner)?;
                let p = self.prev.as_mut().expect("delta implies a predecessor");
                accumulate_residual(p, &rhat)?;
                wrap_temporal(TemporalMode::Delta, &inner)?
            }
        };
        self.coded += 1;
        record_outcome(outcome);
        Ok((outcome, frame))
    }

    /// Decode the next chain member and return the reconstruction.
    ///
    /// Fully self-describing: the header says whether `blob` is a
    /// keyframe (decoded standalone, chain state replaced), a delta
    /// (requires the predecessor this session holds), or a plain
    /// pre-temporal stream (treated as a chain reset, so mixed archives
    /// decode seamlessly). `decode` is called once, on the inner plain
    /// stream.
    ///
    /// Errors with [`CodecError::Corrupt`] when a delta arrives without
    /// a usable predecessor (fresh session, after `reset`, or after a
    /// shape/scalar change) — decoding a chain must start at its
    /// keyframe.
    pub fn decompress_next(
        &mut self,
        blob: &[u8],
        decode: impl FnOnce(&[u8]) -> Result<NdArray<T>>,
    ) -> Result<&NdArray<T>> {
        let mut r = ByteReader::new(blob);
        let header = read_header(&mut r)?;
        match header.temporal {
            None => {
                self.prev = Some(decode(blob)?);
            }
            Some(TemporalMode::Keyframe) => {
                let (_, inner) = unwrap_temporal(blob)?;
                self.prev = Some(decode(inner)?);
            }
            Some(TemporalMode::Delta) => {
                let (header, inner) = unwrap_temporal(blob)?;
                let prev = self.prev.as_mut().ok_or(CodecError::Corrupt(
                    "delta chain member without a predecessor",
                ))?;
                if prev.shape() != header.shape {
                    return Err(CodecError::Corrupt(
                        "delta shape does not match chain predecessor",
                    ));
                }
                let rhat = decode(inner)?;
                accumulate_residual(prev, &rhat)?;
            }
        }
        self.coded += 1;
        Ok(self.prev.as_ref().expect("just set"))
    }
}

/// Form the residual `out[i] = data[i] - prev[i]` with the arithmetic
/// widened to `f64` (the exact subtraction [`accumulate_residual`]
/// inverts). `out` is recycled via [`NdArray::reset_zeros`].
///
/// Shared by [`TemporalSession`] and the archive's chained-snapshot
/// writer so both paths round identically.
pub fn form_residual<T: Scalar>(
    out: &mut NdArray<T>,
    data: &NdArray<T>,
    prev: &NdArray<T>,
) -> Result<()> {
    if data.shape() != prev.shape() {
        return Err(CodecError::Corrupt("residual shape mismatch"));
    }
    out.reset_zeros(data.shape());
    for ((r, &x), &p) in out
        .as_mut_slice()
        .iter_mut()
        .zip(data.as_slice())
        .zip(prev.as_slice())
    {
        *r = T::from_f64(x.to_f64() - p.to_f64());
    }
    Ok(())
}

/// `acc += add`, element-wise, with the arithmetic widened to `f64` so
/// encoder and decoder reconstructions round identically. This is the
/// one reconstruction step of the chain decode — exposed so the archive
/// reader can resolve delta snapshots with the same rounding behavior
/// as [`TemporalSession::decompress_next`].
pub fn accumulate_residual<T: Scalar>(acc: &mut NdArray<T>, add: &NdArray<T>) -> Result<()> {
    if acc.shape() != add.shape() {
        return Err(CodecError::Corrupt("residual shape mismatch"));
    }
    for (a, &d) in acc.as_mut_slice().iter_mut().zip(add.as_slice()) {
        *a = T::from_f64(a.to_f64() + d.to_f64());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_codec::Compressor;
    use qoz_sz3::Sz3;
    use qoz_tensor::Shape;

    fn series(snapshots: usize, n: usize, step: f64) -> Vec<NdArray<f64>> {
        (0..snapshots)
            .map(|t| {
                NdArray::from_fn(Shape::d2(n, n), |i| {
                    ((i[0] as f64 * 0.31) + t as f64 * step).sin()
                        * ((i[1] as f64 * 0.17) - t as f64 * step).cos()
                })
            })
            .collect()
    }

    fn roundtrip_chain(snaps: &[NdArray<f64>], bound: ErrorBound) -> Vec<TemporalOutcome> {
        let codec = Sz3::default();
        let mut enc = TemporalSession::<f64>::new();
        let mut outcomes = Vec::new();
        let mut frames = Vec::new();
        for s in snaps {
            let (outcome, frame) = enc
                .compress_next(
                    s,
                    bound,
                    |d, b| codec.compress(d, b),
                    |b| codec.decompress(b),
                )
                .unwrap();
            outcomes.push(outcome);
            frames.push(frame);
        }
        let mut dec = TemporalSession::<f64>::new();
        for (s, frame) in snaps.iter().zip(&frames) {
            let abs = bound.absolute(s);
            let recon = dec.decompress_next(frame, |b| codec.decompress(b)).unwrap();
            assert!(
                s.max_abs_diff(recon) <= abs * (1.0 + 1e-9),
                "chain member violated the composed bound"
            );
            // Encoder state tracked the decoder exactly.
        }
        assert_eq!(dec.coded(), snaps.len() as u64);
        outcomes
    }

    #[test]
    fn slow_series_goes_keyframe_then_deltas() {
        let snaps = series(6, 24, 0.02);
        let outcomes = roundtrip_chain(&snaps, ErrorBound::Abs(1e-4));
        assert_eq!(outcomes[0], TemporalOutcome::Keyframe);
        assert!(
            outcomes[1..].iter().all(|&o| o == TemporalOutcome::Delta),
            "slowly evolving snapshots should delta-code: {outcomes:?}"
        );
    }

    #[test]
    fn regime_change_falls_back_to_keyframe() {
        let mut snaps = series(3, 24, 0.02);
        // An unrelated field mid-chain: residual variation explodes, the
        // estimator must prefer independent coding.
        snaps.push(NdArray::from_fn(Shape::d2(24, 24), |i| {
            ((i[0] * 7919 + i[1] * 104729) % 97) as f64
        }));
        let codec = Sz3::default();
        let mut enc = TemporalSession::<f64>::new();
        let mut last = TemporalOutcome::Keyframe;
        for s in &snaps {
            let (o, _) = enc
                .compress_next(
                    s,
                    ErrorBound::Abs(1e-3),
                    |d, b| codec.compress(d, b),
                    |b| codec.decompress(b),
                )
                .unwrap();
            last = o;
        }
        assert_eq!(last, TemporalOutcome::Fallback);
    }

    #[test]
    fn shape_change_forces_keyframe_and_reset_restarts() {
        let codec = Sz3::default();
        let a = NdArray::from_fn(Shape::d2(16, 16), |i| (i[0] + i[1]) as f64 * 0.1);
        let b = NdArray::from_fn(Shape::d2(8, 8), |i| (i[0] + i[1]) as f64 * 0.1);
        let mut s = TemporalSession::<f64>::new();
        let bound = ErrorBound::Abs(1e-4);
        let enc = |d: &NdArray<f64>, b: ErrorBound| codec.compress(d, b);
        let dec = |b: &[u8]| codec.decompress(b);
        let (o, _) = s.compress_next(&a, bound, enc, dec).unwrap();
        assert_eq!(o, TemporalOutcome::Keyframe);
        let (o, _) = s.compress_next(&b, bound, enc, dec).unwrap();
        assert_eq!(
            o,
            TemporalOutcome::Keyframe,
            "shape change breaks the chain"
        );
        s.reset();
        let (o, _) = s.compress_next(&b, bound, enc, dec).unwrap();
        assert_eq!(
            o,
            TemporalOutcome::Keyframe,
            "reset forgets the predecessor"
        );
    }

    #[test]
    fn delta_without_predecessor_is_rejected() {
        let codec = Sz3::default();
        let snaps = series(2, 16, 0.01);
        let mut enc = TemporalSession::<f64>::new();
        let mut frames = Vec::new();
        for s in &snaps {
            let (_, f) = enc
                .compress_next(
                    s,
                    ErrorBound::Abs(1e-4),
                    |d, b| codec.compress(d, b),
                    |b| codec.decompress(b),
                )
                .unwrap();
            frames.push(f);
        }
        // Decoding the delta with no keyframe first must error cleanly.
        let mut dec = TemporalSession::<f64>::new();
        let err = dec
            .decompress_next(&frames[1], |b| codec.decompress(b))
            .unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)), "{err}");
    }

    #[test]
    fn plain_stream_resets_the_chain() {
        let codec = Sz3::default();
        let snaps = series(3, 16, 0.01);
        let bound = ErrorBound::Abs(1e-4);
        let mut enc = TemporalSession::<f64>::new();
        let frames: Vec<_> = snaps
            .iter()
            .map(|s| {
                enc.compress_next(
                    s,
                    bound,
                    |d, b| codec.compress(d, b),
                    |b| codec.decompress(b),
                )
                .unwrap()
                .1
            })
            .collect();
        // A pre-temporal plain stream interleaves fine: it resets state.
        let plain = codec.compress(&snaps[0], bound);
        let mut dec = TemporalSession::<f64>::new();
        dec.decompress_next(&frames[0], |b| codec.decompress(b))
            .unwrap();
        dec.decompress_next(&plain, |b| codec.decompress(b))
            .unwrap();
        // frames[1] is a delta against frames[0]'s reconstruction, which
        // equals the plain stream's reconstruction (same bytes inside),
        // so the chain continues correctly.
        let recon = dec
            .decompress_next(&frames[1], |b| codec.decompress(b))
            .unwrap();
        assert!(snaps[1].max_abs_diff(recon) <= 1e-4 * (1.0 + 1e-9));
    }

    #[test]
    fn relative_bound_resolves_against_snapshot_not_residual() {
        // Nearly identical snapshots: the residual's value range is ~1e3x
        // smaller than the data's. If the delta were coded at
        // Rel(eps)-of-residual, its absolute bound would shrink by that
        // factor; resolved against the snapshot it must match the
        // independent encode's bound.
        let codec = Sz3::default();
        let base = NdArray::from_fn(Shape::d2(32, 32), |i| {
            (i[0] as f64 * 0.2).sin() * 50.0 + (i[1] as f64 * 0.3).cos() * 50.0
        });
        let next = NdArray::from_vec(
            base.shape(),
            base.as_slice().iter().map(|v| v + 1e-2).collect(),
        );
        let bound = ErrorBound::Rel(1e-3);
        let mut s = TemporalSession::<f64>::new();
        s.compress_next(
            &base,
            bound,
            |d, b| codec.compress(d, b),
            |b| codec.decompress(b),
        )
        .unwrap();
        let (outcome, frame) = s
            .compress_next(
                &next,
                bound,
                |d, b| codec.compress(d, b),
                |b| codec.decompress(b),
            )
            .unwrap();
        assert_eq!(outcome, TemporalOutcome::Delta);
        let (header, _) = unwrap_temporal(&frame).unwrap();
        let expect = bound.absolute(&next);
        assert!(
            (header.abs_eb - expect).abs() <= expect * 1e-12,
            "delta bound {} must resolve against the snapshot ({expect})",
            header.abs_eb
        );
    }

    #[test]
    fn f32_chain_honors_bound() {
        let codec = Sz3::default();
        let snaps: Vec<NdArray<f32>> = (0..5)
            .map(|t| {
                NdArray::from_fn(Shape::d2(24, 24), |i| {
                    (((i[0] as f64 * 0.31) + t as f64 * 0.02).sin()
                        * ((i[1] as f64 * 0.17) - t as f64 * 0.02).cos()) as f32
                })
            })
            .collect();
        let bound = ErrorBound::Abs(1e-3);
        let mut enc = TemporalSession::<f32>::new();
        let mut dec = TemporalSession::<f32>::new();
        for s in &snaps {
            let (_, frame) = enc
                .compress_next(
                    s,
                    bound,
                    |d, b| codec.compress(d, b),
                    |b| codec.decompress(b),
                )
                .unwrap();
            let recon = dec
                .decompress_next(&frame, |b| codec.decompress(b))
                .unwrap();
            // f32 chains may add a few ULPs of rounding on top of the
            // codec bound (see the crate docs).
            let slack = 1e-3 * (1.0 + 1e-9) + 4.0 * f32::EPSILON as f64;
            assert!(s.max_abs_diff(recon) <= slack);
        }
    }

    #[test]
    fn invalid_bound_rejected() {
        let codec = Sz3::default();
        let d = NdArray::from_vec(Shape::d1(4), vec![1.0f64, 2.0, 3.0, 4.0]);
        let mut s = TemporalSession::<f64>::new();
        let err = s
            .compress_next(
                &d,
                ErrorBound::Abs(0.0),
                |d, b| codec.compress(d, b),
                |b| codec.decompress(b),
            )
            .unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)));
    }
}
