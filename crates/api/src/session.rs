//! Builder sessions: validated, reusable compression configurations.

use crate::registry::{BackendRegistry, Codec};
use crate::{ApiError, BackendId, Result};
use qoz_codec::{CompressStats, ErrorBound};
use qoz_core::{compress_codec_to_quality, compress_codec_to_ratio, QualityTarget};
use qoz_metrics::QualityMetric;
use qoz_tensor::{NdArray, Scalar};

/// What a compression session is asked to achieve — the quality-first
/// request at the center of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// Classic error-bounded compression: every point within `bound`.
    Bound(ErrorBound),
    /// Minimum PSNR in dB, found by bound search and verified on the
    /// full reconstruction.
    Psnr(f64),
    /// Minimum mean windowed SSIM in `(0, 1]`, likewise verified.
    Ssim(f64),
    /// Target compression ratio (raw bytes / compressed bytes), > 1.
    Ratio(f64),
}

impl Target {
    /// The tuning metric a target naturally implies when the caller does
    /// not pick one explicitly.
    fn implied_metric(self) -> QualityMetric {
        match self {
            Target::Bound(_) | Target::Ratio(_) => QualityMetric::CompressionRatio,
            Target::Psnr(_) => QualityMetric::Psnr,
            Target::Ssim(_) => QualityMetric::Ssim,
        }
    }

    /// Central validation: every session target is checked here, once,
    /// instead of ad hoc at each call site.
    fn validate(self) -> Result<()> {
        match self {
            Target::Bound(b) if !b.is_valid() => Err(ApiError::InvalidBound(b)),
            Target::Psnr(db) if !(db.is_finite() && db > 0.0) => Err(ApiError::InvalidTarget(
                "PSNR target must be finite and > 0 dB",
            )),
            Target::Ssim(s) if !(s.is_finite() && s > 0.0 && s <= 1.0) => {
                Err(ApiError::InvalidTarget("SSIM target must lie in (0, 1]"))
            }
            Target::Ratio(r) if !(r.is_finite() && r > 1.0) => Err(ApiError::InvalidTarget(
                "compression-ratio target must be finite and > 1",
            )),
            _ => Ok(()),
        }
    }
}

/// Builds a [`Session`]. Obtained from [`Session::builder`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    backend: Option<BackendId>,
    metric: Option<QualityMetric>,
    target: Option<Target>,
    drift_tolerance: Option<f64>,
}

impl SessionBuilder {
    /// Select the compression backend (default: QoZ).
    pub fn backend(mut self, id: BackendId) -> Self {
        self.backend = Some(id);
        self
    }

    /// Pick the QoZ tuning metric explicitly. When omitted, the metric
    /// is inferred from the target (`Psnr` target → PSNR-preferred
    /// tuning, `Ssim` → SSIM, everything else → compression ratio).
    pub fn metric(mut self, metric: QualityMetric) -> Self {
        self.metric = Some(metric);
        self
    }

    /// Set the session target.
    pub fn target(mut self, target: Target) -> Self {
        self.target = Some(target);
        self
    }

    /// Shorthand for `.target(Target::Bound(bound))`.
    pub fn bound(self, bound: ErrorBound) -> Self {
        self.target(Target::Bound(bound))
    }

    /// Shorthand for `.target(Target::Psnr(db))`.
    pub fn psnr(self, db: f64) -> Self {
        self.target(Target::Psnr(db))
    }

    /// Shorthand for `.target(Target::Ssim(s))`.
    pub fn ssim(self, s: f64) -> Self {
        self.target(Target::Ssim(s))
    }

    /// Shorthand for `.target(Target::Ratio(cr))`.
    pub fn ratio(self, cr: f64) -> Self {
        self.target(Target::Ratio(cr))
    }

    /// Drift tolerance of the session's [`Pipeline`](crate::Pipeline)
    /// plan cache: the relative departure of the sampled
    /// prediction-error estimate (or of the resolved absolute bound)
    /// beyond which a cached tuning plan is thrown away and the
    /// pipeline re-tunes. `0.0` reuses plans only for statistically
    /// indistinguishable snapshots; the default
    /// ([`qoz_core::pipeline::DEFAULT_DRIFT_TOLERANCE`]) tolerates the
    /// gentle evolution of consecutive simulation timesteps.
    pub fn drift_tolerance(mut self, tolerance: f64) -> Self {
        self.drift_tolerance = Some(tolerance);
        self
    }

    /// Validate the configuration and build the session.
    ///
    /// This is the single place bounds and targets are checked: NaN,
    /// non-finite and non-positive bounds are rejected with
    /// [`ApiError::InvalidBound`], out-of-range quality targets with
    /// [`ApiError::InvalidTarget`]. A session that builds will not panic
    /// later on bound arithmetic.
    pub fn build(self) -> Result<Session> {
        let target = self.target.ok_or(ApiError::InvalidTarget(
            "no target set: call .bound()/.psnr()/.ssim()/.ratio() before build()",
        ))?;
        target.validate()?;
        let drift_tolerance = self
            .drift_tolerance
            .unwrap_or(qoz_core::pipeline::DEFAULT_DRIFT_TOLERANCE);
        if !(drift_tolerance.is_finite() && drift_tolerance >= 0.0) {
            return Err(ApiError::InvalidTarget(
                "drift tolerance must be finite and >= 0",
            ));
        }
        let metric = self.metric.unwrap_or_else(|| target.implied_metric());
        Ok(Session {
            backend: self.backend.unwrap_or(BackendId::Qoz),
            target,
            registry: BackendRegistry::with_metric(metric),
            drift_tolerance,
        })
    }
}

/// The result of one [`Session::compress`] call.
#[derive(Debug, Clone)]
pub struct Compressed {
    /// The self-describing compressed stream.
    pub blob: Vec<u8>,
    /// Byte accounting for the run.
    pub stats: CompressStats,
    /// For quality/ratio targets: the relative error bound the search
    /// settled on. `None` for [`Target::Bound`] sessions.
    pub rel_bound: Option<f64>,
    /// For quality/ratio targets: the metric value actually achieved
    /// (PSNR dB, SSIM, or compression ratio). `None` for
    /// [`Target::Bound`] sessions.
    pub achieved: Option<f64>,
}

/// A validated, reusable compression configuration: one backend, one
/// [`Target`], any number of arrays.
///
/// Sessions are cheap (`Clone + Copy`-sized configuration, codecs are
/// constructed per call) and element-type generic: the same session
/// compresses `f32` and `f64` arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Session {
    backend: BackendId,
    target: Target,
    registry: BackendRegistry,
    drift_tolerance: f64,
}

impl Session {
    /// Start building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The drift tolerance a [`Pipeline`](crate::Pipeline) spawned from
    /// this session will use for its plan cache.
    pub fn drift_tolerance(&self) -> f64 {
        self.drift_tolerance
    }

    /// Spawn a stateful [`Pipeline`](crate::Pipeline) handle: the same
    /// session configuration plus a cached tuning plan and a reusable
    /// scratch arena, for serving repeated (time-series) compression
    /// fast. See the crate docs' time-series quick start.
    pub fn pipeline<T: Scalar>(&self) -> crate::Pipeline<T> {
        crate::Pipeline::new(*self)
    }

    /// The backend this session compresses with.
    pub fn backend(&self) -> BackendId {
        self.backend
    }

    /// The target this session drives toward.
    pub fn target(&self) -> Target {
        self.target
    }

    /// The registry (and with it the QoZ tuning metric) in effect.
    pub fn registry(&self) -> BackendRegistry {
        self.registry
    }

    /// The session's backend as a standalone codec, for plumbing that
    /// wants a `Compressor` directly (`qoz_archive::ArchiveWriter`,
    /// `qoz_pario::compress_chunks`).
    pub fn codec<T: Scalar>(&self) -> Box<dyn Codec<T>> {
        self.registry.codec::<T>(self.backend)
    }

    /// Compress `data` toward the session target.
    ///
    /// For [`Target::Bound`] this is a single pass; quality and ratio
    /// targets run the `qoz_core::fixed_quality` search (QoZ gets the
    /// sampled fast path, other backends the generic full-pipeline
    /// bisection). See the crate docs for the per-target tolerances.
    pub fn compress<T: Scalar>(&self, data: &NdArray<T>) -> Result<Compressed> {
        let raw_bytes = (data.len() * T::BYTES) as u64;
        let wrap = |blob: Vec<u8>, rel_bound: Option<f64>, achieved: Option<f64>| Compressed {
            stats: CompressStats {
                raw_bytes,
                compressed_bytes: blob.len() as u64,
            },
            blob,
            rel_bound,
            achieved,
        };
        match self.target {
            Target::Bound(bound) => {
                let blob = self.codec::<T>().compress(data, bound);
                Ok(wrap(blob, None, None))
            }
            Target::Psnr(db) => self
                .quality(data, QualityTarget::Psnr(db))
                .map(|(blob, eb, got)| wrap(blob, Some(eb), Some(got))),
            Target::Ssim(s) => self
                .quality(data, QualityTarget::Ssim(s))
                .map(|(blob, eb, got)| wrap(blob, Some(eb), Some(got))),
            Target::Ratio(cr) => {
                let out = compress_codec_to_ratio(&*self.codec::<T>(), data, cr, 12);
                Ok(wrap(out.blob, Some(out.rel_bound), Some(out.achieved)))
            }
        }
    }

    fn quality<T: Scalar>(
        &self,
        data: &NdArray<T>,
        target: QualityTarget,
    ) -> Result<(Vec<u8>, f64, f64)> {
        if self.backend == BackendId::Qoz {
            // QoZ's sampling machinery estimates the quality-vs-bound
            // curve on sampled blocks before the full verified pass.
            let r = self.registry.qoz().compress_to_quality(data, target)?;
            Ok((r.blob, r.rel_bound, r.achieved))
        } else {
            let out = compress_codec_to_quality(&*self.codec::<T>(), data, target)?;
            Ok((out.blob, out.rel_bound, out.achieved))
        }
    }

    /// Compress `data` straight into a byte sink.
    ///
    /// [`Target::Bound`] sessions stream through the backend's
    /// [`compress_into`](qoz_codec::Compressor::compress_into); quality
    /// and ratio targets must search for the stream first and then write
    /// it out. Bytes are identical to [`Session::compress`] either way.
    pub fn compress_into<T: Scalar>(
        &self,
        data: &NdArray<T>,
        sink: &mut dyn std::io::Write,
    ) -> Result<CompressStats> {
        match self.target {
            Target::Bound(bound) => Ok(self.codec::<T>().compress_into(data, bound, sink)?),
            _ => {
                let out = self.compress(data)?;
                sink.write_all(&out.blob)
                    .map_err(qoz_codec::CodecError::from)?;
                Ok(out.stats)
            }
        }
    }

    /// Decompress any workspace stream (not only this session's
    /// backend — dispatch is header-driven through the registry).
    pub fn decompress<T: Scalar>(&self, blob: &[u8]) -> Result<NdArray<T>> {
        Ok(self.registry.decompress(blob)?)
    }

    /// Streaming counterpart of [`Session::decompress`].
    pub fn decompress_from<T: Scalar>(&self, src: &mut dyn std::io::Read) -> Result<NdArray<T>> {
        Ok(self.registry.decompress_from(src)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};

    #[test]
    fn builder_defaults_and_accessors() {
        let s = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        assert_eq!(s.backend(), BackendId::Qoz);
        assert_eq!(s.target(), Target::Bound(ErrorBound::Rel(1e-3)));
        assert_eq!(s.registry().metric(), QualityMetric::CompressionRatio);

        // Metric inference from the target.
        let s = Session::builder().psnr(60.0).build().unwrap();
        assert_eq!(s.registry().metric(), QualityMetric::Psnr);
        let s = Session::builder().ssim(0.9).build().unwrap();
        assert_eq!(s.registry().metric(), QualityMetric::Ssim);
        // An explicit metric wins.
        let s = Session::builder()
            .psnr(60.0)
            .metric(QualityMetric::AutoCorrelation)
            .build()
            .unwrap();
        assert_eq!(s.registry().metric(), QualityMetric::AutoCorrelation);
    }

    #[test]
    fn builder_rejects_invalid_bounds() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            for bound in [ErrorBound::Abs(bad), ErrorBound::Rel(bad)] {
                let err = Session::builder().bound(bound).build().unwrap_err();
                // NaN breaks PartialEq comparison of the payload; match
                // on the variant instead.
                assert!(
                    matches!(err, ApiError::InvalidBound(_)),
                    "accepted {bound:?}: {err:?}"
                );
                // The message names the bound kind and the rule.
                let msg = err.to_string();
                assert!(msg.contains("finite") && msg.contains("bound"), "{msg}");
            }
        }
    }

    #[test]
    fn builder_rejects_invalid_targets() {
        let cases = [
            Target::Psnr(f64::NAN),
            Target::Psnr(-3.0),
            Target::Psnr(f64::INFINITY),
            Target::Ssim(0.0),
            Target::Ssim(-0.5),
            Target::Ssim(1.5),
            Target::Ssim(f64::NAN),
            Target::Ratio(1.0),
            Target::Ratio(0.5),
            Target::Ratio(f64::INFINITY),
        ];
        for t in cases {
            assert!(
                matches!(
                    Session::builder().target(t).build(),
                    Err(ApiError::InvalidTarget(_))
                ),
                "accepted {t:?}"
            );
        }
        // No target at all is also a configuration error.
        assert!(matches!(
            Session::builder().backend(BackendId::Sz3).build(),
            Err(ApiError::InvalidTarget(_))
        ));
    }

    #[test]
    fn bound_session_roundtrips_and_reports_stats() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let s = Session::builder()
            .backend(BackendId::Sz3)
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let out = s.compress(&data).unwrap();
        assert_eq!(out.stats.raw_bytes, (data.len() * 4) as u64);
        assert_eq!(out.stats.compressed_bytes, out.blob.len() as u64);
        assert!(out.stats.ratio() > 1.0);
        assert_eq!(out.rel_bound, None);
        assert_eq!(out.achieved, None);
        let recon: NdArray<f32> = s.decompress(&out.blob).unwrap();
        let abs = ErrorBound::Rel(1e-3).absolute(&data);
        assert!(data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9));
    }
}
