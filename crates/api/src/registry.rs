//! The single backend registry: every `BackendId -> codec` dispatch in
//! the workspace goes through here.
//!
//! Before the facade existed this mapping was re-implemented three
//! times (`qoz_archive::dispatch::compressor_for`,
//! `qoz_bench::AnyCompressor`, the CLI's `make_codec`); all three were
//! replaced by [`BackendRegistry`] and have since been deleted.

use crate::{ApiError, BackendId};
use qoz_codec::stream::{read_header, unwrap_temporal, TemporalMode};
use qoz_codec::{ByteReader, CodecError, Compressor, Header, Scratch};
use qoz_metrics::QualityMetric;
use qoz_tensor::{NdArray, Scalar};

/// A thread-safe compression backend usable through the facade.
///
/// Blanket-implemented for everything that implements
/// [`Compressor`]`<T> + Send + Sync`, so any workspace backend — and
/// any downstream custom codec — qualifies automatically. The trait
/// exists so registry consumers can hold `Box<dyn Codec<T>>` and still
/// hand it to generic plumbing (`qoz_pario`, `qoz_archive`) that wants
/// a `Compressor<T> + Sync`. `Send` is part of the bargain so owning
/// types ([`crate::Pipeline`], `qoz_serve` workers) can migrate between
/// threads.
pub trait Codec<T: Scalar>: Compressor<T> + Send + Sync {}

impl<T: Scalar, C: Compressor<T> + Send + Sync + ?Sized> Codec<T> for C {}

/// Maps a [`BackendId`] to a ready-to-use codec, generic over the
/// element type.
///
/// The registry is `Copy` and configuration-light: the only knob is the
/// [`QualityMetric`] handed to QoZ's online tuner (the baselines are
/// metric-agnostic). Decompression is driven entirely by stream
/// headers, so a default registry decodes *any* workspace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendRegistry {
    metric: QualityMetric,
}

impl BackendRegistry {
    /// Every registered backend, in the paper's table order.
    pub const ALL: [BackendId; 5] = [
        BackendId::Sz2,
        BackendId::Sz3,
        BackendId::Zfp,
        BackendId::Mgard,
        BackendId::Qoz,
    ];

    /// Registry with the default (compression-ratio) tuning metric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry whose QoZ instances tune for `metric`.
    pub fn with_metric(metric: QualityMetric) -> Self {
        BackendRegistry { metric }
    }

    /// The QoZ tuning metric this registry configures.
    pub fn metric(&self) -> QualityMetric {
        self.metric
    }

    /// Construct the backend for `id` (configuration only affects
    /// compression; decompression is driven by the stream).
    pub fn codec<T: Scalar>(&self, id: BackendId) -> Box<dyn Codec<T>> {
        match id {
            BackendId::Qoz => Box::new(self.qoz()),
            BackendId::Sz3 => Box::new(qoz_sz3::Sz3::default()),
            BackendId::Sz2 => Box::new(qoz_sz2::Sz2::default()),
            BackendId::Zfp => Box::new(qoz_zfp::Zfp),
            BackendId::Mgard => Box::new(qoz_mgard::Mgard),
        }
    }

    /// The concrete QoZ instance this registry configures — the one
    /// place QoZ construction lives, shared by [`BackendRegistry::codec`]
    /// and the quality-target fast path (which needs the concrete type
    /// for `Qoz::compress_to_quality`).
    pub fn qoz(&self) -> qoz_core::Qoz {
        qoz_core::Qoz::for_metric(self.metric)
    }

    /// The paper's five-compressor comparison set, in table order.
    pub fn paper_set<T: Scalar>(&self) -> Vec<Box<dyn Codec<T>>> {
        Self::ALL.iter().map(|&id| self.codec::<T>(id)).collect()
    }

    /// Parse a user-facing backend name (as accepted by the CLI's
    /// `--codec` flag and the paper's tables).
    pub fn parse(name: &str) -> crate::Result<BackendId> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "qoz" => BackendId::Qoz,
            "sz3" => BackendId::Sz3,
            "sz2" | "sz2.1" => BackendId::Sz2,
            "zfp" => BackendId::Zfp,
            "mgard" | "mgard+" => BackendId::Mgard,
            other => return Err(ApiError::UnknownBackend(other.to_string())),
        })
    }

    /// Decompress any workspace stream, dispatching on the header's
    /// compressor id.
    ///
    /// Temporal *keyframes* decode here too — their payload is a
    /// complete independent stream, so the frame is stripped
    /// transparently. Temporal *deltas* are meaningless without their
    /// chain predecessor and are rejected with a clear error; decode
    /// them through [`crate::Pipeline::decompress_next`].
    pub fn decompress<T: Scalar>(&self, blob: &[u8]) -> qoz_codec::Result<NdArray<T>> {
        let (header, payload) = standalone_payload(blob)?;
        self.codec::<T>(header.compressor).decompress(payload)
    }

    /// [`BackendRegistry::decompress`] staging its stage buffers in a
    /// reusable arena; decoded values are identical.
    pub fn decompress_with_scratch<T: Scalar>(
        &self,
        blob: &[u8],
        scratch: &mut Scratch<T>,
    ) -> qoz_codec::Result<NdArray<T>> {
        let (header, payload) = standalone_payload(blob)?;
        self.codec::<T>(header.compressor)
            .decompress_with_scratch(payload, scratch)
    }

    /// [`BackendRegistry::decompress`] into a caller-provided array,
    /// reshaped in place — with a warm arena the zero-allocation decode
    /// path, whatever backend produced the stream.
    pub fn decompress_into<T: Scalar>(
        &self,
        blob: &[u8],
        scratch: &mut Scratch<T>,
        out: &mut NdArray<T>,
    ) -> qoz_codec::Result<()> {
        let (header, payload) = standalone_payload(blob)?;
        self.codec::<T>(header.compressor)
            .decompress_into(payload, scratch, out)
    }

    /// Streaming counterpart of [`BackendRegistry::decompress`]: read a
    /// stream to its end and decode it, whatever backend produced it.
    pub fn decompress_from<T: Scalar>(
        &self,
        src: &mut dyn std::io::Read,
    ) -> qoz_codec::Result<NdArray<T>> {
        let mut blob = Vec::new();
        src.read_to_end(&mut blob)?;
        self.decompress(&blob)
    }
}

/// Parse just the common stream header of a blob.
pub fn peek_header(blob: &[u8]) -> qoz_codec::Result<Header> {
    let mut r = ByteReader::new(blob);
    read_header(&mut r)
}

/// Resolve a blob to the plain stream a standalone decode can consume:
/// plain streams pass through, temporal keyframes are unwrapped to
/// their (complete, independent) payload, temporal deltas are rejected
/// — they need the chain decode in [`crate::Pipeline::decompress_next`].
pub(crate) fn standalone_payload(blob: &[u8]) -> qoz_codec::Result<(Header, &[u8])> {
    let header = peek_header(blob)?;
    match header.temporal {
        None => Ok((header, blob)),
        Some(TemporalMode::Keyframe) => {
            let (header, inner) = unwrap_temporal(blob)?;
            Ok((header, inner))
        }
        Some(TemporalMode::Delta) => Err(CodecError::Corrupt(
            "delta chain member requires chain decode (Pipeline::decompress_next)",
        )),
    }
}

/// Decompress any workspace stream with a default-configured registry.
pub fn decompress_stream<T: Scalar>(blob: &[u8]) -> qoz_codec::Result<NdArray<T>> {
    BackendRegistry::new().decompress(blob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_codec::ErrorBound;
    use qoz_tensor::Shape;

    fn field() -> NdArray<f32> {
        NdArray::from_fn(Shape::d2(16, 16), |i| {
            (i[0] as f32 * 0.3).sin() + i[1] as f32 * 0.05
        })
    }

    #[test]
    fn registry_dispatches_every_backend() {
        let data = field();
        let bound = ErrorBound::Abs(1e-3);
        let reg = BackendRegistry::new();
        for id in BackendRegistry::ALL {
            let codec = reg.codec::<f32>(id);
            assert_eq!(codec.id(), id);
            let blob = codec.compress(&data, bound);
            assert_eq!(peek_header(&blob).unwrap().compressor, id);
            // Header-driven dispatch decodes without being told the id.
            let recon: NdArray<f32> = reg.decompress(&blob).unwrap();
            assert_eq!(recon.shape(), data.shape());
            assert!(data.max_abs_diff(&recon) <= 1e-3 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn registry_is_scalar_generic() {
        let data = NdArray::from_fn(Shape::d2(16, 16), |i| (i[0] as f64 * 0.3).sin());
        let reg = BackendRegistry::new();
        for id in BackendRegistry::ALL {
            let blob = reg.codec::<f64>(id).compress(&data, ErrorBound::Abs(1e-4));
            let recon: NdArray<f64> = reg.decompress(&blob).unwrap();
            assert!(
                data.max_abs_diff(&recon) <= 1e-4 * (1.0 + 1e-9),
                "{id:?} f64 roundtrip violated the bound"
            );
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(decompress_stream::<f32>(b"junk").is_err());
        assert!(decompress_stream::<f32>(&[]).is_err());
    }

    #[test]
    fn names_parse_like_the_cli() {
        for (name, id) in [
            ("qoz", BackendId::Qoz),
            ("SZ3", BackendId::Sz3),
            ("sz2", BackendId::Sz2),
            ("sz2.1", BackendId::Sz2),
            ("zfp", BackendId::Zfp),
            ("mgard", BackendId::Mgard),
            ("MGARD+", BackendId::Mgard),
        ] {
            assert_eq!(BackendRegistry::parse(name).unwrap(), id);
        }
        assert!(matches!(
            BackendRegistry::parse("zstd"),
            Err(ApiError::UnknownBackend(_))
        ));
    }

    #[test]
    fn paper_set_matches_table_order() {
        let names: Vec<&str> = BackendRegistry::new()
            .paper_set::<f32>()
            .iter()
            .map(|c| c.name())
            .collect();
        assert_eq!(names, vec!["SZ2.1", "SZ3", "ZFP", "MGARD+", "QoZ"]);
    }
}
