//! Stateful compression pipelines: one session, many snapshots, warm.
//!
//! A [`Session`] is a validated *configuration*; a [`Pipeline`] is that
//! configuration plus the mutable state that makes repeated compression
//! fast:
//!
//! * a [`qoz_core::PlanCache`] — QoZ's tuned plan is replayed across
//!   same-shape/same-bound calls, guarded by a cheap sampled drift
//!   check (see `qoz_core::pipeline` for the exact semantics), and
//! * a [`qoz_codec::Scratch`] arena — every stage buffer (working copy,
//!   quantization bins, side streams, Huffman/LZSS staging) is recycled
//!   between calls instead of reallocated.
//!
//! Compressing *unchanged* data through a warm pipeline produces a
//! stream byte-identical to the cold path — caching never changes the
//! format, only the time it takes to emit it. Hard error bounds are
//! resolved against every snapshot individually, so reuse never loosens
//! the bound contract.

use crate::registry::Codec;
use crate::session::{Compressed, Session, Target};
use crate::{ApiError, BackendId, Result};
use qoz_codec::{CompressStats, Scratch};
use qoz_core::{PlanCache, PlanOutcome, Qoz};
use qoz_temporal::{TemporalOutcome, TemporalSession};
use qoz_tensor::{NdArray, Scalar};

/// Counters describing how a [`Pipeline`] has served its calls.
///
/// Only QoZ bound-target calls exercise the plan cache; other backends
/// and quality-target searches count as neither warm nor cold here.
/// The two `*_grow_events` fields make arena behaviour observable
/// through the same struct: each counts stage-buffer growth events
/// attributed to that direction of traffic, so a steady-state warm loop
/// can assert both stay flat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Full tunes on an empty cache.
    pub cold_tunes: u64,
    /// Cached plan replayed verbatim.
    pub warm_hits: u64,
    /// Cached tuning decisions replayed with rescaled level bounds.
    pub warm_rescales: u64,
    /// Cache key matched but drift forced a retune (includes key
    /// changes: new shape, scalar type or bound).
    pub retunes: u64,
    /// Stage buffers that had to grow during [`Pipeline::compress`]
    /// calls (capacity-profile deltas over the arena).
    pub compress_grow_events: u64,
    /// Stage buffers that had to grow during
    /// [`Pipeline::decompress_into`] calls (decode-side grow counters).
    pub decode_grow_events: u64,
    /// Chain members coded independently by [`Pipeline::compress_next`]
    /// because no usable predecessor existed (chain start, shape change).
    pub chain_keyframes: u64,
    /// Chain members delta-coded against the prior reconstruction.
    pub chain_deltas: u64,
    /// Chain members that were delta-eligible but coded independently
    /// because the sampled estimate judged the residual denser than the
    /// spatial stream.
    pub chain_fallbacks: u64,
}

impl PipelineStats {
    /// Calls that skipped the tuning stage.
    pub fn warm(&self) -> u64 {
        self.warm_hits + self.warm_rescales
    }

    /// Chain members coded via [`Pipeline::compress_next`] so far.
    pub fn chain_total(&self) -> u64 {
        self.chain_keyframes + self.chain_deltas + self.chain_fallbacks
    }

    fn record(&mut self, outcome: PlanOutcome) {
        let name = match outcome {
            PlanOutcome::ColdTuned => {
                self.cold_tunes += 1;
                "cold_tuned"
            }
            PlanOutcome::WarmHit => {
                self.warm_hits += 1;
                "warm_hit"
            }
            PlanOutcome::WarmRescaled => {
                self.warm_rescales += 1;
                "warm_rescaled"
            }
            PlanOutcome::Retuned => {
                self.retunes += 1;
                "retuned"
            }
        };
        qoz_telemetry::global()
            .counter("qoz_plan_outcomes_total", &[("outcome", name)])
            .inc();
    }
}

/// A stateful compression handle for repeated (time-series) workloads.
///
/// Obtained from [`Session::pipeline`]. Element-type specific (the
/// scratch arena holds a typed working buffer); spawn one pipeline per
/// variable you stream. Not `Sync` by design — one pipeline, one serving
/// loop. For parallel chunk workloads use `qoz_pario`, which keeps one
/// arena per worker internally.
pub struct Pipeline<T: Scalar> {
    session: Session,
    engine: Engine<T>,
    scratch: Scratch<T>,
    temporal: TemporalSession<T>,
    stats: PipelineStats,
    last: Option<PlanOutcome>,
}

/// The per-backend warm machinery: only QoZ has a plan cache; every
/// other backend holds its codec once and relies on scratch reuse.
/// Both variants are boxed-sized (the `Qoz` arm carries the tuning
/// config and cached plan, the other a trait object).
enum Engine<T: Scalar> {
    Qoz(Box<(Qoz, PlanCache)>),
    Other(Box<dyn Codec<T>>),
}

impl<T: Scalar> Pipeline<T> {
    /// Build a pipeline over `session` (prefer [`Session::pipeline`]).
    pub fn new(session: Session) -> Self {
        let engine = if session.backend() == BackendId::Qoz {
            Engine::Qoz(Box::new((
                session.registry().qoz(),
                PlanCache::new(session.drift_tolerance()),
            )))
        } else {
            Engine::Other(session.codec::<T>())
        };
        Pipeline {
            engine,
            scratch: Scratch::new(),
            temporal: TemporalSession::new(),
            stats: PipelineStats::default(),
            last: None,
            session,
        }
    }

    /// The underlying (immutable) session configuration.
    pub fn session(&self) -> Session {
        self.session
    }

    /// Warm/cold accounting so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// What the plan cache did on the most recent [`Pipeline::compress`]
    /// call (`None` when the call did not touch the cache: non-QoZ
    /// backend or quality/ratio target).
    pub fn last_outcome(&self) -> Option<PlanOutcome> {
        self.last
    }

    /// Drop the cached plan; the next call tunes from scratch. A no-op
    /// for backends without a plan cache.
    pub fn invalidate(&mut self) {
        if let Engine::Qoz(inner) = &mut self.engine {
            inner.1.invalidate();
        }
    }

    /// A portable copy of the current cached plan for persistence
    /// (`None` when the cache is cold or the backend has no plan cache).
    /// `qoz-serve` snapshots every pipeline at graceful shutdown and
    /// writes the collection next to the served archives.
    pub fn plan_snapshot(&self) -> Option<qoz_core::PlanSnapshot> {
        match &self.engine {
            Engine::Qoz(inner) => inner.1.snapshot(),
            Engine::Other(_) => None,
        }
    }

    /// Seed the plan cache from a persisted snapshot so the first
    /// matching [`Pipeline::compress`] call replays it warm instead of
    /// cold-tuning — the `qoz-serve` warm-restart path. A no-op for
    /// backends without a plan cache.
    pub fn prime_plan(&mut self, snap: qoz_core::PlanSnapshot) {
        if let Engine::Qoz(inner) = &mut self.engine {
            inner.1.seed(snap);
        }
    }

    /// Compress one snapshot toward the session target.
    ///
    /// [`Target::Bound`] sessions run the warm path: QoZ consults the
    /// plan cache and every backend stages its buffers in the pipeline's
    /// scratch arena. Quality and ratio targets are bound *searches* —
    /// they re-probe per snapshot by definition and are delegated to
    /// [`Session::compress`] unchanged.
    pub fn compress(&mut self, data: &NdArray<T>) -> Result<Compressed> {
        match self.session.target() {
            Target::Bound(bound) => {
                let raw_bytes = (data.len() * T::BYTES) as u64;
                let caps_before = self.scratch.capacities();
                let blob = match &mut self.engine {
                    Engine::Qoz(inner) => {
                        let (qoz, cache) = &mut **inner;
                        let (plan, outcome) = qoz.plan_cached(data, bound, cache);
                        self.stats.record(outcome);
                        self.last = Some(outcome);
                        qoz.compress_with_plan_scratched(data, &plan, &mut self.scratch)
                    }
                    Engine::Other(codec) => {
                        self.last = None;
                        codec.compress_with_scratch(data, bound, &mut self.scratch)
                    }
                };
                self.stats.compress_grow_events += self
                    .scratch
                    .capacities()
                    .iter()
                    .zip(caps_before.iter())
                    .filter(|(now, before)| now > before)
                    .count() as u64;
                Ok(Compressed {
                    stats: CompressStats {
                        raw_bytes,
                        compressed_bytes: blob.len() as u64,
                    },
                    blob,
                    rel_bound: None,
                    achieved: None,
                })
            }
            _ => {
                self.last = None;
                self.session.compress(data)
            }
        }
    }

    /// Compress one snapshot straight into a byte sink (bytes identical
    /// to [`Pipeline::compress`]).
    pub fn compress_into(
        &mut self,
        data: &NdArray<T>,
        sink: &mut dyn std::io::Write,
    ) -> Result<CompressStats> {
        let out = self.compress(data)?;
        sink.write_all(&out.blob)
            .map_err(qoz_codec::CodecError::from)?;
        Ok(out.stats)
    }

    /// Compress one snapshot as the next member of a temporal chain.
    ///
    /// The pipeline holds a [`TemporalSession`]: the first call (and any
    /// call after a shape change or [`Pipeline::reset_chain`]) emits an
    /// independent *keyframe*; subsequent calls code the residual
    /// against the previous snapshot's **reconstruction** whenever a
    /// cheap sampled estimate says the residual is the cheaper stream,
    /// falling back to a keyframe otherwise. Either way every member is
    /// a self-describing temporal frame and honors the session bound
    /// against its own raw input — the composed-bound contract (see
    /// `qoz_temporal`) means error never accumulates along the chain.
    ///
    /// Inner streams run the same warm path as [`Pipeline::compress`]
    /// (plan cache + scratch arena). Only [`Target::Bound`] sessions can
    /// chain: quality targets re-search the bound per snapshot, which
    /// has no stable composed-error story.
    pub fn compress_next(&mut self, data: &NdArray<T>) -> Result<(TemporalOutcome, Compressed)> {
        let Target::Bound(bound) = self.session.target() else {
            return Err(ApiError::InvalidTarget(
                "temporal chains require a bound target",
            ));
        };
        let raw_bytes = (data.len() * T::BYTES) as u64;
        let caps_before = self.scratch.capacities();
        let Pipeline {
            engine,
            scratch,
            temporal,
            stats,
            last,
            session,
        } = self;
        let registry = session.registry();
        let (outcome, blob) = temporal.compress_next(
            data,
            bound,
            |field, field_bound| match engine {
                Engine::Qoz(inner) => {
                    let (qoz, cache) = &mut **inner;
                    let (plan, outcome) = qoz.plan_cached(field, field_bound, cache);
                    stats.record(outcome);
                    *last = Some(outcome);
                    qoz.compress_with_plan_scratched(field, &plan, &mut *scratch)
                }
                Engine::Other(codec) => {
                    *last = None;
                    codec.compress_with_scratch(field, field_bound, &mut *scratch)
                }
            },
            |inner| registry.decompress(inner),
        )?;
        match outcome {
            TemporalOutcome::Keyframe => self.stats.chain_keyframes += 1,
            TemporalOutcome::Delta => self.stats.chain_deltas += 1,
            TemporalOutcome::Fallback => self.stats.chain_fallbacks += 1,
        }
        self.stats.compress_grow_events += self
            .scratch
            .capacities()
            .iter()
            .zip(caps_before.iter())
            .filter(|(now, before)| now > before)
            .count() as u64;
        Ok((
            outcome,
            Compressed {
                stats: CompressStats {
                    raw_bytes,
                    compressed_bytes: blob.len() as u64,
                },
                blob,
                rel_bound: None,
                achieved: None,
            },
        ))
    }

    /// Decode the next member of a temporal chain and return its
    /// reconstruction (borrowed from the pipeline's chain state; clone
    /// to keep it past the next call).
    ///
    /// Feed chain members in order starting at a keyframe. Plain
    /// (non-temporal) streams are accepted as chain resets, so archives
    /// mixing independent and chained snapshots decode seamlessly; a
    /// delta without a predecessor is a clean error, never a wrong
    /// answer. Stage buffers ride the pipeline's scratch arena.
    pub fn decompress_next(&mut self, blob: &[u8]) -> Result<&NdArray<T>> {
        let Pipeline {
            temporal,
            scratch,
            stats,
            session,
            ..
        } = self;
        let registry = session.registry();
        let grows_before = scratch.decode_grow_events();
        let recon = temporal.decompress_next(blob, |inner| {
            registry.decompress_with_scratch(inner, &mut *scratch)
        })?;
        stats.decode_grow_events += scratch.decode_grow_events() - grows_before;
        Ok(recon)
    }

    /// Forget the temporal chain: the next [`Pipeline::compress_next`]
    /// emits a keyframe and the next [`Pipeline::decompress_next`]
    /// requires one. Does not touch the plan cache or scratch arena.
    pub fn reset_chain(&mut self) {
        self.temporal.reset();
    }

    /// Decompress any workspace stream (header-driven dispatch, same as
    /// [`Session::decompress`]).
    pub fn decompress(&self, blob: &[u8]) -> Result<NdArray<T>> {
        self.session.decompress(blob)
    }

    /// Decompress any workspace stream into a caller-provided array,
    /// staging every stage buffer in the pipeline's scratch arena — the
    /// read-path mirror of [`Pipeline::compress`]. The destination is
    /// reshaped in place; with a warm arena and a previously-seen shape
    /// the whole decode performs zero stage-buffer allocations
    /// (`stats().decode_grow_events` stays flat).
    ///
    /// Dispatch is header-driven: a stream from the pipeline's own
    /// backend reuses the held engine, any other workspace stream is
    /// decoded through the registry with the same arena.
    pub fn decompress_into(&mut self, blob: &[u8], out: &mut NdArray<T>) -> Result<()> {
        let grows_before = self.scratch.decode_grow_events();
        // Temporal keyframes carry a complete independent stream; strip
        // the frame and decode as usual (deltas are rejected here — use
        // `decompress_next`).
        let (header, payload) = crate::registry::standalone_payload(blob)?;
        match &self.engine {
            Engine::Qoz(inner) if header.compressor == BackendId::Qoz => inner
                .0
                .decompress_into_scratched(payload, &mut self.scratch, out)?,
            Engine::Other(codec) if codec.id() == header.compressor => {
                codec.decompress_into(payload, &mut self.scratch, out)?
            }
            _ => self
                .session
                .registry()
                .decompress_into(payload, &mut self.scratch, out)?,
        }
        self.stats.decode_grow_events += self.scratch.decode_grow_events() - grows_before;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_codec::ErrorBound;
    use qoz_datagen::{Dataset, SizeClass};

    #[test]
    fn warm_bytes_equal_cold_bytes_on_unchanged_data() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let cold = session.compress(&data).unwrap();
        let mut pipe = session.pipeline::<f32>();
        let first = pipe.compress(&data).unwrap();
        let second = pipe.compress(&data).unwrap();
        assert_eq!(
            first.blob, cold.blob,
            "pipeline cold call must match session"
        );
        assert_eq!(second.blob, cold.blob, "warm call must be byte-identical");
        assert_eq!(pipe.stats().cold_tunes, 1);
        assert_eq!(pipe.stats().warm_hits, 1);
        assert_eq!(pipe.last_outcome(), Some(PlanOutcome::WarmHit));
        let recon = pipe.decompress(&second.blob).unwrap();
        let abs = ErrorBound::Rel(1e-3).absolute(&data);
        assert!(data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9));
    }

    #[test]
    fn non_qoz_backends_reuse_scratch_with_identical_bytes() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        for backend in [BackendId::Sz3, BackendId::Zfp] {
            let session = Session::builder()
                .backend(backend)
                .bound(ErrorBound::Rel(1e-3))
                .build()
                .unwrap();
            let cold = session.compress(&data).unwrap();
            let mut pipe = session.pipeline::<f32>();
            for _ in 0..2 {
                let out = pipe.compress(&data).unwrap();
                assert_eq!(out.blob, cold.blob, "{backend:?}");
            }
            assert_eq!(pipe.last_outcome(), None);
        }
    }

    #[test]
    fn differently_shaped_inputs_regrow_safely() {
        let big = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let small = big.extract_region(&qoz_tensor::Region::new(
            &[0; 3],
            &[
                big.shape().dim(0) / 2,
                big.shape().dim(1),
                big.shape().dim(2),
            ],
        ));
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let mut pipe = session.pipeline::<f32>();
        // big -> small -> big: every call must equal its cold stream.
        for data in [&big, &small, &big] {
            let warmed = pipe.compress(data).unwrap();
            let cold = session.compress(data).unwrap();
            assert_eq!(warmed.blob, cold.blob);
        }
        assert_eq!(pipe.stats().retunes, 2, "shape flips retune");
    }

    #[test]
    fn quality_targets_delegate_to_session() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let session = Session::builder().psnr(50.0).build().unwrap();
        let mut pipe = session.pipeline::<f32>();
        let out = pipe.compress(&data).unwrap();
        assert!(out.achieved.unwrap() >= 50.0);
        assert_eq!(pipe.last_outcome(), None);
        assert_eq!(pipe.stats(), PipelineStats::default());
    }

    #[test]
    fn primed_pipeline_serves_first_call_warm() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let mut cold_pipe = session.pipeline::<f32>();
        assert!(cold_pipe.plan_snapshot().is_none(), "cold cache: no snap");
        let cold = cold_pipe.compress(&data).unwrap();
        let snap = cold_pipe.plan_snapshot().expect("tuned cache snapshots");

        // A fresh pipeline primed with the snapshot skips the cold tune
        // and still emits byte-identical output.
        let mut primed = session.pipeline::<f32>();
        primed.prime_plan(snap);
        let out = primed.compress(&data).unwrap();
        assert_eq!(primed.last_outcome(), Some(PlanOutcome::WarmHit));
        assert_eq!(out.blob, cold.blob);
        assert_eq!(primed.stats().cold_tunes, 0);
    }

    fn drifting_series(snapshots: usize) -> Vec<NdArray<f32>> {
        let shape = qoz_tensor::Shape::new(&[snapshots, 24, 24, 24]);
        let field = qoz_datagen::time_series_like(shape, 0xC0FFEE);
        (0..snapshots)
            .map(|t| {
                field.extract_region(&qoz_tensor::Region::new(&[t, 0, 0, 0], &[1, 24, 24, 24]))
            })
            .collect()
    }

    #[test]
    fn chain_roundtrip_honors_bound_and_counts_outcomes() {
        let snaps = drifting_series(5);
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let mut enc = session.pipeline::<f32>();
        let mut frames = Vec::new();
        for s in &snaps {
            let (_, out) = enc.compress_next(s).unwrap();
            frames.push(out.blob);
        }
        assert_eq!(enc.stats().chain_total(), snaps.len() as u64);
        assert!(
            enc.stats().chain_keyframes >= 1,
            "chains start at a keyframe"
        );

        let mut dec = session.pipeline::<f32>();
        for (s, frame) in snaps.iter().zip(&frames) {
            let abs = ErrorBound::Rel(1e-3).absolute(s);
            let recon = dec.decompress_next(frame).unwrap();
            assert!(s.max_abs_diff(recon) <= abs * (1.0 + 1e-9) + 4.0 * f32::EPSILON as f64);
        }
    }

    #[test]
    fn chain_bytes_identical_on_repeat() {
        let snaps = drifting_series(3);
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let run = || {
            let mut pipe = session.pipeline::<f32>();
            snaps
                .iter()
                .map(|s| pipe.compress_next(s).unwrap().1.blob)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "chain coding must be deterministic");
    }

    #[test]
    fn keyframe_decodes_standalone_but_delta_does_not() {
        let snaps = drifting_series(3);
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let mut pipe = session.pipeline::<f32>();
        let mut frames = Vec::new();
        let mut outcomes = Vec::new();
        for s in &snaps {
            let (o, out) = pipe.compress_next(s).unwrap();
            outcomes.push(o);
            frames.push(out.blob);
        }
        assert_eq!(outcomes[0], qoz_temporal::TemporalOutcome::Keyframe);
        // A keyframe is a complete stream: Session::decompress strips
        // the frame transparently...
        let recon: NdArray<f32> = session.decompress(&frames[0]).unwrap();
        let abs = ErrorBound::Rel(1e-3).absolute(&snaps[0]);
        assert!(snaps[0].max_abs_diff(&recon) <= abs * (1.0 + 1e-9));
        // ...and the keyframe's inner bytes equal the independent encode
        // of the same snapshot (the frame only adds the outer header).
        let plain = session.compress(&snaps[0]).unwrap();
        let (_, inner) = qoz_codec::stream::unwrap_temporal(&frames[0]).unwrap();
        assert_eq!(inner, &plain.blob[..], "keyframe payload = plain stream");
        // A delta member without its chain is a clean error everywhere.
        if let Some(delta) = outcomes
            .iter()
            .position(|&o| o == qoz_temporal::TemporalOutcome::Delta)
        {
            assert!(session.decompress::<f32>(&frames[delta]).is_err());
            let mut out = NdArray::zeros(qoz_tensor::Shape::d1(1));
            assert!(pipe.decompress_into(&frames[delta], &mut out).is_err());
        }
    }

    #[test]
    fn reset_chain_forces_a_keyframe() {
        let snaps = drifting_series(3);
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let mut pipe = session.pipeline::<f32>();
        for s in &snaps {
            pipe.compress_next(s).unwrap();
        }
        pipe.reset_chain();
        let (o, _) = pipe.compress_next(&snaps[0]).unwrap();
        assert_eq!(o, qoz_temporal::TemporalOutcome::Keyframe);
    }

    #[test]
    fn quality_targets_cannot_chain() {
        let snaps = drifting_series(1);
        let session = Session::builder().psnr(50.0).build().unwrap();
        let mut pipe = session.pipeline::<f32>();
        assert!(matches!(
            pipe.compress_next(&snaps[0]),
            Err(crate::ApiError::InvalidTarget(_))
        ));
    }

    #[test]
    fn compress_into_streams_identical_bytes() {
        let data = Dataset::Nyx.generate(SizeClass::Tiny, 0);
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-2))
            .build()
            .unwrap();
        let mut pipe = session.pipeline::<f32>();
        let direct = pipe.compress(&data).unwrap();
        let mut sink = Vec::new();
        let stats = pipe.compress_into(&data, &mut sink).unwrap();
        assert_eq!(sink, direct.blob);
        assert_eq!(stats.compressed_bytes, direct.blob.len() as u64);
    }
}
