//! Stateful compression pipelines: one session, many snapshots, warm.
//!
//! A [`Session`] is a validated *configuration*; a [`Pipeline`] is that
//! configuration plus the mutable state that makes repeated compression
//! fast:
//!
//! * a [`qoz_core::PlanCache`] — QoZ's tuned plan is replayed across
//!   same-shape/same-bound calls, guarded by a cheap sampled drift
//!   check (see `qoz_core::pipeline` for the exact semantics), and
//! * a [`qoz_codec::Scratch`] arena — every stage buffer (working copy,
//!   quantization bins, side streams, Huffman/LZSS staging) is recycled
//!   between calls instead of reallocated.
//!
//! Compressing *unchanged* data through a warm pipeline produces a
//! stream byte-identical to the cold path — caching never changes the
//! format, only the time it takes to emit it. Hard error bounds are
//! resolved against every snapshot individually, so reuse never loosens
//! the bound contract.

use crate::registry::Codec;
use crate::session::{Compressed, Session, Target};
use crate::{BackendId, Result};
use qoz_codec::{CompressStats, Scratch};
use qoz_core::{PlanCache, PlanOutcome, Qoz};
use qoz_tensor::{NdArray, Scalar};

/// Counters describing how a [`Pipeline`] has served its calls.
///
/// Only QoZ bound-target calls exercise the plan cache; other backends
/// and quality-target searches count as neither warm nor cold here.
/// The two `*_grow_events` fields make arena behaviour observable
/// through the same struct: each counts stage-buffer growth events
/// attributed to that direction of traffic, so a steady-state warm loop
/// can assert both stay flat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Full tunes on an empty cache.
    pub cold_tunes: u64,
    /// Cached plan replayed verbatim.
    pub warm_hits: u64,
    /// Cached tuning decisions replayed with rescaled level bounds.
    pub warm_rescales: u64,
    /// Cache key matched but drift forced a retune (includes key
    /// changes: new shape, scalar type or bound).
    pub retunes: u64,
    /// Stage buffers that had to grow during [`Pipeline::compress`]
    /// calls (capacity-profile deltas over the arena).
    pub compress_grow_events: u64,
    /// Stage buffers that had to grow during
    /// [`Pipeline::decompress_into`] calls (decode-side grow counters).
    pub decode_grow_events: u64,
}

impl PipelineStats {
    /// Calls that skipped the tuning stage.
    pub fn warm(&self) -> u64 {
        self.warm_hits + self.warm_rescales
    }

    fn record(&mut self, outcome: PlanOutcome) {
        let name = match outcome {
            PlanOutcome::ColdTuned => {
                self.cold_tunes += 1;
                "cold_tuned"
            }
            PlanOutcome::WarmHit => {
                self.warm_hits += 1;
                "warm_hit"
            }
            PlanOutcome::WarmRescaled => {
                self.warm_rescales += 1;
                "warm_rescaled"
            }
            PlanOutcome::Retuned => {
                self.retunes += 1;
                "retuned"
            }
        };
        qoz_telemetry::global()
            .counter("qoz_plan_outcomes_total", &[("outcome", name)])
            .inc();
    }
}

/// A stateful compression handle for repeated (time-series) workloads.
///
/// Obtained from [`Session::pipeline`]. Element-type specific (the
/// scratch arena holds a typed working buffer); spawn one pipeline per
/// variable you stream. Not `Sync` by design — one pipeline, one serving
/// loop. For parallel chunk workloads use `qoz_pario`, which keeps one
/// arena per worker internally.
pub struct Pipeline<T: Scalar> {
    session: Session,
    engine: Engine<T>,
    scratch: Scratch<T>,
    stats: PipelineStats,
    last: Option<PlanOutcome>,
}

/// The per-backend warm machinery: only QoZ has a plan cache; every
/// other backend holds its codec once and relies on scratch reuse.
/// Both variants are boxed-sized (the `Qoz` arm carries the tuning
/// config and cached plan, the other a trait object).
enum Engine<T: Scalar> {
    Qoz(Box<(Qoz, PlanCache)>),
    Other(Box<dyn Codec<T>>),
}

impl<T: Scalar> Pipeline<T> {
    /// Build a pipeline over `session` (prefer [`Session::pipeline`]).
    pub fn new(session: Session) -> Self {
        let engine = if session.backend() == BackendId::Qoz {
            Engine::Qoz(Box::new((
                session.registry().qoz(),
                PlanCache::new(session.drift_tolerance()),
            )))
        } else {
            Engine::Other(session.codec::<T>())
        };
        Pipeline {
            engine,
            scratch: Scratch::new(),
            stats: PipelineStats::default(),
            last: None,
            session,
        }
    }

    /// The underlying (immutable) session configuration.
    pub fn session(&self) -> Session {
        self.session
    }

    /// Warm/cold accounting so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// What the plan cache did on the most recent [`Pipeline::compress`]
    /// call (`None` when the call did not touch the cache: non-QoZ
    /// backend or quality/ratio target).
    pub fn last_outcome(&self) -> Option<PlanOutcome> {
        self.last
    }

    /// Drop the cached plan; the next call tunes from scratch. A no-op
    /// for backends without a plan cache.
    pub fn invalidate(&mut self) {
        if let Engine::Qoz(inner) = &mut self.engine {
            inner.1.invalidate();
        }
    }

    /// A portable copy of the current cached plan for persistence
    /// (`None` when the cache is cold or the backend has no plan cache).
    /// `qoz-serve` snapshots every pipeline at graceful shutdown and
    /// writes the collection next to the served archives.
    pub fn plan_snapshot(&self) -> Option<qoz_core::PlanSnapshot> {
        match &self.engine {
            Engine::Qoz(inner) => inner.1.snapshot(),
            Engine::Other(_) => None,
        }
    }

    /// Seed the plan cache from a persisted snapshot so the first
    /// matching [`Pipeline::compress`] call replays it warm instead of
    /// cold-tuning — the `qoz-serve` warm-restart path. A no-op for
    /// backends without a plan cache.
    pub fn prime_plan(&mut self, snap: qoz_core::PlanSnapshot) {
        if let Engine::Qoz(inner) = &mut self.engine {
            inner.1.seed(snap);
        }
    }

    /// Compress one snapshot toward the session target.
    ///
    /// [`Target::Bound`] sessions run the warm path: QoZ consults the
    /// plan cache and every backend stages its buffers in the pipeline's
    /// scratch arena. Quality and ratio targets are bound *searches* —
    /// they re-probe per snapshot by definition and are delegated to
    /// [`Session::compress`] unchanged.
    pub fn compress(&mut self, data: &NdArray<T>) -> Result<Compressed> {
        match self.session.target() {
            Target::Bound(bound) => {
                let raw_bytes = (data.len() * T::BYTES) as u64;
                let caps_before = self.scratch.capacities();
                let blob = match &mut self.engine {
                    Engine::Qoz(inner) => {
                        let (qoz, cache) = &mut **inner;
                        let (plan, outcome) = qoz.plan_cached(data, bound, cache);
                        self.stats.record(outcome);
                        self.last = Some(outcome);
                        qoz.compress_with_plan_scratched(data, &plan, &mut self.scratch)
                    }
                    Engine::Other(codec) => {
                        self.last = None;
                        codec.compress_with_scratch(data, bound, &mut self.scratch)
                    }
                };
                self.stats.compress_grow_events += self
                    .scratch
                    .capacities()
                    .iter()
                    .zip(caps_before.iter())
                    .filter(|(now, before)| now > before)
                    .count() as u64;
                Ok(Compressed {
                    stats: CompressStats {
                        raw_bytes,
                        compressed_bytes: blob.len() as u64,
                    },
                    blob,
                    rel_bound: None,
                    achieved: None,
                })
            }
            _ => {
                self.last = None;
                self.session.compress(data)
            }
        }
    }

    /// Compress one snapshot straight into a byte sink (bytes identical
    /// to [`Pipeline::compress`]).
    pub fn compress_into(
        &mut self,
        data: &NdArray<T>,
        sink: &mut dyn std::io::Write,
    ) -> Result<CompressStats> {
        let out = self.compress(data)?;
        sink.write_all(&out.blob)
            .map_err(qoz_codec::CodecError::from)?;
        Ok(out.stats)
    }

    /// Decompress any workspace stream (header-driven dispatch, same as
    /// [`Session::decompress`]).
    pub fn decompress(&self, blob: &[u8]) -> Result<NdArray<T>> {
        self.session.decompress(blob)
    }

    /// Decompress any workspace stream into a caller-provided array,
    /// staging every stage buffer in the pipeline's scratch arena — the
    /// read-path mirror of [`Pipeline::compress`]. The destination is
    /// reshaped in place; with a warm arena and a previously-seen shape
    /// the whole decode performs zero stage-buffer allocations
    /// (`stats().decode_grow_events` stays flat).
    ///
    /// Dispatch is header-driven: a stream from the pipeline's own
    /// backend reuses the held engine, any other workspace stream is
    /// decoded through the registry with the same arena.
    pub fn decompress_into(&mut self, blob: &[u8], out: &mut NdArray<T>) -> Result<()> {
        let grows_before = self.scratch.decode_grow_events();
        let header = crate::registry::peek_header(blob)?;
        match &self.engine {
            Engine::Qoz(inner) if header.compressor == BackendId::Qoz => inner
                .0
                .decompress_into_scratched(blob, &mut self.scratch, out)?,
            Engine::Other(codec) if codec.id() == header.compressor => {
                codec.decompress_into(blob, &mut self.scratch, out)?
            }
            _ => self
                .session
                .registry()
                .decompress_into(blob, &mut self.scratch, out)?,
        }
        self.stats.decode_grow_events += self.scratch.decode_grow_events() - grows_before;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_codec::ErrorBound;
    use qoz_datagen::{Dataset, SizeClass};

    #[test]
    fn warm_bytes_equal_cold_bytes_on_unchanged_data() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let cold = session.compress(&data).unwrap();
        let mut pipe = session.pipeline::<f32>();
        let first = pipe.compress(&data).unwrap();
        let second = pipe.compress(&data).unwrap();
        assert_eq!(
            first.blob, cold.blob,
            "pipeline cold call must match session"
        );
        assert_eq!(second.blob, cold.blob, "warm call must be byte-identical");
        assert_eq!(pipe.stats().cold_tunes, 1);
        assert_eq!(pipe.stats().warm_hits, 1);
        assert_eq!(pipe.last_outcome(), Some(PlanOutcome::WarmHit));
        let recon = pipe.decompress(&second.blob).unwrap();
        let abs = ErrorBound::Rel(1e-3).absolute(&data);
        assert!(data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9));
    }

    #[test]
    fn non_qoz_backends_reuse_scratch_with_identical_bytes() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        for backend in [BackendId::Sz3, BackendId::Zfp] {
            let session = Session::builder()
                .backend(backend)
                .bound(ErrorBound::Rel(1e-3))
                .build()
                .unwrap();
            let cold = session.compress(&data).unwrap();
            let mut pipe = session.pipeline::<f32>();
            for _ in 0..2 {
                let out = pipe.compress(&data).unwrap();
                assert_eq!(out.blob, cold.blob, "{backend:?}");
            }
            assert_eq!(pipe.last_outcome(), None);
        }
    }

    #[test]
    fn differently_shaped_inputs_regrow_safely() {
        let big = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let small = big.extract_region(&qoz_tensor::Region::new(
            &[0; 3],
            &[
                big.shape().dim(0) / 2,
                big.shape().dim(1),
                big.shape().dim(2),
            ],
        ));
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let mut pipe = session.pipeline::<f32>();
        // big -> small -> big: every call must equal its cold stream.
        for data in [&big, &small, &big] {
            let warmed = pipe.compress(data).unwrap();
            let cold = session.compress(data).unwrap();
            assert_eq!(warmed.blob, cold.blob);
        }
        assert_eq!(pipe.stats().retunes, 2, "shape flips retune");
    }

    #[test]
    fn quality_targets_delegate_to_session() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let session = Session::builder().psnr(50.0).build().unwrap();
        let mut pipe = session.pipeline::<f32>();
        let out = pipe.compress(&data).unwrap();
        assert!(out.achieved.unwrap() >= 50.0);
        assert_eq!(pipe.last_outcome(), None);
        assert_eq!(pipe.stats(), PipelineStats::default());
    }

    #[test]
    fn primed_pipeline_serves_first_call_warm() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-3))
            .build()
            .unwrap();
        let mut cold_pipe = session.pipeline::<f32>();
        assert!(cold_pipe.plan_snapshot().is_none(), "cold cache: no snap");
        let cold = cold_pipe.compress(&data).unwrap();
        let snap = cold_pipe.plan_snapshot().expect("tuned cache snapshots");

        // A fresh pipeline primed with the snapshot skips the cold tune
        // and still emits byte-identical output.
        let mut primed = session.pipeline::<f32>();
        primed.prime_plan(snap);
        let out = primed.compress(&data).unwrap();
        assert_eq!(primed.last_outcome(), Some(PlanOutcome::WarmHit));
        assert_eq!(out.blob, cold.blob);
        assert_eq!(primed.stats().cold_tunes, 0);
    }

    #[test]
    fn compress_into_streams_identical_bytes() {
        let data = Dataset::Nyx.generate(SizeClass::Tiny, 0);
        let session = Session::builder()
            .bound(ErrorBound::Rel(1e-2))
            .build()
            .unwrap();
        let mut pipe = session.pipeline::<f32>();
        let direct = pipe.compress(&data).unwrap();
        let mut sink = Vec::new();
        let stats = pipe.compress_into(&data, &mut sink).unwrap();
        assert_eq!(sink, direct.blob);
        assert_eq!(stats.compressed_bytes, direct.blob.len() as u64);
    }
}
