//! `qoz_api` — the unified, quality-first compression facade.
//!
//! The paper's headline contribution is *quality-metric-oriented*
//! compression: the user states what they need — a PSNR, an SSIM, a
//! compression ratio, or a hard error bound — and the system tunes
//! itself. This crate is the one public door to that capability:
//!
//! * [`Session`] / [`SessionBuilder`] — a validated, reusable
//!   compression configuration: one backend, one [`Target`], built once
//!   and applied to any number of arrays (`f32` or `f64`);
//! * [`Target`] — the quality-first request:
//!   [`Bound`](Target::Bound), [`Psnr`](Target::Psnr),
//!   [`Ssim`](Target::Ssim) or [`Ratio`](Target::Ratio), routed through
//!   `qoz_core::fixed_quality` so *every* backend — not just QoZ — can
//!   be driven to a quality target;
//! * [`BackendRegistry`] — the single `BackendId -> Box<dyn Codec>`
//!   mapping in the workspace. The archive reader, the CLI and the
//!   benchmark harness all dispatch through it;
//! * streaming sinks — [`Session::compress_into`] and
//!   [`Session::decompress_from`] move streams straight between arrays
//!   and `io::Write`/`io::Read` without intermediate whole-stream
//!   buffers on the caller's side;
//! * [`Pipeline`] — the stateful handle for time-series workloads:
//!   [`Session::pipeline`] pairs the session with a cached tuning plan
//!   and a reusable scratch arena, so repeated same-shape snapshots
//!   skip QoZ's online tuning and all stage-buffer allocation (warm
//!   output is byte-identical to cold on unchanged data; a sampled
//!   drift check re-tunes when the data changes character).
//!
//! # Quick start
//! ```
//! use qoz_api::{BackendId, Session, Target};
//! use qoz_codec::ErrorBound;
//! use qoz_tensor::{NdArray, Shape};
//!
//! let data = NdArray::from_fn(Shape::d2(64, 64), |i| {
//!     ((i[0] as f32) * 0.1).sin() + ((i[1] as f32) * 0.08).cos()
//! });
//!
//! // Bound-first: classic error-bounded compression.
//! let session = Session::builder()
//!     .backend(BackendId::Qoz)
//!     .bound(ErrorBound::Rel(1e-3))
//!     .build()
//!     .unwrap();
//! let out = session.compress(&data).unwrap();
//! let recon: NdArray<f32> = session.decompress(&out.blob).unwrap();
//! let abs = ErrorBound::Rel(1e-3).absolute(&data);
//! assert!(data.max_abs_diff(&recon) <= abs);
//!
//! // Quality-first: ask for 60 dB and let the system find the bound.
//! let session = Session::builder().psnr(60.0).build().unwrap();
//! let out = session.compress(&data).unwrap();
//! assert!(out.achieved.unwrap() >= 60.0);
//! ```
//!
//! # Target tolerances
//!
//! | [`Target`]   | guarantee on [`Compressed::achieved`]                         |
//! |--------------|---------------------------------------------------------------|
//! | `Bound(b)`   | hard: `max|err| <= b` on every point (backend contract)       |
//! | `Psnr(dB)`   | met or exceeded when reachable at a relative bound ≥ 1e-8     |
//! | `Ssim(s)`    | met or exceeded when reachable at a relative bound ≥ 1e-8     |
//! | `Ratio(r)`   | closest probe of a 12-step bisection; typically within a few  |
//! |              | percent, worst case ~±50% where ratio steps with the bound    |
//!
//! Quality targets are verified on the **full** reconstruction, never
//! only on sampled estimates; unreachable targets converge to the
//! tightest searched bound and report the shortfall in `achieved`.

mod pipeline;
mod registry;
mod session;

pub use pipeline::{Pipeline, PipelineStats};
pub use registry::{decompress_stream, peek_header, BackendRegistry, Codec};
pub use session::{Compressed, Session, SessionBuilder, Target};

/// Re-export of the plan-cache outcome reported by
/// [`Pipeline::last_outcome`].
pub use qoz_core::PlanOutcome;

/// Re-exports of the temporal-chain types surfaced by
/// [`Pipeline::compress_next`] (see `qoz_temporal` for the residual
/// model and the composed-bound contract).
pub use qoz_temporal::{TemporalMode, TemporalOutcome};

/// Identifies a compression backend (re-export of the stream-header id:
/// a registry id *is* the id stored in every stream the backend emits).
pub use qoz_codec::CompressorId as BackendId;

use qoz_codec::{CodecError, ErrorBound};

/// Errors surfaced by the facade.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The requested error bound is NaN, non-finite or non-positive.
    InvalidBound(ErrorBound),
    /// A quality target is outside its meaningful range.
    InvalidTarget(&'static str),
    /// The backend name is not in the registry.
    UnknownBackend(String),
    /// Compression/decompression failed underneath the facade.
    Codec(CodecError),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::InvalidBound(b) => {
                let (kind, v) = match b {
                    ErrorBound::Abs(v) => ("absolute", v),
                    ErrorBound::Rel(v) => ("relative", v),
                };
                write!(
                    f,
                    "invalid {kind} error bound {v}: bounds must be finite and > 0"
                )
            }
            ApiError::InvalidTarget(what) => write!(f, "invalid target: {what}"),
            ApiError::UnknownBackend(name) => write!(
                f,
                "unknown backend '{name}' (expected qoz|sz3|sz2|zfp|mgard)"
            ),
            ApiError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<CodecError> for ApiError {
    fn from(e: CodecError) -> Self {
        ApiError::Codec(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ApiError>;
