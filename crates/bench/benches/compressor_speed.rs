//! Criterion benchmark: compression/decompression throughput per
//! compressor (the microbenchmark behind Table IV).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qoz_bench::paper_set;
use qoz_codec::stream::ErrorBound;
use qoz_datagen::{Dataset, SizeClass};
use qoz_metrics::QualityMetric;

fn bench_compressors(c: &mut Criterion) {
    let datasets = [Dataset::CesmAtm, Dataset::Miranda];
    let bound = ErrorBound::Rel(1e-3);

    let mut group = c.benchmark_group("compress");
    for ds in datasets {
        let data = ds.generate(SizeClass::Tiny, 0);
        group.throughput(Throughput::Bytes((data.len() * 4) as u64));
        for comp in paper_set::<f32>(QualityMetric::Psnr) {
            group.bench_with_input(
                BenchmarkId::new(comp.name(), ds.name()),
                &data,
                |b, data| b.iter(|| comp.compress(data, bound)),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    for ds in datasets {
        let data = ds.generate(SizeClass::Tiny, 0);
        group.throughput(Throughput::Bytes((data.len() * 4) as u64));
        for comp in paper_set::<f32>(QualityMetric::Psnr) {
            let blob = comp.compress(&data, bound);
            group.bench_with_input(
                BenchmarkId::new(comp.name(), ds.name()),
                &blob,
                |b, blob| b.iter(|| comp.decompress(blob).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compressors
}
criterion_main!(benches);
