//! Criterion benchmark: individual pipeline stages (quantizer, Huffman,
//! LZSS, interpolation traversal). Useful for locating regressions in
//! the layers every compressor shares.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qoz_codec::{decode_bins, encode_bins, lossless_compress, LinearQuantizer};
use qoz_predict::{max_level, traverse_level, LevelConfig};
use qoz_tensor::{NdArray, Shape};

fn stage_benches(c: &mut Criterion) {
    // Quantizer: 1M residuals.
    let quant = LinearQuantizer::new(1e-3);
    let values: Vec<f64> = (0..1_000_000).map(|i| (i as f64 * 0.001).sin()).collect();
    let mut group = c.benchmark_group("quantizer");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("quantize_1M", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &values {
                acc += quant.quantize(v, v * 0.999).code as u64;
            }
            acc
        })
    });
    group.finish();

    // Huffman + LZSS on a realistic bin distribution (concentrated).
    let bins: Vec<u32> = (0..500_000u32)
        .map(|i| 32768 + ((i * i) % 13) - 6)
        .collect();
    let mut group = c.benchmark_group("entropy");
    group.throughput(Throughput::Elements(bins.len() as u64));
    group.bench_function("encode_bins_500k", |b| b.iter(|| encode_bins(&bins)));
    let blob = encode_bins(&bins);
    group.bench_function("decode_bins_500k", |b| {
        b.iter(|| decode_bins(&blob).unwrap())
    });
    group.finish();

    let bytes: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    let mut group = c.benchmark_group("lzss");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("compress_1MB", |b| b.iter(|| lossless_compress(&bytes)));
    group.finish();

    // Full interpolation traversal of a 64^3 volume.
    let shape = Shape::d3(64, 64, 64);
    let data = NdArray::from_fn(shape, |i| {
        ((i[0] + i[1]) as f32 * 0.1).sin() + i[2] as f32 * 0.01
    });
    let mut group = c.benchmark_group("interp_traversal");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("levels_64cubed", |b| {
        b.iter(|| {
            let mut work = data.clone();
            let cfg = LevelConfig::default();
            let mut count = 0usize;
            for level in (1..=max_level(shape)).rev() {
                traverse_level(work.as_mut_slice(), shape, level, cfg, &mut |d, off, p| {
                    d[off] = p as f32;
                    count += 1;
                });
            }
            count
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = stage_benches
}
criterion_main!(benches);
