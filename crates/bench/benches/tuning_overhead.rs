//! Criterion benchmark: QoZ online-tuning overhead.
//!
//! The paper claims the sampling-based tuner keeps QoZ's speed comparable
//! to SZ3 (Table IV). This bench isolates (a) the tuning stage alone,
//! (b) full QoZ compression, and (c) the SZ3 baseline, plus the ablation
//! ladder, so the overhead of each optimization component is visible.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qoz_codec::stream::{Compressor as _, ErrorBound};
use qoz_core::ablation::AblationVariant;
use qoz_core::Qoz;
use qoz_datagen::{Dataset, SizeClass};
use qoz_metrics::QualityMetric;

fn tuning_benches(c: &mut Criterion) {
    let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
    let bound = ErrorBound::Rel(1e-3);
    let bytes = (data.len() * 4) as u64;

    let mut group = c.benchmark_group("tuning");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("qoz_plan_only", |b| {
        let qoz = Qoz::for_metric(QualityMetric::Psnr);
        b.iter(|| qoz.plan(&data, bound))
    });
    group.bench_function("qoz_full_compress", |b| {
        let qoz = Qoz::for_metric(QualityMetric::Psnr);
        b.iter(|| qoz.compress(&data, bound))
    });
    group.bench_function("sz3_compress", |b| {
        let sz3 = qoz_sz3::Sz3::default();
        b.iter(|| sz3.compress(&data, bound))
    });
    group.finish();

    let mut group = c.benchmark_group("ablation");
    group.throughput(Throughput::Bytes(bytes));
    for v in &AblationVariant::ALL[1..] {
        let comp = v.compressor(QualityMetric::Psnr);
        group.bench_function(v.name(), |b| b.iter(|| comp.compress(&data, bound)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = tuning_benches
}
criterion_main!(benches);
