//! `repro` — regenerate every table and figure of the QoZ paper.
//!
//! ```text
//! repro <experiment> [--size tiny|small|medium] [--out DIR]
//!       [--bench-json PATH]
//!
//! experiments:
//!   table3   Compression ratio @ same error bound (Table III)
//!   table4   Compression/decompression speeds (Table IV)
//!   fig7     Compression error distributions (Fig. 7)
//!   fig8     Rate-PSNR curves (Fig. 8)
//!   fig9     Rate-SSIM curves (Fig. 9)
//!   fig10    Rate-autocorrelation curves (Fig. 10)
//!   fig11    Same-CR visual comparison + PSNR (Fig. 11)
//!   fig12    Component ablation study (Fig. 12)
//!   fig13    Fixed (alpha,beta) vs auto-tuning (Fig. 13)
//!   fig14    Parallel dump/load model (Fig. 14)
//!   bench    Throughput baseline: timed compress/decompress for every
//!            backend x dataset x bound, written as BENCH json
//!   all      Everything above (except bench)
//! ```
//!
//! Each experiment prints a paper-shaped table and writes a CSV under
//! `--out` (default `results/`). `bench` (or passing `--bench-json
//! PATH` explicitly) writes the machine-readable throughput baseline
//! that perf PRs are judged against.

use qoz_api::{Codec, Session};
use qoz_bench::{evaluate, paper_set, write_csv, write_pgm};
use qoz_codec::stream::{Compressor as _, ErrorBound};
use qoz_core::ablation::AblationVariant;
use qoz_core::{Qoz, QozConfig};
use qoz_datagen::{Dataset, SizeClass};
use qoz_metrics::QualityMetric;
use qoz_pario::IoModel;
use qoz_tensor::{NdArray, Region};

struct Opts {
    size: SizeClass,
    out: String,
    bench_json: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <table3|table4|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|bench|all> [--size tiny|small|medium] [--out DIR] [--bench-json PATH]");
        std::process::exit(2);
    }
    let mut size = SizeClass::Small;
    let mut out = "results".to_string();
    let mut bench_json: Option<String> = None;
    let mut exp = String::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                i += 1;
                size = match args.get(i).map(String::as_str) {
                    Some("tiny") => SizeClass::Tiny,
                    Some("small") => SizeClass::Small,
                    Some("medium") => SizeClass::Medium,
                    other => {
                        eprintln!("bad --size {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or(out);
            }
            "--bench-json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => bench_json = Some(p.clone()),
                    None => {
                        eprintln!("--bench-json needs a path");
                        std::process::exit(2);
                    }
                }
            }
            e if exp.is_empty() => exp = e.to_string(),
            e => {
                eprintln!("unexpected argument {e}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // `--bench-json PATH` with no experiment implies the bench mode.
    if exp.is_empty() && bench_json.is_some() {
        exp = "bench".to_string();
    }
    let opts = Opts {
        size,
        out,
        bench_json,
    };

    match exp.as_str() {
        "table3" => table3(&opts),
        "table4" => table4(&opts),
        "fig7" => fig7(&opts),
        "fig8" => rate_curves(&opts, QualityMetric::Psnr, "fig8"),
        "fig9" => rate_curves(&opts, QualityMetric::Ssim, "fig9"),
        "fig10" => fig10(&opts),
        "fig11" => fig11(&opts),
        "fig12" => fig12(&opts),
        "fig13" => fig13(&opts),
        "fig14" => fig14(&opts),
        "bench" => bench_throughput(&opts),
        "all" => {
            table3(&opts);
            table4(&opts);
            fig7(&opts);
            rate_curves(&opts, QualityMetric::Psnr, "fig8");
            rate_curves(&opts, QualityMetric::Ssim, "fig9");
            fig10(&opts);
            fig11(&opts);
            fig12(&opts);
            fig13(&opts);
            fig14(&opts);
        }
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    }
    // An explicit --bench-json always emits the baseline, even when it
    // rides along with another experiment.
    if opts.bench_json.is_some() && exp != "bench" {
        bench_throughput(&opts);
    }
}

/// `bench`: the measured-throughput baseline every perf PR is judged
/// against. Times one compress/decompress cycle per backend x dataset x
/// bound and writes a machine-readable `BENCH_throughput.json`
/// (per-entry MB/s of raw data and compression ratio).
fn bench_throughput(o: &Opts) {
    let path = o
        .bench_json
        .clone()
        .unwrap_or_else(|| format!("{}/BENCH_throughput.json", o.out));
    println!("\n=== bench: compression throughput baseline ===");
    println!(
        "{:<12} {:<8} {:>6}  {:>8} {:>10} {:>12}",
        "Dataset", "codec", "eps", "CR", "comp MB/s", "decomp MB/s"
    );
    let bounds = [1e-2, 1e-3];
    let mut entries = Vec::new();
    for ds in Dataset::ALL {
        let data = ds.generate(o.size, 0);
        for c in paper_set::<f32>(QualityMetric::Psnr) {
            for eps in bounds {
                let r = evaluate(&*c, &data, ErrorBound::Rel(eps));
                println!(
                    "{:<12} {:<8} {:>6.0e}  {:>8.1} {:>10.1} {:>12.1}",
                    ds.name(),
                    c.name(),
                    eps,
                    r.cr,
                    r.comp_mbps,
                    r.decomp_mbps
                );
                entries.push(format!(
                    concat!(
                        "    {{\"backend\": \"{}\", \"dataset\": \"{}\", ",
                        "\"points\": {}, \"eps_rel\": {:e}, \"cr\": {:.4}, ",
                        "\"comp_mbps\": {:.3}, \"decomp_mbps\": {:.3}}}"
                    ),
                    c.name(),
                    ds.name(),
                    data.len(),
                    eps,
                    r.cr,
                    r.comp_mbps,
                    r.decomp_mbps
                ));
            }
        }
    }
    let random_access = bench_random_access(o);
    let timeseries = bench_timeseries(o);
    let decompress = bench_decompress(o);
    let stage_breakdown = bench_stage_breakdown(o);
    let kernels = bench_kernels();
    let json = format!(
        concat!(
            "{{\n  \"schema\": \"qoz-suite/bench-throughput/v7\",\n",
            "  \"size_class\": \"{:?}\",\n",
            "  \"cpu_features\": \"{}\",\n",
            "  \"kernel_path\": \"{}\",\n",
            "  \"unit\": \"MB/s of raw f32 data\",\n",
            "  \"entries\": [\n{}\n  ],\n",
            "  \"random_access\": [\n{}\n  ],\n",
            "  \"timeseries\": [\n{}\n  ],\n",
            "  \"decompress\": [\n{}\n  ],\n",
            "  \"stage_breakdown\": [\n{}\n  ],\n",
            "  \"kernels\": [\n{}\n  ]\n}}\n"
        ),
        o.size,
        qoz_codec::simd::cpu_features(),
        qoz_codec::simd::selected().name(),
        entries.join(",\n"),
        random_access.join(",\n"),
        timeseries.join(",\n"),
        decompress.join(",\n"),
        stage_breakdown.join(",\n"),
        kernels.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).unwrap();
    }
    std::fs::write(&path, json).unwrap();
    println!("-> {path}");
}

/// The random-access axis of the `bench` baseline: archive one dataset
/// per backend, query a ~1% region, and report how few bytes the
/// indexed container actually reads versus decompressing everything.
fn bench_random_access(o: &Opts) -> Vec<String> {
    use qoz_archive::{ArchiveReader, ArchiveWriter};

    println!("\n--- random access: ~1% region query vs full decompress (Miranda) ---");
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>10} {:>9}",
        "codec", "arch bytes", "bytes read", "read %", "query ms", "speedup"
    );
    let data = Dataset::Miranda.generate(o.size, 0);
    let shape = data.shape();
    // A centered box of ~1/5 of each extent: (1/5)^3 ~ 0.8% of points.
    let origin: Vec<usize> = shape.dims().iter().map(|&d| 2 * d / 5).collect();
    let size: Vec<usize> = shape.dims().iter().map(|&d| (d / 5).max(1)).collect();
    let region = Region::new(&origin, &size);
    // Scale the chunk grid to the dataset so even the tiny smoke size
    // has a multi-chunk grid for the region to select from.
    let chunk_side = shape
        .dims()
        .iter()
        .min()
        .map_or(32, |&d| (d / 4).clamp(4, 32));

    let mut rows = Vec::new();
    for c in paper_set::<f32>(QualityMetric::Psnr) {
        let mut w = ArchiveWriter::new().with_chunk_side(chunk_side);
        w.add_variable("v", &data, &*c, ErrorBound::Rel(1e-3))
            .unwrap();
        let bytes = w.finish();

        let r = ArchiveReader::from_bytes(&bytes).unwrap();
        let t0 = std::time::Instant::now();
        let slab = r.read_region::<f32>("v", &region).unwrap();
        let t_region = t0.elapsed().as_secs_f64();
        let read = r.bytes_read();

        let rf = ArchiveReader::from_bytes(&bytes).unwrap();
        let t0 = std::time::Instant::now();
        let full = rf.read_full::<f32>("v").unwrap();
        let t_full = t0.elapsed().as_secs_f64();
        assert_eq!(
            slab.as_slice(),
            full.extract_region(&region).as_slice(),
            "{}: region query diverged from full decompress",
            c.name()
        );

        let frac = read as f64 / bytes.len() as f64;
        let speedup = t_full / t_region.max(1e-9);
        println!(
            "{:<8} {:>10} {:>12} {:>9.2}% {:>10.2} {:>8.1}x",
            c.name(),
            bytes.len(),
            read,
            frac * 100.0,
            t_region * 1e3,
            speedup
        );
        rows.push(format!(
            concat!(
                "    {{\"backend\": \"{}\", \"dataset\": \"{}\", \"points\": {}, ",
                "\"eps_rel\": 1e-3, \"region_points\": {}, \"archive_bytes\": {}, ",
                "\"region_bytes_read\": {}, \"read_fraction\": {:.5}, ",
                "\"region_ms\": {:.3}, \"full_ms\": {:.3}, \"speedup\": {:.2}}}"
            ),
            c.name(),
            Dataset::Miranda.name(),
            data.len(),
            region.len(),
            bytes.len(),
            read,
            frac,
            t_region * 1e3,
            t_full * 1e3,
            speedup
        ));
    }
    rows
}

/// The time-series axis of the `bench` baseline: N consecutive snapshots
/// of one evolving field, compressed cold (a fresh tune per snapshot,
/// the pre-pipeline behaviour) versus warm (one `Session::pipeline`
/// reusing the cached tuning plan and scratch arena). Reports MB/s for
/// both, the steady-state warm rate (first/cold call excluded), and the
/// plan-cache counters; verifies every warm stream against its error
/// bound and checks warm-vs-cold byte equality on a repeated snapshot.
///
/// Schema v6 adds temporal rows on top: the same chains compressed
/// independently versus delta-coded with `Pipeline::compress_next` at an
/// equal bound. Asserts in-bench that the chain-decode max error stays
/// within the bound on every snapshot and that temporal CR on the
/// checkpoint-like series is at least 1.5x the independent CR.
fn bench_timeseries(o: &Opts) -> Vec<String> {
    use qoz_api::BackendId;

    const SNAPSHOTS: usize = 6;
    let base = Dataset::Miranda.shape(o.size);
    let shape4 = qoz_tensor::Shape::new(&[SNAPSHOTS, base.dim(0), base.dim(1), base.dim(2)]);
    let field = qoz_datagen::time_series_like(shape4, 0xC0FFEE);
    let step = base.len();
    let snapshots: Vec<NdArray<f32>> = (0..SNAPSHOTS)
        .map(|t| NdArray::from_vec(base, field.as_slice()[t * step..(t + 1) * step].to_vec()))
        .collect();
    let eps = 1e-3;
    let raw_mb = (step * 4 * SNAPSHOTS) as f64 / 1e6;

    println!("\n--- time series: {SNAPSHOTS} snapshots, cold vs warm pipeline (Miranda-like) ---");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>8} {:>6} {:>8}",
        "codec", "cold MB/s", "warm MB/s", "steady MB/s", "speedup", "warm", "retunes"
    );

    let mut rows = Vec::new();
    for id in [BackendId::Qoz, BackendId::Sz3] {
        let session = Session::builder()
            .backend(id)
            .bound(ErrorBound::Rel(eps))
            .build()
            .expect("bound is valid");

        // Cold: every snapshot pays full tuning + fresh allocations.
        let t0 = std::time::Instant::now();
        let cold_blobs: Vec<Vec<u8>> = snapshots
            .iter()
            .map(|s| session.compress(s).expect("cold compress").blob)
            .collect();
        let t_cold = t0.elapsed().as_secs_f64();

        // Warm: one pipeline across the series.
        let mut pipe = session.pipeline::<f32>();
        let t0 = std::time::Instant::now();
        let first = pipe.compress(&snapshots[0]).expect("warm compress").blob;
        let t_first = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let mut warm_blobs = vec![first];
        for s in &snapshots[1..] {
            warm_blobs.push(pipe.compress(s).expect("warm compress").blob);
        }
        let t_steady = t0.elapsed().as_secs_f64();
        let t_warm = t_first + t_steady;

        // Warm streams must honor the per-snapshot bound, and repeating
        // an unchanged snapshot must reproduce the cold bytes exactly.
        for (s, blob) in snapshots.iter().zip(&warm_blobs) {
            let recon: NdArray<f32> = session.decompress(blob).expect("warm blob decodes");
            let abs = ErrorBound::Rel(eps).absolute(s);
            assert!(
                s.max_abs_diff(&recon) <= abs * (1.0 + 1e-9),
                "{}: warm stream violated the bound",
                id.name()
            );
        }
        let mut repeat_pipe = session.pipeline::<f32>();
        repeat_pipe.compress(&snapshots[0]).expect("repeat cold");
        let repeat = repeat_pipe
            .compress(&snapshots[0])
            .expect("repeat warm")
            .blob;
        let bytes_equal = repeat == cold_blobs[0];
        assert!(
            bytes_equal,
            "{}: warm repeat of an unchanged snapshot diverged from the cold stream",
            id.name()
        );

        let stats = pipe.stats();
        let cold_mbps = raw_mb / t_cold.max(1e-12);
        let warm_mbps = raw_mb / t_warm.max(1e-12);
        let steady_mbps =
            (raw_mb * (SNAPSHOTS - 1) as f64 / SNAPSHOTS as f64) / t_steady.max(1e-12);
        let speedup = t_cold / t_warm.max(1e-12);
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>12.1} {:>7.2}x {:>6} {:>8}",
            id.name(),
            cold_mbps,
            warm_mbps,
            steady_mbps,
            speedup,
            stats.warm(),
            stats.retunes
        );
        rows.push(format!(
            concat!(
                "    {{\"backend\": \"{}\", \"dataset\": \"Miranda-TS\", ",
                "\"snapshots\": {}, \"points\": {}, \"eps_rel\": {:e}, ",
                "\"cold_mbps\": {:.3}, \"warm_mbps\": {:.3}, ",
                "\"warm_steady_mbps\": {:.3}, \"speedup\": {:.3}, ",
                "\"warm_hits\": {}, \"warm_rescales\": {}, \"retunes\": {}, ",
                "\"bytes_equal_on_repeat\": {}}}"
            ),
            id.name(),
            SNAPSHOTS,
            step,
            eps,
            cold_mbps,
            warm_mbps,
            steady_mbps,
            speedup,
            stats.warm_hits,
            stats.warm_rescales,
            stats.retunes,
            bytes_equal
        ));
    }

    // Temporal delta coding (schema v6): the same evolving fields coded
    // independently versus residual-coded against each prior
    // reconstruction at an equal bound. The checkpoint-like series must
    // show at least a 1.5x CR gain; the advecting series is reported too
    // so the win is measured on motion, not just amplitude decay.
    const CHAIN: usize = 12;
    println!("\n--- time series: independent vs temporal delta coding, eps {eps:.0e} ---");
    println!(
        "{:<14} {:>6} {:>8} {:>8} {:>6} {:>11} {:>12}",
        "dataset", "snaps", "ind CR", "temp CR", "gain", "key/dlt/fb", "chain MB/s"
    );
    type SeriesGen = fn(qoz_tensor::Shape, u64) -> NdArray<f32>;
    let series: [(&str, SeriesGen); 2] = [
        ("TS-checkpoint", qoz_datagen::time_series_like),
        ("TS-advect", qoz_datagen::time_series_advect),
    ];
    for (name, generate) in series {
        let shape4 = qoz_tensor::Shape::new(&[CHAIN, base.dim(0), base.dim(1), base.dim(2)]);
        let field = generate(shape4, 0xC0FFEE);
        let chain: Vec<NdArray<f32>> = (0..CHAIN)
            .map(|t| NdArray::from_vec(base, field.as_slice()[t * step..(t + 1) * step].to_vec()))
            .collect();
        let session = Session::builder()
            .backend(BackendId::Qoz)
            .bound(ErrorBound::Rel(eps))
            .build()
            .expect("bound is valid");

        let mut ind_pipe = session.pipeline::<f32>();
        let ind_bytes: usize = chain
            .iter()
            .map(|s| {
                ind_pipe
                    .compress(s)
                    .expect("independent compress")
                    .blob
                    .len()
            })
            .sum();

        let mut enc = session.pipeline::<f32>();
        let blobs: Vec<Vec<u8>> = chain
            .iter()
            .map(|s| enc.compress_next(s).expect("temporal compress").1.blob)
            .collect();
        let temporal_bytes: usize = blobs.iter().map(Vec::len).sum();
        let stats = enc.stats();

        // Error contract first: every snapshot of the decoded chain must
        // honor the bound against its own raw input.
        let mut check = session.pipeline::<f32>();
        for (s, blob) in chain.iter().zip(&blobs) {
            let recon = check.decompress_next(blob).expect("chain decode");
            let abs = ErrorBound::Rel(eps).absolute(s);
            // The f32 accumulate (prev reconstruction + residual) can
            // round by a couple of ULPs on top of the coded bound.
            let slack = abs * (1.0 + 1e-9) + 4.0 * f32::EPSILON as f64;
            assert!(
                s.max_abs_diff(recon) <= slack,
                "{name}: chain decode violated the bound"
            );
        }
        // Then a clean timing pass over the whole chain decode.
        let mut dec = session.pipeline::<f32>();
        let t0 = std::time::Instant::now();
        for blob in &blobs {
            dec.decompress_next(blob).expect("chain decode");
        }
        let t_chain = t0.elapsed().as_secs_f64();

        let raw = (step * 4 * CHAIN) as f64;
        let independent_cr = raw / ind_bytes as f64;
        let temporal_cr = raw / temporal_bytes as f64;
        let gain = temporal_cr / independent_cr;
        let chain_mbps = raw / 1e6 / t_chain.max(1e-12);
        println!(
            "{:<14} {:>6} {:>8.2} {:>8.2} {:>5.2}x {:>5}/{}/{} {:>12.1}",
            name,
            CHAIN,
            independent_cr,
            temporal_cr,
            gain,
            stats.chain_keyframes,
            stats.chain_deltas,
            stats.chain_fallbacks,
            chain_mbps
        );
        if name == "TS-checkpoint" {
            assert!(
                gain >= 1.5,
                "{name}: temporal CR gain {gain:.3}x fell below the 1.5x floor \
                 (independent {independent_cr:.2}, temporal {temporal_cr:.2})"
            );
        }
        rows.push(format!(
            concat!(
                "    {{\"backend\": \"qoz\", \"dataset\": \"{}\", ",
                "\"snapshots\": {}, \"points\": {}, \"eps_rel\": {:e}, ",
                "\"independent_cr\": {:.4}, \"temporal_cr\": {:.4}, ",
                "\"temporal_gain\": {:.4}, \"chain_decode_mbps\": {:.3}, ",
                "\"keyframes\": {}, \"deltas\": {}, \"fallbacks\": {}}}"
            ),
            name,
            CHAIN,
            step,
            eps,
            independent_cr,
            temporal_cr,
            gain,
            chain_mbps,
            stats.chain_keyframes,
            stats.chain_deltas,
            stats.chain_fallbacks
        ));
    }
    rows
}

/// The decompress axis of the `bench` baseline: repeated decodes of one
/// stream per backend, cold (a fresh allocating `Session::decompress`
/// per pass) versus warm (one `Pipeline::decompress_into` reusing the
/// scratch arena and the destination array). Asserts value identity
/// between the two paths and that warm passes allocate no stage
/// buffers, then reports both rates.
fn bench_decompress(o: &Opts) -> Vec<String> {
    use qoz_api::BackendId;

    const PASSES: usize = 8;
    let data = Dataset::Miranda.generate(o.size, 0);
    let eps = 1e-3;
    let raw_mb = (data.len() * 4) as f64 / 1e6;

    println!("\n--- decompress: cold allocating vs warm scratch-arena decode (Miranda) ---");
    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>10}",
        "codec", "cold MB/s", "warm MB/s", "speedup", "warm grows"
    );

    let mut rows = Vec::new();
    for id in [
        BackendId::Qoz,
        BackendId::Sz3,
        BackendId::Sz2,
        BackendId::Zfp,
        BackendId::Mgard,
    ] {
        let session = Session::builder()
            .backend(id)
            .bound(ErrorBound::Rel(eps))
            .build()
            .expect("bound is valid");
        let blob = session.compress(&data).expect("compress").blob;

        // Cold: every pass allocates its output and stage buffers anew.
        let t0 = std::time::Instant::now();
        let mut cold_out: NdArray<f32> = session.decompress(&blob).expect("cold decode");
        for _ in 1..PASSES {
            cold_out = session.decompress(&blob).expect("cold decode");
        }
        let t_cold = t0.elapsed().as_secs_f64();

        // Warm: one pipeline, one destination; the first pass grows the
        // arena, the timed steady-state passes must not.
        let mut pipe = session.pipeline::<f32>();
        let mut warm_out = NdArray::<f32>::zeros(qoz_tensor::Shape::d1(1));
        pipe.decompress_into(&blob, &mut warm_out)
            .expect("warm decode");
        let grows_before = pipe.stats().decode_grow_events;
        let t0 = std::time::Instant::now();
        for _ in 0..PASSES {
            pipe.decompress_into(&blob, &mut warm_out)
                .expect("warm decode");
        }
        let t_warm = t0.elapsed().as_secs_f64();
        let warm_grows = pipe.stats().decode_grow_events - grows_before;
        assert_eq!(
            cold_out.as_slice(),
            warm_out.as_slice(),
            "{}: scratch decode diverged from allocating decode",
            id.name()
        );
        assert_eq!(
            warm_grows,
            0,
            "{}: warm decode passes allocated stage buffers",
            id.name()
        );

        let cold_mbps = raw_mb * PASSES as f64 / t_cold.max(1e-12);
        let warm_mbps = raw_mb * PASSES as f64 / t_warm.max(1e-12);
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>7.2}x {:>10}",
            id.name(),
            cold_mbps,
            warm_mbps,
            warm_mbps / cold_mbps.max(1e-12),
            warm_grows
        );
        rows.push(format!(
            concat!(
                "    {{\"backend\": \"{}\", \"dataset\": \"{}\", ",
                "\"points\": {}, \"eps_rel\": {:e}, \"passes\": {}, ",
                "\"decomp_cold_mbps\": {:.3}, \"decomp_warm_mbps\": {:.3}, ",
                "\"warm_grow_events\": {}}}"
            ),
            id.name(),
            Dataset::Miranda.name(),
            data.len(),
            eps,
            PASSES,
            cold_mbps,
            warm_mbps,
            warm_grows
        ));
    }
    rows
}

/// The stage-breakdown axis (new in schema v5): where compression time
/// goes, from the `qoz_telemetry` stage timers. Per backend, one cold
/// compress on a fresh pipeline (pays tuning) and a warm steady-state
/// loop are measured separately, each reporting per-stage millisecond
/// sums next to the wall time; the steady phase asserts the
/// instrumented stages account for the bulk of the wall. A final
/// best-of-N comparison of the warm loop with spans enabled versus
/// disabled bounds the telemetry overhead at 2% (plus a 2 ms floor so
/// the smoke sizes aren't judged by timer jitter).
fn bench_stage_breakdown(o: &Opts) -> Vec<String> {
    use qoz_api::BackendId;

    const SNAPSHOTS: usize = 6;
    const TRIALS: usize = 3;
    let base = Dataset::Miranda.shape(o.size);
    let shape4 = qoz_tensor::Shape::new(&[SNAPSHOTS, base.dim(0), base.dim(1), base.dim(2)]);
    let field = qoz_datagen::time_series_like(shape4, 0xC0FFEE);
    let step = base.len();
    let snapshots: Vec<NdArray<f32>> = (0..SNAPSHOTS)
        .map(|t| NdArray::from_vec(base, field.as_slice()[t * step..(t + 1) * step].to_vec()))
        .collect();
    let eps = 1e-3;
    let stages = qoz_telemetry::stages();

    println!("\n--- stage breakdown: per-stage time via telemetry spans (Miranda-TS) ---");
    println!(
        "{:<8} {:<7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7}",
        "codec", "phase", "tune ms", "predq ms", "enc ms", "entr ms", "wall ms", "covered", "ovh %"
    );

    // One warm steady-state loop: tune once off the clock, then time
    // the remaining snapshots on the warmed pipeline.
    let steady_secs = |session: &Session| -> f64 {
        let mut pipe = session.pipeline::<f32>();
        pipe.compress(&snapshots[0]).expect("warm-up compress");
        let t0 = std::time::Instant::now();
        for s in &snapshots[1..] {
            pipe.compress(s).expect("steady compress");
        }
        t0.elapsed().as_secs_f64()
    };
    let stage_ms = |stages: &qoz_telemetry::Stages| -> [(String, f64, u64); 4] {
        stages
            .all()
            .map(|t| (t.name().to_string(), t.sum_ns() as f64 / 1e6, t.count()))
    };

    let mut rows = Vec::new();
    for id in [BackendId::Qoz, BackendId::Sz3] {
        let session = Session::builder()
            .backend(id)
            .bound(ErrorBound::Rel(eps))
            .build()
            .expect("bound is valid");
        qoz_telemetry::set_enabled(true);

        // Cold phase: the first compress on a fresh pipeline, tuning
        // included. Reported, not asserted — backends tune differently.
        let mut pipe = session.pipeline::<f32>();
        stages.reset();
        let t0 = std::time::Instant::now();
        pipe.compress(&snapshots[0]).expect("cold compress");
        let cold_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cold = stage_ms(stages);

        // Steady phase: warm repeats of the now-tuned snapshot, the
        // daemon's plan-cache-hit path. No tuning happens here (warm
        // hits never re-plan, so nothing nests inside the tune span),
        // and the remaining spans (predict+quantize, encode, entropy)
        // cover the whole compress path except stream assembly — their
        // sum has to land close to the measured wall time. The evolving
        // series is deliberately NOT used for this assertion: a retune
        // mid-series runs engine passes inside the tune span and the
        // sums would double-count.
        stages.reset();
        let t0 = std::time::Instant::now();
        for _ in 1..SNAPSHOTS {
            pipe.compress(&snapshots[0]).expect("steady compress");
        }
        let steady_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let steady = stage_ms(stages);
        assert_eq!(
            steady[0].2,
            0,
            "{}: a warm repeat of an unchanged snapshot re-tuned",
            id.name()
        );
        let steady_sum_ms: f64 = steady.iter().map(|(_, ms, _)| ms).sum();
        let coverage = steady_sum_ms / steady_wall_ms.max(1e-9);
        assert!(
            coverage <= 1.02,
            "{}: stage sums exceed wall time ({steady_sum_ms:.2}ms of {steady_wall_ms:.2}ms)",
            id.name()
        );
        assert!(
            coverage >= 0.75,
            "{}: stage spans cover only {:.0}% of steady-state wall time — \
             a compression stage lost its span",
            id.name(),
            coverage * 100.0
        );

        // Overhead: the same steady loop, best-of-N with spans enabled
        // vs disabled. Enabled may cost at most 2% (plus a 2 ms jitter
        // floor for the smoke sizes).
        let mut best_on = f64::INFINITY;
        let mut best_off = f64::INFINITY;
        for _ in 0..TRIALS {
            qoz_telemetry::set_enabled(true);
            best_on = best_on.min(steady_secs(&session));
            qoz_telemetry::set_enabled(false);
            best_off = best_off.min(steady_secs(&session));
        }
        qoz_telemetry::set_enabled(true);
        let overhead_pct = (best_on / best_off.max(1e-12) - 1.0) * 100.0;
        assert!(
            best_on <= best_off * 1.02 + 0.002,
            "{}: telemetry spans cost {overhead_pct:.2}% on the warm steady-state loop \
             (enabled {best_on:.4}s vs disabled {best_off:.4}s)",
            id.name()
        );

        for (phase, wall_ms, by_stage) in [
            ("cold", cold_wall_ms, &cold),
            ("steady", steady_wall_ms, &steady),
        ] {
            println!(
                "{:<8} {:<7} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>7.0}% {:>7.2}",
                id.name(),
                phase,
                by_stage[0].1,
                by_stage[1].1,
                by_stage[2].1,
                by_stage[3].1,
                wall_ms,
                by_stage.iter().map(|(_, ms, _)| ms).sum::<f64>() / wall_ms.max(1e-9) * 100.0,
                overhead_pct
            );
        }
        let stage_json = |by_stage: &[(String, f64, u64); 4]| -> String {
            by_stage
                .iter()
                .map(|(name, ms, spans)| {
                    format!("\"{name}_ms\": {ms:.3}, \"{name}_spans\": {spans}")
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        rows.push(format!(
            concat!(
                "    {{\"backend\": \"{}\", \"dataset\": \"Miranda-TS\", ",
                "\"snapshots\": {}, \"points\": {}, \"eps_rel\": {:e}, ",
                "\"cold\": {{\"wall_ms\": {:.3}, {}}}, ",
                "\"steady\": {{\"wall_ms\": {:.3}, {}, \"stage_coverage\": {:.4}}}, ",
                "\"telemetry_overhead_pct\": {:.3}}}"
            ),
            id.name(),
            SNAPSHOTS,
            step,
            eps,
            cold_wall_ms,
            stage_json(&cold),
            steady_wall_ms,
            stage_json(&steady),
            coverage,
            overhead_pct
        ));
    }
    rows
}

/// The kernels axis (new in schema v7): the scalar reference loops
/// timed head-to-head against the runtime-dispatched SIMD kernels on
/// the three vectorized hot paths — linear-scale quantization, the
/// fused interpolation stencils, and Huffman histogramming. The two
/// variants are exercised through the same public entry points the
/// engine uses, on smooth mostly-predictable inputs (the compressor's
/// common case), best-of-N per variant. Output bytes are bit-identical
/// across paths, so the speedup column is the whole story.
fn bench_kernels() -> Vec<String> {
    use qoz_codec::huffman::dense_counts;
    use qoz_codec::simd::{quantize_block, KernelPath, QuantSpec, BLOCK};
    use qoz_codec::LinearQuantizer;
    use qoz_predict::simd::fill_preds;
    use qoz_predict::traverse::{LineRun, RunStencil};
    use qoz_predict::InterpKind;

    const N: usize = 1 << 19;
    const TRIALS: usize = 5;
    let dispatched = qoz_codec::simd::selected();
    println!(
        "\n--- kernels: scalar vs dispatched ({}; cpu: {}) ---",
        dispatched.name(),
        qoz_codec::simd::cpu_features()
    );
    println!(
        "{:<16} {:<6} {:>12} {:>14} {:>8}",
        "stage", "dtype", "scalar MB/s", "dispatch MB/s", "speedup"
    );

    let best_of = |f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..TRIALS {
            let t0 = std::time::Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let mut rows = Vec::new();
    let mut row = |stage: &str, dtype: &str, kernel: &str, bytes: usize, t_s: f64, t_d: f64| {
        let s_mbps = bytes as f64 / t_s / 1e6;
        let d_mbps = bytes as f64 / t_d / 1e6;
        let speedup = t_s / t_d;
        println!("{stage:<16} {dtype:<6} {s_mbps:>12.1} {d_mbps:>14.1} {speedup:>7.2}x");
        rows.push(format!(
            concat!(
                "    {{\"stage\": \"{}\", \"dtype\": \"{}\", \"kernel\": \"{}\", ",
                "\"points\": {}, \"scalar_mbps\": {:.3}, ",
                "\"dispatched_mbps\": {:.3}, \"speedup\": {:.3}}}"
            ),
            stage, dtype, kernel, N, s_mbps, d_mbps, speedup
        ));
    };

    // Quantizer: smooth field, predictions within a few bound-widths of
    // the value so nearly every lane takes the regular (vectorized)
    // route, like interpolation residuals do.
    let q = LinearQuantizer::new(1e-3);
    let spec = QuantSpec::from_quantizer(&q).expect("default radius is SIMD-safe");
    fn quantize_sweep<T: qoz_tensor::Scalar>(
        path: KernelPath,
        spec: &QuantSpec,
        vals: &[T],
        preds: &[f64],
    ) -> u32 {
        let mut vals_f = [0f64; BLOCK];
        let mut codes = [0u32; BLOCK];
        let mut recons = [T::from_f64(0.0); BLOCK];
        let mut acc = 0u32;
        for (v, p) in vals.chunks(BLOCK).zip(preds.chunks(BLOCK)) {
            let m = v.len();
            quantize_block(
                path,
                spec,
                v,
                p,
                &mut vals_f[..m],
                &mut codes[..m],
                &mut recons[..m],
            );
            acc ^= codes[m - 1];
        }
        acc
    }
    let vals_f64: Vec<f64> = (0..N).map(|i| (i as f64 * 1e-3).sin() * 4.0).collect();
    let preds: Vec<f64> = vals_f64.iter().map(|v| v + 2.7e-3).collect();
    let vals_f32: Vec<f32> = vals_f64.iter().map(|&v| v as f32).collect();
    for (dtype, bytes) in [("f32", 4 * N), ("f64", 8 * N)] {
        let (t_s, t_d) = if dtype == "f32" {
            (
                best_of(&mut || {
                    std::hint::black_box(quantize_sweep(
                        KernelPath::Scalar,
                        &spec,
                        &vals_f32,
                        &preds,
                    ));
                }),
                best_of(&mut || {
                    std::hint::black_box(quantize_sweep(dispatched, &spec, &vals_f32, &preds));
                }),
            )
        } else {
            (
                best_of(&mut || {
                    std::hint::black_box(quantize_sweep(
                        KernelPath::Scalar,
                        &spec,
                        &vals_f64,
                        &preds,
                    ));
                }),
                best_of(&mut || {
                    std::hint::black_box(quantize_sweep(dispatched, &spec, &vals_f64, &preds));
                }),
            )
        };
        row("quantize", dtype, dispatched.name(), bytes, t_s, t_d);
    }

    // Stencils: interior line runs over a smooth buffer, the geometry
    // the traversal emits on contiguous lines (step 2s, neighbours at
    // ±s / ±3s with s = 1).
    for kind in [InterpKind::Linear, InterpKind::Cubic, InterpKind::Quadratic] {
        let stencil_sweep = |path: KernelPath| {
            let mut preds = [0f64; BLOCK];
            let mut base = 3usize;
            while base + 2 * BLOCK + 3 < N {
                let run = LineRun {
                    off0: base,
                    step: 2,
                    cnt: BLOCK,
                    d1: 1,
                    d3: 3,
                    stencil: RunStencil::Interp(kind),
                };
                fill_preds(path, &vals_f64, &run, &mut preds[..BLOCK]);
                std::hint::black_box(preds[BLOCK - 1]);
                base += 2 * BLOCK;
            }
        };
        let t_s = best_of(&mut || stencil_sweep(KernelPath::Scalar));
        let t_d = best_of(&mut || stencil_sweep(dispatched));
        let name = match kind {
            InterpKind::Linear => "stencil_linear",
            InterpKind::Cubic => "stencil_cubic",
            InterpKind::Quadratic => "stencil_quadratic",
        };
        row(name, "f64", dispatched.name(), 8 * N / 2, t_s, t_d);
    }

    // Histogram: quantizer-bin-like symbols, long runs of the centre
    // code (smooth data) with a pseudo-random remainder. The split
    // variant is plain integer code, not SIMD, so it is reported under
    // its own kernel tag.
    let radius = LinearQuantizer::DEFAULT_RADIUS;
    let symbols: Vec<u32> = (0..N)
        .map(|i| {
            if i % 7 == 0 {
                radius + ((i * 2654435761) % 96) as u32 - 48
            } else {
                radius
            }
        })
        .collect();
    let max = *symbols.iter().max().unwrap() as usize;
    let mut counts = Vec::new();
    let t_s = best_of(&mut || {
        dense_counts(&symbols, max, &mut counts, false);
        std::hint::black_box(counts[max]);
    });
    let t_d = best_of(&mut || {
        dense_counts(&symbols, max, &mut counts, true);
        std::hint::black_box(counts[max]);
    });
    row("histogram", "u32", "split4", 4 * N, t_s, t_d);
    rows
}

/// Table III: compression ratios under the same error bound; QoZ in
/// "maximize compression ratio" mode.
fn table3(o: &Opts) {
    println!("\n=== Table III: compression ratio @ same value-range error bound ===");
    println!(
        "{:<12} {:>6}  {:>8} {:>8} {:>8} {:>8} {:>8}  {:>9}",
        "Dataset", "eps", "SZ2.1", "SZ3", "ZFP", "MGARD+", "QoZ", "improve%"
    );
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let data = ds.generate(o.size, 0);
        for eps in [1e-2, 1e-3, 1e-4] {
            let set = paper_set::<f32>(QualityMetric::CompressionRatio);
            let crs: Vec<f64> = set
                .iter()
                .map(|c| evaluate(&**c, &data, ErrorBound::Rel(eps)).cr)
                .collect();
            let qoz = crs[4];
            let second = crs[..4].iter().cloned().fold(f64::MIN, f64::max);
            let improve = (qoz / second - 1.0) * 100.0;
            println!(
                "{:<12} {:>6.0e}  {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}  {:>8.1}%",
                ds.name(),
                eps,
                crs[0],
                crs[1],
                crs[2],
                crs[3],
                qoz,
                improve
            );
            rows.push(format!(
                "{},{:e},{},{},{},{},{},{:.2}",
                ds.name(),
                eps,
                crs[0],
                crs[1],
                crs[2],
                crs[3],
                qoz,
                improve
            ));
        }
    }
    let path = format!("{}/table3_cr.csv", o.out);
    write_csv(
        &path,
        "dataset,eps,sz2,sz3,zfp,mgard,qoz,improve_pct",
        &rows,
    )
    .unwrap();
    println!("-> {path}");
}

/// Table IV: compression/decompression speeds at eps = 1e-3, QoZ in
/// PSNR-preferred mode.
fn table4(o: &Opts) {
    println!("\n=== Table IV: compression/decompression speed (MB/s), eps=1e-3 ===");
    println!(
        "{:<12}  {:>7} {:>7} {:>7} {:>7} {:>7}   {:>7} {:>7} {:>7} {:>7} {:>7}",
        "Dataset",
        "SZ2.1c",
        "SZ3c",
        "ZFPc",
        "MGDc",
        "QoZc",
        "SZ2.1d",
        "SZ3d",
        "ZFPd",
        "MGDd",
        "QoZd"
    );
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let data = ds.generate(o.size, 0);
        let set = paper_set::<f32>(QualityMetric::Psnr);
        let res: Vec<_> = set
            .iter()
            .map(|c| evaluate(&**c, &data, ErrorBound::Rel(1e-3)))
            .collect();
        println!(
            "{:<12}  {:>7.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}   {:>7.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}",
            ds.name(),
            res[0].comp_mbps,
            res[1].comp_mbps,
            res[2].comp_mbps,
            res[3].comp_mbps,
            res[4].comp_mbps,
            res[0].decomp_mbps,
            res[1].decomp_mbps,
            res[2].decomp_mbps,
            res[3].decomp_mbps,
            res[4].decomp_mbps,
        );
        rows.push(format!(
            "{},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1}",
            ds.name(),
            res[0].comp_mbps,
            res[1].comp_mbps,
            res[2].comp_mbps,
            res[3].comp_mbps,
            res[4].comp_mbps,
            res[0].decomp_mbps,
            res[1].decomp_mbps,
            res[2].decomp_mbps,
            res[3].decomp_mbps,
            res[4].decomp_mbps,
        ));
    }
    let path = format!("{}/table4_speed.csv", o.out);
    write_csv(
        &path,
        "dataset,sz2_c,sz3_c,zfp_c,mgard_c,qoz_c,sz2_d,sz3_d,zfp_d,mgard_d,qoz_d",
        &rows,
    )
    .unwrap();
    println!("-> {path}");
}

/// Fig. 7: distribution of compression errors vs the bound (CESM + NYX).
fn fig7(o: &Opts) {
    println!("\n=== Fig. 7: compression error distribution (QoZ) ===");
    let bins = 21usize;
    let mut rows = Vec::new();
    for ds in [Dataset::CesmAtm, Dataset::Nyx] {
        let data = ds.generate(o.size, 0);
        for eps in [1e-3, 1e-4] {
            let bound = ErrorBound::Rel(eps);
            let abs = bound.absolute(&data);
            let qoz = Qoz::default();
            let blob = qoz.compress(&data, bound);
            let recon: NdArray<f32> = qoz.decompress(&blob).unwrap();
            let hist = qoz_metrics::error_histogram(&data, &recon, abs, bins);
            let maxerr = data.max_abs_diff(&recon);
            println!(
                "{} eps={eps:.0e} (abs e={abs:.3e}): max|err|={maxerr:.3e}  within bound: {}",
                ds.name(),
                maxerr <= abs
            );
            let total: u64 = hist.iter().sum();
            for (k, &h) in hist.iter().enumerate() {
                let center = -1.0 + (k as f64 + 0.5) * 2.0 / bins as f64;
                rows.push(format!(
                    "{},{:e},{:.3},{}",
                    ds.name(),
                    eps,
                    center,
                    h as f64 / total as f64
                ));
            }
        }
    }
    let path = format!("{}/fig7_error_dist.csv", o.out);
    write_csv(&path, "dataset,eps,err_over_bound,fraction", &rows).unwrap();
    println!("-> {path}");
}

/// The shared rate-distortion sweep for Fig. 8 (PSNR) and Fig. 9 (SSIM).
fn rate_curves(o: &Opts, metric: QualityMetric, tag: &str) {
    println!("\n=== {}: rate-{} curves ===", tag, metric.name());
    let sweeps = [1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4];
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let data = ds.generate(o.size, 0);
        println!("{}:", ds.name());
        println!(
            "  {:<8} {:>9} {:>9} {:>9}",
            "comp", "bitrate", "PSNR", "SSIM"
        );
        for c in paper_set::<f32>(metric) {
            for eps in sweeps {
                let r = evaluate(&*c, &data, ErrorBound::Rel(eps));
                rows.push(format!(
                    "{},{},{:e},{:.4},{:.2},{:.4},{:.4}",
                    ds.name(),
                    c.name(),
                    eps,
                    r.bitrate,
                    r.psnr,
                    r.ssim,
                    r.ac
                ));
                if eps == 1e-3 {
                    println!(
                        "  {:<8} {:>9.4} {:>9.2} {:>9.4}",
                        c.name(),
                        r.bitrate,
                        r.psnr,
                        r.ssim
                    );
                }
            }
        }
    }
    let path = format!(
        "{}/{}_rate_{}.csv",
        o.out,
        tag,
        metric.name().to_lowercase()
    );
    write_csv(&path, "dataset,compressor,eps,bitrate,psnr,ssim,ac", &rows).unwrap();
    println!("-> {path}");
}

/// Fig. 10: rate-autocorrelation for SZ3, QoZ(PSNR), QoZ(AC).
fn fig10(o: &Opts) {
    println!("\n=== Fig. 10: rate vs |lag-1 autocorrelation| of errors ===");
    let sweeps = [3e-2, 1e-2, 3e-3, 1e-3, 3e-4];
    let variants: Vec<(&str, Box<dyn Codec<f32>>)> = vec![
        ("SZ3", Box::new(qoz_sz3::Sz3::default())),
        (
            "QoZ_PSNRPreferred",
            Box::new(Qoz::for_metric(QualityMetric::Psnr)),
        ),
        (
            "QoZ_ACPreferred",
            Box::new(Qoz::for_metric(QualityMetric::AutoCorrelation)),
        ),
    ];
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let data = ds.generate(o.size, 0);
        println!("{} (at eps=1e-3):", ds.name());
        for (label, c) in &variants {
            for eps in sweeps {
                let r = evaluate(&**c, &data, ErrorBound::Rel(eps));
                rows.push(format!(
                    "{},{},{:e},{:.4},{:.4}",
                    ds.name(),
                    label,
                    eps,
                    r.bitrate,
                    r.ac
                ));
                if eps == 1e-3 {
                    println!("  {:<18} bitrate={:.4}  |AC|={:.4}", label, r.bitrate, r.ac);
                }
            }
        }
    }
    let path = format!("{}/fig10_rate_ac.csv", o.out);
    write_csv(&path, "dataset,variant,eps,bitrate,abs_ac", &rows).unwrap();
    println!("-> {path}");
}

/// Fig. 11: visual quality at a fixed compression ratio (Scale-LETKF).
fn fig11(o: &Opts) {
    println!("\n=== Fig. 11: reconstruction quality at CR=65 (Scale-LETKF) ===");
    let data3 = Dataset::ScaleLetkf.generate(o.size, 0);
    // Work on the middle 2D slice like the paper's visualization.
    let mid = data3.shape().dim(0) / 2;
    let slice = data3.extract_region(&Region::new(
        &[mid, 0, 0],
        &[1, data3.shape().dim(1), data3.shape().dim(2)],
    ));
    let data = NdArray::from_vec(
        qoz_tensor::Shape::d2(data3.shape().dim(1), data3.shape().dim(2)),
        slice.into_vec(),
    );
    let target_cr = 65.0;
    write_pgm(&format!("{}/fig11_original.pgm", o.out), &data).unwrap();
    let mut rows = Vec::new();
    for id in qoz_api::BackendRegistry::ALL {
        // Quality-first session: ask each backend for the target ratio
        // directly and let the facade find the bound.
        let session = Session::builder()
            .backend(id)
            .metric(QualityMetric::Psnr)
            .ratio(target_cr)
            .build()
            .expect("ratio target is valid");
        let out = session.compress(&data).expect("session compression");
        let recon: NdArray<f32> = session.decompress(&out.blob).unwrap();
        let cr = out.achieved.expect("ratio sessions report achieved CR");
        let psnr = qoz_metrics::psnr(&data, &recon);
        println!("  {:<8} CR={:>6.1}  PSNR={:>6.2} dB", id.name(), cr, psnr);
        write_pgm(
            &format!("{}/fig11_{}.pgm", o.out, id.name().replace('.', "_")),
            &recon,
        )
        .unwrap();
        rows.push(format!("{},{:.2},{:.3}", id.name(), cr, psnr));
    }
    let path = format!("{}/fig11_visual.csv", o.out);
    write_csv(&path, "compressor,cr,psnr", &rows).unwrap();
    println!("-> {path} (+ PGM images)");
}

/// Fig. 12: component ablation (CESM + Miranda), rate-PSNR at several
/// bounds per variant.
fn fig12(o: &Opts) {
    println!("\n=== Fig. 12: ablation study (rate-PSNR) ===");
    let sweeps = [1e-2, 3e-3, 1e-3, 3e-4];
    let mut rows = Vec::new();
    for ds in [Dataset::CesmAtm, Dataset::Miranda] {
        let data = ds.generate(o.size, 0);
        println!("{} (at eps=1e-3):", ds.name());
        for v in AblationVariant::ALL {
            let comp: Box<dyn Codec<f32>> = match v {
                AblationVariant::Sz3Baseline => Box::new(qoz_sz3::Sz3::default()),
                other => Box::new(other.compressor(QualityMetric::Psnr)),
            };
            for eps in sweeps {
                let r = evaluate(&*comp, &data, ErrorBound::Rel(eps));
                rows.push(format!(
                    "{},{},{:e},{:.4},{:.2}",
                    ds.name(),
                    v.name(),
                    eps,
                    r.bitrate,
                    r.psnr
                ));
                if eps == 1e-3 {
                    println!(
                        "  {:<14} bitrate={:.4}  PSNR={:.2}",
                        v.name(),
                        r.bitrate,
                        r.psnr
                    );
                }
            }
        }
    }
    let path = format!("{}/fig12_ablation.csv", o.out);
    write_csv(&path, "dataset,variant,eps,bitrate,psnr", &rows).unwrap();
    println!("-> {path}");
}

/// Fig. 13: fixed (alpha, beta) settings vs auto-tuning (CESM + NYX).
fn fig13(o: &Opts) {
    println!("\n=== Fig. 13: fixed (alpha,beta) vs auto-tuning (rate-PSNR) ===");
    let sweeps = [3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4];
    let fixed = [(1.0, 1.0), (1.5, 3.0), (2.0, 4.0)];
    let mut rows = Vec::new();
    for ds in [Dataset::CesmAtm, Dataset::Nyx] {
        let data = ds.generate(o.size, 0);
        println!("{} (at eps=1e-3):", ds.name());
        for (a, b) in fixed {
            let qoz = Qoz::new(QozConfig {
                metric: QualityMetric::Psnr,
                param_autotuning: false,
                fixed_params: Some((a, b)),
                ..Default::default()
            });
            for eps in sweeps {
                let r = evaluate(&qoz, &data, ErrorBound::Rel(eps));
                rows.push(format!(
                    "{},a={} b={},{:e},{:.4},{:.2}",
                    ds.name(),
                    a,
                    b,
                    eps,
                    r.bitrate,
                    r.psnr
                ));
                if eps == 1e-3 {
                    println!(
                        "  a={a} b={b}: bitrate={:.4}  PSNR={:.2}",
                        r.bitrate, r.psnr
                    );
                }
            }
        }
        let auto = Qoz::for_metric(QualityMetric::Psnr);
        for eps in sweeps {
            let r = evaluate(&auto, &data, ErrorBound::Rel(eps));
            rows.push(format!(
                "{},autotuning,{:e},{:.4},{:.2}",
                ds.name(),
                eps,
                r.bitrate,
                r.psnr
            ));
            if eps == 1e-3 {
                println!("  autotuning: bitrate={:.4}  PSNR={:.2}", r.bitrate, r.psnr);
            }
        }
    }
    let path = format!("{}/fig13_param_tuning.csv", o.out);
    write_csv(&path, "dataset,setting,eps,bitrate,psnr", &rows).unwrap();
    println!("-> {path}");
}

/// Fig. 14: parallel dump/load times from measured kernel throughputs
/// and CRs plugged into the shared-bandwidth model.
fn fig14(o: &Opts) {
    println!("\n=== Fig. 14: parallel dump/load performance (Hurricane) ===");
    let data = Dataset::Hurricane.generate(o.size, 0);
    let bound = ErrorBound::Rel(1e-3);
    // Measure each codec once.
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>8} {:>8} {:>8}   dump/load seconds at 1K/2K/4K/8K ranks",
        "codec", "CR", "comp", "decomp"
    );
    let mut measured: Vec<(String, f64, f64, f64)> = vec![("raw".into(), 1.0, 0.0, 0.0)];
    for c in paper_set::<f32>(QualityMetric::CompressionRatio) {
        let r = evaluate(&*c, &data, bound);
        measured.push((
            c.name().to_string(),
            r.cr,
            r.comp_mbps * 1e6,
            r.decomp_mbps * 1e6,
        ));
    }
    for (name, cr, comp, decomp) in &measured {
        let mut line = format!(
            "{:<8} {:>8.1} {:>8.0} {:>8.0}  ",
            name,
            cr,
            comp / 1e6,
            decomp / 1e6
        );
        for ranks in [1024usize, 2048, 4096, 8192] {
            let m = IoModel {
                ranks,
                ..Default::default()
            };
            let t = if *cr <= 1.0 {
                m.raw()
            } else {
                m.with_codec(*cr, *comp, *decomp)
            };
            line.push_str(&format!(" {:>6.1}/{:<6.1}", t.dump_s(), t.load_s()));
            rows.push(format!(
                "{},{},{:.2},{:.2},{:.2}",
                name,
                ranks,
                cr,
                t.dump_s(),
                t.load_s()
            ));
        }
        println!("{line}");
    }
    let path = format!("{}/fig14_pario.csv", o.out);
    write_csv(&path, "codec,ranks,cr,dump_s,load_s", &rows).unwrap();
    println!("-> {path}");
}
