//! Shared harness utilities for reproducing the paper's tables and
//! figures.
//!
//! The [`AnyCompressor`] enum dispatches over the five evaluated codecs;
//! [`evaluate`] runs one timed compress/decompress cycle and collects
//! every metric the paper reports (compression ratio, bit-rate, PSNR,
//! SSIM, lag-1 error autocorrelation, throughput, max error). The
//! experiment drivers in `src/bin/repro.rs` are thin loops over these
//! helpers; results go to stdout as aligned tables and to `results/*.csv`.

use qoz_codec::stream::{Compressor, ErrorBound};
use qoz_core::Qoz;
use qoz_metrics::QualityMetric;
use qoz_mgard::Mgard;
use qoz_sz2::Sz2;
use qoz_sz3::Sz3;
use qoz_tensor::NdArray;
use qoz_zfp::Zfp;
use std::io::Write as _;
use std::time::Instant;

/// Dispatch wrapper over the five evaluated compressors.
#[derive(Debug, Clone)]
pub enum AnyCompressor {
    /// SZ2.1 baseline.
    Sz2(Sz2),
    /// SZ3 baseline.
    Sz3(Sz3),
    /// ZFP baseline.
    Zfp(Zfp),
    /// MGARD+ baseline.
    Mgard(Mgard),
    /// QoZ (ours).
    Qoz(Qoz),
}

impl AnyCompressor {
    /// The paper's comparison set, QoZ in the given tuning mode.
    pub fn paper_set(metric: QualityMetric) -> Vec<AnyCompressor> {
        vec![
            AnyCompressor::Sz2(Sz2::default()),
            AnyCompressor::Sz3(Sz3::default()),
            AnyCompressor::Zfp(Zfp),
            AnyCompressor::Mgard(Mgard),
            AnyCompressor::Qoz(Qoz::for_metric(metric)),
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            AnyCompressor::Sz2(_) => "SZ2.1",
            AnyCompressor::Sz3(_) => "SZ3",
            AnyCompressor::Zfp(_) => "ZFP",
            AnyCompressor::Mgard(_) => "MGARD+",
            AnyCompressor::Qoz(_) => "QoZ",
        }
    }

    /// Compress an `f32` array.
    pub fn compress(&self, data: &NdArray<f32>, bound: ErrorBound) -> Vec<u8> {
        match self {
            AnyCompressor::Sz2(c) => c.compress(data, bound),
            AnyCompressor::Sz3(c) => c.compress(data, bound),
            AnyCompressor::Zfp(c) => c.compress(data, bound),
            AnyCompressor::Mgard(c) => c.compress(data, bound),
            AnyCompressor::Qoz(c) => c.compress(data, bound),
        }
    }

    /// Decompress an `f32` array.
    pub fn decompress(&self, blob: &[u8]) -> qoz_codec::Result<NdArray<f32>> {
        match self {
            AnyCompressor::Sz2(c) => c.decompress(blob),
            AnyCompressor::Sz3(c) => c.decompress(blob),
            AnyCompressor::Zfp(c) => c.decompress(blob),
            AnyCompressor::Mgard(c) => c.decompress(blob),
            AnyCompressor::Qoz(c) => c.decompress(blob),
        }
    }
}

/// The trait impl lets harness code hand an [`AnyCompressor`] straight
/// to generic consumers (`qoz_archive::ArchiveWriter`, `qoz_pario`).
impl Compressor<f32> for AnyCompressor {
    fn id(&self) -> qoz_codec::CompressorId {
        match self {
            AnyCompressor::Sz2(c) => Compressor::<f32>::id(c),
            AnyCompressor::Sz3(c) => Compressor::<f32>::id(c),
            AnyCompressor::Zfp(c) => Compressor::<f32>::id(c),
            AnyCompressor::Mgard(c) => Compressor::<f32>::id(c),
            AnyCompressor::Qoz(c) => Compressor::<f32>::id(c),
        }
    }

    fn compress(&self, data: &NdArray<f32>, bound: ErrorBound) -> Vec<u8> {
        AnyCompressor::compress(self, data, bound)
    }

    fn decompress(&self, blob: &[u8]) -> qoz_codec::Result<NdArray<f32>> {
        AnyCompressor::decompress(self, blob)
    }

    fn name(&self) -> &'static str {
        AnyCompressor::name(self)
    }
}

/// All metrics collected from one compress/decompress cycle.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Compression ratio (raw bytes / compressed bytes).
    pub cr: f64,
    /// Bits per data point.
    pub bitrate: f64,
    /// PSNR in dB.
    pub psnr: f64,
    /// Mean windowed SSIM.
    pub ssim: f64,
    /// |lag-1 autocorrelation| of errors.
    pub ac: f64,
    /// Maximum absolute error.
    pub max_err: f64,
    /// Compression throughput, MB/s of raw input.
    pub comp_mbps: f64,
    /// Decompression throughput, MB/s of raw output.
    pub decomp_mbps: f64,
}

/// Run one timed cycle and measure everything.
pub fn evaluate(c: &AnyCompressor, data: &NdArray<f32>, bound: ErrorBound) -> RunResult {
    let raw_bytes = (data.len() * 4) as f64;
    let t0 = Instant::now();
    let blob = c.compress(data, bound);
    let t_comp = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let recon = c.decompress(&blob).expect("self-produced blob must decode");
    let t_dec = t0.elapsed().as_secs_f64();

    RunResult {
        cr: raw_bytes / blob.len() as f64,
        bitrate: blob.len() as f64 * 8.0 / data.len() as f64,
        psnr: qoz_metrics::psnr(data, &recon),
        ssim: qoz_metrics::ssim(data, &recon),
        ac: qoz_metrics::error_autocorrelation(data, &recon, 1).abs(),
        max_err: data.max_abs_diff(&recon),
        comp_mbps: raw_bytes / 1e6 / t_comp.max(1e-12),
        decomp_mbps: raw_bytes / 1e6 / t_dec.max(1e-12),
    }
}

/// Binary-search the relative error bound that hits a target compression
/// ratio (used for the same-CR visual comparison, Fig. 11).
pub fn bound_for_target_cr(
    c: &AnyCompressor,
    data: &NdArray<f32>,
    target_cr: f64,
    iterations: usize,
) -> f64 {
    let mut lo = 1e-7f64;
    let mut hi = 0.3f64;
    for _ in 0..iterations {
        let mid = (lo * hi).sqrt(); // geometric bisection over decades
        let blob = c.compress(data, ErrorBound::Rel(mid));
        let cr = (data.len() * 4) as f64 / blob.len() as f64;
        if cr < target_cr {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

/// Write rows to a CSV file under `results/`.
pub fn write_csv(path: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

/// Write a 2D f32 slice as a binary PGM image (min-max normalized),
/// for the Fig. 11 visual comparison.
pub fn write_pgm(path: &str, data: &NdArray<f32>) -> std::io::Result<()> {
    assert_eq!(data.shape().ndim(), 2, "PGM output needs a 2D slice");
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let (h, w) = (data.shape().dim(0), data.shape().dim(1));
    let (lo, hi) = data.finite_min_max().unwrap_or((0.0, 1.0));
    let range = (hi - lo).max(f32::MIN_POSITIVE);
    let mut out = Vec::with_capacity(h * w + 32);
    out.extend_from_slice(format!("P5\n{w} {h}\n255\n").as_bytes());
    for &v in data.as_slice() {
        let t = ((v - lo) / range).clamp(0.0, 1.0);
        out.push((t * 255.0) as u8);
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let c = AnyCompressor::Sz3(Sz3::default());
        let r = evaluate(&c, &data, ErrorBound::Rel(1e-3));
        assert!(r.cr > 1.0);
        assert!((r.bitrate - 32.0 / r.cr).abs() < 1e-9);
        assert!(r.psnr > 20.0);
        assert!(r.ssim > 0.3 && r.ssim <= 1.0 + 1e-12);
        assert!(r.max_err <= ErrorBound::Rel(1e-3).absolute(&data) * (1.0 + 1e-9));
    }

    #[test]
    fn paper_set_has_five_compressors() {
        let set = AnyCompressor::paper_set(QualityMetric::Psnr);
        let names: Vec<_> = set.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["SZ2.1", "SZ3", "ZFP", "MGARD+", "QoZ"]);
    }

    #[test]
    fn target_cr_search_converges() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let c = AnyCompressor::Sz3(Sz3::default());
        let eps = bound_for_target_cr(&c, &data, 30.0, 12);
        let blob = c.compress(&data, ErrorBound::Rel(eps));
        let cr = (data.len() * 4) as f64 / blob.len() as f64;
        assert!((cr - 30.0).abs() / 30.0 < 0.5, "cr {cr} target 30");
    }

    #[test]
    fn pgm_writer_emits_valid_header() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let path = std::env::temp_dir().join("qoz_test.pgm");
        write_pgm(path.to_str().unwrap(), &data).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n128 64\n255\n"));
        assert_eq!(bytes.len(), 14 + 64 * 128);
        let _ = std::fs::remove_file(path);
    }
}
