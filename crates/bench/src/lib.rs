//! Shared harness utilities for reproducing the paper's tables and
//! figures.
//!
//! Backend dispatch goes through [`qoz_api::BackendRegistry`] —
//! [`paper_set`] returns the five evaluated codecs in table order;
//! [`evaluate`] runs one timed compress/decompress cycle and collects
//! every metric the paper reports (compression ratio, bit-rate, PSNR,
//! SSIM, lag-1 error autocorrelation, throughput, max error). The
//! experiment drivers in `src/bin/repro.rs` are thin loops over these
//! helpers; results go to stdout as aligned tables and to `results/*.csv`.

use qoz_api::{BackendRegistry, Codec};
use qoz_codec::stream::ErrorBound;
use qoz_metrics::QualityMetric;
use qoz_tensor::{NdArray, Scalar};
use std::io::Write as _;
use std::time::Instant;

/// The paper's comparison set (SZ2.1, SZ3, ZFP, MGARD+, QoZ), QoZ in
/// the given tuning mode — a thin veneer over
/// [`BackendRegistry::paper_set`].
pub fn paper_set<T: Scalar>(metric: QualityMetric) -> Vec<Box<dyn Codec<T>>> {
    BackendRegistry::with_metric(metric).paper_set::<T>()
}

/// All metrics collected from one compress/decompress cycle.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Compression ratio (raw bytes / compressed bytes).
    pub cr: f64,
    /// Bits per data point.
    pub bitrate: f64,
    /// PSNR in dB.
    pub psnr: f64,
    /// Mean windowed SSIM.
    pub ssim: f64,
    /// |lag-1 autocorrelation| of errors.
    pub ac: f64,
    /// Maximum absolute error.
    pub max_err: f64,
    /// Compression throughput, MB/s of raw input.
    pub comp_mbps: f64,
    /// Decompression throughput, MB/s of raw output.
    pub decomp_mbps: f64,
}

/// Run one timed cycle and measure everything.
pub fn evaluate<T: Scalar>(c: &dyn Codec<T>, data: &NdArray<T>, bound: ErrorBound) -> RunResult {
    let raw_bytes = (data.len() * T::BYTES) as f64;
    let bits_per_elem = (T::BYTES * 8) as f64;
    let t0 = Instant::now();
    let blob = c.compress(data, bound);
    let t_comp = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let recon = c.decompress(&blob).expect("self-produced blob must decode");
    let t_dec = t0.elapsed().as_secs_f64();

    RunResult {
        cr: raw_bytes / blob.len() as f64,
        bitrate: blob.len() as f64 * bits_per_elem / raw_bytes,
        psnr: qoz_metrics::psnr(data, &recon),
        ssim: qoz_metrics::ssim(data, &recon),
        ac: qoz_metrics::error_autocorrelation(data, &recon, 1).abs(),
        max_err: data.max_abs_diff(&recon),
        comp_mbps: raw_bytes / 1e6 / t_comp.max(1e-12),
        decomp_mbps: raw_bytes / 1e6 / t_dec.max(1e-12),
    }
}

/// Write rows to a CSV file under `results/`.
pub fn write_csv(path: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

/// Write a 2D f32 slice as a binary PGM image (min-max normalized),
/// for the Fig. 11 visual comparison.
pub fn write_pgm(path: &str, data: &NdArray<f32>) -> std::io::Result<()> {
    assert_eq!(data.shape().ndim(), 2, "PGM output needs a 2D slice");
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let (h, w) = (data.shape().dim(0), data.shape().dim(1));
    let (lo, hi) = data.finite_min_max().unwrap_or((0.0, 1.0));
    let range = (hi - lo).max(f32::MIN_POSITIVE);
    let mut out = Vec::with_capacity(h * w + 32);
    out.extend_from_slice(format!("P5\n{w} {h}\n255\n").as_bytes());
    for &v in data.as_slice() {
        let t = ((v - lo) / range).clamp(0.0, 1.0);
        out.push((t * 255.0) as u8);
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let r = evaluate(&qoz_sz3::Sz3::default(), &data, ErrorBound::Rel(1e-3));
        assert!(r.cr > 1.0);
        assert!((r.bitrate - 32.0 / r.cr).abs() < 1e-9);
        assert!(r.psnr > 20.0);
        assert!(r.ssim > 0.3 && r.ssim <= 1.0 + 1e-12);
        assert!(r.max_err <= ErrorBound::Rel(1e-3).absolute(&data) * (1.0 + 1e-9));
    }

    #[test]
    fn paper_set_has_five_compressors() {
        let set = paper_set::<f32>(QualityMetric::Psnr);
        let names: Vec<_> = set.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["SZ2.1", "SZ3", "ZFP", "MGARD+", "QoZ"]);
    }

    #[test]
    fn target_cr_search_converges() {
        use qoz_codec::Compressor as _;
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let c = qoz_sz3::Sz3::default();
        let r = qoz_core::compress_codec_to_ratio(&c, &data, 30.0, 12);
        let blob = c.compress(&data, ErrorBound::Rel(r.rel_bound));
        let cr = (data.len() * 4) as f64 / blob.len() as f64;
        assert!((cr - 30.0).abs() / 30.0 < 0.5, "cr {cr} target 30");
    }

    #[test]
    fn pgm_writer_emits_valid_header() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let path = std::env::temp_dir().join("qoz_test.pgm");
        write_pgm(path.to_str().unwrap(), &data).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n128 64\n255\n"));
        assert_eq!(bytes.len(), 14 + 64 * 128);
        let _ = std::fs::remove_file(path);
    }
}
