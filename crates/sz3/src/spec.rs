//! The serialized configuration of one interpolation-codec run.
//!
//! An [`InterpSpec`] captures everything the decompressor must know to
//! mirror the compressor's traversal: anchor stride (or none), number of
//! levels, per-level interpolator and per-level absolute error bound.
//! SZ3 instances use a degenerate spec (no anchors, one interpolator,
//! uniform bounds); QoZ writes fully level-adapted specs.

use qoz_codec::{ByteReader, ByteWriter, CodecError, LinearQuantizer, Result};
use qoz_predict::{max_level, DimOrder, InterpKind, LevelConfig};
use qoz_tensor::Shape;

/// Full configuration of an interpolation compression pass.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpSpec {
    /// Anchor-grid stride (power of two). `None` = SZ3's global mode:
    /// only the base corner points exist and they are quantized against a
    /// zero prediction rather than stored losslessly.
    pub anchor_stride: Option<u32>,
    /// Highest interpolation level (level strides are `2^(l-1)`).
    pub max_level: u32,
    /// Interpolator per level; entry `l-1` configures level `l`.
    pub level_configs: Vec<LevelConfig>,
    /// Absolute error bound per level; entry `l-1` is for level `l`.
    pub level_ebs: Vec<f64>,
    /// Quantizer code radius.
    pub quant_radius: u32,
}

impl InterpSpec {
    /// SZ3's fixed configuration: no anchors, single interpolator, one
    /// global error bound on every level.
    pub fn sz3(shape: Shape, abs_eb: f64, cfg: LevelConfig) -> Self {
        let l = max_level(shape);
        InterpSpec {
            anchor_stride: None,
            max_level: l,
            level_configs: vec![cfg; l.max(1) as usize],
            level_ebs: vec![abs_eb; l.max(1) as usize],
            quant_radius: LinearQuantizer::DEFAULT_RADIUS,
        }
    }

    /// QoZ-style anchored spec skeleton with uniform bounds (the tuner
    /// then overwrites `level_configs` / `level_ebs`).
    pub fn anchored(anchor_stride: u32, abs_eb: f64, cfg: LevelConfig) -> Self {
        assert!(
            anchor_stride.is_power_of_two() && anchor_stride >= 2,
            "anchor stride must be a power of two >= 2"
        );
        let l = anchor_stride.trailing_zeros();
        InterpSpec {
            anchor_stride: Some(anchor_stride),
            max_level: l,
            level_configs: vec![cfg; l as usize],
            level_ebs: vec![abs_eb; l as usize],
            quant_radius: LinearQuantizer::DEFAULT_RADIUS,
        }
    }

    /// Error bound of level `l` (1-based).
    pub fn eb_of(&self, level: u32) -> f64 {
        self.level_ebs[(level - 1) as usize]
    }

    /// Interpolator of level `l` (1-based).
    pub fn config_of(&self, level: u32) -> LevelConfig {
        self.level_configs[(level - 1) as usize]
    }

    /// Smallest per-level bound (used to encode base points in
    /// unanchored mode so their error never exceeds any level's bound).
    pub fn tightest_eb(&self) -> f64 {
        self.level_ebs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Serialize.
    pub fn write(&self, w: &mut ByteWriter) {
        match self.anchor_stride {
            None => w.put_u8(0),
            Some(s) => {
                w.put_u8(1);
                w.put_varint(s as u64);
            }
        }
        w.put_varint(self.max_level as u64);
        w.put_varint(self.level_configs.len() as u64);
        for (cfg, &eb) in self.level_configs.iter().zip(&self.level_ebs) {
            // Two bits of kernel, one bit of dimension order.
            let kind_bits = match cfg.kind {
                InterpKind::Linear => 0u8,
                InterpKind::Cubic => 1,
                InterpKind::Quadratic => 2,
            };
            let order_bit = match cfg.order {
                DimOrder::Ascending => 0u8,
                DimOrder::Descending => 4,
            };
            w.put_u8(kind_bits | order_bit);
            w.put_f64(eb);
        }
        w.put_varint(self.quant_radius as u64);
    }

    /// Deserialize and validate against the array shape.
    pub fn read(r: &mut ByteReader, shape: Shape) -> Result<Self> {
        let anchored = r.get_u8()?;
        let anchor_stride = match anchored {
            0 => None,
            1 => {
                let s = r.get_varint()?;
                if !(2..=(1 << 30)).contains(&s) || !u64::is_power_of_two(s) {
                    return Err(CodecError::Corrupt("bad anchor stride"));
                }
                Some(s as u32)
            }
            _ => return Err(CodecError::Corrupt("bad anchor flag")),
        };
        let max_lv = r.get_varint()? as u32;
        if max_lv > 40 {
            return Err(CodecError::Corrupt("implausible level count"));
        }
        let n = r.get_varint()? as usize;
        if n < max_lv as usize || n > 64 {
            return Err(CodecError::Corrupt("level table size mismatch"));
        }
        let mut level_configs = Vec::with_capacity(n);
        let mut level_ebs = Vec::with_capacity(n);
        for _ in 0..n {
            let packed = r.get_u8()?;
            let kind = match packed & 0x3 {
                0 => InterpKind::Linear,
                1 => InterpKind::Cubic,
                2 => InterpKind::Quadratic,
                _ => return Err(CodecError::Corrupt("bad level config")),
            };
            if packed & !0x7 != 0 {
                return Err(CodecError::Corrupt("bad level config"));
            }
            let order = if packed & 4 == 0 {
                DimOrder::Ascending
            } else {
                DimOrder::Descending
            };
            level_configs.push(LevelConfig { kind, order });
            let eb = r.get_f64()?;
            if eb.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !eb.is_finite() {
                return Err(CodecError::Corrupt("bad level error bound"));
            }
            level_ebs.push(eb);
        }
        let quant_radius = r.get_varint()? as u32;
        if !(2..=(1 << 24)).contains(&quant_radius) {
            return Err(CodecError::Corrupt("bad quantizer radius"));
        }
        // Unanchored specs must cover the full shape.
        if anchor_stride.is_none() && max_lv < max_level(shape) {
            return Err(CodecError::Corrupt("spec does not cover array"));
        }
        Ok(InterpSpec {
            anchor_stride,
            max_level: max_lv,
            level_configs,
            level_ebs,
            quant_radius,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sz3_spec_uniform() {
        let s = InterpSpec::sz3(Shape::d2(100, 100), 1e-3, LevelConfig::default());
        assert!(s.anchor_stride.is_none());
        assert_eq!(s.max_level, max_level(Shape::d2(100, 100)));
        assert!(s.level_ebs.iter().all(|&e| e == 1e-3));
    }

    #[test]
    fn anchored_spec_levels_match_stride() {
        let s = InterpSpec::anchored(32, 1e-3, LevelConfig::default());
        assert_eq!(s.max_level, 5);
        assert_eq!(s.level_configs.len(), 5);
    }

    #[test]
    fn roundtrip_serialization() {
        let mut s = InterpSpec::anchored(16, 1e-4, LevelConfig::default());
        s.level_configs[2] = LevelConfig {
            kind: InterpKind::Linear,
            order: DimOrder::Descending,
        };
        s.level_ebs[3] = 2.5e-5;
        let mut w = ByteWriter::new();
        s.write(&mut w);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        let back = InterpSpec::read(&mut r, Shape::d2(64, 64)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn corrupt_specs_rejected() {
        let s = InterpSpec::sz3(Shape::d1(100), 1e-3, LevelConfig::default());
        let mut w = ByteWriter::new();
        s.write(&mut w);
        let buf = w.finish();
        // Break the anchor flag byte.
        let mut bad = buf.clone();
        bad[0] = 7;
        assert!(InterpSpec::read(&mut ByteReader::new(&bad), Shape::d1(100)).is_err());
        // Truncations.
        for cut in 0..buf.len() {
            assert!(InterpSpec::read(&mut ByteReader::new(&buf[..cut]), Shape::d1(100)).is_err());
        }
    }

    #[test]
    #[should_panic]
    fn non_pow2_anchor_rejected() {
        let _ = InterpSpec::anchored(12, 1e-3, LevelConfig::default());
    }

    #[test]
    fn insufficient_levels_rejected_for_shape() {
        let small = InterpSpec::sz3(Shape::d1(4), 1e-3, LevelConfig::default());
        let mut w = ByteWriter::new();
        small.write(&mut w);
        let buf = w.finish();
        // Reading against a much larger shape must fail.
        assert!(InterpSpec::read(&mut ByteReader::new(&buf), Shape::d1(10_000)).is_err());
    }
}
