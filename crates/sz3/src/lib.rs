//! SZ3-style error-bounded lossy compressor (baseline) and the shared
//! interpolation codec engine.
//!
//! SZ3 (Zhao et al., ICDE'21; Liang et al. 2021) predicts every point with
//! multi-level spline interpolation over the *global* array, quantizes the
//! residuals with a linear-scale quantizer and entropy-codes the bins.
//! Its three structural choices — no anchor points (unbounded
//! interpolation span), one interpolator for every level, and a single
//! fixed error bound across levels — are exactly what QoZ relaxes, so this
//! crate hosts the parameterized engine ([`engine`]) that both compressors
//! share: SZ3 is the engine run with a fixed configuration, QoZ (in
//! `qoz-core`) is the engine run with anchors, per-level interpolators and
//! per-level error bounds chosen online. The ablation study of the paper
//! (Fig. 12) toggles these exact code paths.

pub mod engine;
pub mod select;
pub mod spec;

pub use engine::{
    compress_with_spec, compress_with_spec_into, decompress_with_spec, decompress_with_spec_into,
    CompressOutput, EngineStats,
};
pub use select::select_global_interp;
pub use spec::InterpSpec;

use qoz_codec::stream::{Compressor, CompressorId, ErrorBound, Header};
use qoz_codec::{ByteReader, Result, Scratch};
use qoz_tensor::{NdArray, Scalar};

/// The SZ3 baseline compressor.
///
/// # Example
/// ```
/// use qoz_sz3::Sz3;
/// use qoz_codec::{Compressor, ErrorBound};
/// use qoz_tensor::{NdArray, Shape};
///
/// let data = NdArray::from_fn(Shape::d2(64, 64), |i| {
///     ((i[0] as f32) * 0.1).sin() + ((i[1] as f32) * 0.07).cos()
/// });
/// let blob = Sz3::default().compress(&data, ErrorBound::Abs(1e-3));
/// let recon: NdArray<f32> = Sz3::default().decompress(&blob).unwrap();
/// assert!(data.max_abs_diff(&recon) <= 1e-3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sz3 {
    /// Override the auto-selected interpolator (mainly for tests and the
    /// ablation study); `None` = select by sampling as SZ3 does.
    pub fixed_interp: Option<qoz_predict::LevelConfig>,
}

impl Sz3 {
    /// Compress with an explicit scalar type.
    pub fn compress_typed<T: Scalar>(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8> {
        self.compress_typed_with(data, bound, &mut Scratch::new())
    }

    /// [`Sz3::compress_typed`] staging its buffers in a reusable arena;
    /// bytes are identical.
    pub fn compress_typed_with<T: Scalar>(
        &self,
        data: &NdArray<T>,
        bound: ErrorBound,
        scratch: &mut Scratch<T>,
    ) -> Vec<u8> {
        let abs_eb = bound.absolute(data);
        let shape = data.shape();
        let cfg = self
            .fixed_interp
            .unwrap_or_else(|| select_global_interp(data, abs_eb));
        let spec = InterpSpec::sz3(shape, abs_eb, cfg);
        engine::compress_with_spec_into(data, &spec, scratch);
        engine::write_stream(
            &Header {
                compressor: CompressorId::Sz3,
                scalar_tag: T::TYPE_TAG,
                shape,
                abs_eb,
                temporal: None,
            },
            &spec,
            scratch,
        )
    }

    /// Decompress with an explicit scalar type.
    pub fn decompress_typed<T: Scalar>(&self, blob: &[u8]) -> Result<NdArray<T>> {
        self.decompress_typed_scratched(blob, &mut Scratch::new())
    }

    /// [`Sz3::decompress_typed`] staging its stage buffers in a reusable
    /// arena; decoded values are identical.
    pub fn decompress_typed_scratched<T: Scalar>(
        &self,
        blob: &[u8],
        scratch: &mut Scratch<T>,
    ) -> Result<NdArray<T>> {
        let mut r = ByteReader::new(blob);
        let header =
            engine::check_stream_header::<T>(&mut r, CompressorId::Sz3, "not an SZ3 stream")?;
        let mut out = NdArray::<T>::zeros(header.shape);
        engine::read_stream_into(&mut r, &header, scratch, &mut out)?;
        Ok(out)
    }

    /// [`Sz3::decompress_typed`] into a caller-provided array, reshaped
    /// in place — with a warm arena the zero-allocation decode path.
    pub fn decompress_into_scratched<T: Scalar>(
        &self,
        blob: &[u8],
        scratch: &mut Scratch<T>,
        out: &mut NdArray<T>,
    ) -> Result<()> {
        let mut r = ByteReader::new(blob);
        let header =
            engine::check_stream_header::<T>(&mut r, CompressorId::Sz3, "not an SZ3 stream")?;
        engine::read_stream_into(&mut r, &header, scratch, out)
    }
}

impl<T: Scalar> Compressor<T> for Sz3 {
    fn id(&self) -> CompressorId {
        CompressorId::Sz3
    }
    fn compress(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8> {
        self.compress_typed(data, bound)
    }
    fn compress_with_scratch(
        &self,
        data: &NdArray<T>,
        bound: ErrorBound,
        scratch: &mut Scratch<T>,
    ) -> Vec<u8> {
        self.compress_typed_with(data, bound, scratch)
    }
    fn decompress(&self, blob: &[u8]) -> Result<NdArray<T>> {
        self.decompress_typed(blob)
    }
    fn decompress_with_scratch(&self, blob: &[u8], scratch: &mut Scratch<T>) -> Result<NdArray<T>> {
        self.decompress_typed_scratched(blob, scratch)
    }
    fn decompress_into(
        &self,
        blob: &[u8],
        scratch: &mut Scratch<T>,
        out: &mut NdArray<T>,
    ) -> Result<()> {
        self.decompress_into_scratched(blob, scratch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};
    use qoz_metrics::verify_error_bound;
    use qoz_tensor::Shape;

    #[test]
    fn roundtrip_respects_bound_all_datasets() {
        for ds in Dataset::ALL {
            let data = ds.generate(SizeClass::Tiny, 0);
            for eb in [1e-2, 1e-3] {
                let bound = ErrorBound::Rel(eb);
                let abs = bound.absolute(&data);
                let blob = Sz3::default().compress_typed(&data, bound);
                let recon = Sz3::default().decompress_typed::<f32>(&blob).unwrap();
                assert_eq!(recon.shape(), data.shape());
                assert_eq!(
                    verify_error_bound(&data, &recon, abs),
                    None,
                    "{} eb {eb}",
                    ds.name()
                );
            }
        }
    }

    #[test]
    fn compresses_smooth_data_well() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let blob = Sz3::default().compress_typed(&data, ErrorBound::Rel(1e-3));
        let raw = data.len() * 4;
        let cr = raw as f64 / blob.len() as f64;
        assert!(cr > 5.0, "expected meaningful compression, got CR {cr:.2}");
    }

    #[test]
    fn f64_roundtrip() {
        let data = NdArray::from_fn(Shape::d3(20, 20, 20), |i| {
            ((i[0] + i[1]) as f64 * 0.21).sin() * (i[2] as f64 * 0.13).cos()
        });
        let blob = Sz3::default().compress_typed(&data, ErrorBound::Abs(1e-6));
        let recon = Sz3::default().decompress_typed::<f64>(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= 1e-6);
    }

    #[test]
    fn wrong_scalar_type_rejected() {
        let data = NdArray::from_fn(Shape::d1(100), |i| i[0] as f32);
        let blob = Sz3::default().compress_typed(&data, ErrorBound::Abs(1e-3));
        assert!(Sz3::default().decompress_typed::<f64>(&blob).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = NdArray::from_fn(Shape::d2(32, 32), |i| (i[0] * i[1]) as f32);
        let blob = Sz3::default().compress_typed(&data, ErrorBound::Abs(1e-2));
        for cut in [5, blob.len() / 2, blob.len() - 1] {
            assert!(Sz3::default()
                .decompress_typed::<f32>(&blob[..cut])
                .is_err());
        }
    }

    #[test]
    fn tiny_arrays_roundtrip() {
        for dims in [
            vec![1usize],
            vec![2],
            vec![3, 1],
            vec![1, 1, 1],
            vec![2, 2, 2],
        ] {
            let shape = Shape::new(&dims);
            let data = NdArray::from_fn(shape, |i| (i[0] + 1) as f32 * 1.5);
            let blob = Sz3::default().compress_typed(&data, ErrorBound::Abs(1e-4));
            let recon = Sz3::default().decompress_typed::<f32>(&blob).unwrap();
            assert!(data.max_abs_diff(&recon) <= 1e-4, "dims {dims:?}");
        }
    }

    #[test]
    fn handles_nan_inputs_without_panicking() {
        let mut data = NdArray::from_fn(Shape::d1(64), |i| i[0] as f32);
        data.as_mut_slice()[10] = f32::NAN;
        data.as_mut_slice()[20] = f32::INFINITY;
        let blob = Sz3::default().compress_typed(&data, ErrorBound::Abs(1e-3));
        let recon = Sz3::default().decompress_typed::<f32>(&blob).unwrap();
        assert!(recon.as_slice()[10].is_nan());
        assert_eq!(recon.as_slice()[20], f32::INFINITY);
        // Finite points still bounded.
        for (a, b) in data.as_slice().iter().zip(recon.as_slice()) {
            if a.is_finite() {
                assert!((a - b).abs() <= 1e-3);
            }
        }
    }
}
