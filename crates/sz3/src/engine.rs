//! The shared interpolation compression engine.
//!
//! Both SZ3 (fixed spec) and QoZ (tuned spec) run the same two-phase
//! procedure over an [`InterpSpec`]:
//!
//! 1. **Base grid** — anchored specs store every anchor-grid point
//!    losslessly (QoZ §V-B1); unanchored specs quantize the sparse corner
//!    grid against a zero prediction (SZ3's long-range start).
//! 2. **Level sweep** — levels `max_level .. 1` are traversed with the
//!    per-level interpolator; each predicted point is quantized with the
//!    per-level error bound and immediately overwritten with its
//!    reconstruction so later predictions see decompressor-identical
//!    values.
//!
//! [`compress_with_spec`] additionally returns the full reconstruction
//! and the mean absolute prediction error — the two quantities QoZ's
//! online tuner needs — so trial compressions cost a single pass.

use crate::spec::InterpSpec;
use qoz_codec::simd::{
    codes_regular, quantize_block, reconstruct_block, KernelPath, QuantSpec, BLOCK,
};
use qoz_codec::stream::{self, Header};
use qoz_codec::{ByteReader, ByteWriter, CodecError, LinearQuantizer, Result, Scratch};
use qoz_predict::simd::fill_preds;
use qoz_predict::{
    base_stride, for_each_base_point, traverse_level, traverse_level_runs, LineRun, RunSink,
};
use qoz_tensor::{NdArray, Scalar, Shape};

// The engine stages quantizer and stencil blocks in the same stack
// buffers, so the two kernel layers must agree on the block size.
const _: () = assert!(BLOCK == qoz_predict::simd::BLOCK);

/// Publish the kernel path the engine dispatches to as the
/// `qoz_kernel_path` gauge (1 on the active path, 0 on the others), so
/// a daemon silently running the scalar fallback is visible in
/// `qoz remote stats`. Only re-published when the path changes.
fn note_kernel_path(path: KernelPath) {
    use std::sync::atomic::{AtomicU8, Ordering};
    static LAST: AtomicU8 = AtomicU8::new(u8::MAX);
    if LAST.swap(path as u8, Ordering::Relaxed) == path as u8 {
        return;
    }
    for p in [
        KernelPath::Avx2,
        KernelPath::Sse2,
        KernelPath::Neon,
        KernelPath::Scalar,
    ] {
        qoz_telemetry::global()
            .gauge("qoz_kernel_path", &[("path", p.name())])
            .set(u64::from(p == path));
    }
}

/// Everything produced by one compression pass.
#[derive(Debug, Clone)]
pub struct CompressOutput<T: Scalar> {
    /// Quantization codes in traversal order (0 = unpredictable).
    pub bins: Vec<u32>,
    /// Exact little-endian values for unpredictable points, in order.
    pub unpred: Vec<u8>,
    /// Exact little-endian anchor values (empty when unanchored).
    pub anchors: Vec<u8>,
    /// The reconstruction the decompressor will produce (bit-identical).
    pub recon: NdArray<T>,
    /// Sum of `|value - prediction|` over all interpolated points.
    pub sum_abs_pred_err: f64,
    /// Number of interpolated points (for mean error computation).
    pub pred_count: u64,
}

impl<T: Scalar> CompressOutput<T> {
    /// Mean absolute prediction error (the selection criterion of
    /// Algorithm 1).
    pub fn mean_abs_pred_err(&self) -> f64 {
        if self.pred_count == 0 {
            0.0
        } else {
            self.sum_abs_pred_err / self.pred_count as f64
        }
    }

    /// Estimated compressed payload size in bits (entropy model for the
    /// bins plus raw side streams). Used by the QoZ tuner to compare
    /// candidate parameter sets cheaply.
    pub fn estimated_bits(&self) -> f64 {
        qoz_codec::backend::estimate_bins_bits(&self.bins)
            + (self.unpred.len() + self.anchors.len()) as f64 * 8.0
    }
}

/// Per-pass statistics returned by the scratch-based engine entry point
/// (the owned-buffer fields of [`CompressOutput`] live in the arena).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Sum of `|value - prediction|` over all interpolated points.
    pub sum_abs_pred_err: f64,
    /// Number of interpolated points.
    pub pred_count: u64,
}

impl EngineStats {
    /// Mean absolute prediction error (the selection criterion of
    /// Algorithm 1).
    pub fn mean_abs_pred_err(&self) -> f64 {
        if self.pred_count == 0 {
            0.0
        } else {
            self.sum_abs_pred_err / self.pred_count as f64
        }
    }
}

/// Compress `data` according to `spec`.
pub fn compress_with_spec<T: Scalar>(data: &NdArray<T>, spec: &InterpSpec) -> CompressOutput<T> {
    let mut s = Scratch::new();
    let stats = compress_with_spec_into(data, spec, &mut s);
    CompressOutput {
        bins: s.bins,
        unpred: s.unpred,
        anchors: s.anchors,
        recon: NdArray::from_vec(data.shape(), s.work),
        sum_abs_pred_err: stats.sum_abs_pred_err,
        pred_count: stats.pred_count,
    }
}

/// Scratch-based core of [`compress_with_spec`]: stages the pass in a
/// reusable arena instead of allocating fresh buffers.
///
/// On return, `scratch.bins`/`scratch.unpred`/`scratch.anchors` hold the
/// three engine streams and `scratch.work` holds the
/// decompressor-identical reconstruction. The contents are exactly those
/// [`compress_with_spec`] would produce (it is a thin wrapper over this
/// function); buffers re-grow safely when `data` is larger or shaped
/// differently than the previous call.
pub fn compress_with_spec_into<T: Scalar>(
    data: &NdArray<T>,
    spec: &InterpSpec,
    scratch: &mut Scratch<T>,
) -> EngineStats {
    compress_with_spec_path(data, spec, scratch, qoz_codec::simd::selected())
}

/// [`compress_with_spec_into`] with an explicit kernel path instead of
/// the process-wide selection — the hook for `QozConfig`-level kernel
/// pinning and for the scalar-vs-vector equivalence tests. Output is
/// bit-identical across paths.
pub fn compress_with_spec_path<T: Scalar>(
    data: &NdArray<T>,
    spec: &InterpSpec,
    scratch: &mut Scratch<T>,
    path: KernelPath,
) -> EngineStats {
    let _span = qoz_telemetry::stages().predict_quantize.start();
    note_kernel_path(path);
    let shape = data.shape();
    scratch.clear();
    scratch.load_work(data.as_slice());
    scratch.bins.reserve(shape.len());
    let bins = &mut scratch.bins;
    let mut unpred = ByteWriter::from_vec(std::mem::take(&mut scratch.unpred));
    let mut anchors = ByteWriter::from_vec(std::mem::take(&mut scratch.anchors));
    let mut stats = EngineStats::default();

    match spec.anchor_stride {
        Some(a) => {
            // Anchors are stored losslessly and left untouched in `work`.
            let buf = &scratch.work[..];
            for_each_base_point(shape, a as usize, |off| {
                anchors.put_bytes(&buf[off].to_le_bytes_vec());
            });
        }
        None => {
            // Sparse corner grid, quantized against a zero prediction with
            // the tightest bound so no level's contract is violated.
            let q = LinearQuantizer::with_radius(spec.tightest_eb(), spec.quant_radius);
            let stride = base_stride(spec.max_level);
            let buf = &mut scratch.work[..];
            for_each_base_point(shape, stride, |off| {
                let v = buf[off];
                let qz = q.quantize(v, 0.0);
                if qz.code == 0 {
                    unpred.put_bytes(&v.to_le_bytes_vec());
                }
                bins.push(qz.code);
                buf[off] = qz.reconstructed;
            });
        }
    }

    for level in (1..=spec.max_level).rev() {
        let q = LinearQuantizer::with_radius(spec.eb_of(level), spec.quant_radius);
        let cfg = spec.config_of(level);
        // Vector paths go through the run-granular traversal; the scalar
        // path (and radii beyond the vector kernels' range) keeps the
        // original per-point loop verbatim as reference and fallback.
        let fused = if path == KernelPath::Scalar {
            None
        } else {
            QuantSpec::from_quantizer(&q)
        };
        if let Some(qs) = fused {
            let mut sink = CompressSink {
                q: &q,
                qs,
                path,
                bins,
                unpred: &mut unpred,
                stats: &mut stats,
            };
            traverse_level_runs(&mut scratch.work[..], shape, level, cfg, &mut sink);
        } else {
            traverse_level(
                &mut scratch.work[..],
                shape,
                level,
                cfg,
                &mut |buf, off, pred| {
                    let v = buf[off];
                    let err = v.to_f64() - pred;
                    if err.is_finite() {
                        stats.sum_abs_pred_err += err.abs();
                    }
                    stats.pred_count += 1;
                    let qz = q.quantize(v, pred);
                    if qz.code == 0 {
                        unpred.put_bytes(&v.to_le_bytes_vec());
                    }
                    bins.push(qz.code);
                    buf[off] = qz.reconstructed;
                },
            );
        }
    }

    scratch.unpred = unpred.into_vec();
    scratch.anchors = anchors.into_vec();
    stats
}

/// Compress-side block sink for the vector paths: per chunk, fill the
/// stencil predictions, quantize lane-parallel, then run the ordered
/// scalar epilogue (tuner statistics, unpredictable side stream, store
/// of reconstructions). Per-point results — and the order of every
/// stream — are exactly those of the scalar closure above.
struct CompressSink<'a> {
    q: &'a LinearQuantizer,
    qs: QuantSpec,
    path: KernelPath,
    bins: &'a mut Vec<u32>,
    unpred: &'a mut ByteWriter,
    stats: &'a mut EngineStats,
}

impl<T: Scalar> RunSink<T> for CompressSink<'_> {
    fn point(&mut self, data: &mut [T], off: usize, pred: f64) {
        let v = data[off];
        let err = v.to_f64() - pred;
        if err.is_finite() {
            self.stats.sum_abs_pred_err += err.abs();
        }
        self.stats.pred_count += 1;
        let qz = self.q.quantize(v, pred);
        if qz.code == 0 {
            self.unpred.put_bytes(&v.to_le_bytes_vec());
        }
        self.bins.push(qz.code);
        data[off] = qz.reconstructed;
    }

    fn run(&mut self, data: &mut [T], run: &LineRun) {
        let mut preds = [0f64; BLOCK];
        let mut vals = [T::zero(); BLOCK];
        let mut vals_f = [0f64; BLOCK];
        let mut codes = [0u32; BLOCK];
        let mut recons = [T::zero(); BLOCK];
        let mut done = 0usize;
        while done < run.cnt {
            let m = (run.cnt - done).min(BLOCK);
            let chunk = LineRun {
                off0: run.off0 + done * run.step,
                ..*run
            };
            fill_preds(self.path, data, &chunk, &mut preds[..m]);
            if run.step == 1 {
                vals[..m].copy_from_slice(&data[chunk.off0..chunk.off0 + m]);
            } else {
                let mut off = chunk.off0;
                for v in vals[..m].iter_mut() {
                    *v = data[off];
                    off += run.step;
                }
            }
            quantize_block(
                self.path,
                &self.qs,
                &vals[..m],
                &preds[..m],
                &mut vals_f[..m],
                &mut codes[..m],
                &mut recons[..m],
            );
            // Ordered epilogue: the prediction-error sum must accumulate
            // in traversal order (FP addition is not associative and the
            // sum steers the QoZ tuner), and unpredictable values must
            // hit the side stream in bin order.
            let mut off = chunk.off0;
            for k in 0..m {
                let err = vals_f[k] - preds[k];
                if err.is_finite() {
                    self.stats.sum_abs_pred_err += err.abs();
                }
                if codes[k] == 0 {
                    self.unpred.put_bytes(&vals[k].to_le_bytes_vec());
                }
                data[off] = recons[k];
                off += run.step;
            }
            self.stats.pred_count += m as u64;
            self.bins.extend_from_slice(&codes[..m]);
            done += m;
        }
    }
}

/// Assemble a full self-describing stream from engine output staged in
/// `scratch` (written there by [`compress_with_spec_into`]): common
/// header, serialized spec, then the entropy-coded bins and the two
/// packed side streams. Shared by the SZ3 and QoZ compressors so the
/// framing exists exactly once.
pub fn write_stream<T: Scalar>(
    header: &Header,
    spec: &InterpSpec,
    scratch: &mut Scratch<T>,
) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(scratch.bins.len() / 4 + 64);
    stream::write_header(&mut w, header);
    spec.write(&mut w);
    {
        let _span = qoz_telemetry::stages().encode.start();
        qoz_codec::encode_bins_with(&scratch.bins, &mut scratch.entropy, &mut scratch.section);
    }
    w.put_len_prefixed(&scratch.section);
    {
        let _span = qoz_telemetry::stages().entropy.start();
        qoz_codec::lossless_compress_with(
            &scratch.unpred,
            &mut scratch.entropy,
            &mut scratch.section,
        );
        w.put_len_prefixed(&scratch.section);
        qoz_codec::lossless_compress_with(
            &scratch.anchors,
            &mut scratch.entropy,
            &mut scratch.section,
        );
    }
    w.put_len_prefixed(&scratch.section);
    w.finish()
}

/// Read and validate a stream header against the expected compressor id
/// and element type — the shared front half of every engine-backed
/// decoder (SZ3 and QoZ differ only in `expect` and the error message).
pub fn check_stream_header<T: Scalar>(
    r: &mut ByteReader,
    expect: stream::CompressorId,
    wrong_kind: &'static str,
) -> Result<Header> {
    let header = stream::read_header(r)?;
    if header.temporal.is_some() {
        // A temporal chain member's payload is a nested stream, not an
        // engine body — only chain-aware decoders (qoz_temporal,
        // qoz_api::Pipeline) may unwrap it.
        return Err(CodecError::Corrupt(
            "temporal chain member needs chain decode",
        ));
    }
    if header.compressor != expect {
        return Err(CodecError::Corrupt(wrong_kind));
    }
    if header.scalar_tag != T::TYPE_TAG {
        return Err(CodecError::Corrupt("scalar type mismatch"));
    }
    Ok(header)
}

/// Decode the body of a stream assembled by [`write_stream`] — spec,
/// entropy-coded bins, packed side streams — staging every section in
/// `scratch`, then rebuild the array into `out` (reshaped in place).
/// The read-side mirror of [`compress_with_spec_into`] +
/// [`write_stream`]; decoded values are bitwise-identical to the
/// allocating [`decompress_with_spec`] chain.
pub fn read_stream_into<T: Scalar>(
    r: &mut ByteReader,
    header: &Header,
    scratch: &mut Scratch<T>,
    out: &mut NdArray<T>,
) -> Result<()> {
    read_stream_into_path(r, header, scratch, out, qoz_codec::simd::selected())
}

/// [`read_stream_into`] with an explicit kernel path (see
/// [`compress_with_spec_path`]); decoded values are identical on every
/// path.
pub fn read_stream_into_path<T: Scalar>(
    r: &mut ByteReader,
    header: &Header,
    scratch: &mut Scratch<T>,
    out: &mut NdArray<T>,
    path: KernelPath,
) -> Result<()> {
    let spec = InterpSpec::read(r, header.shape)?;
    qoz_codec::decode_bins_with(
        r.get_len_prefixed()?,
        &mut scratch.entropy,
        &mut scratch.bins,
    )?;
    qoz_codec::lossless_decompress_with(
        r.get_len_prefixed()?,
        &mut scratch.entropy,
        &mut scratch.unpred,
    )?;
    qoz_codec::lossless_decompress_with(
        r.get_len_prefixed()?,
        &mut scratch.entropy,
        &mut scratch.anchors,
    )?;
    if decompress_with_spec_path(
        header.shape,
        &spec,
        &scratch.bins,
        &scratch.unpred,
        &scratch.anchors,
        out,
        path,
    )? {
        scratch.grows.bump();
    }
    Ok(())
}

/// Mirror of [`compress_with_spec`]: rebuild the array from streams.
pub fn decompress_with_spec<T: Scalar>(
    shape: Shape,
    spec: &InterpSpec,
    bins: &[u32],
    unpred: &[u8],
    anchors: &[u8],
) -> Result<NdArray<T>> {
    let mut work = NdArray::<T>::zeros(shape);
    decompress_with_spec_into(shape, spec, bins, unpred, anchors, &mut work)?;
    Ok(work)
}

/// [`decompress_with_spec`] into a caller-provided array: `out` is
/// reshaped to `shape` (reusing its allocation when capacity allows,
/// zero-filled first like the allocating path) and rebuilt in place.
/// Returns `true` when `out`'s backing buffer had to grow, so callers
/// tracking zero-allocation steady state can count the event. The
/// reconstruction is bitwise-identical to [`decompress_with_spec`].
pub fn decompress_with_spec_into<T: Scalar>(
    shape: Shape,
    spec: &InterpSpec,
    bins: &[u32],
    unpred: &[u8],
    anchors: &[u8],
    out: &mut NdArray<T>,
) -> Result<bool> {
    decompress_with_spec_path(
        shape,
        spec,
        bins,
        unpred,
        anchors,
        out,
        qoz_codec::simd::selected(),
    )
}

/// [`decompress_with_spec_into`] with an explicit kernel path (see
/// [`compress_with_spec_path`]). Reconstructions are bit-identical
/// across paths.
#[allow(clippy::too_many_arguments)]
pub fn decompress_with_spec_path<T: Scalar>(
    shape: Shape,
    spec: &InterpSpec,
    bins: &[u32],
    unpred: &[u8],
    anchors: &[u8],
    out: &mut NdArray<T>,
    path: KernelPath,
) -> Result<bool> {
    note_kernel_path(path);
    let grew = out.reset_zeros(shape);
    let work = out;
    let mut bin_pos = 0usize;
    let mut unpred_r = ByteReader::new(unpred);
    let mut failed: Option<CodecError> = None;

    match spec.anchor_stride {
        Some(a) => {
            let mut ar = ByteReader::new(anchors);
            let buf = work.as_mut_slice();
            for_each_base_point(shape, a as usize, |off| {
                if failed.is_some() {
                    return;
                }
                match ar.get_bytes(T::BYTES) {
                    Ok(b) => buf[off] = T::from_le_slice(b),
                    Err(e) => failed = Some(e),
                }
            });
        }
        None => {
            let q = LinearQuantizer::with_radius(spec.tightest_eb(), spec.quant_radius);
            let stride = base_stride(spec.max_level);
            let buf = work.as_mut_slice();
            for_each_base_point(shape, stride, |off| {
                if failed.is_some() {
                    return;
                }
                let code = match bins.get(bin_pos) {
                    Some(&c) => c,
                    None => {
                        failed = Some(CodecError::UnexpectedEof);
                        return;
                    }
                };
                bin_pos += 1;
                if code == 0 {
                    match unpred_r.get_bytes(T::BYTES) {
                        Ok(b) => buf[off] = T::from_le_slice(b),
                        Err(e) => failed = Some(e),
                    }
                } else if code >= q.num_codes() {
                    failed = Some(CodecError::Corrupt("bin code out of range"));
                } else {
                    buf[off] = q.reconstruct(code, 0.0);
                }
            });
        }
    }
    if let Some(e) = failed {
        return Err(e);
    }

    for level in (1..=spec.max_level).rev() {
        let q = LinearQuantizer::with_radius(spec.eb_of(level), spec.quant_radius);
        let cfg = spec.config_of(level);
        // Same dispatch rule as the compress side; either path consumes
        // the identical code sequence and produces identical bits.
        let fused = if path == KernelPath::Scalar {
            None
        } else {
            QuantSpec::from_quantizer(&q)
        };
        if let Some(qs) = fused {
            let mut sink = DecompressSink {
                q: &q,
                qs,
                path,
                bins,
                bin_pos: &mut bin_pos,
                unpred_r: &mut unpred_r,
                failed: &mut failed,
            };
            traverse_level_runs(work.as_mut_slice(), shape, level, cfg, &mut sink);
        } else {
            traverse_level(
                work.as_mut_slice(),
                shape,
                level,
                cfg,
                &mut |buf, off, pred| {
                    if failed.is_some() {
                        return;
                    }
                    let code = match bins.get(bin_pos) {
                        Some(&c) => c,
                        None => {
                            failed = Some(CodecError::UnexpectedEof);
                            return;
                        }
                    };
                    bin_pos += 1;
                    if code == 0 {
                        match unpred_r.get_bytes(T::BYTES) {
                            Ok(b) => buf[off] = T::from_le_slice(b),
                            Err(e) => failed = Some(e),
                        }
                    } else if code >= q.num_codes() {
                        failed = Some(CodecError::Corrupt("bin code out of range"));
                    } else {
                        buf[off] = q.reconstruct(code, pred);
                    }
                },
            );
        }
        if let Some(e) = failed {
            return Err(e);
        }
    }

    if bin_pos != bins.len() {
        return Err(CodecError::Corrupt("trailing quantization bins"));
    }
    Ok(grew)
}

/// Decompress-side block sink for the vector paths. Chunks whose codes
/// are all regular reconstruct lane-parallel; a chunk containing an
/// unpredictable (code 0), an out-of-range code, or the tail of a
/// truncated bin stream falls back to the per-point logic of the scalar
/// closure, preserving the exact-value side-stream read order and the
/// error semantics.
struct DecompressSink<'a, 'u> {
    q: &'a LinearQuantizer,
    qs: QuantSpec,
    path: KernelPath,
    bins: &'a [u32],
    bin_pos: &'a mut usize,
    unpred_r: &'a mut ByteReader<'u>,
    failed: &'a mut Option<CodecError>,
}

impl<T: Scalar> RunSink<T> for DecompressSink<'_, '_> {
    fn point(&mut self, data: &mut [T], off: usize, pred: f64) {
        if self.failed.is_some() {
            return;
        }
        let code = match self.bins.get(*self.bin_pos) {
            Some(&c) => c,
            None => {
                *self.failed = Some(CodecError::UnexpectedEof);
                return;
            }
        };
        *self.bin_pos += 1;
        if code == 0 {
            match self.unpred_r.get_bytes(T::BYTES) {
                Ok(b) => data[off] = T::from_le_slice(b),
                Err(e) => *self.failed = Some(e),
            }
        } else if code >= self.q.num_codes() {
            *self.failed = Some(CodecError::Corrupt("bin code out of range"));
        } else {
            data[off] = self.q.reconstruct(code, pred);
        }
    }

    fn run(&mut self, data: &mut [T], run: &LineRun) {
        let mut preds = [0f64; BLOCK];
        let mut recons = [T::zero(); BLOCK];
        let mut done = 0usize;
        while done < run.cnt {
            if self.failed.is_some() {
                return;
            }
            let m = (run.cnt - done).min(BLOCK);
            let chunk = LineRun {
                off0: run.off0 + done * run.step,
                ..*run
            };
            fill_preds(self.path, data, &chunk, &mut preds[..m]);
            let pos = *self.bin_pos;
            let regular = self
                .bins
                .get(pos..pos + m)
                .is_some_and(|c| codes_regular(&self.qs, c));
            if regular {
                let codes = &self.bins[pos..pos + m];
                *self.bin_pos = pos + m;
                reconstruct_block(self.path, &self.qs, codes, &preds[..m], &mut recons[..m]);
                if run.step == 1 {
                    data[chunk.off0..chunk.off0 + m].copy_from_slice(&recons[..m]);
                } else {
                    let mut off = chunk.off0;
                    for &r in &recons[..m] {
                        data[off] = r;
                        off += run.step;
                    }
                }
            } else {
                let mut off = chunk.off0;
                for &pred in &preds[..m] {
                    self.point(data, off, pred);
                    if self.failed.is_some() {
                        return;
                    }
                    off += run.step;
                }
            }
            done += m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_predict::LevelConfig;

    fn smooth_3d(n: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::d3(n, n, n), |i| {
            (i[0] as f64 * 0.2).sin() + (i[1] as f64 * 0.15).cos() + i[2] as f64 * 0.01
        })
    }

    #[test]
    fn recon_matches_decompressor_bit_exactly() {
        let data = smooth_3d(17);
        for spec in [
            InterpSpec::sz3(data.shape(), 1e-3, LevelConfig::default()),
            InterpSpec::anchored(8, 1e-3, LevelConfig::default()),
        ] {
            let out = compress_with_spec(&data, &spec);
            let recon = decompress_with_spec::<f64>(
                data.shape(),
                &spec,
                &out.bins,
                &out.unpred,
                &out.anchors,
            )
            .unwrap();
            assert_eq!(out.recon.as_slice(), recon.as_slice(), "spec {spec:?}");
        }
    }

    #[test]
    fn bound_respected_per_level_spec() {
        let data = smooth_3d(20);
        let mut spec = InterpSpec::anchored(16, 1e-2, LevelConfig::default());
        // Tighter bounds on higher levels, like QoZ's alpha/beta scheme.
        spec.level_ebs = vec![1e-2, 5e-3, 2.5e-3, 1.25e-3];
        let out = compress_with_spec(&data, &spec);
        // The global contract is the loosest (level-1) bound.
        assert!(data.max_abs_diff(&out.recon) <= 1e-2 + 1e-14);
    }

    #[test]
    fn anchors_are_lossless() {
        let data = smooth_3d(16);
        let spec = InterpSpec::anchored(4, 1e-1, LevelConfig::default());
        let out = compress_with_spec(&data, &spec);
        for_each_base_point(data.shape(), 4, |off| {
            assert_eq!(out.recon.as_slice()[off], data.as_slice()[off]);
        });
    }

    #[test]
    fn bin_count_matches_point_count() {
        let data = smooth_3d(10);
        let spec = InterpSpec::sz3(data.shape(), 1e-3, LevelConfig::default());
        let out = compress_with_spec(&data, &spec);
        assert_eq!(out.bins.len(), data.len());

        let anchored = InterpSpec::anchored(4, 1e-3, LevelConfig::default());
        let out2 = compress_with_spec(&data, &anchored);
        let n_anchors = qoz_predict::traverse::base_point_count(data.shape(), 4);
        assert_eq!(out2.bins.len(), data.len() - n_anchors);
        assert_eq!(out2.anchors.len(), n_anchors * 8);
    }

    #[test]
    fn missing_bins_detected() {
        let data = smooth_3d(8);
        let spec = InterpSpec::sz3(data.shape(), 1e-3, LevelConfig::default());
        let out = compress_with_spec(&data, &spec);
        let short = &out.bins[..out.bins.len() - 1];
        assert!(
            decompress_with_spec::<f64>(data.shape(), &spec, short, &out.unpred, &out.anchors)
                .is_err()
        );
    }

    #[test]
    fn trailing_bins_detected() {
        let data = smooth_3d(8);
        let spec = InterpSpec::sz3(data.shape(), 1e-3, LevelConfig::default());
        let out = compress_with_spec(&data, &spec);
        let mut long = out.bins.clone();
        long.push(32768);
        assert!(
            decompress_with_spec::<f64>(data.shape(), &spec, &long, &out.unpred, &out.anchors)
                .is_err()
        );
    }

    #[test]
    fn truncated_unpred_detected() {
        // Use random-ish incompressible data to force unpredictables.
        let data = NdArray::from_fn(Shape::d1(200), |i| {
            let x = qoz_datagen::noise::splitmix64(i[0] as u64);
            (x as f64 / u64::MAX as f64) * 1e6
        });
        let spec = InterpSpec::sz3(data.shape(), 1e-12, LevelConfig::default());
        let out = compress_with_spec(&data, &spec);
        assert!(!out.unpred.is_empty(), "test needs unpredictable points");
        assert!(decompress_with_spec::<f64>(
            data.shape(),
            &spec,
            &out.bins,
            &out.unpred[..out.unpred.len() - 1],
            &out.anchors
        )
        .is_err());
    }

    #[test]
    fn prediction_error_lower_for_cubic_on_smooth_data() {
        let data = NdArray::from_fn(Shape::d2(65, 65), |i| {
            ((i[0] as f64) * 0.07).sin() * ((i[1] as f64) * 0.05).cos()
        });
        let mk = |kind| {
            let cfg = LevelConfig {
                kind,
                order: qoz_predict::DimOrder::Ascending,
            };
            let spec = InterpSpec::anchored(32, 1e-4, cfg);
            compress_with_spec(&data, &spec).mean_abs_pred_err()
        };
        let linear = mk(qoz_predict::InterpKind::Linear);
        let cubic = mk(qoz_predict::InterpKind::Cubic);
        assert!(cubic < linear, "cubic {cubic} vs linear {linear}");
    }

    #[test]
    fn estimated_bits_positive_and_ordered() {
        let data = smooth_3d(16);
        let tight = InterpSpec::sz3(data.shape(), 1e-6, LevelConfig::default());
        let loose = InterpSpec::sz3(data.shape(), 1e-2, LevelConfig::default());
        let bt = compress_with_spec(&data, &tight).estimated_bits();
        let bl = compress_with_spec(&data, &loose).estimated_bits();
        assert!(bt > bl, "tighter bound must cost more bits: {bt} vs {bl}");
    }
}
