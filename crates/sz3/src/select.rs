//! SZ3's global interpolator selection.
//!
//! SZ3 picks *one* interpolation method for the entire dataset by running
//! trial compressions on sampled blocks and keeping the candidate with the
//! lowest mean absolute prediction error. (QoZ refines this to a
//! *per-level* selection; that lives in `qoz-core`.)

use crate::engine::compress_with_spec;
use crate::spec::InterpSpec;
use qoz_predict::LevelConfig;
use qoz_tensor::{sample_blocks, NdArray, SamplePlan, Scalar, Shape};

/// Default sampling parameters per rank (paper §VII-A4: block 64 / 1% for
/// 2D, block 16 / 0.5% for 3D).
pub fn default_sample_plan(shape: Shape) -> SamplePlan {
    match shape.ndim() {
        1 => SamplePlan::from_rate(shape, 256, 0.01),
        2 => SamplePlan::from_rate(shape, 64, 0.01),
        _ => SamplePlan::from_rate(shape, 16, 0.005),
    }
}

/// Choose the single best interpolator for the whole dataset by sampled
/// trial compression (lowest mean absolute prediction error wins).
pub fn select_global_interp<T: Scalar>(data: &NdArray<T>, abs_eb: f64) -> LevelConfig {
    let plan = default_sample_plan(data.shape());
    let blocks = sample_blocks(data, &plan);
    if blocks.is_empty() {
        return LevelConfig::default();
    }

    let mut best = LevelConfig::default();
    let mut best_err = f64::INFINITY;
    // SZ3's selection space is the paper-original one: linear and cubic
    // kernels only. (The quadratic kernel is a QoZ-side extension and
    // participates only in QoZ's level-adapted selector.)
    let candidates: Vec<LevelConfig> = LevelConfig::candidates()
        .into_iter()
        .filter(|c| {
            matches!(
                c.kind,
                qoz_predict::InterpKind::Linear | qoz_predict::InterpKind::Cubic
            )
        })
        .collect();
    for cand in candidates {
        let mut sum = 0.0f64;
        let mut count = 0u64;
        for block in &blocks {
            let spec = InterpSpec::sz3(block.shape(), abs_eb, cand);
            let out = compress_with_spec(block, &spec);
            sum += out.sum_abs_pred_err;
            count += out.pred_count;
        }
        let err = if count == 0 {
            f64::INFINITY
        } else {
            sum / count as f64
        };
        if err < best_err {
            best_err = err;
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_predict::InterpKind;

    #[test]
    fn smooth_data_prefers_cubic() {
        let data = NdArray::from_fn(Shape::d2(128, 128), |i| {
            ((i[0] as f64) * 0.05).sin() * ((i[1] as f64) * 0.04).cos()
        });
        let cfg = select_global_interp(&data, 1e-5);
        assert_eq!(cfg.kind, InterpKind::Cubic);
    }

    #[test]
    fn selection_runs_on_tiny_inputs() {
        let data = NdArray::from_fn(Shape::d1(10), |i| i[0] as f32);
        let _ = select_global_interp(&data, 1e-3);
    }

    #[test]
    fn selection_deterministic() {
        let data = qoz_datagen::Dataset::CesmAtm.generate(qoz_datagen::SizeClass::Tiny, 0);
        let a = select_global_interp(&data, 1e-3);
        let b = select_global_interp(&data, 1e-3);
        assert_eq!(a, b);
    }
}
