//! QoZ configuration.

use qoz_codec::simd::KernelPath;
use qoz_metrics::QualityMetric;
use qoz_tensor::Shape;

/// How the compressor picks its per-point kernel implementations
/// (quantizer, interpolation stencils, entropy histogram).
///
/// Every path produces bit-identical streams — this knob trades speed
/// only, never output. [`KernelSelect::Auto`] is the right choice
/// everywhere except A/B benchmarking and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelSelect {
    /// Runtime CPU-feature dispatch: the widest supported vector path
    /// (AVX2 > SSE2 on x86-64, NEON on aarch64), scalar elsewhere.
    /// Honours the `QOZ_FORCE_SCALAR=1` environment override.
    #[default]
    Auto,
    /// Pin the scalar reference kernels regardless of CPU features.
    ForceScalar,
    /// Pin one specific path. Falls back to scalar if the current CPU
    /// does not support it.
    Fixed(KernelPath),
}

impl KernelSelect {
    /// Resolve to the concrete kernel path the engine will run.
    pub fn resolve(self) -> KernelPath {
        match self {
            KernelSelect::Auto => qoz_codec::simd::selected(),
            KernelSelect::ForceScalar => KernelPath::Scalar,
            KernelSelect::Fixed(path) if qoz_codec::simd::supported(path) => path,
            KernelSelect::Fixed(_) => KernelPath::Scalar,
        }
    }
}

/// Tuning and structural parameters of the QoZ compressor.
///
/// Defaults follow the paper's experimental configuration (§VII-A4):
/// anchor stride / sample block 64 for 2D at 1% sampling, anchor stride
/// 32 / sample block 16 for 3D at 0.5% sampling, and the narrowed
/// `(alpha, beta)` candidate grid of §VI-C1.
#[derive(Debug, Clone)]
pub struct QozConfig {
    /// Quality metric the online tuner optimizes.
    pub metric: QualityMetric,
    /// Anchor-grid stride override (power of two). `None` = rank default.
    pub anchor_stride: Option<u32>,
    /// Sample block side override. `None` = rank default.
    pub sample_block: Option<usize>,
    /// Sampling rate override. `None` = rank default.
    pub sample_rate: Option<f64>,
    /// Candidate `alpha` values for the level-bound formula (Eq. 5).
    pub alpha_candidates: Vec<f64>,
    /// Candidate `beta` values for the level-bound formula (Eq. 5).
    pub beta_candidates: Vec<f64>,
    /// Enable sampled global interpolator selection (ablation "S").
    pub sampled_selection: bool,
    /// Enable per-level interpolator selection (ablation "LIS";
    /// requires `sampled_selection`).
    pub level_interp_selection: bool,
    /// Enable `(alpha, beta)` auto-tuning (ablation "PA"). When disabled
    /// the level bounds are uniform (`alpha = beta = 1`).
    pub param_autotuning: bool,
    /// Explicit `(alpha, beta)` override used when `param_autotuning` is
    /// off (the Fig. 13 fixed-parameter runs).
    pub fixed_params: Option<(f64, f64)>,
    /// Kernel-path selection for the SIMD hot loops (speed only; output
    /// bytes are identical on every path).
    pub kernels: KernelSelect,
}

impl Default for QozConfig {
    fn default() -> Self {
        QozConfig {
            metric: QualityMetric::CompressionRatio,
            anchor_stride: None,
            sample_block: None,
            sample_rate: None,
            alpha_candidates: vec![1.0, 1.25, 1.5, 1.75, 2.0],
            beta_candidates: vec![1.5, 2.0, 3.0, 4.0],
            sampled_selection: true,
            level_interp_selection: true,
            param_autotuning: true,
            fixed_params: None,
            kernels: KernelSelect::default(),
        }
    }
}

impl QozConfig {
    /// Configuration tuned for a specific quality metric.
    pub fn for_metric(metric: QualityMetric) -> Self {
        QozConfig {
            metric,
            ..Default::default()
        }
    }

    /// Effective anchor stride for an array rank (paper §VII-A4).
    pub fn effective_anchor_stride(&self, shape: Shape) -> u32 {
        self.anchor_stride.unwrap_or(match shape.ndim() {
            1 => 128,
            2 => 64,
            _ => 32,
        })
    }

    /// Effective sample block side.
    pub fn effective_sample_block(&self, shape: Shape) -> usize {
        self.sample_block.unwrap_or(match shape.ndim() {
            1 => 256,
            2 => 64,
            _ => 16,
        })
    }

    /// Effective sampling rate.
    pub fn effective_sample_rate(&self, shape: Shape) -> f64 {
        self.sample_rate.unwrap_or(match shape.ndim() {
            1 => 0.01,
            2 => 0.01,
            _ => 0.005,
        })
    }

    /// The deduplicated `(alpha, beta)` candidate pairs. `alpha = 1`
    /// collapses every beta to the same uniform-bound configuration, so
    /// it appears once.
    pub fn param_candidates(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for &a in &self.alpha_candidates {
            if (a - 1.0).abs() < 1e-12 {
                out.push((1.0, 1.0));
                continue;
            }
            for &b in &self.beta_candidates {
                out.push((a, b));
            }
        }
        out
    }
}

/// Per-level absolute error bounds from the paper's Eq. 5:
/// `e_l = e / min(alpha^(l-1), beta)`.
pub fn level_error_bounds(global_eb: f64, alpha: f64, beta: f64, levels: u32) -> Vec<f64> {
    assert!(alpha >= 1.0 && beta >= 1.0, "alpha/beta must be >= 1");
    (1..=levels.max(1))
        .map(|l| global_eb / alpha.powi(l as i32 - 1).min(beta))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_properties_hold() {
        // e_1 = e; e_l <= e; monotone non-increasing with level.
        let e = 0.01;
        for (a, b) in [(1.0, 1.0), (1.5, 3.0), (2.0, 4.0), (1.25, 1.5)] {
            let ebs = level_error_bounds(e, a, b, 6);
            assert_eq!(ebs[0], e, "e_1 must equal e");
            for w in ebs.windows(2) {
                assert!(w[1] <= w[0] + 1e-15, "bounds must tighten with level");
            }
            assert!(ebs.iter().all(|&x| x <= e && x > 0.0));
        }
    }

    #[test]
    fn beta_caps_the_decay() {
        let ebs = level_error_bounds(1.0, 2.0, 4.0, 8);
        // alpha^(l-1) = 1,2,4,8.. capped at beta=4.
        assert_eq!(ebs[0], 1.0);
        assert_eq!(ebs[1], 0.5);
        assert_eq!(ebs[2], 0.25);
        assert_eq!(ebs[3], 0.25);
        assert_eq!(ebs[7], 0.25);
    }

    #[test]
    fn candidate_grid_dedupes_alpha_one() {
        let c = QozConfig::default().param_candidates();
        // 1 (alpha=1) + 4*4 = 17 candidates.
        assert_eq!(c.len(), 17);
        assert_eq!(c.iter().filter(|&&(a, _)| a == 1.0).count(), 1);
    }

    #[test]
    fn kernel_select_resolves_to_supported_paths() {
        // Auto picks whatever runtime dispatch picked.
        assert_eq!(KernelSelect::Auto.resolve(), qoz_codec::simd::selected());
        // ForceScalar always pins scalar.
        assert_eq!(KernelSelect::ForceScalar.resolve(), KernelPath::Scalar);
        // Fixed resolves to itself when supported, scalar otherwise.
        for path in qoz_codec::simd::supported_paths() {
            assert_eq!(KernelSelect::Fixed(path).resolve(), path);
        }
        assert_eq!(
            KernelSelect::Fixed(KernelPath::Scalar).resolve(),
            KernelPath::Scalar
        );
        // Default is Auto: SIMD on by default.
        assert_eq!(KernelSelect::default(), KernelSelect::Auto);
    }

    #[test]
    fn rank_defaults_match_paper() {
        let cfg = QozConfig::default();
        assert_eq!(cfg.effective_anchor_stride(Shape::d2(100, 100)), 64);
        assert_eq!(cfg.effective_sample_block(Shape::d2(100, 100)), 64);
        assert_eq!(cfg.effective_anchor_stride(Shape::d3(10, 10, 10)), 32);
        assert_eq!(cfg.effective_sample_block(Shape::d3(10, 10, 10)), 16);
        assert_eq!(cfg.effective_sample_rate(Shape::d3(10, 10, 10)), 0.005);
    }
}
