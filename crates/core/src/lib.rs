//! QoZ: dynamic quality-metric-oriented error-bounded lossy compression.
//!
//! This crate is the paper's primary contribution (Liu et al., SC'22).
//! QoZ extends the SZ3 interpolation compression model with four
//! mechanisms, all implemented here on top of the shared engine in
//! `qoz-sz3`:
//!
//! 1. **Anchor points** (§V-B1) — a lossless grid every
//!    [`QozConfig::effective_anchor_stride`] points bounds the
//!    interpolation span and stops long-range error propagation.
//! 2. **Level-adapted interpolators** (§V-B2, Algorithm 1) — each level
//!    picks its own (kernel, dimension-order) pair by sampled trial
//!    compression ([`tuning::select_level_interps`]).
//! 3. **Level-wise error bounds** (Eq. 5) — `e_l = e / min(α^(l-1), β)`
//!    tightens bounds on the sparse high levels whose errors propagate.
//! 4. **Quality-metric-driven auto-tuning** (§VI-C, Table I) — `(α, β)`
//!    are chosen online to optimize the user's metric: compression
//!    ratio, PSNR, SSIM, or error autocorrelation
//!    ([`tuning::autotune_params`]).
//!
//! # Quick start
//! ```
//! use qoz_core::Qoz;
//! use qoz_codec::{Compressor, ErrorBound};
//! use qoz_metrics::QualityMetric;
//! use qoz_tensor::{NdArray, Shape};
//!
//! let data = NdArray::from_fn(Shape::d2(128, 128), |i| {
//!     ((i[0] as f32) * 0.08).sin() * ((i[1] as f32) * 0.05).cos()
//! });
//! // Optimize rate-PSNR under a value-range-relative bound of 1e-3.
//! let qoz = Qoz::for_metric(QualityMetric::Psnr);
//! let blob = qoz.compress(&data, ErrorBound::Rel(1e-3));
//! let recon: NdArray<f32> = qoz.decompress(&blob).unwrap();
//! let abs = ErrorBound::Rel(1e-3).absolute(&data);
//! assert!(data.max_abs_diff(&recon) <= abs);
//! ```

pub mod ablation;
pub mod config;
pub mod fixed_quality;
pub mod pipeline;
pub mod tuning;

pub use config::{level_error_bounds, KernelSelect, QozConfig};
pub use fixed_quality::{
    compress_codec_to_quality, compress_codec_to_ratio, FixedQualityResult, QualityTarget,
    TargetOutcome,
};
pub use pipeline::{
    decode_snapshots, encode_snapshots, PlanCache, PlanOutcome, PlanSnapshot, PLAN_FILE_MAGIC,
    PLAN_FILE_VERSION,
};

use qoz_codec::stream::{Compressor, CompressorId, ErrorBound, Header};
use qoz_codec::{ByteReader, LinearQuantizer, Result, Scratch};
use qoz_metrics::QualityMetric;
use qoz_predict::LevelConfig;
use qoz_sz3::{select_global_interp, InterpSpec};
use qoz_tensor::{sample_blocks, NdArray, SamplePlan, Scalar};

/// The tuned plan a compression run settled on — exposed for inspection,
/// benchmarking (Fig. 12/13) and reproducibility.
#[derive(Debug, Clone, PartialEq)]
pub struct QozPlan {
    /// Resolved absolute error bound.
    pub abs_eb: f64,
    /// Chosen `(alpha, beta)`.
    pub alpha: f64,
    /// See `alpha`.
    pub beta: f64,
    /// The full engine spec (anchor stride, per-level configs/bounds).
    pub spec: InterpSpec,
}

/// The QoZ compressor.
#[derive(Debug, Clone, Default)]
pub struct Qoz {
    /// Tuning configuration.
    pub config: QozConfig,
}

impl Qoz {
    /// Create with an explicit configuration.
    pub fn new(config: QozConfig) -> Self {
        Qoz { config }
    }

    /// Create with defaults tuned for `metric`.
    pub fn for_metric(metric: QualityMetric) -> Self {
        Qoz {
            config: QozConfig::for_metric(metric),
        }
    }

    /// Run the online tuning stage only, returning the plan that
    /// [`Qoz::compress`] would execute.
    pub fn plan<T: Scalar>(&self, data: &NdArray<T>, bound: ErrorBound) -> QozPlan {
        let _span = qoz_telemetry::stages().tune.start();
        let abs_eb = bound.absolute(data);
        let shape = data.shape();
        let cfg = &self.config;
        let anchor = cfg.effective_anchor_stride(shape);
        let total_levels = anchor.trailing_zeros().max(1);

        let block = cfg.effective_sample_block(shape);
        let rate = cfg.effective_sample_rate(shape);
        let plan = SamplePlan::from_rate(shape, block, rate);
        let blocks = sample_blocks(data, &plan);

        // Algorithm-1 selectable levels: log2(min(sample block, anchor)).
        let sel_levels = (block.min(anchor as usize) as u32)
            .next_power_of_two()
            .trailing_zeros()
            .min(total_levels)
            .max(1);

        let level_configs: Vec<LevelConfig> = if cfg.sampled_selection && cfg.level_interp_selection
        {
            tuning::select_level_interps(&blocks, abs_eb, sel_levels, total_levels)
        } else if cfg.sampled_selection {
            vec![select_global_interp(data, abs_eb); total_levels as usize]
        } else {
            vec![LevelConfig::default(); total_levels as usize]
        };

        let (alpha, beta) = if cfg.param_autotuning {
            let cands = cfg.param_candidates();
            tuning::autotune_params(
                &blocks,
                abs_eb,
                &level_configs,
                sel_levels,
                cfg.metric,
                data.value_range(),
                &cands,
            )
        } else {
            cfg.fixed_params.unwrap_or((1.0, 1.0))
        };

        let level_ebs = level_error_bounds(abs_eb, alpha, beta, total_levels);
        let spec = InterpSpec {
            anchor_stride: Some(anchor),
            max_level: total_levels,
            level_configs,
            level_ebs,
            quant_radius: LinearQuantizer::DEFAULT_RADIUS,
        };
        QozPlan {
            abs_eb,
            alpha,
            beta,
            spec,
        }
    }

    /// Compress with a pre-computed plan (used by the ablation benches to
    /// re-apply identical tuning decisions).
    pub fn compress_with_plan<T: Scalar>(&self, data: &NdArray<T>, plan: &QozPlan) -> Vec<u8> {
        self.compress_with_plan_scratched(data, plan, &mut Scratch::new())
    }

    /// [`Qoz::compress_with_plan`] staging its buffers in a reusable
    /// arena; bytes are identical. This is the warm path of a
    /// [`pipeline::PlanCache`]-driven caller: with the tuning already
    /// done and the stage buffers already grown, a repeated same-shape
    /// snapshot costs one prediction pass plus entropy coding.
    pub fn compress_with_plan_scratched<T: Scalar>(
        &self,
        data: &NdArray<T>,
        plan: &QozPlan,
        scratch: &mut Scratch<T>,
    ) -> Vec<u8> {
        qoz_sz3::engine::compress_with_spec_path(
            data,
            &plan.spec,
            scratch,
            self.config.kernels.resolve(),
        );
        qoz_sz3::engine::write_stream(
            &Header {
                compressor: CompressorId::Qoz,
                scalar_tag: T::TYPE_TAG,
                shape: data.shape(),
                abs_eb: plan.abs_eb,
                temporal: None,
            },
            &plan.spec,
            scratch,
        )
    }

    /// Typed compression entry point.
    pub fn compress_typed<T: Scalar>(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8> {
        let plan = self.plan(data, bound);
        self.compress_with_plan(data, &plan)
    }

    /// Typed decompression entry point.
    pub fn decompress_typed<T: Scalar>(&self, blob: &[u8]) -> Result<NdArray<T>> {
        self.decompress_typed_scratched(blob, &mut Scratch::new())
    }

    /// [`Qoz::decompress_typed`] staging its stage buffers in a reusable
    /// arena; decoded values are identical.
    pub fn decompress_typed_scratched<T: Scalar>(
        &self,
        blob: &[u8],
        scratch: &mut Scratch<T>,
    ) -> Result<NdArray<T>> {
        let mut r = ByteReader::new(blob);
        let header = qoz_sz3::engine::check_stream_header::<T>(
            &mut r,
            CompressorId::Qoz,
            "not a QoZ stream",
        )?;
        let mut out = NdArray::<T>::zeros(header.shape);
        qoz_sz3::engine::read_stream_into_path(
            &mut r,
            &header,
            scratch,
            &mut out,
            self.config.kernels.resolve(),
        )?;
        Ok(out)
    }

    /// [`Qoz::decompress_typed`] into a caller-provided array, reshaped
    /// in place — with a warm arena the zero-allocation decode path.
    pub fn decompress_into_scratched<T: Scalar>(
        &self,
        blob: &[u8],
        scratch: &mut Scratch<T>,
        out: &mut NdArray<T>,
    ) -> Result<()> {
        let mut r = ByteReader::new(blob);
        let header = qoz_sz3::engine::check_stream_header::<T>(
            &mut r,
            CompressorId::Qoz,
            "not a QoZ stream",
        )?;
        qoz_sz3::engine::read_stream_into_path(
            &mut r,
            &header,
            scratch,
            out,
            self.config.kernels.resolve(),
        )
    }
}

impl<T: Scalar> Compressor<T> for Qoz {
    fn id(&self) -> CompressorId {
        CompressorId::Qoz
    }
    fn compress(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8> {
        self.compress_typed(data, bound)
    }
    fn compress_with_scratch(
        &self,
        data: &NdArray<T>,
        bound: ErrorBound,
        scratch: &mut Scratch<T>,
    ) -> Vec<u8> {
        let plan = self.plan(data, bound);
        self.compress_with_plan_scratched(data, &plan, scratch)
    }
    fn decompress(&self, blob: &[u8]) -> Result<NdArray<T>> {
        self.decompress_typed(blob)
    }
    fn decompress_with_scratch(&self, blob: &[u8], scratch: &mut Scratch<T>) -> Result<NdArray<T>> {
        self.decompress_typed_scratched(blob, scratch)
    }
    fn decompress_into(
        &self,
        blob: &[u8],
        scratch: &mut Scratch<T>,
        out: &mut NdArray<T>,
    ) -> Result<()> {
        self.decompress_into_scratched(blob, scratch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};
    use qoz_metrics::verify_error_bound;
    use qoz_tensor::Shape;

    #[test]
    fn roundtrip_respects_bound_all_datasets_all_metrics() {
        for ds in [Dataset::CesmAtm, Dataset::Miranda, Dataset::Nyx] {
            let data = ds.generate(SizeClass::Tiny, 0);
            for metric in [
                QualityMetric::CompressionRatio,
                QualityMetric::Psnr,
                QualityMetric::Ssim,
                QualityMetric::AutoCorrelation,
            ] {
                let qoz = Qoz::for_metric(metric);
                let bound = ErrorBound::Rel(1e-3);
                let abs = bound.absolute(&data);
                let blob = qoz.compress_typed(&data, bound);
                let recon = qoz.decompress_typed::<f32>(&blob).unwrap();
                assert_eq!(
                    verify_error_bound(&data, &recon, abs),
                    None,
                    "{} metric {:?}",
                    ds.name(),
                    metric
                );
            }
        }
    }

    #[test]
    fn plan_satisfies_eq5_policy() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let plan = Qoz::for_metric(QualityMetric::Psnr).plan(&data, ErrorBound::Rel(1e-3));
        let ebs = &plan.spec.level_ebs;
        assert!((ebs[0] - plan.abs_eb).abs() < 1e-18, "e_1 must equal e");
        for w in ebs.windows(2) {
            assert!(w[1] <= w[0] + 1e-18);
        }
        assert!(plan.alpha >= 1.0 && plan.beta >= 1.0);
    }

    #[test]
    fn qoz_beats_or_matches_sz3_on_smooth_data() {
        // The headline claim at a coarse bound: QoZ's anchors + tuning
        // should not lose to SZ3 on smooth turbulence-like data.
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 1);
        let bound = ErrorBound::Rel(1e-2);
        let qoz_blob = Qoz::default().compress_typed(&data, bound);
        let sz3_blob = qoz_sz3::Sz3::default().compress_typed(&data, bound);
        let qoz_cr = (data.len() * 4) as f64 / qoz_blob.len() as f64;
        let sz3_cr = (data.len() * 4) as f64 / sz3_blob.len() as f64;
        assert!(
            qoz_cr > sz3_cr * 0.85,
            "QoZ CR {qoz_cr:.1} should be competitive with SZ3 CR {sz3_cr:.1}"
        );
    }

    #[test]
    fn ac_mode_reduces_autocorrelation_vs_cr_mode() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 2);
        let bound = ErrorBound::Rel(1e-3);
        let ac_of = |metric| {
            let qoz = Qoz::for_metric(metric);
            let blob = qoz.compress_typed(&data, bound);
            let recon = qoz.decompress_typed::<f32>(&blob).unwrap();
            qoz_metrics::error_autocorrelation(&data, &recon, 1).abs()
        };
        let ac_pref = ac_of(QualityMetric::AutoCorrelation);
        let cr_pref = ac_of(QualityMetric::CompressionRatio);
        assert!(
            ac_pref <= cr_pref + 0.1,
            "AC mode {ac_pref} should not be much worse than CR mode {cr_pref}"
        );
    }

    #[test]
    fn fixed_params_bypass_tuning() {
        let data = Dataset::Nyx.generate(SizeClass::Tiny, 0);
        let cfg = QozConfig {
            param_autotuning: false,
            fixed_params: Some((2.0, 4.0)),
            ..Default::default()
        };
        let plan = Qoz::new(cfg).plan(&data, ErrorBound::Rel(1e-3));
        assert_eq!((plan.alpha, plan.beta), (2.0, 4.0));
        let expect = level_error_bounds(plan.abs_eb, 2.0, 4.0, plan.spec.max_level);
        assert_eq!(plan.spec.level_ebs, expect);
    }

    #[test]
    fn anchors_survive_roundtrip_losslessly() {
        let data = Dataset::Hurricane.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let plan = qoz.plan(&data, ErrorBound::Rel(1e-2));
        let blob = qoz.compress_with_plan(&data, &plan);
        let recon = qoz.decompress_typed::<f32>(&blob).unwrap();
        let stride = plan.spec.anchor_stride.unwrap() as usize;
        qoz_predict::for_each_base_point(data.shape(), stride, |off| {
            assert_eq!(recon.as_slice()[off], data.as_slice()[off]);
        });
    }

    #[test]
    fn wrong_stream_type_rejected() {
        let data = NdArray::from_fn(Shape::d2(32, 32), |i| (i[0] + i[1]) as f32);
        let sz3_blob = qoz_sz3::Sz3::default().compress_typed(&data, ErrorBound::Abs(1e-3));
        assert!(Qoz::default().decompress_typed::<f32>(&sz3_blob).is_err());
    }

    #[test]
    fn small_array_roundtrip() {
        let data = NdArray::from_fn(Shape::d3(5, 4, 3), |i| (i[0] * 12 + i[1] * 3 + i[2]) as f64);
        let blob = Qoz::default().compress_typed(&data, ErrorBound::Abs(1e-4));
        let recon = Qoz::default().decompress_typed::<f64>(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= 1e-4);
    }
}
