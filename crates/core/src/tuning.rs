//! Online tuning: level-wise interpolator selection (Algorithm 1) and
//! quality-metric-driven `(alpha, beta)` auto-tuning (§VI-C, Table I).
//!
//! All tuning runs on the uniformly sampled blocks only, so its cost is a
//! small fraction of the full compression pass. Trial compressions reuse
//! the shared engine; bit-rates are estimated with the entropy model
//! (`estimated_bits`) because only *relative* comparisons between
//! candidates matter.

use crate::config::level_error_bounds;
use qoz_codec::LinearQuantizer;
use qoz_metrics::{autocorr, ssim, QualityMetric};
use qoz_predict::{base_point_count, traverse_level, LevelConfig};
use qoz_sz3::{compress_with_spec, InterpSpec};
use qoz_tensor::{NdArray, Scalar};

/// One trial compression outcome on the sampled blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// Estimated bits per data point.
    pub bits_per_point: f64,
    /// Metric score in larger-is-better orientation.
    pub metric: f64,
}

/// Every `(alpha, beta)` candidate paired with its trial outcome.
pub type TrialTable = Vec<((f64, f64), TrialResult)>;

/// Level-adapted selection of the best-fit interpolator (Algorithm 1).
///
/// For each level from `sel_levels` down to 1, every candidate
/// `(kernel, order)` runs a trial on every sampled block given the
/// interpolators already fixed for higher levels; the candidate with the
/// lowest total absolute prediction error wins. Returns configs for
/// levels `1..=total_levels` (levels above `sel_levels` inherit the
/// highest selected config, per the paper's fallback).
pub fn select_level_interps<T: Scalar>(
    blocks: &[NdArray<T>],
    abs_eb: f64,
    sel_levels: u32,
    total_levels: u32,
) -> Vec<LevelConfig> {
    let total = total_levels.max(1) as usize;
    if blocks.is_empty() || sel_levels == 0 {
        return vec![LevelConfig::default(); total];
    }
    let quant = LinearQuantizer::new(abs_eb);

    // Working buffers: anchors (base grid of each block) stay lossless,
    // mirroring QoZ's anchored full-array pass.
    let mut works: Vec<NdArray<T>> = blocks.to_vec();
    let mut selected = vec![LevelConfig::default(); total];

    // Evaluate the default (cubic/ascending) first so that levels the
    // sampled blocks cannot discriminate (boundary-degenerate strides,
    // where every kernel falls back to the same formula) keep SZ3's
    // default instead of tie-breaking to an arbitrary candidate that the
    // full array's interior would regret.
    let mut cands = LevelConfig::candidates();
    cands.sort_by_key(|c| (*c != LevelConfig::default()) as u8);

    for level in (1..=sel_levels).rev() {
        let mut best = LevelConfig::default();
        let mut best_err = f64::INFINITY;
        for &cand in &cands {
            let mut err = 0.0f64;
            for work in &works {
                let mut trial = work.clone();
                let shape = trial.shape();
                traverse_level(
                    trial.as_mut_slice(),
                    shape,
                    level,
                    cand,
                    &mut |buf, off, pred| {
                        let v = buf[off];
                        let d = v.to_f64() - pred;
                        if d.is_finite() {
                            err += d.abs();
                        }
                        buf[off] = quant.quantize(v, pred).reconstructed;
                    },
                );
            }
            // Strict-improvement threshold: a candidate must beat the
            // incumbent by a measurable margin, not a rounding artifact.
            if err < best_err * (1.0 - 1e-9) {
                best_err = err;
                best = cand;
            }
        }
        selected[(level - 1) as usize] = best;
        // Commit the winning interpolator to the working buffers.
        for work in &mut works {
            let shape = work.shape();
            traverse_level(
                work.as_mut_slice(),
                shape,
                level,
                best,
                &mut |buf, off, pred| {
                    buf[off] = quant.quantize(buf[off], pred).reconstructed;
                },
            );
        }
    }

    // Levels above the block-selectable range inherit the top selection.
    let top = selected[(sel_levels - 1) as usize];
    for l in sel_levels as usize..total {
        selected[l] = top;
    }
    selected
}

/// Aggregate a metric over per-block (original, reconstruction) pairs in
/// larger-is-better orientation. `global_range` is the full dataset's
/// value range (PSNR must not use per-block ranges).
pub fn aggregate_metric<T: Scalar>(
    metric: QualityMetric,
    blocks: &[NdArray<T>],
    recons: &[NdArray<T>],
    global_range: f64,
) -> f64 {
    match metric {
        QualityMetric::CompressionRatio => 0.0,
        QualityMetric::Psnr => {
            let mut se = 0.0f64;
            let mut n = 0usize;
            for (b, r) in blocks.iter().zip(recons) {
                se += qoz_metrics::mse(b, r) * b.len() as f64;
                n += b.len();
            }
            let mse = se / n.max(1) as f64;
            if mse == 0.0 || global_range == 0.0 {
                f64::INFINITY
            } else {
                20.0 * (global_range / mse.sqrt()).log10()
            }
        }
        QualityMetric::Ssim => {
            let mut acc = 0.0f64;
            let mut n = 0usize;
            for (b, r) in blocks.iter().zip(recons) {
                acc += ssim(b, r) * b.len() as f64;
                n += b.len();
            }
            acc / n.max(1) as f64
        }
        QualityMetric::AutoCorrelation => {
            let mut acc = 0.0f64;
            let mut n = 0usize;
            for (b, r) in blocks.iter().zip(recons) {
                acc += autocorr::error_autocorrelation(b, r, 1).abs() * b.len() as f64;
                n += b.len();
            }
            -(acc / n.max(1) as f64)
        }
    }
}

/// Run one `(alpha, beta)` trial over the sampled blocks at error bound
/// `abs_eb * eb_scale`.
fn run_trial<T: Scalar>(
    blocks: &[NdArray<T>],
    abs_eb: f64,
    eb_scale: f64,
    alpha: f64,
    beta: f64,
    level_configs: &[LevelConfig],
    block_levels: u32,
    metric: QualityMetric,
    global_range: f64,
) -> TrialResult {
    let e = abs_eb * eb_scale;
    let ebs = level_error_bounds(e, alpha, beta, block_levels);
    let mut all_bins: Vec<u32> = Vec::new();
    let mut side_bytes = 0usize;
    let mut points = 0usize;
    let mut recons = Vec::with_capacity(blocks.len());
    for block in blocks {
        let spec = InterpSpec {
            anchor_stride: Some(1u32 << block_levels),
            max_level: block_levels,
            level_configs: level_configs[..block_levels as usize].to_vec(),
            level_ebs: ebs.clone(),
            quant_radius: LinearQuantizer::DEFAULT_RADIUS,
        };
        let out = compress_with_spec(block, &spec);
        all_bins.extend_from_slice(&out.bins);
        side_bytes += out.unpred.len() + out.anchors.len();
        points += block.len();
        recons.push(out.recon);
    }
    // Paper §VI-A: prediction runs per block, but the entropy stage is
    // applied to the *aggregated* bins for an accurate bit-rate estimate.
    let bins_bits = qoz_codec::encode_bins(&all_bins).len() as f64 * 8.0;
    TrialResult {
        bits_per_point: (bins_bits + side_bytes as f64 * 8.0) / points.max(1) as f64,
        metric: aggregate_metric(metric, blocks, &recons, global_range),
    }
}

/// Table-I comparison: is solution II better than solution I?
///
/// `trial_ii` produces II's result at a scaled error bound for the
/// "sophisticated" cases 3/4 (the two-point line construction).
pub fn solution_ii_better(
    metric: QualityMetric,
    i: TrialResult,
    ii: TrialResult,
    trial_ii: impl FnOnce(f64) -> TrialResult,
) -> bool {
    if metric == QualityMetric::CompressionRatio {
        return ii.bits_per_point < i.bits_per_point;
    }
    let (bi, mi) = (i.bits_per_point, i.metric);
    let (bii, mii) = (ii.bits_per_point, ii.metric);
    // Cases 1/2: dominance.
    if bi <= bii && mi >= mii {
        return false;
    }
    if bi >= bii && mi <= mii {
        return true;
    }
    // Cases 3/4: probe II at a shifted bound and interpolate its
    // rate-distortion line. e' = 1.2e when M_I > M_II, else 0.8e.
    let scale = if mi > mii { 1.2 } else { 0.8 };
    let probe = trial_ii(scale);
    let (bp, mp) = (probe.bits_per_point, probe.metric);
    if (bp - bii).abs() < 1e-9 || !mp.is_finite() || !mii.is_finite() {
        // Degenerate line; fall back to direct metric comparison.
        return mii > mi;
    }
    let slope = (mp - mii) / (bp - bii);
    let m_line = mii + slope * (bi - bii);
    // I sits below II's rate-distortion line => II is better.
    mi < m_line
}

/// Quality-metric-oriented `(alpha, beta)` auto-tuning (§VI-C).
///
/// Traverses the candidate grid, comparing each candidate against the
/// incumbent with the Table-I logic; sophisticated cases run one extra
/// sampled trial at a shifted error bound.
#[allow(clippy::too_many_arguments)]
pub fn autotune_params<T: Scalar>(
    blocks: &[NdArray<T>],
    abs_eb: f64,
    level_configs: &[LevelConfig],
    block_levels: u32,
    metric: QualityMetric,
    global_range: f64,
    candidates: &[(f64, f64)],
) -> (f64, f64) {
    assert!(!candidates.is_empty());
    if blocks.is_empty() {
        return candidates[0];
    }
    let trial = |alpha: f64, beta: f64, scale: f64| {
        run_trial(
            blocks,
            abs_eb,
            scale,
            alpha,
            beta,
            level_configs,
            block_levels,
            metric,
            global_range,
        )
    };
    let mut best = candidates[0];
    let mut best_res = trial(best.0, best.1, 1.0);
    for &(a, b) in &candidates[1..] {
        let res = trial(a, b, 1.0);
        if solution_ii_better(metric, best_res, res, |scale| trial(a, b, scale)) {
            best = (a, b);
            best_res = res;
        }
    }
    best
}

/// Debug/benchmark helper: evaluate every candidate and return the full
/// trial table alongside the winner (used by the Fig. 13 harness).
#[allow(clippy::too_many_arguments)]
pub fn autotune_with_table<T: Scalar>(
    blocks: &[NdArray<T>],
    abs_eb: f64,
    level_configs: &[LevelConfig],
    block_levels: u32,
    metric: QualityMetric,
    global_range: f64,
    candidates: &[(f64, f64)],
) -> ((f64, f64), TrialTable) {
    let table: TrialTable = candidates
        .iter()
        .map(|&(a, b)| {
            (
                (a, b),
                run_trial(
                    blocks,
                    abs_eb,
                    1.0,
                    a,
                    b,
                    level_configs,
                    block_levels,
                    metric,
                    global_range,
                ),
            )
        })
        .collect();
    let winner = autotune_params(
        blocks,
        abs_eb,
        level_configs,
        block_levels,
        metric,
        global_range,
        candidates,
    );
    (winner, table)
}

/// Make blocks "anchored" for tuning: the engine treats their base grid
/// as lossless anchors, so nothing extra is needed; this helper exists to
/// document the invariant and is used by tests.
pub fn block_anchor_check<T: Scalar>(block: &NdArray<T>, levels: u32) -> usize {
    base_point_count(block.shape(), 1usize << levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_predict::InterpKind;
    use qoz_tensor::Shape;

    fn smooth_blocks() -> Vec<NdArray<f64>> {
        (0..4)
            .map(|k| {
                NdArray::from_fn(Shape::d2(17, 17), |i| {
                    ((i[0] + k * 3) as f64 * 0.11).sin() * ((i[1] + k) as f64 * 0.09).cos()
                })
            })
            .collect()
    }

    #[test]
    fn selection_returns_requested_levels() {
        let blocks = smooth_blocks();
        let configs = select_level_interps(&blocks, 1e-4, 4, 6);
        assert_eq!(configs.len(), 6);
        // Levels above sel inherit level-4's config.
        assert_eq!(configs[4], configs[3]);
        assert_eq!(configs[5], configs[3]);
    }

    #[test]
    fn selection_prefers_higher_order_on_smooth_blocks() {
        let blocks = smooth_blocks();
        let configs = select_level_interps(&blocks, 1e-5, 4, 4);
        // The dense lowest level dominates quality; smooth trigonometric
        // data favours a higher-order kernel (cubic or quadratic) there.
        assert_ne!(configs[0].kind, InterpKind::Linear, "picked {configs:?}");
    }

    #[test]
    fn dominance_cases_direct() {
        let m = QualityMetric::Psnr;
        let i = TrialResult {
            bits_per_point: 2.0,
            metric: 60.0,
        };
        let worse = TrialResult {
            bits_per_point: 3.0,
            metric: 50.0,
        };
        let better = TrialResult {
            bits_per_point: 1.0,
            metric: 70.0,
        };
        assert!(!solution_ii_better(m, i, worse, |_| unreachable!()));
        assert!(solution_ii_better(m, i, better, |_| unreachable!()));
    }

    #[test]
    fn sophisticated_case_uses_line() {
        let m = QualityMetric::Psnr;
        // II: cheaper but lower quality than I.
        let i = TrialResult {
            bits_per_point: 2.0,
            metric: 60.0,
        };
        let ii = TrialResult {
            bits_per_point: 1.0,
            metric: 50.0,
        };
        // II's curve probed at 1.2e (M_I > M_II): suppose at 2.0 bits II
        // would reach 65 dB -> line passes above I -> II better.
        let probe_hi = TrialResult {
            bits_per_point: 2.0,
            metric: 65.0,
        };
        assert!(solution_ii_better(m, i, ii, |s| {
            assert!((s - 1.2).abs() < 1e-12);
            probe_hi
        }));
        // If II's curve only reaches 55 dB at 2.0 bits, I stays.
        let probe_lo = TrialResult {
            bits_per_point: 2.0,
            metric: 55.0,
        };
        assert!(!solution_ii_better(m, i, ii, |_| probe_lo));
    }

    #[test]
    fn cr_mode_compares_bits_only() {
        let m = QualityMetric::CompressionRatio;
        let i = TrialResult {
            bits_per_point: 2.0,
            metric: 0.0,
        };
        let ii = TrialResult {
            bits_per_point: 1.5,
            metric: 0.0,
        };
        assert!(solution_ii_better(m, i, ii, |_| unreachable!()));
    }

    #[test]
    fn autotune_picks_tighter_levels_on_smooth_data() {
        // On smooth data, tightening high-level bounds (alpha > 1)
        // improves rate-PSNR; the tuner should not pick (1, 1).
        let blocks = smooth_blocks();
        let configs = vec![LevelConfig::default(); 4];
        let cands = vec![(1.0, 1.0), (1.5, 2.0), (2.0, 4.0)];
        let (a, _b) = autotune_params(&blocks, 1e-3, &configs, 4, QualityMetric::Psnr, 2.0, &cands);
        assert!(a >= 1.0);
    }

    #[test]
    fn autotune_table_covers_all_candidates() {
        let blocks = smooth_blocks();
        let configs = vec![LevelConfig::default(); 4];
        let cands = vec![(1.0, 1.0), (1.5, 2.0)];
        let (winner, table) = autotune_with_table(
            &blocks,
            1e-3,
            &configs,
            4,
            QualityMetric::CompressionRatio,
            2.0,
            &cands,
        );
        assert_eq!(table.len(), 2);
        assert!(cands.contains(&winner));
        // CR mode: winner must have the minimum bits.
        let min = table
            .iter()
            .map(|(_, r)| r.bits_per_point)
            .fold(f64::INFINITY, f64::min);
        let w = table.iter().find(|(c, _)| *c == winner).unwrap().1;
        assert!(w.bits_per_point <= min + 1e-9);
    }

    #[test]
    fn aggregate_psnr_uses_global_range() {
        let blocks = smooth_blocks();
        let recons: Vec<_> = blocks
            .iter()
            .map(|b| {
                let mut r = b.clone();
                for v in r.as_mut_slice() {
                    *v += 1e-3;
                }
                r
            })
            .collect();
        let p_small = aggregate_metric(QualityMetric::Psnr, &blocks, &recons, 1.0);
        let p_big = aggregate_metric(QualityMetric::Psnr, &blocks, &recons, 10.0);
        assert!((p_big - p_small - 20.0).abs() < 1e-9);
    }

    #[test]
    fn block_anchor_counts() {
        let b = NdArray::<f32>::zeros(Shape::d2(17, 17));
        assert_eq!(block_anchor_check(&b, 4), 4);
    }
}
