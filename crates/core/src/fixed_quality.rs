//! Fixed-quality compression: hit a *quality target* instead of an error
//! bound.
//!
//! The paper's related work (Tao et al., CLUSTER'18) supports compressing
//! to a fixed PSNR; QoZ's sampling machinery makes the generalization
//! natural: estimate the quality-vs-bound curve on the sampled blocks,
//! geometric-bisect the bound, then run the normal metric-tuned
//! compression and verify the target on the full reconstruction,
//! tightening if the sampled estimate was optimistic.
//!
//! The result still carries QoZ's hard error-bound guarantee at the bound
//! the search settles on.

use crate::{Qoz, QozPlan};
use qoz_codec::stream::ErrorBound;
use qoz_codec::Result;
use qoz_metrics::{psnr, ssim};
use qoz_sz3::{compress_with_spec, InterpSpec};
use qoz_tensor::{sample_blocks, NdArray, SamplePlan, Scalar};

/// A quality target for [`Qoz::compress_to_quality`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QualityTarget {
    /// Minimum PSNR in dB.
    Psnr(f64),
    /// Minimum mean windowed SSIM in `[0, 1]`.
    Ssim(f64),
}

impl QualityTarget {
    fn satisfied(&self, achieved: f64) -> bool {
        match self {
            QualityTarget::Psnr(t) | QualityTarget::Ssim(t) => achieved >= *t,
        }
    }
}

/// Outcome of a fixed-quality compression.
#[derive(Debug, Clone)]
pub struct FixedQualityResult {
    /// The compressed stream.
    pub blob: Vec<u8>,
    /// The relative error bound the search settled on.
    pub rel_bound: f64,
    /// Quality achieved on the full reconstruction.
    pub achieved: f64,
    /// The plan used for the final pass.
    pub plan: QozPlan,
}

impl Qoz {
    /// Estimate the quality at a relative bound from the sampled blocks.
    fn sampled_quality<T: Scalar>(
        &self,
        blocks: &[NdArray<T>],
        range: f64,
        eps: f64,
        target: QualityTarget,
    ) -> f64 {
        let abs = eps * range;
        let mut se = 0.0f64;
        let mut ssim_acc = 0.0f64;
        let mut n = 0usize;
        for b in blocks {
            let spec = InterpSpec::anchored(16, abs, Default::default());
            let out = compress_with_spec(b, &spec);
            match target {
                QualityTarget::Psnr(_) => {
                    se += qoz_metrics::mse(b, &out.recon) * b.len() as f64;
                }
                QualityTarget::Ssim(_) => {
                    ssim_acc += ssim(b, &out.recon) * b.len() as f64;
                }
            }
            n += b.len();
        }
        match target {
            QualityTarget::Psnr(_) => {
                let mse = se / n.max(1) as f64;
                if mse == 0.0 {
                    f64::INFINITY
                } else {
                    20.0 * (range / mse.sqrt()).log10()
                }
            }
            QualityTarget::Ssim(_) => ssim_acc / n.max(1) as f64,
        }
    }

    /// Compress to a minimum quality target, maximizing compression ratio
    /// subject to it.
    ///
    /// Returns an error only if decompression of the self-produced stream
    /// fails (which would be a bug); an unreachable target (e.g. SSIM
    /// 1.0 on noisy data) converges to the tightest searched bound.
    pub fn compress_to_quality<T: Scalar>(
        &self,
        data: &NdArray<T>,
        target: QualityTarget,
    ) -> Result<FixedQualityResult> {
        let range = data.value_range();
        let plan_cfg = SamplePlan::from_rate(
            data.shape(),
            self.config.effective_sample_block(data.shape()),
            self.config.effective_sample_rate(data.shape()),
        );
        let blocks = sample_blocks(data, &plan_cfg);

        // Geometric bisection on the relative bound.
        let mut lo = 1e-8f64; // quality too high (wasteful)
        let mut hi = 1e-1f64; // quality too low
        for _ in 0..14 {
            let mid = (lo * hi).sqrt();
            let q = self.sampled_quality(&blocks, range, mid, target);
            if target.satisfied(q) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut eps = lo;

        // Full pass with the real tuner; verify and tighten if the
        // sampled estimate was optimistic.
        for _attempt in 0..4 {
            let bound = ErrorBound::Rel(eps);
            let plan = self.plan(data, bound);
            let blob = self.compress_with_plan(data, &plan);
            let recon: NdArray<T> = self.decompress_typed(&blob)?;
            let achieved = match target {
                QualityTarget::Psnr(_) => psnr(data, &recon),
                QualityTarget::Ssim(_) => ssim(data, &recon),
            };
            if target.satisfied(achieved) || eps <= 2e-8 {
                return Ok(FixedQualityResult {
                    blob,
                    rel_bound: eps,
                    achieved,
                    plan,
                });
            }
            eps /= 2.0;
        }
        // Final fallback at the tightest bound tried.
        let bound = ErrorBound::Rel(eps);
        let plan = self.plan(data, bound);
        let blob = self.compress_with_plan(data, &plan);
        let recon: NdArray<T> = self.decompress_typed(&blob)?;
        let achieved = match target {
            QualityTarget::Psnr(_) => psnr(data, &recon),
            QualityTarget::Ssim(_) => ssim(data, &recon),
        };
        Ok(FixedQualityResult {
            blob,
            rel_bound: eps,
            achieved,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};

    #[test]
    fn hits_psnr_target() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        for target_db in [50.0, 70.0] {
            let r = qoz
                .compress_to_quality(&data, QualityTarget::Psnr(target_db))
                .unwrap();
            assert!(
                r.achieved >= target_db,
                "target {target_db} dB, achieved {:.2}",
                r.achieved
            );
            // Should not wildly overshoot (within ~20 dB of the target).
            assert!(
                r.achieved <= target_db + 25.0,
                "overshoot: target {target_db}, achieved {:.2}",
                r.achieved
            );
        }
    }

    #[test]
    fn higher_target_costs_more_bits() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let a = qoz
            .compress_to_quality(&data, QualityTarget::Psnr(45.0))
            .unwrap();
        let b = qoz
            .compress_to_quality(&data, QualityTarget::Psnr(80.0))
            .unwrap();
        assert!(b.blob.len() > a.blob.len());
        assert!(b.rel_bound < a.rel_bound);
    }

    #[test]
    fn hits_ssim_target() {
        let data = Dataset::Hurricane.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let r = qoz
            .compress_to_quality(&data, QualityTarget::Ssim(0.95))
            .unwrap();
        assert!(r.achieved >= 0.95, "achieved {:.4}", r.achieved);
    }

    #[test]
    fn stream_remains_decodable_and_bounded() {
        let data = Dataset::Nyx.generate(SizeClass::Tiny, 1);
        let qoz = Qoz::default();
        let r = qoz
            .compress_to_quality(&data, QualityTarget::Psnr(60.0))
            .unwrap();
        let recon: qoz_tensor::NdArray<f32> = qoz.decompress_typed(&r.blob).unwrap();
        let abs = r.rel_bound * data.value_range();
        assert!(data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9));
    }
}
