//! Fixed-quality compression: hit a *quality target* instead of an error
//! bound.
//!
//! The paper's related work (Tao et al., CLUSTER'18) supports compressing
//! to a fixed PSNR; QoZ's sampling machinery makes the generalization
//! natural: estimate the quality-vs-bound curve on the sampled blocks,
//! geometric-bisect the bound, then run the normal metric-tuned
//! compression and verify the target on the full reconstruction,
//! tightening if the sampled estimate was optimistic.
//!
//! The result still carries QoZ's hard error-bound guarantee at the bound
//! the search settles on.

use crate::{Qoz, QozPlan};
use qoz_codec::stream::{Compressor, ErrorBound};
use qoz_codec::Result;
use qoz_metrics::{psnr, ssim};
use qoz_sz3::{compress_with_spec, InterpSpec};
use qoz_tensor::{sample_blocks, NdArray, SamplePlan, Scalar};

/// A quality target for [`Qoz::compress_to_quality`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QualityTarget {
    /// Minimum PSNR in dB.
    Psnr(f64),
    /// Minimum mean windowed SSIM in `[0, 1]`.
    Ssim(f64),
}

impl QualityTarget {
    fn satisfied(&self, achieved: f64) -> bool {
        match self {
            QualityTarget::Psnr(t) | QualityTarget::Ssim(t) => achieved >= *t,
        }
    }
}

/// Outcome of driving an arbitrary backend to a quality or ratio target
/// ([`compress_codec_to_quality`] / [`compress_codec_to_ratio`]).
#[derive(Debug, Clone)]
pub struct TargetOutcome {
    /// The compressed stream.
    pub blob: Vec<u8>,
    /// The relative error bound the search settled on.
    pub rel_bound: f64,
    /// The metric achieved at that bound: PSNR/SSIM measured on the full
    /// reconstruction, or the actual compression ratio for ratio targets.
    pub achieved: f64,
}

/// Drive *any* backend to a minimum quality target by geometric
/// bisection on the relative error bound.
///
/// Unlike [`Qoz::compress_to_quality`] there is no sampled fast path to
/// exploit for arbitrary backends, so every probe runs the full
/// compress + decompress pipeline and measures the target metric on the
/// complete reconstruction — `O(iterations)` full passes. The returned
/// stream *meets or exceeds* the target whenever any bound in the
/// searched range `[1e-8, 1e-1]` does; an unreachable target converges
/// to the tightest searched bound (inspect `achieved` to detect this).
pub fn compress_codec_to_quality<T, C>(
    codec: &C,
    data: &NdArray<T>,
    target: QualityTarget,
) -> Result<TargetOutcome>
where
    T: Scalar,
    C: Compressor<T> + ?Sized,
{
    let measure = |blob: &[u8]| -> Result<(NdArray<T>, f64)> {
        let recon = codec.decompress(blob)?;
        let achieved = match target {
            QualityTarget::Psnr(_) => psnr(data, &recon),
            QualityTarget::Ssim(_) => ssim(data, &recon),
        };
        Ok((recon, achieved))
    };

    // Geometric bisection: lo is the largest bound *known* to satisfy
    // the target, hi the smallest known to miss it.
    let mut lo = 1e-8f64;
    let mut hi = 1e-1f64;
    let mut best: Option<TargetOutcome> = None;
    for _ in 0..12 {
        let mid = (lo * hi).sqrt();
        let blob = codec.compress(data, ErrorBound::Rel(mid));
        let (_, achieved) = measure(&blob)?;
        if target.satisfied(achieved) {
            lo = mid;
            best = Some(TargetOutcome {
                blob,
                rel_bound: mid,
                achieved,
            });
        } else {
            hi = mid;
        }
    }
    match best {
        Some(outcome) => Ok(outcome),
        None => {
            // Nothing in the range satisfied the target: fall back to the
            // tightest bound and report what it achieves.
            let blob = codec.compress(data, ErrorBound::Rel(lo));
            let (_, achieved) = measure(&blob)?;
            Ok(TargetOutcome {
                blob,
                rel_bound: lo,
                achieved,
            })
        }
    }
}

/// Drive *any* backend toward a target compression ratio by geometric
/// bisection on the relative error bound (the Fig. 11 same-CR search).
///
/// Returns the probe whose ratio lands closest to the request (in log
/// space). With 12+ iterations the achieved ratio is typically within a
/// few percent of the target on smooth fields, but ratio is a step
/// function of the bound for some backends — consumers should tolerate
/// up to ~±50% on hostile data.
pub fn compress_codec_to_ratio<T, C>(
    codec: &C,
    data: &NdArray<T>,
    target_cr: f64,
    iterations: usize,
) -> TargetOutcome
where
    T: Scalar,
    C: Compressor<T> + ?Sized,
{
    let raw = (data.len() * T::BYTES) as f64;
    let mut lo = 1e-7f64;
    let mut hi = 0.3f64;
    let mut best: Option<(f64, TargetOutcome)> = None;
    for _ in 0..iterations.max(1) {
        let mid = (lo * hi).sqrt();
        let blob = codec.compress(data, ErrorBound::Rel(mid));
        let cr = raw / blob.len().max(1) as f64;
        let dist = (cr / target_cr).ln().abs();
        if best.as_ref().map_or(true, |(d, _)| dist < *d) {
            best = Some((
                dist,
                TargetOutcome {
                    blob,
                    rel_bound: mid,
                    achieved: cr,
                },
            ));
        }
        if cr < target_cr {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best.expect("iterations >= 1 always records a probe").1
}

/// Outcome of a fixed-quality compression.
#[derive(Debug, Clone)]
pub struct FixedQualityResult {
    /// The compressed stream.
    pub blob: Vec<u8>,
    /// The relative error bound the search settled on.
    pub rel_bound: f64,
    /// Quality achieved on the full reconstruction.
    pub achieved: f64,
    /// The plan used for the final pass.
    pub plan: QozPlan,
}

impl Qoz {
    /// Estimate the quality at a relative bound from the sampled blocks.
    fn sampled_quality<T: Scalar>(
        &self,
        blocks: &[NdArray<T>],
        range: f64,
        eps: f64,
        target: QualityTarget,
    ) -> f64 {
        let abs = eps * range;
        let mut se = 0.0f64;
        let mut ssim_acc = 0.0f64;
        let mut n = 0usize;
        for b in blocks {
            let spec = InterpSpec::anchored(16, abs, Default::default());
            let out = compress_with_spec(b, &spec);
            match target {
                QualityTarget::Psnr(_) => {
                    se += qoz_metrics::mse(b, &out.recon) * b.len() as f64;
                }
                QualityTarget::Ssim(_) => {
                    ssim_acc += ssim(b, &out.recon) * b.len() as f64;
                }
            }
            n += b.len();
        }
        match target {
            QualityTarget::Psnr(_) => {
                let mse = se / n.max(1) as f64;
                if mse == 0.0 {
                    f64::INFINITY
                } else {
                    20.0 * (range / mse.sqrt()).log10()
                }
            }
            QualityTarget::Ssim(_) => ssim_acc / n.max(1) as f64,
        }
    }

    /// Compress to a minimum quality target, maximizing compression ratio
    /// subject to it.
    ///
    /// Returns an error only if decompression of the self-produced stream
    /// fails (which would be a bug); an unreachable target (e.g. SSIM
    /// 1.0 on noisy data) converges to the tightest searched bound.
    pub fn compress_to_quality<T: Scalar>(
        &self,
        data: &NdArray<T>,
        target: QualityTarget,
    ) -> Result<FixedQualityResult> {
        let range = data.value_range();
        let plan_cfg = SamplePlan::from_rate(
            data.shape(),
            self.config.effective_sample_block(data.shape()),
            self.config.effective_sample_rate(data.shape()),
        );
        let blocks = sample_blocks(data, &plan_cfg);

        // Geometric bisection on the relative bound.
        let mut lo = 1e-8f64; // quality too high (wasteful)
        let mut hi = 1e-1f64; // quality too low
        for _ in 0..14 {
            let mid = (lo * hi).sqrt();
            let q = self.sampled_quality(&blocks, range, mid, target);
            if target.satisfied(q) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut eps = lo;

        // Full pass with the real tuner; verify and tighten if the
        // sampled estimate was optimistic.
        for _attempt in 0..4 {
            let bound = ErrorBound::Rel(eps);
            let plan = self.plan(data, bound);
            let blob = self.compress_with_plan(data, &plan);
            let recon: NdArray<T> = self.decompress_typed(&blob)?;
            let achieved = match target {
                QualityTarget::Psnr(_) => psnr(data, &recon),
                QualityTarget::Ssim(_) => ssim(data, &recon),
            };
            if target.satisfied(achieved) || eps <= 2e-8 {
                return Ok(FixedQualityResult {
                    blob,
                    rel_bound: eps,
                    achieved,
                    plan,
                });
            }
            eps /= 2.0;
        }
        // Final fallback at the tightest bound tried.
        let bound = ErrorBound::Rel(eps);
        let plan = self.plan(data, bound);
        let blob = self.compress_with_plan(data, &plan);
        let recon: NdArray<T> = self.decompress_typed(&blob)?;
        let achieved = match target {
            QualityTarget::Psnr(_) => psnr(data, &recon),
            QualityTarget::Ssim(_) => ssim(data, &recon),
        };
        Ok(FixedQualityResult {
            blob,
            rel_bound: eps,
            achieved,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};

    #[test]
    fn hits_psnr_target() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        for target_db in [50.0, 70.0] {
            let r = qoz
                .compress_to_quality(&data, QualityTarget::Psnr(target_db))
                .unwrap();
            assert!(
                r.achieved >= target_db,
                "target {target_db} dB, achieved {:.2}",
                r.achieved
            );
            // Should not wildly overshoot (within ~20 dB of the target).
            assert!(
                r.achieved <= target_db + 25.0,
                "overshoot: target {target_db}, achieved {:.2}",
                r.achieved
            );
        }
    }

    #[test]
    fn higher_target_costs_more_bits() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let a = qoz
            .compress_to_quality(&data, QualityTarget::Psnr(45.0))
            .unwrap();
        let b = qoz
            .compress_to_quality(&data, QualityTarget::Psnr(80.0))
            .unwrap();
        assert!(b.blob.len() > a.blob.len());
        assert!(b.rel_bound < a.rel_bound);
    }

    #[test]
    fn hits_ssim_target() {
        let data = Dataset::Hurricane.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let r = qoz
            .compress_to_quality(&data, QualityTarget::Ssim(0.95))
            .unwrap();
        assert!(r.achieved >= 0.95, "achieved {:.4}", r.achieved);
    }

    #[test]
    fn generic_driver_hits_psnr_on_non_qoz_backend() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let sz3 = qoz_sz3::Sz3::default();
        let r = compress_codec_to_quality(&sz3, &data, QualityTarget::Psnr(55.0)).unwrap();
        let recon: NdArray<f32> = sz3.decompress(&r.blob).unwrap();
        assert!(r.achieved >= 55.0, "achieved {:.2}", r.achieved);
        assert!((psnr(&data, &recon) - r.achieved).abs() < 1e-9);
        // The search must not collapse to the floor bound when the target
        // is comfortably reachable.
        assert!(r.rel_bound > 1e-8);
    }

    #[test]
    fn generic_driver_reports_unreachable_targets() {
        let data = Dataset::Nyx.generate(SizeClass::Tiny, 0);
        // SSIM of exactly 1.0 is unreachable for a lossy codec; the
        // driver must converge to its tightest bound and say so.
        let r =
            compress_codec_to_quality(&qoz_sz3::Sz3::default(), &data, QualityTarget::Ssim(1.0))
                .unwrap();
        assert!(r.achieved < 1.0);
        assert!(r.rel_bound <= 2e-8, "bound {:.3e}", r.rel_bound);
    }

    #[test]
    fn ratio_driver_lands_near_target() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let sz3 = qoz_sz3::Sz3::default();
        let r = compress_codec_to_ratio(&sz3, &data, 30.0, 14);
        assert!(
            (r.achieved / 30.0).ln().abs() < 0.5_f64.ln_1p(),
            "cr {:.1} target 30",
            r.achieved
        );
        let cr = (data.len() * 4) as f64 / r.blob.len() as f64;
        assert!((cr - r.achieved).abs() < 1e-9);
    }

    #[test]
    fn stream_remains_decodable_and_bounded() {
        let data = Dataset::Nyx.generate(SizeClass::Tiny, 1);
        let qoz = Qoz::default();
        let r = qoz
            .compress_to_quality(&data, QualityTarget::Psnr(60.0))
            .unwrap();
        let recon: qoz_tensor::NdArray<f32> = qoz.decompress_typed(&r.blob).unwrap();
        let abs = r.rel_bound * data.value_range();
        assert!(data.max_abs_diff(&recon) <= abs * (1.0 + 1e-9));
    }
}
