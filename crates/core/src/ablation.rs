//! Ablation variants for the paper's Fig. 12 study.
//!
//! Fig. 12 builds QoZ from SZ3 one component at a time:
//!
//! | Variant            | AP | S  | LIS | PA |
//! |--------------------|----|----|-----|----|
//! | `Sz3Baseline`      |    |    |     |    |
//! | `Sz3Ap`            | ✓  |    |     |    |
//! | `Sz3ApS`           | ✓  | ✓  |     |    |
//! | `Sz3ApSLis`        | ✓  | ✓  | ✓   |    |
//! | `QozFull`          | ✓  | ✓  | ✓   | ✓  |
//!
//! AP = anchor points, S = sampled interpolator selection, LIS =
//! level-wise interpolator selection, PA = parameter auto-tuning. Each
//! variant maps onto a real configuration of the shared engine, so the
//! study measures genuine code paths rather than simulated deltas.

use crate::config::QozConfig;
use crate::Qoz;
use qoz_metrics::QualityMetric;

/// One step of the Fig. 12 component ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AblationVariant {
    /// Plain SZ3 (handled by `qoz-sz3`, listed for completeness).
    Sz3Baseline,
    /// SZ3 + anchor points.
    Sz3Ap,
    /// SZ3 + anchors + sampled global interpolator selection.
    Sz3ApS,
    /// SZ3 + anchors + sampling + level-wise interpolator selection.
    Sz3ApSLis,
    /// Full QoZ (adds parameter auto-tuning).
    QozFull,
}

impl AblationVariant {
    /// All variants in ladder order.
    pub const ALL: [AblationVariant; 5] = [
        AblationVariant::Sz3Baseline,
        AblationVariant::Sz3Ap,
        AblationVariant::Sz3ApS,
        AblationVariant::Sz3ApSLis,
        AblationVariant::QozFull,
    ];

    /// Label used in the Fig. 12 plots.
    pub fn name(self) -> &'static str {
        match self {
            AblationVariant::Sz3Baseline => "SZ3",
            AblationVariant::Sz3Ap => "SZ3+AP",
            AblationVariant::Sz3ApS => "SZ3+AP+S",
            AblationVariant::Sz3ApSLis => "SZ3+AP+S+LIS",
            AblationVariant::QozFull => "QoZ",
        }
    }

    /// Build the QoZ configuration for this variant (not meaningful for
    /// [`AblationVariant::Sz3Baseline`], which uses the `qoz-sz3` crate).
    pub fn qoz_config(self, metric: QualityMetric) -> QozConfig {
        let mut cfg = QozConfig::for_metric(metric);
        match self {
            AblationVariant::Sz3Baseline | AblationVariant::Sz3Ap => {
                cfg.sampled_selection = false;
                cfg.level_interp_selection = false;
                cfg.param_autotuning = false;
            }
            AblationVariant::Sz3ApS => {
                cfg.sampled_selection = true;
                cfg.level_interp_selection = false;
                cfg.param_autotuning = false;
            }
            AblationVariant::Sz3ApSLis => {
                cfg.sampled_selection = true;
                cfg.level_interp_selection = true;
                cfg.param_autotuning = false;
            }
            AblationVariant::QozFull => {
                cfg.sampled_selection = true;
                cfg.level_interp_selection = true;
                cfg.param_autotuning = true;
            }
        }
        cfg
    }

    /// Instantiate the compressor for this variant.
    pub fn compressor(self, metric: QualityMetric) -> Qoz {
        Qoz::new(self.qoz_config(metric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_codec::ErrorBound;
    use qoz_datagen::{Dataset, SizeClass};

    #[test]
    fn ladder_monotonically_enables_features() {
        let m = QualityMetric::Psnr;
        let cfgs: Vec<QozConfig> = AblationVariant::ALL[1..]
            .iter()
            .map(|v| v.qoz_config(m))
            .collect();
        let as_bits = |c: &QozConfig| {
            (
                c.sampled_selection as u8,
                c.level_interp_selection as u8,
                c.param_autotuning as u8,
            )
        };
        let bits: Vec<_> = cfgs.iter().map(as_bits).collect();
        assert_eq!(bits, vec![(0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1)]);
    }

    #[test]
    fn all_variants_respect_error_bound() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 1);
        let bound = ErrorBound::Rel(1e-3);
        let abs = bound.absolute(&data);
        for v in &AblationVariant::ALL[1..] {
            let c = v.compressor(QualityMetric::Psnr);
            let blob = c.compress_typed(&data, bound);
            let recon = c.decompress_typed::<f32>(&blob).unwrap();
            assert!(
                data.max_abs_diff(&recon) <= abs * (1.0 + 1e-12),
                "{} violates bound",
                v.name()
            );
        }
    }

    #[test]
    fn names_are_paper_labels() {
        let names: Vec<_> = AblationVariant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            vec!["SZ3", "SZ3+AP", "SZ3+AP+S", "SZ3+AP+S+LIS", "QoZ"]
        );
    }
}
