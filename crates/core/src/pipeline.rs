//! Plan caching for repeated, same-shape compression (time series).
//!
//! QoZ's online tuning (sampling, Algorithm-1 level-interpolator
//! selection, `(alpha, beta)` auto-tuning) is the dominant cost of a
//! compression call, yet scientific workloads dump the *same* variables
//! every timestep: consecutive snapshots are statistically near-identical
//! and re-derive the same plan. A [`PlanCache`] remembers the last tuned
//! [`QozPlan`] per `(shape, scalar type, bound)` and replays it while a
//! cheap sampled drift check says the data still looks like the data the
//! plan was tuned on.
//!
//! # Warm-path semantics
//!
//! [`Qoz::plan_cached`] returns one of four [`PlanOutcome`]s:
//!
//! * **`ColdTuned`** — first call: full tuning ran, plan cached.
//! * **`WarmHit`** — cache key matched, drift within tolerance, and the
//!   resolved absolute bound is bit-identical to the cached plan's. The
//!   cached plan is replayed as-is, so compressing *unchanged data* warm
//!   produces a stream byte-identical to the cold path.
//! * **`WarmRescaled`** — tuning decisions (anchor stride, per-level
//!   interpolators, `(alpha, beta)`) are replayed but the per-level
//!   error bounds are rebuilt from *this call's* resolved absolute
//!   bound (a relative bound resolves against each snapshot's value
//!   range). This keeps the hard error-bound contract exact on every
//!   call — reuse never loosens a bound.
//! * **`Retuned`** — the key matched but the drift check failed (or the
//!   resolved bound moved beyond tolerance): full tuning ran again and
//!   the cache was refreshed. A shape, scalar-type or bound-spec change
//!   likewise retunes.
//!
//! The drift check compresses the standard sampled blocks with a fixed
//! cheap spec and compares the mean absolute prediction error against
//! the value recorded when the cached plan was tuned; departure beyond
//! the configurable tolerance means the field's predictability changed
//! enough that the cached `(alpha, beta)`/interpolator choices are
//! suspect.

use crate::config::level_error_bounds;
use crate::{Qoz, QozPlan};
use qoz_codec::stream::ErrorBound;
use qoz_sz3::{compress_with_spec_into, InterpSpec};
use qoz_tensor::{sample_blocks, NdArray, SamplePlan, Scalar, Shape};

/// Default relative tolerance of the sampled drift check.
pub const DEFAULT_DRIFT_TOLERANCE: f64 = 0.2;

/// Anchor stride of the fixed drift-probe spec (matches the sampled
/// estimator in `fixed_quality`).
const PROBE_ANCHOR: u32 = 16;

/// What [`Qoz::plan_cached`] did to satisfy a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOutcome {
    /// Empty cache: full tuning ran and the plan was stored.
    ColdTuned,
    /// Cached plan replayed verbatim (resolved bound bit-identical).
    WarmHit,
    /// Cached tuning decisions replayed with level bounds rebuilt from
    /// this call's resolved absolute bound.
    WarmRescaled,
    /// Cache key matched but drift exceeded tolerance (or the key
    /// changed): full tuning ran again.
    Retuned,
}

impl PlanOutcome {
    /// `true` when the expensive tuning stage was skipped.
    pub fn is_warm(self) -> bool {
        matches!(self, PlanOutcome::WarmHit | PlanOutcome::WarmRescaled)
    }
}

#[derive(Debug, Clone)]
struct CachedPlan {
    shape: Shape,
    scalar_tag: u8,
    bound: ErrorBound,
    plan: QozPlan,
    /// Sampled mean absolute prediction error at tuning time — the
    /// drift reference.
    ref_pred_err: f64,
}

/// Caches the last tuned [`QozPlan`] for reuse across same-shape,
/// same-bound calls.
///
/// One cache belongs to one logical compression stream (one variable of
/// one simulation); it assumes the [`Qoz`] configuration it is used with
/// does not change between calls.
#[derive(Debug, Clone)]
pub struct PlanCache {
    tolerance: f64,
    entry: Option<CachedPlan>,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(DEFAULT_DRIFT_TOLERANCE)
    }
}

impl PlanCache {
    /// Create a cache with an explicit drift tolerance (relative
    /// departure of the sampled prediction-error estimate, and of the
    /// resolved absolute bound, that forces a retune).
    ///
    /// # Panics
    /// Panics unless `tolerance` is finite and non-negative.
    pub fn new(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "drift tolerance must be finite and >= 0, got {tolerance}"
        );
        PlanCache {
            tolerance,
            entry: None,
        }
    }

    /// The configured drift tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The cached plan, if any (inspection/testing).
    pub fn cached_plan(&self) -> Option<&QozPlan> {
        self.entry.as_ref().map(|e| &e.plan)
    }

    /// Drop the cached plan; the next call tunes from scratch.
    pub fn invalidate(&mut self) {
        self.entry = None;
    }
}

/// Sampled mean absolute prediction error of `data` under a fixed cheap
/// probe spec — the drift statistic. Costs one engine pass over the
/// standard sampled blocks (a fraction of a percent of the data), far
/// below the many trial compressions of full tuning.
fn sampled_pred_err<T: Scalar>(qoz: &Qoz, data: &NdArray<T>, abs_eb: f64) -> f64 {
    let shape = data.shape();
    let plan = SamplePlan::from_rate(
        shape,
        qoz.config.effective_sample_block(shape),
        qoz.config.effective_sample_rate(shape),
    );
    let blocks = sample_blocks(data, &plan);
    let mut scratch = qoz_codec::Scratch::new();
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for block in &blocks {
        let spec = InterpSpec::anchored(PROBE_ANCHOR, abs_eb, Default::default());
        let stats = compress_with_spec_into(block, &spec, &mut scratch);
        sum += stats.sum_abs_pred_err;
        count += stats.pred_count;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

impl Qoz {
    /// [`Qoz::plan`] with caching: replay the cached tuning decisions
    /// when the request matches the cache and the data has not drifted,
    /// otherwise tune and refresh the cache. See the module docs for the
    /// exact warm/rescale/retune semantics.
    ///
    /// Every returned plan derives its per-level error bounds from *this
    /// call's* resolved absolute bound, so the hard error-bound
    /// guarantee is identical to the uncached path.
    pub fn plan_cached<T: Scalar>(
        &self,
        data: &NdArray<T>,
        bound: ErrorBound,
        cache: &mut PlanCache,
    ) -> (QozPlan, PlanOutcome) {
        let abs_eb = bound.absolute(data);
        let pred_err = sampled_pred_err(self, data, abs_eb);

        if let Some(e) = &cache.entry {
            if e.shape == data.shape() && e.scalar_tag == T::TYPE_TAG && e.bound == bound {
                let abs_drift = (abs_eb / e.plan.abs_eb - 1.0).abs();
                // Guard the ratio against a near-zero reference (constant
                // or perfectly predictable fields).
                let denom = e.ref_pred_err.max(abs_eb * 1e-3);
                let err_drift = (pred_err - e.ref_pred_err).abs() / denom;
                if abs_drift <= cache.tolerance && err_drift <= cache.tolerance {
                    let mut plan = e.plan.clone();
                    if abs_eb.to_bits() == plan.abs_eb.to_bits() {
                        return (plan, PlanOutcome::WarmHit);
                    }
                    plan.abs_eb = abs_eb;
                    plan.spec.level_ebs =
                        level_error_bounds(abs_eb, plan.alpha, plan.beta, plan.spec.max_level);
                    return (plan, PlanOutcome::WarmRescaled);
                }
            }
        }

        let outcome = if cache.entry.is_some() {
            PlanOutcome::Retuned
        } else {
            PlanOutcome::ColdTuned
        };
        let plan = self.plan(data, bound);
        cache.entry = Some(CachedPlan {
            shape: data.shape(),
            scalar_tag: T::TYPE_TAG,
            bound,
            plan: plan.clone(),
            ref_pred_err: pred_err,
        });
        (plan, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};
    use qoz_tensor::NdArray;

    #[test]
    fn identical_data_hits_warm_and_matches_cold_plan() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::default();

        let (p0, o0) = qoz.plan_cached(&data, bound, &mut cache);
        assert_eq!(o0, PlanOutcome::ColdTuned);
        let (p1, o1) = qoz.plan_cached(&data, bound, &mut cache);
        assert_eq!(o1, PlanOutcome::WarmHit);

        // The warm plan replays the cold one exactly, and both equal the
        // uncached planner's output.
        let fresh = qoz.plan(&data, bound);
        for p in [&p0, &p1] {
            assert_eq!(p.abs_eb, fresh.abs_eb);
            assert_eq!((p.alpha, p.beta), (fresh.alpha, fresh.beta));
            assert_eq!(p.spec.level_ebs, fresh.spec.level_ebs);
            assert_eq!(p.spec.level_configs, fresh.spec.level_configs);
            assert_eq!(p.spec.anchor_stride, fresh.spec.anchor_stride);
        }
    }

    #[test]
    fn shape_change_retunes() {
        let a = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let b = a.extract_region(&qoz_tensor::Region::new(
            &[0; 3],
            &[a.shape().dim(0) / 2, a.shape().dim(1), a.shape().dim(2)],
        ));
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::default();
        qoz.plan_cached(&a, bound, &mut cache);
        let (_, o) = qoz.plan_cached(&b, bound, &mut cache);
        assert_eq!(o, PlanOutcome::Retuned);
        // And back: the cache now holds b's shape.
        let (_, o) = qoz.plan_cached(&a, bound, &mut cache);
        assert_eq!(o, PlanOutcome::Retuned);
    }

    #[test]
    fn bound_change_retunes() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let mut cache = PlanCache::default();
        qoz.plan_cached(&data, ErrorBound::Rel(1e-3), &mut cache);
        let (_, o) = qoz.plan_cached(&data, ErrorBound::Rel(1e-2), &mut cache);
        assert_eq!(o, PlanOutcome::Retuned);
    }

    #[test]
    fn drifted_data_retunes() {
        let qoz = Qoz::default();
        let bound = ErrorBound::Abs(1e-3);
        let mut cache = PlanCache::new(0.1);
        let smooth = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        qoz.plan_cached(&smooth, bound, &mut cache);
        // Replace the field with same-shape white noise: prediction error
        // explodes, so the drift check must force a retune.
        let noisy = NdArray::from_fn(smooth.shape(), |i| {
            let h = qoz_datagen::noise::splitmix64(
                ((i[0] * 73_856_093) ^ (i[1] * 19_349_663) ^ (i[2] * 83_492_791)) as u64,
            );
            (h as f32 / u64::MAX as f32) * 8.0
        });
        let (_, o) = qoz.plan_cached(&noisy, bound, &mut cache);
        assert_eq!(o, PlanOutcome::Retuned);
    }

    #[test]
    fn small_range_drift_rescales_and_keeps_hard_bound() {
        let base = Dataset::Hurricane.generate(SizeClass::Tiny, 0);
        // A gently scaled snapshot: same structure, value range up 5%.
        let scaled = NdArray::from_vec(
            base.shape(),
            base.as_slice().iter().map(|&v| v * 1.05).collect(),
        );
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::default();
        qoz.plan_cached(&base, bound, &mut cache);
        let (plan, o) = qoz.plan_cached(&scaled, bound, &mut cache);
        assert_eq!(o, PlanOutcome::WarmRescaled);
        // The rescaled plan's bounds come from the *new* snapshot.
        let abs = bound.absolute(&scaled);
        assert_eq!(plan.abs_eb, abs);
        assert_eq!(plan.spec.level_ebs[0], abs);
        // And the compressed stream honors it.
        let blob = qoz.compress_with_plan(&scaled, &plan);
        let recon = qoz.decompress_typed::<f32>(&blob).unwrap();
        assert!(scaled.max_abs_diff(&recon) <= abs * (1.0 + 1e-9));
    }

    #[test]
    fn zero_tolerance_only_accepts_identical_data() {
        let data = Dataset::Nyx.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::new(0.0);
        qoz.plan_cached(&data, bound, &mut cache);
        let (_, o) = qoz.plan_cached(&data, bound, &mut cache);
        assert_eq!(o, PlanOutcome::WarmHit);
    }

    #[test]
    #[should_panic]
    fn invalid_tolerance_rejected() {
        let _ = PlanCache::new(f64::NAN);
    }

    #[test]
    fn invalidate_forces_cold() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::default();
        qoz.plan_cached(&data, bound, &mut cache);
        assert!(cache.cached_plan().is_some());
        cache.invalidate();
        assert!(cache.cached_plan().is_none());
        let (_, o) = qoz.plan_cached(&data, bound, &mut cache);
        assert_eq!(o, PlanOutcome::ColdTuned);
    }
}
