//! Plan caching for repeated, same-shape compression (time series).
//!
//! QoZ's online tuning (sampling, Algorithm-1 level-interpolator
//! selection, `(alpha, beta)` auto-tuning) is the dominant cost of a
//! compression call, yet scientific workloads dump the *same* variables
//! every timestep: consecutive snapshots are statistically near-identical
//! and re-derive the same plan. A [`PlanCache`] remembers the last tuned
//! [`QozPlan`] per `(shape, scalar type, bound)` and replays it while a
//! cheap sampled drift check says the data still looks like the data the
//! plan was tuned on.
//!
//! # Warm-path semantics
//!
//! [`Qoz::plan_cached`] returns one of four [`PlanOutcome`]s:
//!
//! * **`ColdTuned`** — first call: full tuning ran, plan cached.
//! * **`WarmHit`** — cache key matched, drift within tolerance, and the
//!   resolved absolute bound is bit-identical to the cached plan's. The
//!   cached plan is replayed as-is, so compressing *unchanged data* warm
//!   produces a stream byte-identical to the cold path.
//! * **`WarmRescaled`** — tuning decisions (anchor stride, per-level
//!   interpolators, `(alpha, beta)`) are replayed but the per-level
//!   error bounds are rebuilt from *this call's* resolved absolute
//!   bound (a relative bound resolves against each snapshot's value
//!   range). This keeps the hard error-bound contract exact on every
//!   call — reuse never loosens a bound.
//! * **`Retuned`** — the key matched but the drift check failed (or the
//!   resolved bound moved beyond tolerance): full tuning ran again and
//!   the cache was refreshed. A shape, scalar-type or bound-spec change
//!   likewise retunes.
//!
//! The drift check compresses the standard sampled blocks with a fixed
//! cheap spec and compares the mean absolute prediction error against
//! the value recorded when the cached plan was tuned; departure beyond
//! the configurable tolerance means the field's predictability changed
//! enough that the cached `(alpha, beta)`/interpolator choices are
//! suspect.

use crate::config::level_error_bounds;
use crate::{Qoz, QozPlan};
use qoz_codec::stream::ErrorBound;
use qoz_codec::{ByteReader, ByteWriter, CodecError};
use qoz_predict::{DimOrder, InterpKind, LevelConfig};
use qoz_sz3::{compress_with_spec_into, InterpSpec};
use qoz_tensor::{sample_blocks, NdArray, SamplePlan, Scalar, Shape};

/// Default relative tolerance of the sampled drift check.
pub const DEFAULT_DRIFT_TOLERANCE: f64 = 0.2;

/// Anchor stride of the fixed drift-probe spec (matches the sampled
/// estimator in `fixed_quality`).
const PROBE_ANCHOR: u32 = 16;

/// What [`Qoz::plan_cached`] did to satisfy a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOutcome {
    /// Empty cache: full tuning ran and the plan was stored.
    ColdTuned,
    /// Cached plan replayed verbatim (resolved bound bit-identical).
    WarmHit,
    /// Cached tuning decisions replayed with level bounds rebuilt from
    /// this call's resolved absolute bound.
    WarmRescaled,
    /// Cache key matched but drift exceeded tolerance (or the key
    /// changed): full tuning ran again.
    Retuned,
}

impl PlanOutcome {
    /// `true` when the expensive tuning stage was skipped.
    pub fn is_warm(self) -> bool {
        matches!(self, PlanOutcome::WarmHit | PlanOutcome::WarmRescaled)
    }
}

#[derive(Debug, Clone)]
struct CachedPlan {
    shape: Shape,
    scalar_tag: u8,
    bound: ErrorBound,
    plan: QozPlan,
    /// Sampled mean absolute prediction error at tuning time — the
    /// drift reference.
    ref_pred_err: f64,
}

/// A portable copy of one cache entry: everything needed to re-seed a
/// [`PlanCache`] in another process so its first call replays the plan
/// warm instead of re-tuning — the `qoz-serve` warm-restart path.
///
/// Snapshots serialize with [`PlanSnapshot::encode`] /
/// [`PlanSnapshot::decode`]; whole collections (one file next to the
/// served archives) go through [`encode_snapshots`] /
/// [`decode_snapshots`]. The drift reference travels with the plan, so
/// a restarted daemon applies the same reuse policy as a resident one:
/// drifted data still retunes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSnapshot {
    /// Shape the plan was tuned for.
    pub shape: Shape,
    /// Element type the plan was tuned for (`Scalar::TYPE_TAG`).
    pub scalar_tag: u8,
    /// Bound *specification* (not the resolved absolute value) the plan
    /// answers — part of the cache key.
    pub bound: ErrorBound,
    /// The tuned plan itself.
    pub plan: QozPlan,
    /// Sampled mean absolute prediction error at tuning time.
    pub ref_pred_err: f64,
}

/// Caches the last tuned [`QozPlan`] for reuse across same-shape,
/// same-bound calls.
///
/// One cache belongs to one logical compression stream (one variable of
/// one simulation); it assumes the [`Qoz`] configuration it is used with
/// does not change between calls.
#[derive(Debug, Clone)]
pub struct PlanCache {
    tolerance: f64,
    entry: Option<CachedPlan>,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(DEFAULT_DRIFT_TOLERANCE)
    }
}

impl PlanCache {
    /// Create a cache with an explicit drift tolerance (relative
    /// departure of the sampled prediction-error estimate, and of the
    /// resolved absolute bound, that forces a retune).
    ///
    /// # Panics
    /// Panics unless `tolerance` is finite and non-negative.
    pub fn new(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "drift tolerance must be finite and >= 0, got {tolerance}"
        );
        PlanCache {
            tolerance,
            entry: None,
        }
    }

    /// The configured drift tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The cached plan, if any (inspection/testing).
    pub fn cached_plan(&self) -> Option<&QozPlan> {
        self.entry.as_ref().map(|e| &e.plan)
    }

    /// Drop the cached plan; the next call tunes from scratch.
    pub fn invalidate(&mut self) {
        self.entry = None;
    }

    /// A portable copy of the cache entry, for persistence (`None` when
    /// the cache is cold).
    pub fn snapshot(&self) -> Option<PlanSnapshot> {
        self.entry.as_ref().map(|e| PlanSnapshot {
            shape: e.shape,
            scalar_tag: e.scalar_tag,
            bound: e.bound,
            plan: e.plan.clone(),
            ref_pred_err: e.ref_pred_err,
        })
    }

    /// Seed the cache from a persisted snapshot, replacing any current
    /// entry. The next [`Qoz::plan_cached`] call whose key matches and
    /// whose data passes the drift check replays the seeded plan warm —
    /// this is how a restarted `qoz-serve` skips its first cold tune.
    pub fn seed(&mut self, snap: PlanSnapshot) {
        self.entry = Some(CachedPlan {
            shape: snap.shape,
            scalar_tag: snap.scalar_tag,
            bound: snap.bound,
            plan: snap.plan,
            ref_pred_err: snap.ref_pred_err,
        });
    }
}

/// Sampled mean absolute prediction error of `data` under a fixed cheap
/// probe spec — the drift statistic. Costs one engine pass over the
/// standard sampled blocks (a fraction of a percent of the data), far
/// below the many trial compressions of full tuning.
fn sampled_pred_err<T: Scalar>(qoz: &Qoz, data: &NdArray<T>, abs_eb: f64) -> f64 {
    let shape = data.shape();
    let plan = SamplePlan::from_rate(
        shape,
        qoz.config.effective_sample_block(shape),
        qoz.config.effective_sample_rate(shape),
    );
    let blocks = sample_blocks(data, &plan);
    let mut scratch = qoz_codec::Scratch::new();
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for block in &blocks {
        let spec = InterpSpec::anchored(PROBE_ANCHOR, abs_eb, Default::default());
        let stats = compress_with_spec_into(block, &spec, &mut scratch);
        sum += stats.sum_abs_pred_err;
        count += stats.pred_count;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

impl Qoz {
    /// [`Qoz::plan`] with caching: replay the cached tuning decisions
    /// when the request matches the cache and the data has not drifted,
    /// otherwise tune and refresh the cache. See the module docs for the
    /// exact warm/rescale/retune semantics.
    ///
    /// Every returned plan derives its per-level error bounds from *this
    /// call's* resolved absolute bound, so the hard error-bound
    /// guarantee is identical to the uncached path.
    pub fn plan_cached<T: Scalar>(
        &self,
        data: &NdArray<T>,
        bound: ErrorBound,
        cache: &mut PlanCache,
    ) -> (QozPlan, PlanOutcome) {
        let abs_eb = bound.absolute(data);
        let pred_err = sampled_pred_err(self, data, abs_eb);

        if let Some(e) = &cache.entry {
            if e.shape == data.shape() && e.scalar_tag == T::TYPE_TAG && e.bound == bound {
                let abs_drift = (abs_eb / e.plan.abs_eb - 1.0).abs();
                // Guard the ratio against a near-zero reference (constant
                // or perfectly predictable fields).
                let denom = e.ref_pred_err.max(abs_eb * 1e-3);
                let err_drift = (pred_err - e.ref_pred_err).abs() / denom;
                if abs_drift <= cache.tolerance && err_drift <= cache.tolerance {
                    let mut plan = e.plan.clone();
                    if abs_eb.to_bits() == plan.abs_eb.to_bits() {
                        return (plan, PlanOutcome::WarmHit);
                    }
                    plan.abs_eb = abs_eb;
                    plan.spec.level_ebs =
                        level_error_bounds(abs_eb, plan.alpha, plan.beta, plan.spec.max_level);
                    return (plan, PlanOutcome::WarmRescaled);
                }
            }
        }

        let outcome = if cache.entry.is_some() {
            PlanOutcome::Retuned
        } else {
            PlanOutcome::ColdTuned
        };
        let plan = self.plan(data, bound);
        cache.entry = Some(CachedPlan {
            shape: data.shape(),
            scalar_tag: T::TYPE_TAG,
            bound,
            plan: plan.clone(),
            ref_pred_err: pred_err,
        });
        (plan, outcome)
    }
}

// ---------------------------------------------------------------------------
// Plan persistence: PlanSnapshot <-> bytes.
// ---------------------------------------------------------------------------

/// Magic prefix of a persisted plan-snapshot file ("QZPL").
pub const PLAN_FILE_MAGIC: [u8; 4] = *b"QZPL";
/// Current plan-snapshot serialization version.
pub const PLAN_FILE_VERSION: u8 = 1;
/// Sanity cap on levels in a decoded plan (real plans have < 10).
const MAX_PLAN_LEVELS: u64 = 64;

fn encode_bound(w: &mut ByteWriter, bound: ErrorBound) {
    match bound {
        ErrorBound::Abs(v) => {
            w.put_u8(0);
            w.put_f64(v);
        }
        ErrorBound::Rel(v) => {
            w.put_u8(1);
            w.put_f64(v);
        }
    }
}

fn decode_bound(r: &mut ByteReader) -> qoz_codec::Result<ErrorBound> {
    let kind = r.get_u8()?;
    let v = r.get_f64()?;
    let bound = match kind {
        0 => ErrorBound::Abs(v),
        1 => ErrorBound::Rel(v),
        _ => return Err(CodecError::Corrupt("bad bound kind in plan snapshot")),
    };
    if !bound.is_valid() {
        return Err(CodecError::Corrupt("bad bound value in plan snapshot"));
    }
    Ok(bound)
}

impl PlanSnapshot {
    /// Serialize one snapshot (key + plan + drift reference).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(self.scalar_tag);
        w.put_u8(self.shape.ndim() as u8);
        for &d in self.shape.dims() {
            w.put_varint(d as u64);
        }
        encode_bound(&mut w, self.bound);
        w.put_f64(self.ref_pred_err);
        w.put_f64(self.plan.abs_eb);
        w.put_f64(self.plan.alpha);
        w.put_f64(self.plan.beta);
        let spec = &self.plan.spec;
        match spec.anchor_stride {
            None => w.put_u8(0),
            Some(s) => {
                w.put_u8(1);
                w.put_varint(s as u64);
            }
        }
        w.put_varint(spec.max_level as u64);
        w.put_varint(spec.level_configs.len() as u64);
        for cfg in &spec.level_configs {
            w.put_u8(match cfg.kind {
                InterpKind::Linear => 0,
                InterpKind::Cubic => 1,
                InterpKind::Quadratic => 2,
            });
            w.put_u8(match cfg.order {
                DimOrder::Ascending => 0,
                DimOrder::Descending => 1,
            });
        }
        w.put_varint(spec.level_ebs.len() as u64);
        for &eb in &spec.level_ebs {
            w.put_f64(eb);
        }
        w.put_varint(spec.quant_radius as u64);
        w.finish()
    }

    /// Parse one snapshot. Every field is validated — a persisted plan
    /// file is ordinary mutable state on disk, so a corrupt or
    /// hand-edited entry must surface as [`CodecError::Corrupt`], never
    /// as a panic (or a plan that violates the bound contract) later.
    pub fn decode(bytes: &[u8]) -> qoz_codec::Result<PlanSnapshot> {
        let mut r = ByteReader::new(bytes);
        let scalar_tag = r.get_u8()?;
        let ndim = r.get_u8()? as usize;
        if ndim == 0 || ndim > qoz_tensor::MAX_NDIM {
            return Err(CodecError::Corrupt("bad rank in plan snapshot"));
        }
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            let d = r.get_varint()? as usize;
            if d == 0 || d > (1 << 32) {
                return Err(CodecError::Corrupt("bad dimension in plan snapshot"));
            }
            dims.push(d);
        }
        let bound = decode_bound(&mut r)?;
        let ref_pred_err = r.get_f64()?;
        if !(ref_pred_err.is_finite() && ref_pred_err >= 0.0) {
            return Err(CodecError::Corrupt("bad drift reference in plan snapshot"));
        }
        let abs_eb = r.get_f64()?;
        if !(abs_eb.is_finite() && abs_eb > 0.0) {
            return Err(CodecError::Corrupt("bad absolute bound in plan snapshot"));
        }
        let alpha = r.get_f64()?;
        let beta = r.get_f64()?;
        if !(alpha.is_finite() && alpha > 0.0 && beta.is_finite() && beta > 0.0) {
            return Err(CodecError::Corrupt("bad (alpha, beta) in plan snapshot"));
        }
        let anchor_stride = match r.get_u8()? {
            0 => None,
            1 => {
                let s = r.get_varint()?;
                if !(1..=u32::MAX as u64).contains(&s) {
                    return Err(CodecError::Corrupt("bad anchor stride in plan snapshot"));
                }
                Some(s as u32)
            }
            _ => return Err(CodecError::Corrupt("bad anchor flag in plan snapshot")),
        };
        let max_level = r.get_varint()?;
        if max_level == 0 || max_level > MAX_PLAN_LEVELS {
            return Err(CodecError::Corrupt("bad level count in plan snapshot"));
        }
        let n_configs = r.get_varint()?;
        if n_configs == 0 || n_configs > MAX_PLAN_LEVELS {
            return Err(CodecError::Corrupt("bad config count in plan snapshot"));
        }
        let mut level_configs = Vec::with_capacity(n_configs as usize);
        for _ in 0..n_configs {
            let kind = match r.get_u8()? {
                0 => InterpKind::Linear,
                1 => InterpKind::Cubic,
                2 => InterpKind::Quadratic,
                _ => return Err(CodecError::Corrupt("bad interp kind in plan snapshot")),
            };
            let order = match r.get_u8()? {
                0 => DimOrder::Ascending,
                1 => DimOrder::Descending,
                _ => return Err(CodecError::Corrupt("bad dim order in plan snapshot")),
            };
            level_configs.push(LevelConfig { kind, order });
        }
        let n_ebs = r.get_varint()?;
        if n_ebs == 0 || n_ebs > MAX_PLAN_LEVELS {
            return Err(CodecError::Corrupt("bad bound count in plan snapshot"));
        }
        let mut level_ebs = Vec::with_capacity(n_ebs as usize);
        for _ in 0..n_ebs {
            let eb = r.get_f64()?;
            if !(eb.is_finite() && eb > 0.0) {
                return Err(CodecError::Corrupt("bad level bound in plan snapshot"));
            }
            level_ebs.push(eb);
        }
        let quant_radius = r.get_varint()?;
        if quant_radius == 0 || quant_radius > u32::MAX as u64 {
            return Err(CodecError::Corrupt("bad quantizer radius in plan snapshot"));
        }
        if r.remaining() != 0 {
            return Err(CodecError::Corrupt("trailing bytes in plan snapshot"));
        }
        Ok(PlanSnapshot {
            shape: Shape::new(&dims),
            scalar_tag,
            bound,
            plan: QozPlan {
                abs_eb,
                alpha,
                beta,
                spec: InterpSpec {
                    anchor_stride,
                    max_level: max_level as u32,
                    level_configs,
                    level_ebs,
                    quant_radius: quant_radius as u32,
                },
            },
            ref_pred_err,
        })
    }
}

/// Serialize a collection of snapshots into one self-describing blob
/// (the `qoz-serve` plan file persisted next to served archives).
pub fn encode_snapshots(snaps: &[PlanSnapshot]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&PLAN_FILE_MAGIC);
    w.put_u8(PLAN_FILE_VERSION);
    w.put_varint(snaps.len() as u64);
    for snap in snaps {
        w.put_len_prefixed(&snap.encode());
    }
    w.finish()
}

/// Parse a blob written by [`encode_snapshots`].
pub fn decode_snapshots(bytes: &[u8]) -> qoz_codec::Result<Vec<PlanSnapshot>> {
    let mut r = ByteReader::new(bytes);
    if r.get_bytes(4)? != PLAN_FILE_MAGIC {
        return Err(CodecError::Corrupt("not a plan snapshot file"));
    }
    let version = r.get_u8()?;
    if version != PLAN_FILE_VERSION {
        return Err(CodecError::BadVersion {
            found: version,
            supported: PLAN_FILE_VERSION,
        });
    }
    let count = r.get_varint()?;
    if count > bytes.len() as u64 {
        return Err(CodecError::Corrupt("implausible snapshot count"));
    }
    let mut snaps = Vec::with_capacity(count as usize);
    for _ in 0..count {
        snaps.push(PlanSnapshot::decode(r.get_len_prefixed()?)?);
    }
    if r.remaining() != 0 {
        return Err(CodecError::Corrupt("trailing bytes in plan snapshot file"));
    }
    Ok(snaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};
    use qoz_tensor::NdArray;

    #[test]
    fn identical_data_hits_warm_and_matches_cold_plan() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::default();

        let (p0, o0) = qoz.plan_cached(&data, bound, &mut cache);
        assert_eq!(o0, PlanOutcome::ColdTuned);
        let (p1, o1) = qoz.plan_cached(&data, bound, &mut cache);
        assert_eq!(o1, PlanOutcome::WarmHit);

        // The warm plan replays the cold one exactly, and both equal the
        // uncached planner's output.
        let fresh = qoz.plan(&data, bound);
        for p in [&p0, &p1] {
            assert_eq!(p.abs_eb, fresh.abs_eb);
            assert_eq!((p.alpha, p.beta), (fresh.alpha, fresh.beta));
            assert_eq!(p.spec.level_ebs, fresh.spec.level_ebs);
            assert_eq!(p.spec.level_configs, fresh.spec.level_configs);
            assert_eq!(p.spec.anchor_stride, fresh.spec.anchor_stride);
        }
    }

    #[test]
    fn shape_change_retunes() {
        let a = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let b = a.extract_region(&qoz_tensor::Region::new(
            &[0; 3],
            &[a.shape().dim(0) / 2, a.shape().dim(1), a.shape().dim(2)],
        ));
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::default();
        qoz.plan_cached(&a, bound, &mut cache);
        let (_, o) = qoz.plan_cached(&b, bound, &mut cache);
        assert_eq!(o, PlanOutcome::Retuned);
        // And back: the cache now holds b's shape.
        let (_, o) = qoz.plan_cached(&a, bound, &mut cache);
        assert_eq!(o, PlanOutcome::Retuned);
    }

    #[test]
    fn bound_change_retunes() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let mut cache = PlanCache::default();
        qoz.plan_cached(&data, ErrorBound::Rel(1e-3), &mut cache);
        let (_, o) = qoz.plan_cached(&data, ErrorBound::Rel(1e-2), &mut cache);
        assert_eq!(o, PlanOutcome::Retuned);
    }

    #[test]
    fn drifted_data_retunes() {
        let qoz = Qoz::default();
        let bound = ErrorBound::Abs(1e-3);
        let mut cache = PlanCache::new(0.1);
        let smooth = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        qoz.plan_cached(&smooth, bound, &mut cache);
        // Replace the field with same-shape white noise: prediction error
        // explodes, so the drift check must force a retune.
        let noisy = NdArray::from_fn(smooth.shape(), |i| {
            let h = qoz_datagen::noise::splitmix64(
                ((i[0] * 73_856_093) ^ (i[1] * 19_349_663) ^ (i[2] * 83_492_791)) as u64,
            );
            (h as f32 / u64::MAX as f32) * 8.0
        });
        let (_, o) = qoz.plan_cached(&noisy, bound, &mut cache);
        assert_eq!(o, PlanOutcome::Retuned);
    }

    #[test]
    fn small_range_drift_rescales_and_keeps_hard_bound() {
        let base = Dataset::Hurricane.generate(SizeClass::Tiny, 0);
        // A gently scaled snapshot: same structure, value range up 5%.
        let scaled = NdArray::from_vec(
            base.shape(),
            base.as_slice().iter().map(|&v| v * 1.05).collect(),
        );
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::default();
        qoz.plan_cached(&base, bound, &mut cache);
        let (plan, o) = qoz.plan_cached(&scaled, bound, &mut cache);
        assert_eq!(o, PlanOutcome::WarmRescaled);
        // The rescaled plan's bounds come from the *new* snapshot.
        let abs = bound.absolute(&scaled);
        assert_eq!(plan.abs_eb, abs);
        assert_eq!(plan.spec.level_ebs[0], abs);
        // And the compressed stream honors it.
        let blob = qoz.compress_with_plan(&scaled, &plan);
        let recon = qoz.decompress_typed::<f32>(&blob).unwrap();
        assert!(scaled.max_abs_diff(&recon) <= abs * (1.0 + 1e-9));
    }

    #[test]
    fn zero_tolerance_only_accepts_identical_data() {
        let data = Dataset::Nyx.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::new(0.0);
        qoz.plan_cached(&data, bound, &mut cache);
        let (_, o) = qoz.plan_cached(&data, bound, &mut cache);
        assert_eq!(o, PlanOutcome::WarmHit);
    }

    #[test]
    #[should_panic]
    fn invalid_tolerance_rejected() {
        let _ = PlanCache::new(f64::NAN);
    }

    #[test]
    fn invalidate_forces_cold() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::default();
        qoz.plan_cached(&data, bound, &mut cache);
        assert!(cache.cached_plan().is_some());
        cache.invalidate();
        assert!(cache.cached_plan().is_none());
        let (_, o) = qoz.plan_cached(&data, bound, &mut cache);
        assert_eq!(o, PlanOutcome::ColdTuned);
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let mut cache = PlanCache::default();
        qoz.plan_cached(&data, ErrorBound::Rel(1e-3), &mut cache);
        let snap = cache.snapshot().expect("tuned cache has a snapshot");
        let decoded = PlanSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        let blob = encode_snapshots(&[snap.clone(), decoded]);
        let snaps = decode_snapshots(&blob).unwrap();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0], snap);
        assert_eq!(snaps[1], snap);
        // Empty collections roundtrip too (a daemon that never tuned).
        assert!(decode_snapshots(&encode_snapshots(&[])).unwrap().is_empty());
    }

    #[test]
    fn seeded_cache_replays_warm_and_respects_drift() {
        let data = Dataset::Nyx.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let bound = ErrorBound::Rel(1e-3);
        let mut cache = PlanCache::default();
        let (cold_plan, _) = qoz.plan_cached(&data, bound, &mut cache);
        let snap = cache.snapshot().unwrap();

        // A fresh cache seeded from the snapshot serves its first call
        // warm, with the same plan the resident cache would replay.
        let mut restarted = PlanCache::default();
        restarted.seed(PlanSnapshot::decode(&snap.encode()).unwrap());
        let (plan, outcome) = qoz.plan_cached(&data, bound, &mut restarted);
        assert_eq!(outcome, PlanOutcome::WarmHit);
        assert_eq!(plan, cold_plan);

        // But drifted data still retunes: the reference travels along.
        let drifted: Vec<f32> = data.as_slice().iter().map(|v| v * v + 7.0).collect();
        let drifted = NdArray::from_vec(data.shape(), drifted);
        let mut restarted = PlanCache::default();
        restarted.seed(snap);
        let (_, outcome) = qoz.plan_cached(&drifted, bound, &mut restarted);
        assert_eq!(outcome, PlanOutcome::Retuned);
    }

    #[test]
    fn corrupt_snapshots_are_rejected_not_panicked() {
        let data = Dataset::CesmAtm.generate(SizeClass::Tiny, 0);
        let qoz = Qoz::default();
        let mut cache = PlanCache::default();
        qoz.plan_cached(&data, ErrorBound::Abs(1e-3), &mut cache);
        let snap = cache.snapshot().unwrap();
        let good = snap.encode();

        // Truncation at every prefix length must error, never panic.
        for n in 0..good.len() {
            assert!(PlanSnapshot::decode(&good[..n]).is_err(), "prefix {n}");
        }
        // Trailing garbage is rejected.
        let mut long = good.clone();
        long.push(0);
        assert!(PlanSnapshot::decode(&long).is_err());
        // Single-byte corruption either still parses (payload bytes of a
        // float) or errors — decode must stay total either way.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xff;
            let _ = PlanSnapshot::decode(&bad);
        }

        // File-level rejections: bad magic, newer version, bogus count.
        let file = encode_snapshots(&[snap]);
        let mut bad_magic = file.clone();
        bad_magic[0] ^= 0xff;
        assert!(decode_snapshots(&bad_magic).is_err());
        let mut newer = file.clone();
        newer[4] = PLAN_FILE_VERSION + 1;
        match decode_snapshots(&newer) {
            Err(CodecError::BadVersion { found, supported }) => {
                assert_eq!(found, PLAN_FILE_VERSION + 1);
                assert_eq!(supported, PLAN_FILE_VERSION);
            }
            other => panic!("expected BadVersion, got {other:?}"),
        }
        for n in 0..file.len() {
            assert!(decode_snapshots(&file[..n]).is_err(), "prefix {n}");
        }
    }
}
