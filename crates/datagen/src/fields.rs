//! Application-like synthetic field generators.
//!
//! Each generator composes [`crate::noise`] fBm with analytic structure
//! characteristic of its application class (see `DESIGN.md` §3 for the
//! substitution rationale). All generators are deterministic in
//! `(shape, seed)` and produce `f32` fields like the SDRBench originals.

use crate::noise::{fbm, FbmParams};
use qoz_tensor::{NdArray, Shape, MAX_NDIM};

#[inline]
fn posf(idx: &[usize]) -> [f64; MAX_NDIM] {
    let mut p = [0.0f64; MAX_NDIM];
    for (d, &i) in idx.iter().enumerate() {
        p[d] = i as f64;
    }
    p
}

/// CESM-ATM-like 2D climate field: strong zonal (latitude) banding, a
/// smooth planetary-scale component and weather-scale fractal detail.
/// Mirrors fields like CLDHGH/FSUTOA: mostly smooth with sharp regional
/// features.
pub fn cesm_like(shape: Shape, seed: u64) -> NdArray<f32> {
    assert_eq!(shape.ndim(), 2, "CESM-ATM fields are 2D");
    let (nr, nc) = (shape.dim(0) as f64, shape.dim(1) as f64);
    let large = FbmParams {
        octaves: 3,
        base_wavelength: nr.max(nc) / 2.0,
        gain: 0.45,
        lacunarity: 2.0,
    };
    let detail = FbmParams {
        octaves: 5,
        base_wavelength: nr.max(nc) / 12.0,
        gain: 0.55,
        lacunarity: 2.0,
    };
    NdArray::from_fn(shape, |idx| {
        let p = posf(idx);
        // 0..1 pole-to-pole.
        let lat = idx[0] as f64 / nr;
        // Zonal banding: insolation-like cosine + jet-stream wiggle.
        let band = (std::f64::consts::PI * (lat - 0.5)).cos();
        let jet = (2.0 * std::f64::consts::TAU * lat + 3.0 * fbm(seed ^ 0xA1, &p, &large)).sin();
        let v = 0.9 * band
            + 0.25 * jet
            + 0.5 * fbm(seed, &p, &large)
            + 0.18 * fbm(seed ^ 0xB2, &p, &detail);
        v as f32
    })
}

/// Miranda-like 3D turbulence: smooth fractal cascade with a mixing-layer
/// gradient along the first axis (large-eddy simulation of multi-component
/// flows).
pub fn miranda_like(shape: Shape, seed: u64) -> NdArray<f32> {
    assert_eq!(shape.ndim(), 3, "Miranda fields are 3D");
    let n0 = shape.dim(0) as f64;
    let cascade = FbmParams {
        octaves: 5,
        base_wavelength: shape.dims().iter().copied().max().unwrap() as f64 / 3.0,
        gain: 0.42, // steep spectrum => smooth, like well-resolved LES
        lacunarity: 2.0,
    };
    NdArray::from_fn(shape, |idx| {
        let p = posf(idx);
        let z = idx[0] as f64 / n0;
        // Mixing layer: smooth tanh density transition + turbulence that
        // is strongest inside the layer.
        let layer = ((z - 0.5) * 6.0).tanh();
        let envelope = 1.0 - layer * layer; // peaks mid-layer
        let turb = fbm(seed, &p, &cascade);
        (1.5 + layer + 0.8 * envelope * turb) as f32
    })
}

/// RTM-like 3D seismic wavefield: oscillatory spherical wavefronts from a
/// shallow source over a layered velocity medium, with reflective
/// structure along depth.
pub fn rtm_like(shape: Shape, seed: u64) -> NdArray<f32> {
    assert_eq!(shape.ndim(), 3, "RTM fields are 3D");
    let dims = [
        shape.dim(0) as f64,
        shape.dim(1) as f64,
        shape.dim(2) as f64,
    ];
    let medium = FbmParams {
        octaves: 3,
        base_wavelength: dims[2].max(dims[0]) / 2.5,
        gain: 0.5,
        lacunarity: 2.0,
    };
    // Source near the surface centre.
    let src = [dims[0] * 0.5, dims[1] * 0.5, dims[2] * 0.08];
    let wavelength = dims.iter().cloned().fold(f64::MAX, f64::min) / 6.0;
    NdArray::from_fn(shape, |idx| {
        let p = posf(idx);
        let depth = idx[2] as f64 / dims[2];
        // Layered medium: depth-periodic impedance with fractal wobble.
        let layer_phase = depth * 9.0 + 1.5 * fbm(seed ^ 0x11, &p, &medium);
        let layers = (std::f64::consts::TAU * layer_phase).sin();
        // Propagating wavefront: radial oscillation with 1/r decay.
        let r = ((p[0] - src[0]).powi(2) + (p[1] - src[1]).powi(2) + (p[2] - src[2]).powi(2))
            .sqrt()
            .max(1.0);
        let front = (std::f64::consts::TAU * r / wavelength).sin() / (1.0 + r / (4.0 * wavelength));
        (0.6 * layers + 1.4 * front) as f32
    })
}

/// NYX-like 3D cosmological baryon density: exponentiated fractal field
/// giving a positive, lognormal-ish distribution spanning several orders
/// of magnitude (voids vs. halos).
pub fn nyx_like(shape: Shape, seed: u64) -> NdArray<f32> {
    assert_eq!(shape.ndim(), 3, "NYX fields are 3D");
    let cascade = FbmParams {
        octaves: 6,
        base_wavelength: shape.dims().iter().copied().max().unwrap() as f64 / 2.0,
        gain: 0.6, // shallow spectrum: strong small-scale contrast
        lacunarity: 2.0,
    };
    NdArray::from_fn(shape, |idx| {
        let p = posf(idx);
        let delta = fbm(seed, &p, &cascade);
        // Lognormal transform; scale chosen to give ~3 decades of range.
        (10.0 * (2.2 * delta).exp()) as f32
    })
}

/// Hurricane-Isabel-like 3D wind-speed field: an intense vertical vortex
/// (calm eye, fast eyewall, decaying tail) embedded in ambient flow.
/// First axis is altitude.
pub fn hurricane_like(shape: Shape, seed: u64) -> NdArray<f32> {
    assert_eq!(shape.ndim(), 3, "Hurricane fields are 3D");
    let dims = [
        shape.dim(0) as f64,
        shape.dim(1) as f64,
        shape.dim(2) as f64,
    ];
    let ambient = FbmParams {
        octaves: 4,
        base_wavelength: dims[1].max(dims[2]) / 4.0,
        gain: 0.5,
        lacunarity: 2.0,
    };
    let eye_r = dims[1].min(dims[2]) * 0.08;
    NdArray::from_fn(shape, |idx| {
        let p = posf(idx);
        let alt = idx[0] as f64 / dims[0];
        // Eye drifts slightly with altitude.
        let cx = dims[1] * 0.5 + dims[1] * 0.04 * (alt * 3.0).sin();
        let cy = dims[2] * 0.5 + dims[2] * 0.04 * (alt * 2.0).cos();
        let dx = p[1] - cx;
        let dy = p[2] - cy;
        let r = (dx * dx + dy * dy).sqrt();
        // Rankine-like tangential speed profile: linear inside the eye,
        // 1/sqrt(r) decay outside.
        let speed = if r < eye_r {
            r / eye_r
        } else {
            (eye_r / r).sqrt()
        };
        let weaken = 1.0 - 0.5 * alt; // storm weakens aloft
        (40.0 * speed * weaken + 6.0 * fbm(seed, &p, &ambient)) as f32
    })
}

/// Scale-LETKF-like 3D assimilation field: a sharp moving front (sigmoid)
/// with trailing gravity-wave oscillations and mesoscale noise. First
/// axis is the (shallow) vertical.
pub fn scale_letkf_like(shape: Shape, seed: u64) -> NdArray<f32> {
    assert_eq!(shape.ndim(), 3, "Scale-LETKF fields are 3D");
    let dims = [
        shape.dim(0) as f64,
        shape.dim(1) as f64,
        shape.dim(2) as f64,
    ];
    let meso = FbmParams {
        octaves: 5,
        base_wavelength: dims[1].max(dims[2]) / 6.0,
        gain: 0.5,
        lacunarity: 2.0,
    };
    let band = FbmParams {
        octaves: 2,
        base_wavelength: dims[1].max(dims[2]) / 1.5,
        gain: 0.4,
        lacunarity: 2.0,
    };
    NdArray::from_fn(shape, |idx| {
        let p = posf(idx);
        let alt = idx[0] as f64 / dims[0];
        // Frontal position wanders across the domain.
        let front_pos = dims[1] * (0.45 + 0.12 * fbm(seed ^ 0x77, &[p[2], alt * 30.0], &band));
        let d = (p[1] - front_pos) / (dims[1] * 0.03);
        let front = d.tanh();
        // Trailing gravity waves behind the front only.
        let waves = if d < 0.0 {
            0.3 * (d * 2.5).sin() * (-d * 0.15).exp().recip().min(1.0)
        } else {
            0.0
        };
        (8.0 * front + waves + 1.2 * fbm(seed, &p, &meso) + 4.0 * (1.0 - alt)) as f32
    })
}

/// Time-varying 4D field: a slowly advected/evolving fractal volume with
/// shape `[steps, d0, d1, d2]`. Stands in for consecutive snapshots of a
/// simulation (the form in which 3D apps like Hurricane-Isabel actually
/// ship: 48 time steps × 13 fields). Exercises the workspace's 4D
/// (`MAX_NDIM`) code paths end to end.
pub fn time_series_like(shape: Shape, seed: u64) -> NdArray<f32> {
    assert_eq!(shape.ndim(), 4, "time series fields are 4D [t, x, y, z]");
    let dims = [
        shape.dim(0) as f64,
        shape.dim(1) as f64,
        shape.dim(2) as f64,
        shape.dim(3) as f64,
    ];
    let cascade = FbmParams {
        octaves: 4,
        base_wavelength: dims[1..].iter().cloned().fold(1.0, f64::max) / 3.0,
        gain: 0.45,
        lacunarity: 2.0,
    };
    // Subgrid advection velocity in grid points per step plus slow
    // in-place evolution along a fourth noise coordinate — consecutive
    // simulation dumps are strongly correlated frame to frame, the way
    // real checkpoint cadences (every few solver steps) produce them.
    let vel = [0.09, -0.055, 0.028];
    NdArray::from_fn(shape, |idx| {
        let t = idx[0] as f64;
        let p = [
            idx[1] as f64 + vel[0] * t,
            idx[2] as f64 + vel[1] * t,
            idx[3] as f64 + vel[2] * t,
            t * 0.12, // temporal decorrelation scale
        ];
        (1.2 * fbm(seed, &p, &cascade) + 0.3 * (t / dims[0] * std::f64::consts::TAU).sin()) as f32
    })
}

/// Advecting 4D time series: one frozen fractal volume transported by a
/// smooth sheared flow, shape `[steps, d0, d1, d2]`. Unlike
/// [`time_series_like`] there is no in-place temporal decay — frame
/// differences come purely from *motion*, the other canonical regime a
/// temporal (delta) coder must handle. Drift speeds are subgrid
/// (fractions of a cell per step) and vary smoothly across the domain,
/// so the motion is a flow, not a global shift a codec could cancel
/// trivially.
pub fn time_series_advect(shape: Shape, seed: u64) -> NdArray<f32> {
    assert_eq!(shape.ndim(), 4, "time series fields are 4D [t, x, y, z]");
    let dims = [
        shape.dim(0) as f64,
        shape.dim(1) as f64,
        shape.dim(2) as f64,
        shape.dim(3) as f64,
    ];
    let cascade = FbmParams {
        octaves: 4,
        base_wavelength: dims[1..].iter().cloned().fold(1.0, f64::max) / 3.0,
        gain: 0.45,
        lacunarity: 2.0,
    };
    NdArray::from_fn(shape, |idx| {
        let t = idx[0] as f64;
        let (x, y, z) = (idx[1] as f64, idx[2] as f64, idx[3] as f64);
        // Sheared subgrid drift field.
        let vx = 0.16 + 0.08 * (std::f64::consts::TAU * y / dims[2]).sin();
        let vy = -0.11 + 0.05 * (std::f64::consts::TAU * z / dims[3]).cos();
        let vz = 0.07;
        let p = [x - vx * t, y - vy * t, z - vz * t, 0.0];
        (1.2 * fbm(seed, &p, &cascade)) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cesm_has_zonal_structure() {
        // Row means should vary much more than column-mean noise: the
        // banding is along latitude.
        let f = cesm_like(Shape::d2(64, 128), 1);
        let (nr, nc) = (64usize, 128usize);
        let mut row_means = vec![0.0f64; nr];
        for i in 0..nr {
            for j in 0..nc {
                row_means[i] += f.get(&[i, j]) as f64;
            }
            row_means[i] /= nc as f64;
        }
        let spread = row_means.iter().cloned().fold(f64::MIN, f64::max)
            - row_means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.5, "zonal spread {spread}");
    }

    #[test]
    fn hurricane_eye_is_calm() {
        let shape = Shape::d3(8, 64, 64);
        let f = hurricane_like(shape, 2);
        // Wind speed near the exact centre (eye) should be lower than at
        // the eyewall radius.
        let eye = f.get(&[0, 32, 32]) as f64;
        let eyewall = f.get(&[0, 32 + 5, 32]) as f64;
        assert!(eyewall > eye, "eyewall {eyewall} vs eye {eye}");
    }

    #[test]
    fn rtm_oscillates() {
        // Wavefield should have many sign changes along a ray.
        let f = rtm_like(Shape::d3(48, 48, 32), 3);
        let mut flips = 0;
        let mut prev = f.get(&[24, 24, 0]);
        for k in 1..32 {
            let v = f.get(&[24, 24, k]);
            if v.signum() != prev.signum() {
                flips += 1;
            }
            prev = v;
        }
        assert!(flips >= 3, "only {flips} sign changes along depth");
    }

    #[test]
    fn nyx_positive_everywhere() {
        let f = nyx_like(Shape::d3(24, 24, 24), 4);
        assert!(f.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn letkf_front_creates_bimodal_rows() {
        let shape = Shape::d3(4, 64, 64);
        let f = scale_letkf_like(shape, 5);
        // Values on the two sides of the domain along dim1 should differ
        // systematically (the front separates them).
        let mut left = 0.0f64;
        let mut right = 0.0f64;
        for k in 0..64 {
            left += f.get(&[0, 4, k]) as f64;
            right += f.get(&[0, 60, k]) as f64;
        }
        assert!(
            (right - left).abs() > 100.0,
            "front not visible: {left} vs {right}"
        );
    }

    #[test]
    fn generators_reject_wrong_rank() {
        let r = std::panic::catch_unwind(|| cesm_like(Shape::d3(4, 4, 4), 0));
        assert!(r.is_err());
    }

    #[test]
    fn time_series_is_temporally_coherent() {
        let shape = Shape::new(&[6, 16, 16, 16]);
        let f = time_series_like(shape, 7);
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
        // Consecutive steps must be far more similar than distant ones.
        let step = 16 * 16 * 16;
        let s = f.as_slice();
        let d = |a: usize, b: usize| -> f64 {
            s[a * step..(a + 1) * step]
                .iter()
                .zip(&s[b * step..(b + 1) * step])
                .map(|(x, y)| ((x - y) as f64).abs())
                .sum::<f64>()
                / step as f64
        };
        assert!(
            d(0, 1) < d(0, 5),
            "adjacent {} vs distant {}",
            d(0, 1),
            d(0, 5)
        );
    }

    #[test]
    fn advecting_series_moves_without_decaying() {
        let shape = Shape::new(&[6, 16, 16, 16]);
        let f = time_series_advect(shape, 7);
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
        let step = 16 * 16 * 16;
        let s = f.as_slice();
        let d = |a: usize, b: usize| -> f64 {
            s[a * step..(a + 1) * step]
                .iter()
                .zip(&s[b * step..(b + 1) * step])
                .map(|(x, y)| ((x - y) as f64).abs())
                .sum::<f64>()
                / step as f64
        };
        let amp = s[..step].iter().map(|v| v.abs() as f64).sum::<f64>() / step as f64;
        // The field moves: frames differ…
        assert!(d(0, 1) > 0.0);
        // …slowly (subgrid drift): the frame-to-frame change is a small
        // fraction of the field's own amplitude, so a delta coder has
        // something to win…
        assert!(d(0, 1) < 0.3 * amp, "step {} vs amp {}", d(0, 1), amp);
        // …and coherently: displacement accumulates with lag.
        assert!(
            d(0, 1) < d(0, 5),
            "adjacent {} vs distant {}",
            d(0, 1),
            d(0, 5)
        );
    }
}
