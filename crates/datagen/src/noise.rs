//! Deterministic multi-octave value noise.
//!
//! A lattice of pseudo-random values (hashed from integer coordinates and
//! a seed — nothing is stored) is interpolated with a smoothstep kernel;
//! octaves at doubling frequencies and geometrically decaying amplitudes
//! are summed to produce fractal fields with a controllable spectral
//! slope. This gives O(octaves) work per point independent of array size,
//! dimension-generic, and fully reproducible from the seed.

use qoz_tensor::{NdArray, Shape, MAX_NDIM};

/// SplitMix64: statistically solid 64-bit mixer for lattice hashing.
#[inline(always)]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash integer lattice coordinates to a uniform value in `[-1, 1)`.
#[inline]
fn lattice_value(seed: u64, cell: &[i64]) -> f64 {
    let mut h = seed;
    for &c in cell {
        h = splitmix64(h ^ (c as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    }
    (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Quintic smoothstep (C2-continuous), the Perlin fade curve.
#[inline(always)]
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// Single-octave value noise at continuous position `pos` (in lattice
/// units). Multilinear interpolation of hashed corner values with the
/// fade curve applied per axis.
pub fn value_noise(seed: u64, pos: &[f64]) -> f64 {
    let nd = pos.len();
    debug_assert!(nd <= MAX_NDIM);
    let mut cell = [0i64; MAX_NDIM];
    let mut frac = [0.0f64; MAX_NDIM];
    for d in 0..nd {
        let f = pos[d].floor();
        cell[d] = f as i64;
        frac[d] = fade(pos[d] - f);
    }
    // Interpolate over the 2^nd corners.
    let mut acc = 0.0;
    for corner in 0u32..(1 << nd) {
        let mut c = [0i64; MAX_NDIM];
        let mut w = 1.0;
        for d in 0..nd {
            if corner & (1 << d) != 0 {
                c[d] = cell[d] + 1;
                w *= frac[d];
            } else {
                c[d] = cell[d];
                w *= 1.0 - frac[d];
            }
        }
        acc += w * lattice_value(seed, &c[..nd]);
    }
    acc
}

/// Parameters for fractal Brownian motion (octave-summed value noise).
#[derive(Debug, Clone)]
pub struct FbmParams {
    /// Number of octaves to sum.
    pub octaves: u32,
    /// Base lattice wavelength in grid points (largest feature size).
    pub base_wavelength: f64,
    /// Amplitude decay per octave; 0.5 ≈ k^-1 spectrum, smaller = smoother.
    pub gain: f64,
    /// Frequency multiplier per octave (almost always 2).
    pub lacunarity: f64,
}

impl Default for FbmParams {
    fn default() -> Self {
        FbmParams {
            octaves: 5,
            base_wavelength: 48.0,
            gain: 0.5,
            lacunarity: 2.0,
        }
    }
}

/// Evaluate fBm noise at continuous grid coordinates.
pub fn fbm(seed: u64, pos: &[f64], p: &FbmParams) -> f64 {
    let mut total = 0.0;
    let mut amp = 1.0;
    let mut freq = 1.0 / p.base_wavelength;
    let mut scaled = [0.0f64; MAX_NDIM];
    for o in 0..p.octaves {
        for d in 0..pos.len() {
            scaled[d] = pos[d] * freq;
        }
        total += amp
            * value_noise(
                seed.wrapping_add(o as u64 * 0x632B_E59B),
                &scaled[..pos.len()],
            );
        amp *= p.gain;
        freq *= p.lacunarity;
    }
    total
}

/// Fill an array with fBm noise (values roughly in `[-2, 2]`).
pub fn fbm_field(shape: Shape, seed: u64, p: &FbmParams) -> NdArray<f32> {
    let nd = shape.ndim();
    NdArray::from_fn(shape, |idx| {
        let mut pos = [0.0f64; MAX_NDIM];
        for d in 0..nd {
            pos[d] = idx[d] as f64;
        }
        fbm(seed, &pos[..nd], p) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit changes roughly half the output bits.
        let a = splitmix64(12345);
        let b = splitmix64(12345 ^ 1);
        let flipped = (a ^ b).count_ones();
        assert!(flipped > 20 && flipped < 44, "flipped {flipped}");
    }

    #[test]
    fn lattice_values_bounded() {
        for i in -50i64..50 {
            let v = lattice_value(7, &[i, i * 3, -i]);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn value_noise_matches_lattice_at_integers() {
        // At integer positions the interpolation collapses to the lattice
        // value itself.
        for i in 0..20i64 {
            let v = value_noise(99, &[i as f64, (i * 2) as f64]);
            let l = lattice_value(99, &[i, i * 2]);
            assert!((v - l).abs() < 1e-12);
        }
    }

    #[test]
    fn value_noise_continuous() {
        // Small position change -> small value change.
        let a = value_noise(5, &[3.5, 7.25]);
        let b = value_noise(5, &[3.5001, 7.25]);
        assert!((a - b).abs() < 0.01);
    }

    #[test]
    fn fbm_deterministic() {
        let p = FbmParams::default();
        assert_eq!(fbm(1, &[10.3, 4.5], &p), fbm(1, &[10.3, 4.5], &p));
        assert_ne!(fbm(1, &[10.3, 4.5], &p), fbm(2, &[10.3, 4.5], &p));
    }

    #[test]
    fn fbm_field_shape_and_range() {
        let f = fbm_field(Shape::d2(32, 48), 11, &FbmParams::default());
        assert_eq!(f.shape().dims(), &[32, 48]);
        let (lo, hi) = f.finite_min_max().unwrap();
        assert!(lo >= -2.5 && hi <= 2.5, "range {lo}..{hi}");
        assert!(hi > lo);
    }

    #[test]
    fn smaller_gain_is_smoother() {
        let rough = fbm_field(
            Shape::d1(512),
            3,
            &FbmParams {
                gain: 0.9,
                ..Default::default()
            },
        );
        let smooth = fbm_field(
            Shape::d1(512),
            3,
            &FbmParams {
                gain: 0.2,
                ..Default::default()
            },
        );
        let tv = |a: &NdArray<f32>| -> f64 {
            let r = a.value_range();
            a.as_slice()
                .windows(2)
                .map(|w| (w[1] - w[0]).abs() as f64)
                .sum::<f64>()
                / r.max(1e-12)
        };
        assert!(tv(&smooth) < tv(&rough));
    }
}
