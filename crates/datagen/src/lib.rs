//! Seeded synthetic scientific datasets.
//!
//! The paper evaluates on six SDRBench applications (CESM-ATM, Miranda,
//! RTM, NYX, Hurricane-Isabel, Scale-LETKF) totalling hundreds of
//! gigabytes of proprietary or hard-to-obtain simulation output. This
//! crate generates *statistical stand-ins*: seeded synthetic fields whose
//! local smoothness, dynamic range, anisotropy and spectral content mimic
//! each application class. Compressor behaviour (who wins, where the
//! crossovers fall) is driven by exactly those properties, so the
//! reproduction preserves the paper's comparative structure even though
//! absolute compression ratios differ from the originals. The
//! substitution is documented in `DESIGN.md` §3.
//!
//! * [`noise`] — deterministic multi-octave value noise (the workhorse),
//! * [`fields`] — the six application-like field generators,
//! * [`Dataset`] — an enum enumerating the six apps with paper-scaled
//!   shapes at three size classes.

pub mod fields;
pub mod noise;

pub use fields::{
    cesm_like, hurricane_like, miranda_like, nyx_like, rtm_like, scale_letkf_like,
    time_series_advect, time_series_like,
};

use qoz_tensor::{NdArray, Shape};

/// How large a generated field should be.
///
/// `Tiny` keeps unit/integration tests fast; `Small` is for quick local
/// benchmarking; `Medium` approaches the paper's aspect ratios at
/// laptop-friendly absolute sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// For tests (≈ 10^4–10^5 points).
    Tiny,
    /// For quick benchmarks (≈ 10^6 points).
    Small,
    /// For paper-shaped benchmark runs (≈ 10^7 points).
    Medium,
}

/// The six applications of the paper's evaluation (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// CESM-ATM climate (2D atmospheric fields, 1800×3600 in the paper).
    CesmAtm,
    /// Miranda radiation-hydrodynamics turbulence (3D, 256×384×384).
    Miranda,
    /// Reverse-time-migration seismic wavefields (3D, 449×449×235).
    Rtm,
    /// NYX cosmological hydrodynamics (3D, 512³; huge dynamic range).
    Nyx,
    /// Hurricane Isabel weather (3D, 100×500×500; vortex structure).
    Hurricane,
    /// Scale-LETKF weather assimilation (3D, 98×1200×1200; fronts).
    ScaleLetkf,
}

impl Dataset {
    /// All six datasets in the paper's table order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Rtm,
        Dataset::Miranda,
        Dataset::CesmAtm,
        Dataset::ScaleLetkf,
        Dataset::Nyx,
        Dataset::Hurricane,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::CesmAtm => "CESM-ATM",
            Dataset::Miranda => "Miranda",
            Dataset::Rtm => "RTM",
            Dataset::Nyx => "NYX",
            Dataset::Hurricane => "Hurricane",
            Dataset::ScaleLetkf => "SCALE-LETKF",
        }
    }

    /// Generated shape for a size class (aspect ratios follow Table II).
    pub fn shape(self, class: SizeClass) -> Shape {
        use SizeClass::*;
        match self {
            Dataset::CesmAtm => match class {
                Tiny => Shape::d2(64, 128),
                Small => Shape::d2(256, 512),
                Medium => Shape::d2(900, 1800),
            },
            Dataset::Miranda => match class {
                Tiny => Shape::d3(24, 32, 32),
                Small => Shape::d3(64, 96, 96),
                Medium => Shape::d3(128, 192, 192),
            },
            Dataset::Rtm => match class {
                Tiny => Shape::d3(32, 32, 24),
                Small => Shape::d3(96, 96, 48),
                Medium => Shape::d3(224, 224, 120),
            },
            Dataset::Nyx => match class {
                Tiny => Shape::d3(32, 32, 32),
                Small => Shape::d3(96, 96, 96),
                Medium => Shape::d3(256, 256, 256),
            },
            Dataset::Hurricane => match class {
                Tiny => Shape::d3(16, 48, 48),
                Small => Shape::d3(32, 128, 128),
                Medium => Shape::d3(100, 250, 250),
            },
            Dataset::ScaleLetkf => match class {
                Tiny => Shape::d3(12, 48, 48),
                Small => Shape::d3(24, 160, 160),
                Medium => Shape::d3(49, 600, 600),
            },
        }
    }

    /// Generate field number `field` (different fields = different seeds
    /// and slightly different parametrizations, like the multi-field
    /// SDRBench archives).
    pub fn generate(self, class: SizeClass, field: u64) -> NdArray<f32> {
        let shape = self.shape(class);
        let seed = 0x51C0_FFEE ^ (field.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match self {
            Dataset::CesmAtm => cesm_like(shape, seed),
            Dataset::Miranda => miranda_like(shape, seed),
            Dataset::Rtm => rtm_like(shape, seed),
            Dataset::Nyx => nyx_like(shape, seed),
            Dataset::Hurricane => hurricane_like(shape, seed),
            Dataset::ScaleLetkf => scale_letkf_like(shape, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_finite_tiny_fields() {
        for ds in Dataset::ALL {
            let f = ds.generate(SizeClass::Tiny, 0);
            assert_eq!(f.shape(), ds.shape(SizeClass::Tiny), "{}", ds.name());
            assert!(
                f.as_slice().iter().all(|v| v.is_finite()),
                "{} produced non-finite values",
                ds.name()
            );
            assert!(f.value_range() > 0.0, "{} is constant", ds.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in [Dataset::CesmAtm, Dataset::Nyx] {
            let a = ds.generate(SizeClass::Tiny, 3);
            let b = ds.generate(SizeClass::Tiny, 3);
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn different_fields_differ() {
        let a = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let b = Dataset::Miranda.generate(SizeClass::Tiny, 1);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn nyx_has_large_dynamic_range() {
        // Cosmological density fields are lognormal-ish: range spans
        // multiple orders of magnitude relative to the median.
        let f = Dataset::Nyx.generate(SizeClass::Tiny, 0);
        let (lo, hi) = f.finite_min_max().unwrap();
        assert!(lo > 0.0, "density must be positive");
        assert!(hi / lo > 50.0, "dynamic range too small: {lo}..{hi}");
    }

    #[test]
    fn miranda_is_smooth() {
        // Turbulent mixing fields are smooth: neighbour diffs are small
        // relative to the global range.
        let f = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let s = f.as_slice();
        let range = f.value_range();
        // Only compare neighbours along the contiguous last dimension;
        // flat windows would otherwise jump across row boundaries.
        let line = f.shape().dim(2);
        let mut max_step = 0.0f64;
        for row in s.chunks(line) {
            for w in row.windows(2) {
                max_step = max_step.max((w[1] - w[0]).abs() as f64);
            }
        }
        assert!(
            max_step < 0.35 * range,
            "max step {max_step}, range {range}"
        );
    }
}
