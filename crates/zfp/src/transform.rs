//! Reversible integer decorrelating transform for 4^d blocks.
//!
//! Two levels of the integer S-transform (reversible Haar): each 4-sample
//! line becomes `[ss, sd, d0, d1]` where `d*` are pairwise differences,
//! `sd` is the difference of pair-averages and `ss` the overall average.
//! Every step uses the `(s, d) = ((a+b)>>1, a-b)` pair, which is exactly
//! invertible in integer arithmetic, so a block coded with all bitplanes
//! reconstructs bit-exactly — the property the encoder's
//! verify-and-extend loop relies on.

/// Exactly-invertible pair: forward.
///
/// Wrapping arithmetic: legitimate blocks never overflow (the caller
/// bounds coefficient magnitudes), but adversarially corrupted streams
/// can reach the decoder with near-`i64::MAX` coefficients; those must
/// decode to garbage, not a panic.
#[inline(always)]
fn s_fwd(a: i64, b: i64) -> (i64, i64) {
    (a.wrapping_add(b) >> 1, a.wrapping_sub(b))
}

/// Exactly-invertible pair: inverse.
#[inline(always)]
fn s_inv(s: i64, d: i64) -> (i64, i64) {
    let a = s.wrapping_add(d.wrapping_add(1) >> 1);
    (a, a.wrapping_sub(d))
}

/// Forward transform of one 4-sample line (stride `s` within `p`).
#[inline]
fn fwd_line(p: &mut [i64], off: usize, s: usize) {
    let (x, y, z, w) = (p[off], p[off + s], p[off + 2 * s], p[off + 3 * s]);
    let (s0, d0) = s_fwd(x, y);
    let (s1, d1) = s_fwd(z, w);
    let (ss, sd) = s_fwd(s0, s1);
    p[off] = ss;
    p[off + s] = sd;
    p[off + 2 * s] = d0;
    p[off + 3 * s] = d1;
}

/// Inverse of [`fwd_line`].
#[inline]
fn inv_line(p: &mut [i64], off: usize, s: usize) {
    let (ss, sd, d0, d1) = (p[off], p[off + s], p[off + 2 * s], p[off + 3 * s]);
    let (s0, s1) = s_inv(ss, sd);
    let (x, y) = s_inv(s0, d0);
    let (z, w) = s_inv(s1, d1);
    p[off] = x;
    p[off + s] = y;
    p[off + 2 * s] = z;
    p[off + 3 * s] = w;
}

/// Apply the forward transform along every dimension of a 4^d block
/// stored row-major in `p` (`p.len() == 4^nd`).
pub fn forward(p: &mut [i64], nd: usize) {
    apply(p, nd, fwd_line);
}

/// Exact inverse of [`forward`].
pub fn inverse(p: &mut [i64], nd: usize) {
    // Dimensions must be undone in reverse order.
    apply_rev(p, nd, inv_line);
}

fn lines_of(nd: usize, dim: usize) -> Vec<(usize, usize)> {
    // For dimension `dim` of a 4^nd row-major block, the stride is
    // 4^(nd-1-dim); lines start at every index whose `dim` digit is 0.
    let n = 4usize.pow(nd as u32);
    let stride = 4usize.pow((nd - 1 - dim) as u32);
    let mut out = Vec::with_capacity(n / 4);
    for i in 0..n {
        let digit = (i / stride) % 4;
        if digit == 0 {
            out.push((i, stride));
        }
    }
    out
}

fn apply(p: &mut [i64], nd: usize, f: fn(&mut [i64], usize, usize)) {
    for dim in 0..nd {
        for (off, s) in lines_of(nd, dim) {
            f(p, off, s);
        }
    }
}

fn apply_rev(p: &mut [i64], nd: usize, f: fn(&mut [i64], usize, usize)) {
    for dim in (0..nd).rev() {
        for (off, s) in lines_of(nd, dim) {
            f(p, off, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &[i64], nd: usize) {
        let mut t = p.to_vec();
        forward(&mut t, nd);
        inverse(&mut t, nd);
        assert_eq!(t, p, "transform not invertible");
    }

    #[test]
    fn line_pair_invertible_exhaustive_small() {
        for a in -20i64..20 {
            for b in -20i64..20 {
                let (s, d) = s_fwd(a, b);
                assert_eq!(s_inv(s, d), (a, b));
            }
        }
    }

    #[test]
    fn invertible_1d() {
        roundtrip(&[5, -3, 1000, 7], 1);
        roundtrip(&[i64::MAX >> 4, -(i64::MAX >> 4), 0, 1], 1);
    }

    #[test]
    fn invertible_2d_3d_random() {
        let mut x = 0xABCDEFu64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x as i64) >> 34 // ~30-bit values
        };
        for nd in [2usize, 3] {
            let n = 4usize.pow(nd as u32);
            for _ in 0..50 {
                let block: Vec<i64> = (0..n).map(|_| next()).collect();
                roundtrip(&block, nd);
            }
        }
    }

    #[test]
    fn constant_block_concentrates_energy() {
        let mut p = vec![100i64; 16];
        forward(&mut p, 2);
        // Everything except the DC coefficient should be zero.
        assert_eq!(p[0], 100);
        assert!(p[1..].iter().all(|&c| c == 0), "{p:?}");
    }

    #[test]
    fn linear_ramp_small_high_coeffs() {
        // A smooth ramp should leave second-difference coefficients small.
        let mut p: Vec<i64> = (0..4).map(|i| 1000 + 10 * i as i64).collect();
        forward(&mut p, 1);
        // d0 = a-b = -10, d1 = -10, sd small.
        assert!(p[2].abs() <= 10 && p[3].abs() <= 10);
    }

    #[test]
    fn dynamic_range_growth_bounded() {
        // |coefficients| grow at most 2x per dimension level.
        let m = 1i64 << 40;
        for nd in [1usize, 2, 3] {
            let n = 4usize.pow(nd as u32);
            let mut p: Vec<i64> = (0..n).map(|i| if i % 2 == 0 { m } else { -m }).collect();
            forward(&mut p, nd);
            let max = p.iter().map(|c| c.abs()).max().unwrap();
            assert!(max <= m << (nd as u32 + 1), "growth too large: {max}");
        }
    }
}
