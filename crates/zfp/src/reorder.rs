//! Total-degree coefficient ordering.
//!
//! After the block transform, low-frequency coefficients (small
//! coordinate digit sums) carry most energy. Emitting coefficients in
//! total-degree order lets the embedded coder find significant bits
//! early, exactly as ZFP's sequency ordering does.

use crate::BLOCK_SIDE;

/// Permutation `perm` such that `coeffs[i] = block[perm[i]]` lists
/// coefficients by increasing total degree (sum of per-dimension
/// frequencies), ties broken by linear index.
pub fn degree_permutation(nd: usize) -> Vec<usize> {
    let n = BLOCK_SIDE.pow(nd as u32);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| (degree(i, nd), i));
    idx
}

/// Total degree of a linear block index: sum of its base-4 digits.
fn degree(mut i: usize, nd: usize) -> usize {
    let mut s = 0;
    for _ in 0..nd {
        s += i % BLOCK_SIDE;
        i /= BLOCK_SIDE;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_bijective() {
        for nd in [1usize, 2, 3] {
            let p = degree_permutation(nd);
            let n = BLOCK_SIDE.pow(nd as u32);
            assert_eq!(p.len(), n);
            let mut seen = vec![false; n];
            for &i in &p {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
    }

    #[test]
    fn dc_coefficient_first() {
        for nd in [1usize, 2, 3] {
            assert_eq!(degree_permutation(nd)[0], 0);
        }
    }

    #[test]
    fn degrees_non_decreasing() {
        for nd in [2usize, 3] {
            let p = degree_permutation(nd);
            let degs: Vec<usize> = p.iter().map(|&i| degree(i, nd)).collect();
            for w in degs.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn max_degree_corner_last() {
        let p = degree_permutation(2);
        assert_eq!(*p.last().unwrap(), 15); // index (3,3)
    }
}
