//! ZFP-style transform-based error-bounded lossy compressor (baseline).
//!
//! ZFP (Lindstrom, TVCG 2014) compresses d-dimensional arrays in 4^d
//! blocks: block-floating-point exponent alignment, a decorrelating
//! integer transform, total-degree coefficient reordering and embedded
//! bitplane coding, truncated where the accuracy target is met. This
//! reimplementation follows that pipeline with one documented
//! substitution (`DESIGN.md` §3): the decorrelating transform is a
//! two-level *reversible integer S-transform* (integer Haar) rather than
//! ZFP's non-orthogonal lifting. Exact reversibility lets the encoder
//! verify the error bound by decoding its own block and adding bitplanes
//! until the bound holds — a guarantee ZFP's fixed-accuracy mode provides
//! analytically.
//!
//! Like ZFP, this codec is transform-based: its compression ratio is
//! largely insensitive to prediction smoothness, it is fast, and it
//! underperforms prediction-based codecs at matched error bounds on the
//! paper's datasets (Table III).

pub mod embedded;
pub mod reorder;
pub mod transform;

use qoz_codec::stream::{self, Compressor, CompressorId, ErrorBound, Header};
use qoz_codec::{BitReader, BitWriter, ByteReader, ByteWriter, CodecError, Result};
use qoz_tensor::{NdArray, Region, Scalar, Shape, MAX_NDIM};

/// Block side length (fixed at 4, as in ZFP).
pub const BLOCK_SIDE: usize = 4;

/// Fixed-point precision: value bits kept when aligning to the block
/// exponent. 30 bits comfortably exceeds f32 mantissa precision while
/// leaving i64 headroom for the transform's dynamic-range growth.
const PRECISION: i32 = 30;
/// Extra precision for f64 inputs.
const PRECISION_F64: i32 = 52;

/// Per-block stream tags.
const BLOCK_ZERO: u8 = 0;
const BLOCK_CODED: u8 = 1;
const BLOCK_RAW: u8 = 2;

/// The ZFP-style compressor.
#[derive(Debug, Clone, Default)]
pub struct Zfp;

impl Zfp {
    fn precision<T: Scalar>() -> i32 {
        if T::BYTES == 4 {
            PRECISION
        } else {
            PRECISION_F64
        }
    }

    /// Typed compression entry point.
    pub fn compress_typed<T: Scalar>(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8> {
        let abs_eb = bound.absolute(data);
        let shape = data.shape();
        let nd = shape.ndim();
        let n = BLOCK_SIDE.pow(nd as u32);
        let perm = reorder::degree_permutation(nd);
        let prec = Self::precision::<T>();

        let blocks = Region::tile(shape, BLOCK_SIDE);
        let mut tags = ByteWriter::new();
        let mut raw = ByteWriter::new();
        let mut bits = BitWriter::new();

        let mut vals = vec![0f64; n];
        let mut ints = vec![0i64; n];
        for region in &blocks {
            gather_padded(data, region, &mut vals);
            if vals.iter().any(|v| !v.is_finite()) {
                tags.put_u8(BLOCK_RAW);
                write_raw(data, region, &mut raw);
                continue;
            }
            let maxabs = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if maxabs == 0.0 {
                tags.put_u8(BLOCK_ZERO);
                continue;
            }
            // Block-floating-point alignment.
            let e = maxabs.log2().floor() as i32;
            let scale = 2f64.powi(prec - e);
            for (i, &v) in vals.iter().enumerate() {
                ints[i] = (v * scale).round() as i64;
            }
            transform::forward(&mut ints, nd);
            let coeffs: Vec<i64> = perm.iter().map(|&p| ints[p]).collect();

            // Error budget in integer units; start from an analytic
            // estimate of the needed bitplanes, then verify by decoding.
            let eb_int = abs_eb * scale;
            let nb = coeffs
                .iter()
                .map(|&c| 64 - c.unsigned_abs().leading_zeros())
                .max()
                .unwrap_or(0) as i32;
            if nb > max_planes(prec, nd) as i32 {
                // Cannot happen for finite aligned inputs (the transform
                // grows magnitudes by at most 2 bits per dimension), but
                // guard anyway: store raw rather than risk overflow.
                tags.put_u8(BLOCK_RAW);
                write_raw(data, region, &mut raw);
                continue;
            }
            // Start from the *optimistic* estimate (truncation step equal
            // to the integer budget) and let the decode-verify loop walk
            // down as needed; typical blocks settle within 1-2 probes,
            // and this saves several bitplanes per block over the
            // worst-case analytic bound. The stream keeps planes
            // `[k+1, nb)`, so verification models truncation at `k+1` —
            // exactly what the decoder reconstructs. `k = -1` keeps every
            // plane (lossless in the integer domain); if even that fails
            // (float->int rounding exceeds the bound) the block is raw.
            let mut k = (eb_int.log2().floor() as i32).clamp(-1, nb);
            loop {
                let keep_low = (k + 1).max(0) as u32;
                if verify_block::<T>(
                    &coeffs, keep_low, nb as u32, &perm, nd, &vals, scale, abs_eb,
                ) {
                    break;
                }
                if k < 0 {
                    k = i32::MIN;
                    break;
                }
                k -= 1;
            }
            if k == i32::MIN {
                tags.put_u8(BLOCK_RAW);
                write_raw(data, region, &mut raw);
                continue;
            }

            tags.put_u8(BLOCK_CODED);
            // Block header inside the bitstream: exponent (16b), kept-low
            // plane k+1 as unsigned (6b), plane count nb (7b).
            bits.put_bits((e + 0x8000) as u64, 16);
            bits.put_bits((k + 1) as u64, 6);
            bits.put_bits(nb as u64, 7);
            embedded::encode_planes(&coeffs, (k + 1).max(0) as u32, nb as u32, &mut bits);
        }

        let mut w = ByteWriter::with_capacity(data.len() / 4 + 64);
        stream::write_header(
            &mut w,
            &Header {
                compressor: CompressorId::Zfp,
                scalar_tag: T::TYPE_TAG,
                shape,
                abs_eb,
                temporal: None,
            },
        );
        w.put_len_prefixed(&qoz_codec::lossless_compress(&tags.finish()));
        w.put_len_prefixed(&raw.finish());
        w.put_len_prefixed(&bits.finish());
        w.finish()
    }

    /// Typed decompression entry point.
    pub fn decompress_typed<T: Scalar>(&self, blob: &[u8]) -> Result<NdArray<T>> {
        let mut r = ByteReader::new(blob);
        let header = stream::read_header(&mut r)?;
        if header.temporal.is_some() {
            return Err(CodecError::Corrupt(
                "temporal chain member needs chain decode",
            ));
        }
        if header.compressor != CompressorId::Zfp {
            return Err(CodecError::Corrupt("not a ZFP stream"));
        }
        if header.scalar_tag != T::TYPE_TAG {
            return Err(CodecError::Corrupt("scalar type mismatch"));
        }
        let shape = header.shape;
        let nd = shape.ndim();
        let n = BLOCK_SIDE.pow(nd as u32);
        let perm = reorder::degree_permutation(nd);
        let prec = Self::precision::<T>();

        let tags = qoz_codec::lossless_decompress(r.get_len_prefixed()?)?;
        let raw = r.get_len_prefixed()?;
        let planes = r.get_len_prefixed()?;
        let mut raw_r = ByteReader::new(raw);
        let mut bits = BitReader::new(planes);

        let blocks = Region::tile(shape, BLOCK_SIDE);
        if tags.len() < blocks.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let mut out = NdArray::<T>::zeros(shape);
        let mut ints = vec![0i64; n];
        for (region, &tag) in blocks.iter().zip(tags.iter()) {
            match tag {
                BLOCK_ZERO => { /* already zeros */ }
                BLOCK_RAW => read_raw(&mut out, region, &mut raw_r)?,
                BLOCK_CODED => {
                    let e = bits.get_bits(16)? as i32 - 0x8000;
                    let k1 = bits.get_bits(6)? as u32;
                    let nb = bits.get_bits(7)? as u32;
                    // `k1 == nb + 1` is legal: a loose bound can drop every
                    // plane (the block decodes to all-zero coefficients).
                    // The plane count is capped at what a legitimate
                    // encoder can produce so corrupted headers cannot
                    // drive the inverse transform into i64 overflow.
                    if nb > max_planes(prec, nd) || k1 > nb + 1 {
                        return Err(CodecError::Corrupt("bad block plane header"));
                    }
                    let coeffs = embedded::decode_planes(n, k1, nb, &mut bits)?;
                    for (i, &p) in perm.iter().enumerate() {
                        ints[p] = coeffs[i];
                    }
                    transform::inverse(&mut ints, nd);
                    let scale = 2f64.powi(prec - e);
                    scatter_block(&mut out, region, &ints, scale);
                }
                _ => return Err(CodecError::Corrupt("bad block tag")),
            }
        }
        Ok(out)
    }
}

/// Largest bitplane count a legitimate block can produce: aligned values
/// occupy `prec + 1` bits and each of the `2 * nd` S-transform levels can
/// grow magnitudes by one bit.
fn max_planes(prec: i32, nd: usize) -> u32 {
    (prec + 2 * nd as i32 + 2) as u32
}

/// Encode-side verification: decode the truncated coefficients exactly
/// as the decompressor will — including the final rounding into `T` —
/// and check every sample meets the bound.
#[allow(clippy::too_many_arguments)]
fn verify_block<T: Scalar>(
    coeffs: &[i64],
    keep_low: u32,
    nb: u32,
    perm: &[usize],
    nd: usize,
    vals: &[f64],
    scale: f64,
    abs_eb: f64,
) -> bool {
    let mask = if keep_low >= 63 {
        0
    } else {
        !((1i64 << keep_low) - 1)
    };
    let _ = nb;
    let mut ints = vec![0i64; coeffs.len()];
    for (i, &p) in perm.iter().enumerate() {
        let c = coeffs[i];
        // Truncation matches the embedded coder: magnitude bits below
        // `keep_low` are dropped, sign preserved.
        ints[p] = c.signum() * (c.abs() & mask);
    }
    transform::inverse(&mut ints, nd);
    ints.iter().zip(vals).all(|(&i, &v)| {
        let recon = T::from_f64(i as f64 / scale);
        (recon.to_f64() - v).abs() <= abs_eb
    })
}

/// Gather a (possibly partial) block, padding by edge replication.
fn gather_padded<T: Scalar>(data: &NdArray<T>, region: &Region, out: &mut [f64]) {
    let nd = region.ndim();
    let full = Shape::new(&vec![BLOCK_SIDE; nd]);
    for (i, idx) in full.indices().enumerate() {
        let mut g = [0usize; MAX_NDIM];
        for d in 0..nd {
            let clipped = idx[d].min(region.size()[d] - 1);
            g[d] = region.origin()[d] + clipped;
        }
        out[i] = data.get(&g[..nd]).to_f64();
    }
}

/// Write the exact bytes of a block region (non-finite or incompressible
/// blocks).
fn write_raw<T: Scalar>(data: &NdArray<T>, region: &Region, w: &mut ByteWriter) {
    let nd = region.ndim();
    let sub = Shape::new(region.size());
    for idx in sub.indices() {
        let mut g = [0usize; MAX_NDIM];
        for d in 0..nd {
            g[d] = region.origin()[d] + idx[d];
        }
        w.put_bytes(&data.get(&g[..nd]).to_le_bytes_vec());
    }
}

/// Mirror of [`write_raw`].
fn read_raw<T: Scalar>(out: &mut NdArray<T>, region: &Region, r: &mut ByteReader) -> Result<()> {
    let nd = region.ndim();
    let sub = Shape::new(region.size());
    for idx in sub.indices() {
        let mut g = [0usize; MAX_NDIM];
        for d in 0..nd {
            g[d] = region.origin()[d] + idx[d];
        }
        let v = T::from_le_slice(r.get_bytes(T::BYTES)?);
        out.set(&g[..nd], v);
    }
    Ok(())
}

/// Write reconstructed integers back to the valid region of a block.
fn scatter_block<T: Scalar>(out: &mut NdArray<T>, region: &Region, ints: &[i64], scale: f64) {
    let nd = region.ndim();
    let full = Shape::new(&vec![BLOCK_SIDE; nd]);
    for (i, idx) in full.indices().enumerate() {
        if (0..nd).any(|d| idx[d] >= region.size()[d]) {
            continue; // padding
        }
        let mut g = [0usize; MAX_NDIM];
        for d in 0..nd {
            g[d] = region.origin()[d] + idx[d];
        }
        out.set(&g[..nd], T::from_f64(ints[i] as f64 / scale));
    }
}

impl<T: Scalar> Compressor<T> for Zfp {
    fn id(&self) -> CompressorId {
        CompressorId::Zfp
    }
    fn compress(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8> {
        self.compress_typed(data, bound)
    }
    fn decompress(&self, blob: &[u8]) -> Result<NdArray<T>> {
        self.decompress_typed(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};
    use qoz_metrics::verify_error_bound;

    #[test]
    fn roundtrip_respects_bound_all_datasets() {
        for ds in Dataset::ALL {
            let data = ds.generate(SizeClass::Tiny, 0);
            for eps in [1e-2, 1e-4] {
                let bound = ErrorBound::Rel(eps);
                let abs = bound.absolute(&data);
                let blob = Zfp.compress_typed(&data, bound);
                let recon = Zfp.decompress_typed::<f32>(&blob).unwrap();
                assert_eq!(
                    verify_error_bound(&data, &recon, abs),
                    None,
                    "{} eps {eps}",
                    ds.name()
                );
            }
        }
    }

    #[test]
    fn f64_tight_bound_roundtrip() {
        let data = NdArray::from_fn(Shape::d3(17, 18, 19), |i| {
            (i[0] as f64 * 0.3).sin() * (i[1] as f64 * 0.2).cos() + i[2] as f64 * 1e-3
        });
        let blob = Zfp.compress_typed(&data, ErrorBound::Abs(1e-9));
        let recon = Zfp.decompress_typed::<f64>(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= 1e-9);
    }

    #[test]
    fn zero_blocks_cost_almost_nothing() {
        let data = NdArray::<f32>::zeros(Shape::d2(64, 64));
        let blob = Zfp.compress_typed(&data, ErrorBound::Abs(1e-3));
        assert!(
            blob.len() < 200,
            "all-zero input should be tiny: {}",
            blob.len()
        );
        let recon = Zfp.decompress_typed::<f32>(&blob).unwrap();
        assert!(recon.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn non_finite_blocks_stored_raw() {
        let mut data = NdArray::from_fn(Shape::d2(8, 8), |i| (i[0] + i[1]) as f32);
        data.as_mut_slice()[5] = f32::NAN;
        data.as_mut_slice()[37] = f32::NEG_INFINITY;
        let blob = Zfp.compress_typed(&data, ErrorBound::Abs(1e-3));
        let recon = Zfp.decompress_typed::<f32>(&blob).unwrap();
        assert!(recon.as_slice()[5].is_nan());
        assert_eq!(recon.as_slice()[37], f32::NEG_INFINITY);
        for (a, b) in data.as_slice().iter().zip(recon.as_slice()) {
            if a.is_finite() {
                assert!((a - b).abs() <= 1e-3);
            }
        }
    }

    #[test]
    fn partial_edge_blocks_roundtrip() {
        let data = NdArray::from_fn(Shape::d2(9, 11), |i| (i[0] * 11 + i[1]) as f32 * 0.37);
        let blob = Zfp.compress_typed(&data, ErrorBound::Abs(1e-2));
        let recon = Zfp.decompress_typed::<f32>(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= 1e-2);
    }

    #[test]
    fn loose_bound_compresses_better_than_tight() {
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let loose = Zfp.compress_typed(&data, ErrorBound::Rel(1e-2)).len();
        let tight = Zfp.compress_typed(&data, ErrorBound::Rel(1e-5)).len();
        assert!(loose < tight, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = NdArray::from_fn(Shape::d1(64), |i| (i[0] as f32).sqrt());
        let blob = Zfp.compress_typed(&data, ErrorBound::Abs(1e-3));
        for cut in [4, blob.len() / 2] {
            assert!(Zfp.decompress_typed::<f32>(&blob[..cut]).is_err());
        }
    }

    #[test]
    fn one_dimensional_roundtrip() {
        let data = NdArray::from_fn(Shape::d1(101), |i| ((i[0] as f32) * 0.11).sin());
        let blob = Zfp.compress_typed(&data, ErrorBound::Abs(1e-4));
        let recon = Zfp.decompress_typed::<f32>(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= 1e-4);
    }
}
