//! Embedded (progressive) bitplane coding of transformed coefficients.
//!
//! Coefficients are coded in sign-magnitude form from the most
//! significant bitplane down to plane `keep_low`:
//!
//! * bits of already-significant coefficients are emitted raw
//!   (refinement pass),
//! * a single group flag says whether any new coefficient becomes
//!   significant in this plane; if set, a significance flag is emitted
//!   per still-insignificant coefficient, followed by the sign bit on a
//!   first hit (significance pass).
//!
//! Truncating the stream at any plane yields the coefficients with all
//! lower magnitude bits zeroed — the exact truncation the encoder's
//! verification models.

use qoz_codec::{BitReader, BitWriter, Result};

/// Encode `coeffs` planes `[keep_low, nb)` (MSB first).
pub fn encode_planes(coeffs: &[i64], keep_low: u32, nb: u32, bits: &mut BitWriter) {
    let n = coeffs.len();
    let mags: Vec<u64> = coeffs.iter().map(|c| c.unsigned_abs()).collect();
    let mut significant = vec![false; n];
    if nb == 0 {
        return;
    }
    for plane in (keep_low..nb).rev() {
        // Refinement pass.
        for i in 0..n {
            if significant[i] {
                bits.put_bit((mags[i] >> plane) & 1 == 1);
            }
        }
        // Significance pass with a group flag.
        let any_new = (0..n).any(|i| !significant[i] && (mags[i] >> plane) & 1 == 1);
        bits.put_bit(any_new);
        if any_new {
            for i in 0..n {
                if significant[i] {
                    continue;
                }
                let hit = (mags[i] >> plane) & 1 == 1;
                bits.put_bit(hit);
                if hit {
                    significant[i] = true;
                    bits.put_bit(coeffs[i] < 0);
                }
            }
        }
    }
}

/// Decode `n` coefficients coded by [`encode_planes`]. Bits below
/// `keep_low` are zero in the result.
pub fn decode_planes(n: usize, keep_low: u32, nb: u32, bits: &mut BitReader) -> Result<Vec<i64>> {
    let mut mags = vec![0u64; n];
    let mut neg = vec![false; n];
    let mut significant = vec![false; n];
    if nb > 0 {
        for plane in (keep_low..nb).rev() {
            for (i, m) in mags.iter_mut().enumerate() {
                if significant[i] && bits.get_bit()? {
                    *m |= 1u64 << plane;
                }
            }
            if bits.get_bit()? {
                for i in 0..n {
                    if significant[i] {
                        continue;
                    }
                    if bits.get_bit()? {
                        significant[i] = true;
                        mags[i] |= 1u64 << plane;
                        neg[i] = bits.get_bit()?;
                    }
                }
            }
        }
    }
    Ok(mags
        .into_iter()
        .zip(neg)
        .map(|(m, s)| {
            let v = m as i64;
            if s {
                -v
            } else {
                v
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(coeffs: &[i64], keep_low: u32) -> Vec<i64> {
        let nb = coeffs
            .iter()
            .map(|&c| 64 - c.unsigned_abs().leading_zeros())
            .max()
            .unwrap_or(0);
        let mut w = BitWriter::new();
        encode_planes(coeffs, keep_low, nb, &mut w);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        decode_planes(coeffs.len(), keep_low, nb, &mut r).unwrap()
    }

    #[test]
    fn lossless_when_all_planes_kept() {
        let coeffs = vec![
            0, 5, -3, 127, -128, 1, 0, -1, 4096, -4095, 2, 2, -2, 99, 7, -7,
        ];
        assert_eq!(roundtrip(&coeffs, 0), coeffs);
    }

    #[test]
    fn truncation_zeroes_low_bits() {
        let coeffs = vec![0b1011i64, -0b1101, 0b0011, 0];
        let got = roundtrip(&coeffs, 2);
        assert_eq!(got, vec![0b1000, -0b1100, 0, 0]);
    }

    #[test]
    fn all_zero_block_costs_one_bit_per_plane() {
        let coeffs = vec![0i64; 64];
        let mut w = BitWriter::new();
        encode_planes(&coeffs, 0, 10, &mut w);
        // Only group flags: 10 bits -> 2 bytes.
        assert!(w.bit_len() == 10, "got {} bits", w.bit_len());
    }

    #[test]
    fn sparse_blocks_cheap() {
        // One large coefficient among 63 zeros: far fewer bits than raw.
        let mut coeffs = vec![0i64; 64];
        coeffs[0] = 1 << 20;
        let mut w = BitWriter::new();
        encode_planes(&coeffs, 0, 21, &mut w);
        assert!(w.bit_len() < 64 * 21 / 4, "got {} bits", w.bit_len());
    }

    #[test]
    fn negative_values_preserve_sign() {
        let coeffs = vec![-1i64, -2, -4, -8];
        assert_eq!(roundtrip(&coeffs, 0), coeffs);
    }

    #[test]
    fn truncated_bitstream_errors() {
        let coeffs = vec![123i64, -456, 789, -1011];
        let mut w = BitWriter::new();
        encode_planes(&coeffs, 0, 10, &mut w);
        let buf = w.finish();
        let mut r = BitReader::new(&buf[..buf.len() / 2]);
        // Either an error or a short read must surface; never a panic.
        let _ = decode_planes(4, 0, 10, &mut r);
    }

    #[test]
    fn zero_planes_noop() {
        let got = roundtrip(&[0i64; 8], 0);
        assert_eq!(got, vec![0i64; 8]);
    }
}
