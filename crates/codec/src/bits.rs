//! MSB-first bit-level I/O.
//!
//! Both the Huffman coder and the embedded bitplane coder in `qoz-zfp`
//! write variable-length codes; this module gives them a single, tested
//! bit container. Bits are packed most-significant-first inside each byte,
//! matching the usual entropy-coding convention so streams are easy to
//! inspect in a hex dump.

use crate::{CodecError, Result};

/// Accumulates bits into a byte buffer, MSB-first.
#[derive(Default, Debug)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Partially filled final byte.
    cur: u8,
    /// Number of valid bits in `cur` (0..8).
    used: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | bit as u8;
        self.used += 1;
        if self.used == 8 {
            self.buf.push(self.cur);
            self.cur = 0;
            self.used = 0;
        }
    }

    /// Append the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[inline]
    pub fn put_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        for i in (0..n).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.used as usize
    }

    /// Pad the final byte with zeros and return the backing buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.cur <<= 8 - self.used;
            self.buf.push(self.cur);
        }
        self.buf
    }
}

/// Reads bits from a byte slice, MSB-first.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Number of bits still available.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Read one bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool> {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let shift = 7 - (self.pos % 8) as u32;
        self.pos += 1;
        Ok((self.buf[byte] >> shift) & 1 == 1)
    }

    /// Read `n` bits into the low bits of a `u64`, MSB-first.
    #[inline]
    pub fn get_bits(&mut self, n: u32) -> Result<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.get_bit()? as u64;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0x3FF, 10);
        w.put_bits(u64::MAX, 64);
        w.put_bits(0, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4).unwrap(), 0b1011);
        assert_eq!(r.get_bits(10).unwrap(), 0x3FF);
        assert_eq!(r.get_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.get_bits(1).unwrap(), 0);
    }

    #[test]
    fn msb_first_packing() {
        let mut w = BitWriter::new();
        w.put_bits(0b10000001, 8);
        assert_eq!(w.finish(), vec![0b1000_0001]);
    }

    #[test]
    fn eof_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert_eq!(r.get_bit(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.put_bits(0, 6);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn remaining_bits_tracks_cursor() {
        let data = [0u8; 4];
        let mut r = BitReader::new(&data);
        assert_eq!(r.remaining_bits(), 32);
        r.get_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 27);
    }
}
