//! MSB-first bit-level I/O.
//!
//! Both the Huffman coder and the embedded bitplane coder in `qoz-zfp`
//! write variable-length codes; this module gives them a single, tested
//! bit container. Bits are packed most-significant-first inside each byte,
//! matching the usual entropy-coding convention so streams are easy to
//! inspect in a hex dump.

use crate::{CodecError, Result};

/// Accumulates bits into a byte buffer, MSB-first.
///
/// Bits are shifted into a 64-bit accumulator word and drained a byte at
/// a time, so a multi-bit append is a couple of shifts rather than a
/// per-bit loop.
#[derive(Default, Debug)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Pending bits, right-aligned; only the low `used` bits are valid.
    acc: u64,
    /// Number of valid bits in `acc` (0..8 between calls).
    used: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopt a recycled backing buffer: contents are cleared, capacity
    /// is kept. Lets entropy-stage scratch arenas reuse the bitstream
    /// allocation across calls.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BitWriter {
            buf,
            acc: 0,
            used: 0,
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits(bit as u64, 1);
    }

    /// Append the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[inline]
    pub fn put_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        if n > 32 {
            // Split so the accumulator (holding < 8 stale bits) never
            // overflows: 7 + 32 bits always fit in the u64.
            self.put_bits(value >> 32, n - 32);
            self.put_bits(value & 0xFFFF_FFFF, 32);
            return;
        }
        if n == 0 {
            return;
        }
        self.acc = (self.acc << n) | (value & (u64::MAX >> (64 - n)));
        self.used += n;
        while self.used >= 8 {
            self.used -= 8;
            self.buf.push((self.acc >> self.used) as u8);
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.used as usize
    }

    /// Pad the final byte with zeros and return the backing buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.buf.push((self.acc << (8 - self.used)) as u8);
        }
        self.buf
    }
}

/// Reads bits from a byte slice, MSB-first.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Number of bits still available.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Read one bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool> {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let shift = 7 - (self.pos % 8) as u32;
        self.pos += 1;
        Ok((self.buf[byte] >> shift) & 1 == 1)
    }

    /// The next 64 bits at the cursor, MSB-aligned, zero-padded past the
    /// end of the buffer. One unaligned load in the common case.
    #[inline]
    fn peek_word(&self) -> u64 {
        let byte = self.pos >> 3;
        let w = if self.buf.len() - byte >= 8 {
            u64::from_be_bytes(self.buf[byte..byte + 8].try_into().unwrap())
        } else {
            let mut tmp = [0u8; 8];
            tmp[..self.buf.len() - byte].copy_from_slice(&self.buf[byte..]);
            u64::from_be_bytes(tmp)
        };
        w << (self.pos & 7)
    }

    /// Look at the next `n` bits (1..=57) without consuming them,
    /// right-aligned. Bits past the end of the buffer read as zero; pair
    /// with [`BitReader::remaining_bits`] before trusting the tail.
    #[inline]
    pub fn peek_bits(&self, n: u32) -> u64 {
        debug_assert!((1..=57).contains(&n), "peek_bits supports 1..=57 bits");
        self.peek_word() >> (64 - n)
    }

    /// Advance the cursor by `n` bits. The caller must have checked
    /// `remaining_bits() >= n` — violating that is a bug (asserted in
    /// debug builds); release builds clamp the cursor to the end of the
    /// buffer as a safety net, so subsequent reads report EOF instead of
    /// panicking inside [`BitReader::peek_bits`].
    #[inline]
    pub fn consume(&mut self, n: u32) {
        debug_assert!(self.remaining_bits() >= n as usize);
        self.pos = (self.pos + n as usize).min(self.buf.len() * 8);
    }

    /// Read `n` bits into the low bits of a `u64`, MSB-first.
    #[inline]
    pub fn get_bits(&mut self, n: u32) -> Result<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if self.remaining_bits() < n as usize {
            // Drain the cursor like the old bit-by-bit loop did before
            // reporting EOF.
            self.pos = self.buf.len() * 8;
            return Err(CodecError::UnexpectedEof);
        }
        if n == 0 {
            return Ok(0);
        }
        if n <= 57 {
            let v = self.peek_word() >> (64 - n);
            self.pos += n as usize;
            Ok(v)
        } else {
            let hi = self.get_bits(n - 32)?;
            let lo = self.get_bits(32)?;
            Ok((hi << 32) | lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0x3FF, 10);
        w.put_bits(u64::MAX, 64);
        w.put_bits(0, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4).unwrap(), 0b1011);
        assert_eq!(r.get_bits(10).unwrap(), 0x3FF);
        assert_eq!(r.get_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.get_bits(1).unwrap(), 0);
    }

    #[test]
    fn msb_first_packing() {
        let mut w = BitWriter::new();
        w.put_bits(0b10000001, 8);
        assert_eq!(w.finish(), vec![0b1000_0001]);
    }

    #[test]
    fn eof_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert_eq!(r.get_bit(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.put_bits(0, 6);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn remaining_bits_tracks_cursor() {
        let data = [0u8; 4];
        let mut r = BitReader::new(&data);
        assert_eq!(r.remaining_bits(), 32);
        r.get_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 27);
    }
}
