//! Common compressed-stream framing and the [`Compressor`] trait.
//!
//! Every compressor in the workspace emits a self-describing stream with
//! the same header (magic, format version, compressor id, scalar tag,
//! shape, error bound) so that tools like the parallel-I/O harness can
//! dispatch on compressed blobs without out-of-band metadata.

use crate::byteio::{ByteReader, ByteWriter};
use crate::{CodecError, Result};
use qoz_tensor::{NdArray, Scalar, Shape};

/// 4-byte stream magic: "QZWS" (QoZ workspace).
pub const MAGIC: [u8; 4] = *b"QZWS";
/// Current stream format version.
pub const VERSION: u8 = 1;

/// Identifies which compressor produced a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CompressorId {
    /// SZ2.1-style block Lorenzo/regression.
    Sz2 = 1,
    /// SZ3-style global spline interpolation.
    Sz3 = 2,
    /// ZFP-style block transform.
    Zfp = 3,
    /// MGARD+-style multilevel.
    Mgard = 4,
    /// QoZ (this paper).
    Qoz = 5,
}

impl CompressorId {
    /// Parse from the header byte.
    pub fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            1 => CompressorId::Sz2,
            2 => CompressorId::Sz3,
            3 => CompressorId::Zfp,
            4 => CompressorId::Mgard,
            5 => CompressorId::Qoz,
            _ => return Err(CodecError::Corrupt("unknown compressor id")),
        })
    }

    /// Display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            CompressorId::Sz2 => "SZ2.1",
            CompressorId::Sz3 => "SZ3",
            CompressorId::Zfp => "ZFP",
            CompressorId::Mgard => "MGARD+",
            CompressorId::Qoz => "QoZ",
        }
    }
}

/// User-facing error-bound specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound `e`: every point satisfies `|x - x'| <= e`.
    Abs(f64),
    /// Value-range-relative bound `ε`: `e = ε * (max - min)`. This is the
    /// mode used throughout the paper's evaluation.
    Rel(f64),
}

impl ErrorBound {
    /// Resolve to an absolute bound for a concrete array.
    ///
    /// Constant arrays (range 0) under a relative bound resolve to a tiny
    /// positive epsilon — every residual is 0 there anyway.
    pub fn absolute<T: Scalar>(self, data: &NdArray<T>) -> f64 {
        match self {
            ErrorBound::Abs(e) => {
                assert!(e > 0.0 && e.is_finite(), "invalid absolute bound {e}");
                e
            }
            ErrorBound::Rel(eps) => {
                assert!(eps > 0.0 && eps.is_finite(), "invalid relative bound {eps}");
                let r = data.value_range();
                if r > 0.0 {
                    eps * r
                } else {
                    f64::MIN_POSITIVE.max(1e-30)
                }
            }
        }
    }
}

/// Parsed stream header.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Producing compressor.
    pub compressor: CompressorId,
    /// Scalar type tag ([`Scalar::TYPE_TAG`]).
    pub scalar_tag: u8,
    /// Array shape.
    pub shape: Shape,
    /// Absolute error bound the stream was produced with.
    pub abs_eb: f64,
}

/// Write the common stream header.
pub fn write_header(w: &mut ByteWriter, h: &Header) {
    w.put_bytes(&MAGIC);
    w.put_u8(VERSION);
    w.put_u8(h.compressor as u8);
    w.put_u8(h.scalar_tag);
    w.put_u8(h.shape.ndim() as u8);
    for &d in h.shape.dims() {
        w.put_varint(d as u64);
    }
    w.put_f64(h.abs_eb);
}

/// Read and validate the common stream header.
pub fn read_header(r: &mut ByteReader) -> Result<Header> {
    let magic = r.get_bytes(4)?;
    if magic != MAGIC {
        return Err(CodecError::Corrupt("bad magic"));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(CodecError::BadVersion {
            found: version,
            supported: VERSION,
        });
    }
    let compressor = CompressorId::from_u8(r.get_u8()?)?;
    let scalar_tag = r.get_u8()?;
    let ndim = r.get_u8()? as usize;
    if ndim == 0 || ndim > qoz_tensor::MAX_NDIM {
        return Err(CodecError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let d = r.get_varint()? as usize;
        if d == 0 || d > (1 << 32) {
            return Err(CodecError::Corrupt("bad dimension"));
        }
        dims.push(d);
    }
    let abs_eb = r.get_f64()?;
    if abs_eb.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !abs_eb.is_finite() {
        return Err(CodecError::Corrupt("bad error bound"));
    }
    Ok(Header {
        compressor,
        scalar_tag,
        shape: Shape::new(&dims),
        abs_eb,
    })
}

/// The interface every compressor in the workspace implements.
pub trait Compressor<T: Scalar> {
    /// Stable identifier (also stored in stream headers).
    fn id(&self) -> CompressorId;

    /// Compress `data` under `bound`, returning a self-describing blob.
    fn compress(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8>;

    /// Decompress a blob produced by [`Compressor::compress`].
    fn decompress(&self, blob: &[u8]) -> Result<NdArray<T>>;

    /// Display name.
    fn name(&self) -> &'static str {
        self.id().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            compressor: CompressorId::Qoz,
            scalar_tag: f32::TYPE_TAG,
            shape: Shape::d3(10, 20, 30),
            abs_eb: 1e-3,
        };
        let mut w = ByteWriter::new();
        write_header(&mut w, &h);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(read_header(&mut r).unwrap(), h);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"NOPE");
        w.put_u8(VERSION);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert!(read_header(&mut r).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let h = Header {
            compressor: CompressorId::Sz3,
            scalar_tag: f64::TYPE_TAG,
            shape: Shape::d1(5),
            abs_eb: 0.5,
        };
        let mut w = ByteWriter::new();
        write_header(&mut w, &h);
        let mut buf = w.finish();
        buf[4] = 99; // version byte
        let mut r = ByteReader::new(&buf);
        assert_eq!(
            read_header(&mut r),
            Err(CodecError::BadVersion {
                found: 99,
                supported: VERSION
            })
        );
    }

    #[test]
    fn newer_version_distinguished_from_corruption() {
        let h = Header {
            compressor: CompressorId::Qoz,
            scalar_tag: f32::TYPE_TAG,
            shape: Shape::d1(8),
            abs_eb: 1e-2,
        };
        let mut w = ByteWriter::new();
        write_header(&mut w, &h);
        let mut buf = w.finish();
        // A future format version must read as "newer", not "corrupt".
        buf[4] = VERSION + 1;
        let mut r = ByteReader::new(&buf);
        let err = read_header(&mut r).unwrap_err();
        assert!(err.is_newer_format(), "{err}");
        // An older (impossible) version 0 is a mismatch but NOT newer.
        buf[4] = 0;
        let mut r = ByteReader::new(&buf);
        let err = read_header(&mut r).unwrap_err();
        assert!(matches!(err, CodecError::BadVersion { .. }));
        assert!(!err.is_newer_format());
        // Plain corruption never reports as a version problem.
        assert!(!CodecError::Corrupt("x").is_newer_format());
        assert!(!CodecError::UnexpectedEof.is_newer_format());
    }

    #[test]
    fn relative_bound_resolves_via_range() {
        let a = NdArray::from_vec(Shape::d1(3), vec![0.0f64, 5.0, 10.0]);
        assert_eq!(ErrorBound::Rel(1e-2).absolute(&a), 0.1);
        assert_eq!(ErrorBound::Abs(0.25).absolute(&a), 0.25);
    }

    #[test]
    fn relative_bound_on_constant_data_positive() {
        let a = NdArray::from_vec(Shape::d1(4), vec![3.0f32; 4]);
        assert!(ErrorBound::Rel(1e-3).absolute(&a) > 0.0);
    }

    #[test]
    fn compressor_ids_roundtrip() {
        for id in [
            CompressorId::Sz2,
            CompressorId::Sz3,
            CompressorId::Zfp,
            CompressorId::Mgard,
            CompressorId::Qoz,
        ] {
            assert_eq!(CompressorId::from_u8(id as u8).unwrap(), id);
        }
        assert!(CompressorId::from_u8(0).is_err());
    }
}
