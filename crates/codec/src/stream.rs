//! Common compressed-stream framing and the [`Compressor`] trait.
//!
//! Every compressor in the workspace emits a self-describing stream with
//! the same header (magic, format version, compressor id, scalar tag,
//! shape, error bound) so that tools like the parallel-I/O harness can
//! dispatch on compressed blobs without out-of-band metadata.

use crate::byteio::{ByteReader, ByteWriter};
use crate::{CodecError, Result};
use qoz_tensor::{NdArray, Scalar, Shape};

/// 4-byte stream magic: "QZWS" (QoZ workspace).
pub const MAGIC: [u8; 4] = *b"QZWS";
/// Stream format version of plain (temporally independent) streams.
///
/// Deliberately unchanged by the temporal extension: a stream whose
/// header carries no [`TemporalMode`] is emitted byte-for-byte as
/// before, so pre-temporal readers and golden bitstreams are
/// unaffected.
pub const VERSION: u8 = 1;
/// Stream format version of temporal chain members. A version-2 header
/// carries one extra [`TemporalMode`] byte right after the version, and
/// its payload is a complete version-1 stream (the independent snapshot
/// for a keyframe, the residual field for a delta).
pub const VERSION_TEMPORAL: u8 = 2;

/// How a temporal chain member relates to its predecessor.
///
/// Recorded in the stream header (version [`VERSION_TEMPORAL`]) so a
/// decoder needs no out-of-band metadata to tell whether a chain member
/// is self-contained: the encoder's per-snapshot keyframe/delta decision
/// travels with the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TemporalMode {
    /// Independently coded snapshot: the payload reconstructs the field
    /// on its own. Chains start with (and fall back to) keyframes.
    Keyframe = 1,
    /// Residual-coded snapshot: the payload reconstructs `x_t - x̂_{t-1}`
    /// (the difference against the *reconstruction* of the previous
    /// chain member), so decoding requires the predecessor.
    Delta = 2,
}

impl TemporalMode {
    /// Parse from the header byte.
    pub fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            1 => TemporalMode::Keyframe,
            2 => TemporalMode::Delta,
            _ => return Err(CodecError::Corrupt("unknown temporal mode")),
        })
    }

    /// Stable lowercase name (telemetry label / CLI tag).
    pub fn name(self) -> &'static str {
        match self {
            TemporalMode::Keyframe => "keyframe",
            TemporalMode::Delta => "delta",
        }
    }
}

/// Identifies which compressor produced a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CompressorId {
    /// SZ2.1-style block Lorenzo/regression.
    Sz2 = 1,
    /// SZ3-style global spline interpolation.
    Sz3 = 2,
    /// ZFP-style block transform.
    Zfp = 3,
    /// MGARD+-style multilevel.
    Mgard = 4,
    /// QoZ (this paper).
    Qoz = 5,
}

impl CompressorId {
    /// Parse from the header byte.
    pub fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            1 => CompressorId::Sz2,
            2 => CompressorId::Sz3,
            3 => CompressorId::Zfp,
            4 => CompressorId::Mgard,
            5 => CompressorId::Qoz,
            _ => return Err(CodecError::Corrupt("unknown compressor id")),
        })
    }

    /// Display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            CompressorId::Sz2 => "SZ2.1",
            CompressorId::Sz3 => "SZ3",
            CompressorId::Zfp => "ZFP",
            CompressorId::Mgard => "MGARD+",
            CompressorId::Qoz => "QoZ",
        }
    }
}

/// User-facing error-bound specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound `e`: every point satisfies `|x - x'| <= e`.
    Abs(f64),
    /// Value-range-relative bound `ε`: `e = ε * (max - min)`. This is the
    /// mode used throughout the paper's evaluation.
    Rel(f64),
}

impl ErrorBound {
    /// The raw bound value (absolute or relative).
    pub fn value(self) -> f64 {
        match self {
            ErrorBound::Abs(e) | ErrorBound::Rel(e) => e,
        }
    }

    /// A bound is usable iff it is finite and strictly positive; NaN,
    /// infinities, zero and negative values are rejected.
    /// [`ErrorBound::absolute`] panics on invalid bounds — consumers that
    /// must fail softly (the `qoz_api` session builder, CLI parsing)
    /// check this first.
    pub fn is_valid(self) -> bool {
        let v = self.value();
        v.is_finite() && v > 0.0
    }

    /// Resolve to an absolute bound for a concrete array.
    ///
    /// Constant arrays (range 0) under a relative bound resolve to a tiny
    /// positive epsilon — every residual is 0 there anyway.
    pub fn absolute<T: Scalar>(self, data: &NdArray<T>) -> f64 {
        match self {
            ErrorBound::Abs(e) => {
                assert!(e > 0.0 && e.is_finite(), "invalid absolute bound {e}");
                e
            }
            ErrorBound::Rel(eps) => {
                assert!(eps > 0.0 && eps.is_finite(), "invalid relative bound {eps}");
                let r = data.value_range();
                if r > 0.0 {
                    eps * r
                } else {
                    f64::MIN_POSITIVE.max(1e-30)
                }
            }
        }
    }
}

/// Parsed stream header.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Producing compressor.
    pub compressor: CompressorId,
    /// Scalar type tag ([`Scalar::TYPE_TAG`]).
    pub scalar_tag: u8,
    /// Array shape.
    pub shape: Shape,
    /// Absolute error bound the stream was produced with.
    pub abs_eb: f64,
    /// Temporal chain role, when the stream is a chain member. `None`
    /// for plain streams — which are emitted as format [`VERSION`],
    /// byte-identical to pre-temporal builds.
    pub temporal: Option<TemporalMode>,
}

/// Write the common stream header.
///
/// Headers without a temporal role serialize exactly as before the
/// temporal extension (version [`VERSION`]); a `Some` role upgrades the
/// header to [`VERSION_TEMPORAL`] and inserts the mode byte after the
/// version.
pub fn write_header(w: &mut ByteWriter, h: &Header) {
    w.put_bytes(&MAGIC);
    match h.temporal {
        None => w.put_u8(VERSION),
        Some(mode) => {
            w.put_u8(VERSION_TEMPORAL);
            w.put_u8(mode as u8);
        }
    }
    w.put_u8(h.compressor as u8);
    w.put_u8(h.scalar_tag);
    w.put_u8(h.shape.ndim() as u8);
    for &d in h.shape.dims() {
        w.put_varint(d as u64);
    }
    w.put_f64(h.abs_eb);
}

/// Read and validate the common stream header.
pub fn read_header(r: &mut ByteReader) -> Result<Header> {
    let magic = r.get_bytes(4)?;
    if magic != MAGIC {
        return Err(CodecError::Corrupt("bad magic"));
    }
    let version = r.get_u8()?;
    let temporal = match version {
        VERSION => None,
        VERSION_TEMPORAL => Some(TemporalMode::from_u8(r.get_u8()?)?),
        _ => {
            return Err(CodecError::BadVersion {
                found: version,
                supported: VERSION_TEMPORAL,
            })
        }
    };
    let compressor = CompressorId::from_u8(r.get_u8()?)?;
    let scalar_tag = r.get_u8()?;
    let ndim = r.get_u8()? as usize;
    if ndim == 0 || ndim > qoz_tensor::MAX_NDIM {
        return Err(CodecError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let d = r.get_varint()? as usize;
        if d == 0 || d > (1 << 32) {
            return Err(CodecError::Corrupt("bad dimension"));
        }
        dims.push(d);
    }
    let abs_eb = r.get_f64()?;
    if abs_eb.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !abs_eb.is_finite() {
        return Err(CodecError::Corrupt("bad error bound"));
    }
    Ok(Header {
        compressor,
        scalar_tag,
        shape: Shape::new(&dims),
        abs_eb,
        temporal,
    })
}

/// Wrap a complete plain (version-1) stream as a temporal chain member.
///
/// The outer [`VERSION_TEMPORAL`] header mirrors the inner stream's
/// header fields and adds `mode`; the inner stream rides along intact as
/// the payload, so [`unwrap_temporal`] hands back exactly the bytes any
/// pre-temporal decoder understands. For a [`TemporalMode::Delta`]
/// member the inner stream codes the residual field — same shape and
/// scalar type as the snapshot, compressed at the *snapshot's* absolute
/// bound (the composed-bound contract; see `qoz_temporal`).
pub fn wrap_temporal(mode: TemporalMode, inner: &[u8]) -> Result<Vec<u8>> {
    let mut r = ByteReader::new(inner);
    let inner_header = read_header(&mut r)?;
    if inner_header.temporal.is_some() {
        return Err(CodecError::Corrupt("temporal frame cannot nest"));
    }
    let outer = Header {
        temporal: Some(mode),
        ..inner_header
    };
    let mut w = ByteWriter::with_capacity(inner.len() + 32);
    write_header(&mut w, &outer);
    w.put_bytes(inner);
    Ok(w.finish())
}

/// Split a temporal chain member produced by [`wrap_temporal`] into its
/// header (with `temporal` set) and the inner plain stream. Rejects
/// plain streams — callers branch on [`Header::temporal`] via
/// `read_header` first when both kinds are possible.
pub fn unwrap_temporal(blob: &[u8]) -> Result<(Header, &[u8])> {
    let mut r = ByteReader::new(blob);
    let header = read_header(&mut r)?;
    if header.temporal.is_none() {
        return Err(CodecError::Corrupt("not a temporal chain member"));
    }
    let inner = &blob[blob.len() - r.remaining()..];
    Ok((header, inner))
}

/// Byte accounting returned by the streaming compression entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressStats {
    /// Size of the uncompressed input (`len * size_of::<T>()`).
    pub raw_bytes: u64,
    /// Size of the emitted stream.
    pub compressed_bytes: u64,
}

impl CompressStats {
    /// Compression ratio (raw / compressed).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes.max(1) as f64
    }
}

/// The interface every compressor in the workspace implements.
pub trait Compressor<T: Scalar> {
    /// Stable identifier (also stored in stream headers).
    fn id(&self) -> CompressorId;

    /// Compress `data` under `bound`, returning a self-describing blob.
    fn compress(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8>;

    /// Compress `data` under `bound`, staging intermediate buffers in a
    /// reusable [`Scratch`](crate::scratch::Scratch) arena.
    ///
    /// Long-lived callers (pipeline handles, parallel chunk workers)
    /// keep one arena per logical worker and amortize stage-buffer
    /// allocations across calls. The bytes returned are exactly those of
    /// [`Compressor::compress`] — scratch never changes the stream. The
    /// default implementation ignores the arena; backends with heavy
    /// stage buffers (QoZ, SZ3) override it.
    fn compress_with_scratch(
        &self,
        data: &NdArray<T>,
        bound: ErrorBound,
        scratch: &mut crate::scratch::Scratch<T>,
    ) -> Vec<u8> {
        let _ = scratch;
        self.compress(data, bound)
    }

    /// Decompress a blob produced by [`Compressor::compress`].
    fn decompress(&self, blob: &[u8]) -> Result<NdArray<T>>;

    /// Decompress a blob, staging intermediate buffers in a reusable
    /// [`Scratch`](crate::scratch::Scratch) arena.
    ///
    /// The read-side mirror of [`Compressor::compress_with_scratch`]:
    /// long-lived callers keep one arena per logical worker and amortize
    /// stage-buffer allocations (LZSS match lists, Huffman tables,
    /// decoded side streams) across calls. Decoded values are exactly
    /// those of [`Compressor::decompress`] — scratch never changes the
    /// reconstruction. The default implementation ignores the arena;
    /// backends with heavy stage buffers (QoZ, SZ3) override it.
    fn decompress_with_scratch(
        &self,
        blob: &[u8],
        scratch: &mut crate::scratch::Scratch<T>,
    ) -> Result<NdArray<T>> {
        let _ = scratch;
        self.decompress(blob)
    }

    /// Decompress a blob into a caller-provided array, reshaping `out`
    /// to the stream's shape and reusing its allocation when capacity
    /// allows.
    ///
    /// Combined with a warm scratch arena this is the zero-allocation
    /// steady-state decode path: after the first call on a given stream
    /// shape, neither the destination nor any stage buffer reallocates.
    /// Decoded values are exactly those of [`Compressor::decompress`].
    /// The default implementation bridges over
    /// [`Compressor::decompress_with_scratch`].
    fn decompress_into(
        &self,
        blob: &[u8],
        scratch: &mut crate::scratch::Scratch<T>,
        out: &mut NdArray<T>,
    ) -> Result<()> {
        *out = self.decompress_with_scratch(blob, scratch)?;
        Ok(())
    }

    /// Compress `data` under `bound` straight into a byte sink, avoiding
    /// a caller-side intermediate buffer.
    ///
    /// The bytes written are exactly those [`Compressor::compress`] would
    /// return — streaming never changes the format. The default
    /// implementation bridges over the `Vec<u8>` method; backends may
    /// override it to write incrementally.
    fn compress_into(
        &self,
        data: &NdArray<T>,
        bound: ErrorBound,
        sink: &mut dyn std::io::Write,
    ) -> Result<CompressStats> {
        let blob = self.compress(data, bound);
        sink.write_all(&blob)?;
        Ok(CompressStats {
            raw_bytes: (data.len() * T::BYTES) as u64,
            compressed_bytes: blob.len() as u64,
        })
    }

    /// Decompress a stream read from `src` (the counterpart of
    /// [`Compressor::compress_into`]). The default implementation reads
    /// the source to its end and decodes the buffered blob.
    fn decompress_from(&self, src: &mut dyn std::io::Read) -> Result<NdArray<T>> {
        let mut blob = Vec::new();
        src.read_to_end(&mut blob)?;
        self.decompress(&blob)
    }

    /// Display name.
    fn name(&self) -> &'static str {
        self.id().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            compressor: CompressorId::Qoz,
            scalar_tag: f32::TYPE_TAG,
            shape: Shape::d3(10, 20, 30),
            abs_eb: 1e-3,
            temporal: None,
        };
        let mut w = ByteWriter::new();
        write_header(&mut w, &h);
        let buf = w.finish();
        // Plain headers keep the pre-temporal layout: version byte 1,
        // compressor id immediately after.
        assert_eq!(buf[4], VERSION);
        assert_eq!(buf[5], CompressorId::Qoz as u8);
        let mut r = ByteReader::new(&buf);
        assert_eq!(read_header(&mut r).unwrap(), h);
    }

    #[test]
    fn temporal_header_roundtrip() {
        for mode in [TemporalMode::Keyframe, TemporalMode::Delta] {
            let h = Header {
                compressor: CompressorId::Sz3,
                scalar_tag: f64::TYPE_TAG,
                shape: Shape::d2(6, 9),
                abs_eb: 2e-4,
                temporal: Some(mode),
            };
            let mut w = ByteWriter::new();
            write_header(&mut w, &h);
            let buf = w.finish();
            assert_eq!(buf[4], VERSION_TEMPORAL);
            assert_eq!(buf[5], mode as u8);
            let mut r = ByteReader::new(&buf);
            assert_eq!(read_header(&mut r).unwrap(), h);
        }
        // A bad mode byte is corruption, not a version problem.
        let mut w = ByteWriter::new();
        write_header(
            &mut w,
            &Header {
                compressor: CompressorId::Qoz,
                scalar_tag: f32::TYPE_TAG,
                shape: Shape::d1(4),
                abs_eb: 1e-3,
                temporal: Some(TemporalMode::Delta),
            },
        );
        let mut buf = w.finish();
        buf[5] = 77;
        let mut r = ByteReader::new(&buf);
        assert_eq!(
            read_header(&mut r),
            Err(CodecError::Corrupt("unknown temporal mode"))
        );
    }

    #[test]
    fn wrap_unwrap_temporal_preserves_inner_bytes() {
        let data = NdArray::from_vec(Shape::d1(6), vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // NullCodec emits no QZWS header, so build a realistic inner
        // stream by hand: header + opaque payload.
        let inner_header = Header {
            compressor: CompressorId::Sz3,
            scalar_tag: f32::TYPE_TAG,
            shape: data.shape(),
            abs_eb: 1e-2,
            temporal: None,
        };
        let mut w = ByteWriter::new();
        write_header(&mut w, &inner_header);
        w.put_bytes(&[0xAB, 0xCD, 0xEF]);
        let inner = w.finish();

        for mode in [TemporalMode::Keyframe, TemporalMode::Delta] {
            let frame = wrap_temporal(mode, &inner).unwrap();
            let (header, payload) = unwrap_temporal(&frame).unwrap();
            assert_eq!(header.temporal, Some(mode));
            assert_eq!(header.compressor, inner_header.compressor);
            assert_eq!(header.shape, inner_header.shape);
            assert_eq!(header.abs_eb, inner_header.abs_eb);
            assert_eq!(payload, &inner[..], "inner stream must ride along intact");
            // Frames never nest, and plain streams never unwrap.
            assert!(wrap_temporal(mode, &frame).is_err());
        }
        assert_eq!(
            unwrap_temporal(&inner),
            Err(CodecError::Corrupt("not a temporal chain member"))
        );
        assert!(unwrap_temporal(b"junk").is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"NOPE");
        w.put_u8(VERSION);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert!(read_header(&mut r).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let h = Header {
            compressor: CompressorId::Sz3,
            scalar_tag: f64::TYPE_TAG,
            shape: Shape::d1(5),
            abs_eb: 0.5,
            temporal: None,
        };
        let mut w = ByteWriter::new();
        write_header(&mut w, &h);
        let mut buf = w.finish();
        buf[4] = 99; // version byte
        let mut r = ByteReader::new(&buf);
        assert_eq!(
            read_header(&mut r),
            Err(CodecError::BadVersion {
                found: 99,
                supported: VERSION_TEMPORAL
            })
        );
    }

    #[test]
    fn newer_version_distinguished_from_corruption() {
        let h = Header {
            compressor: CompressorId::Qoz,
            scalar_tag: f32::TYPE_TAG,
            shape: Shape::d1(8),
            abs_eb: 1e-2,
            temporal: None,
        };
        let mut w = ByteWriter::new();
        write_header(&mut w, &h);
        let mut buf = w.finish();
        // A future format version must read as "newer", not "corrupt".
        // (Version 2 is the valid temporal format, so "future" starts
        // one past VERSION_TEMPORAL.)
        buf[4] = VERSION_TEMPORAL + 1;
        let mut r = ByteReader::new(&buf);
        let err = read_header(&mut r).unwrap_err();
        assert!(err.is_newer_format(), "{err}");
        // An older (impossible) version 0 is a mismatch but NOT newer.
        buf[4] = 0;
        let mut r = ByteReader::new(&buf);
        let err = read_header(&mut r).unwrap_err();
        assert!(matches!(err, CodecError::BadVersion { .. }));
        assert!(!err.is_newer_format());
        // Plain corruption never reports as a version problem.
        assert!(!CodecError::Corrupt("x").is_newer_format());
        assert!(!CodecError::UnexpectedEof.is_newer_format());
    }

    #[test]
    fn relative_bound_resolves_via_range() {
        let a = NdArray::from_vec(Shape::d1(3), vec![0.0f64, 5.0, 10.0]);
        assert_eq!(ErrorBound::Rel(1e-2).absolute(&a), 0.1);
        assert_eq!(ErrorBound::Abs(0.25).absolute(&a), 0.25);
    }

    #[test]
    fn relative_bound_on_constant_data_positive() {
        let a = NdArray::from_vec(Shape::d1(4), vec![3.0f32; 4]);
        assert!(ErrorBound::Rel(1e-3).absolute(&a) > 0.0);
    }

    #[test]
    fn bound_validity() {
        assert!(ErrorBound::Abs(1e-3).is_valid());
        assert!(ErrorBound::Rel(0.1).is_valid());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1e-3] {
            assert!(!ErrorBound::Abs(bad).is_valid(), "Abs({bad}) accepted");
            assert!(!ErrorBound::Rel(bad).is_valid(), "Rel({bad}) accepted");
        }
        assert_eq!(ErrorBound::Abs(0.25).value(), 0.25);
        assert_eq!(ErrorBound::Rel(1e-2).value(), 1e-2);
    }

    #[test]
    fn compress_stats_ratio() {
        let s = CompressStats {
            raw_bytes: 4000,
            compressed_bytes: 100,
        };
        assert_eq!(s.ratio(), 40.0);
        // A (pathological) empty stream must not divide by zero.
        let z = CompressStats {
            raw_bytes: 8,
            compressed_bytes: 0,
        };
        assert!(z.ratio().is_finite());
    }

    /// A sink that fails after a few bytes: streaming errors must surface
    /// as `CodecError::Io`, not panics.
    struct FailingSink;
    impl std::io::Write for FailingSink {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    struct NullCodec;
    impl Compressor<f32> for NullCodec {
        fn id(&self) -> CompressorId {
            CompressorId::Sz3
        }
        fn compress(&self, data: &NdArray<f32>, _: ErrorBound) -> Vec<u8> {
            data.as_slice().iter().map(|v| *v as u8).collect()
        }
        fn decompress(&self, blob: &[u8]) -> Result<NdArray<f32>> {
            Ok(NdArray::from_vec(
                Shape::d1(blob.len()),
                blob.iter().map(|&b| b as f32).collect(),
            ))
        }
    }

    #[test]
    fn streaming_defaults_bridge_vec_methods() {
        let data = NdArray::from_vec(Shape::d1(5), vec![1.0f32, 2.0, 3.0, 4.0, 5.0]);
        let codec = NullCodec;
        let blob = codec.compress(&data, ErrorBound::Abs(1.0));
        let mut sink = Vec::new();
        let stats = codec
            .compress_into(&data, ErrorBound::Abs(1.0), &mut sink)
            .unwrap();
        assert_eq!(sink, blob, "compress_into must emit identical bytes");
        assert_eq!(stats.raw_bytes, 20);
        assert_eq!(stats.compressed_bytes, blob.len() as u64);

        let from_vec = codec.decompress(&blob).unwrap();
        let mut cursor = std::io::Cursor::new(&blob);
        let from_stream = codec.decompress_from(&mut cursor).unwrap();
        assert_eq!(from_vec.as_slice(), from_stream.as_slice());

        let err = codec
            .compress_into(&data, ErrorBound::Abs(1.0), &mut FailingSink)
            .unwrap_err();
        assert!(matches!(err, CodecError::Io(_)), "{err:?}");
    }

    #[test]
    fn compressor_ids_roundtrip() {
        for id in [
            CompressorId::Sz2,
            CompressorId::Sz3,
            CompressorId::Zfp,
            CompressorId::Mgard,
            CompressorId::Qoz,
        ] {
            assert_eq!(CompressorId::from_u8(id as u8).unwrap(), id);
        }
        assert!(CompressorId::from_u8(0).is_err());
    }
}
