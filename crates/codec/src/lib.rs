//! Lossless coding substrate shared by every compressor in the workspace.
//!
//! The SZ-family pipeline ends with *linear-scale quantization* of
//! prediction residuals followed by entropy coding (Huffman) and a
//! dictionary coder (zstd in the reference implementations). This crate
//! provides from-scratch implementations of each stage:
//!
//! * [`bits`] — MSB-first bit-level writer/reader,
//! * [`byteio`] — framed little-endian byte writer/reader with varints,
//! * [`quantizer`] — the error-bounded linear-scale quantizer (SZ §III),
//! * [`huffman`] — canonical Huffman coding over `u32` symbols,
//! * [`lz`] — an LZSS dictionary coder standing in for zstd,
//! * [`backend`] — the composed `bins → Huffman → LZSS` lossless backend,
//! * [`scratch`] — reusable per-pipeline stage buffers; every stage above
//!   has a `*_with` variant that stages its work in a recycled arena and
//!   produces byte-identical output.
//!
//! All decoders return [`CodecError`] on malformed input instead of
//! panicking; corrupted streams must never crash a consumer.

pub mod backend;
pub mod bits;
pub mod byteio;
pub mod huffman;
pub mod lz;
pub mod quantizer;
pub mod scratch;
pub mod simd;
pub mod stream;

pub use backend::{
    decode_bins, decode_bins_with, encode_bins, encode_bins_with, lossless_compress,
    lossless_compress_with, lossless_decompress, lossless_decompress_with,
};
pub use bits::{BitReader, BitWriter};
pub use byteio::{ByteReader, ByteWriter};
pub use huffman::{HuffmanDecoder, HuffmanEncoder};
pub use quantizer::{LinearQuantizer, Quantized};
pub use scratch::{EntropyScratch, GrowCounter, Scratch};
pub use stream::{CompressStats, Compressor, CompressorId, ErrorBound, Header, TemporalMode};

/// Errors produced while decoding compressed streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the decoder finished.
    UnexpectedEof,
    /// A header/field contained an invalid value.
    Corrupt(&'static str),
    /// An underlying reader/writer failed while streaming a blob
    /// ([`Compressor::compress_into`] / [`Compressor::decompress_from`]).
    Io(String),
    /// The stream was produced by an incompatible format version.
    ///
    /// Carries both the version found in the stream and the highest
    /// version this build supports, so consumers (e.g. the archive
    /// reader) can tell "written by a newer release" apart from plain
    /// corruption.
    BadVersion {
        /// Version byte found in the stream.
        found: u8,
        /// Highest version this build can decode.
        supported: u8,
    },
}

impl CodecError {
    /// `true` when the error is a version mismatch against a *newer*
    /// format than this build supports — i.e. the stream is probably
    /// valid, just unreadable here. Upgrade, don't assume corruption.
    pub fn is_newer_format(&self) -> bool {
        matches!(self, CodecError::BadVersion { found, supported } if found > supported)
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e.to_string())
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt compressed stream: {what}"),
            CodecError::Io(what) => write!(f, "stream I/O error: {what}"),
            CodecError::BadVersion { found, supported } => write!(
                f,
                "unsupported stream version {found} (this build reads <= {supported})"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, CodecError>;
