//! Canonical Huffman coding over `u32` symbols.
//!
//! Quantization bins are entropy-coded with a canonical Huffman code:
//! code lengths are derived from symbol frequencies with the classic
//! two-queue construction, then codes are assigned canonically
//! (shorter-first, then by symbol value) so only the `(symbol, length)`
//! table needs to be serialized. Decoding uses the canonical
//! first-code/offset tables — O(length) per symbol with tiny memory.
//!
//! Degenerate inputs (empty stream, single distinct symbol) are handled
//! explicitly; over-long codes (> [`MAX_CODE_LEN`]) are prevented by
//! iteratively flattening the frequency distribution, which preserves
//! prefix-freeness at a negligible size cost.

use crate::bits::{BitReader, BitWriter};
use crate::byteio::{ByteReader, ByteWriter};
use crate::scratch::GrowCounter;
use crate::{CodecError, Result};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Longest permitted code, in bits.
pub const MAX_CODE_LEN: u32 = 32;

/// Frequency-derived code lengths via the standard Huffman heap algorithm.
fn code_lengths(freqs: &[(u32, u64)]) -> Vec<(u32, u32)> {
    assert!(!freqs.is_empty());
    if freqs.len() == 1 {
        // A lone symbol still needs one bit so the bit count encodes the run
        // length unambiguously.
        return vec![(freqs[0].0, 1)];
    }

    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        // Tie-break on an id to make the construction deterministic.
        id: usize,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(usize),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for min-heap behaviour.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut next_id = freqs.len();
    let mut heap: BinaryHeap<Node> = freqs
        .iter()
        .enumerate()
        .map(|(i, &(_, w))| Node {
            weight: w.max(1),
            id: i,
            kind: NodeKind::Leaf(i),
        })
        .collect();

    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        let w = a.weight + b.weight;
        heap.push(Node {
            weight: w,
            id: next_id,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
        next_id += 1;
    }

    let root = heap.pop().unwrap();
    let mut depths = vec![0u32; freqs.len()];
    // Iterative DFS to avoid recursion limits on skewed trees.
    let mut stack = vec![(root, 0u32)];
    while let Some((node, depth)) = stack.pop() {
        match node.kind {
            NodeKind::Leaf(i) => depths[i] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((*a, depth + 1));
                stack.push((*b, depth + 1));
            }
        }
    }
    freqs
        .iter()
        .zip(depths)
        .map(|(&(sym, _), d)| (sym, d))
        .collect()
}

/// Canonical code assignment: returns `(symbol, length, code)` sorted by
/// `(length, symbol)`.
fn canonical_codes(mut lengths: Vec<(u32, u32)>) -> Vec<(u32, u32, u64)> {
    let mut out = Vec::with_capacity(lengths.len());
    canonical_codes_into(&mut lengths, &mut out);
    out
}

/// [`canonical_codes`] into a recycled buffer: sorts `lengths` in place
/// by `(length, symbol)` and fills `out` (cleared first) with the same
/// `(symbol, length, code)` triples the allocating variant returns.
fn canonical_codes_into(lengths: &mut [(u32, u32)], out: &mut Vec<(u32, u32, u64)>) {
    lengths.sort_by_key(|&(sym, len)| (len, sym));
    out.clear();
    out.reserve(lengths.len());
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for &(sym, len) in lengths.iter() {
        code <<= len - prev_len;
        out.push((sym, len, code));
        code += 1;
        prev_len = len;
    }
}

/// Widest symbol range for which the encoder keeps a directly-indexed
/// table. Quantizer bins cluster near the radius (tens of thousands), so
/// this covers every real workload; pathological sparse alphabets fall
/// back to a hash map.
const DENSE_SYMBOL_SLACK: usize = 1 << 16;

/// Number of interleaved count tables for the split histogram.
const HIST_SPLIT: usize = 4;

/// Inputs small enough that chain-breaking cannot pay for the extra
/// table zeroing/merging, or ranges wide enough that `K` tables would
/// blow the cache, stay on the single-table loop. The split path also
/// honours `QOZ_FORCE_SCALAR=1`, which pins every pre-SIMD hot loop.
fn split_histogram_applies(len: usize, max: usize) -> bool {
    const MIN_SYMBOLS: usize = 1 << 12;
    const MAX_RANGE: usize = 1 << 17;
    len >= MIN_SYMBOLS && max < MAX_RANGE && !qoz_tensor::simd::force_scalar()
}

/// Dense frequency counting: on return `counts[s]` holds the number of
/// occurrences of `s` in `symbols`, for `s <= max` (entries past `max`
/// are scratch garbage). Every symbol must be `<= max`.
///
/// Quantizer bins repeat heavily — long runs of the same code on smooth
/// data — which serializes the naive loop on the store-to-load
/// forwarding latency of a single counter. With `split` the input is
/// counted into `HIST_SPLIT` interleaved tables and merged at the end;
/// pure integer arithmetic, so the merged counts are exactly the naive
/// ones. The encoder picks the variant itself; the parameter is public
/// so the bench harness can time the two head-to-head.
pub fn dense_counts(symbols: &[u32], max: usize, counts: &mut Vec<u64>, split: bool) {
    counts.clear();
    if split {
        counts.resize(HIST_SPLIT * (max + 1), 0);
        let stride = max + 1;
        let mut it = symbols.chunks_exact(HIST_SPLIT);
        for ch in &mut it {
            counts[ch[0] as usize] += 1;
            counts[stride + ch[1] as usize] += 1;
            counts[2 * stride + ch[2] as usize] += 1;
            counts[3 * stride + ch[3] as usize] += 1;
        }
        for &s in it.remainder() {
            counts[s as usize] += 1;
        }
        for i in 0..stride {
            counts[i] += counts[stride + i] + counts[2 * stride + i] + counts[3 * stride + i];
        }
    } else {
        counts.resize(max + 1, 0);
        for &s in symbols {
            counts[s as usize] += 1;
        }
    }
}

/// symbol -> (length, code) lookup, dense where the symbol range allows.
#[derive(Debug, Clone)]
enum SymbolTable {
    /// Indexed directly by symbol value; `length == 0` marks a hole.
    Dense(Vec<(u32, u64)>),
    /// Fallback for sparse, wide alphabets.
    Sparse(HashMap<u32, (u32, u64)>),
}

impl SymbolTable {
    /// Build the lookup table, staging the dense variant in the scratch's
    /// recycled buffer (handed back via [`HuffmanEncoder::recycle`]). The
    /// table contents are identical to a freshly allocated build.
    fn build(coded: &[(u32, u32, u64)], scratch: &mut HuffmanScratch) -> SymbolTable {
        let max = coded.iter().map(|&(s, _, _)| s).max().unwrap_or(0) as usize;
        if max <= coded.len().saturating_mul(16) + DENSE_SYMBOL_SLACK {
            let mut v = std::mem::take(&mut scratch.dense);
            v.clear();
            v.resize(max + 1, (0u32, 0u64));
            for &(sym, len, code) in coded {
                v[sym as usize] = (len, code);
            }
            SymbolTable::Dense(v)
        } else {
            SymbolTable::Sparse(
                coded
                    .iter()
                    .map(|&(sym, len, code)| (sym, (len, code)))
                    .collect(),
            )
        }
    }

    #[inline]
    fn get(&self, sym: u32) -> Option<(u32, u64)> {
        match self {
            SymbolTable::Dense(v) => match v.get(sym as usize) {
                Some(&(len, code)) if len != 0 => Some((len, code)),
                _ => None,
            },
            SymbolTable::Sparse(m) => m.get(&sym).copied(),
        }
    }
}

/// A Huffman encoder built from symbol frequencies.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    table: SymbolTable,
    /// `(symbol, length)` pairs sorted by `(length, symbol)` — the
    /// canonical serialization order.
    entries: Vec<(u32, u32)>,
}

/// Reusable table-construction buffers for the Huffman coder.
///
/// The encode side recycles the dense frequency-count table and — via
/// [`HuffmanEncoder::recycle`] — the dense symbol→code table, both
/// sized by the largest symbol (tens of thousands of entries for
/// quantizer bins). The decode side ([`HuffmanDecoder::decode_with`])
/// recycles the serialized-table staging, the canonical symbol list and
/// the 2^11-entry primary lookup table. Recycling never changes bytes
/// or decoded values; the golden-bitstream tests pin this.
#[derive(Debug, Default)]
pub struct HuffmanScratch {
    counts: Vec<u64>,
    /// Encoder dense symbol→code table, recycled across builds.
    dense: Vec<(u32, u64)>,
    /// Decoder staging: `(symbol, length)` entries read from the stream.
    entries: Vec<(u32, u32)>,
    /// Decoder staging: canonical `(symbol, length, code)` triples.
    coded: Vec<(u32, u32, u64)>,
    /// Decoder canonical symbol list, recycled across streams.
    symbols: Vec<u32>,
    /// Decoder primary lookup table (2^11 entries), recycled.
    primary: Vec<u64>,
    grows: GrowCounter,
}

impl HuffmanScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode-side buffer growth events recorded so far (monotone).
    pub fn grow_events(&self) -> u64 {
        self.grows.get()
    }
}

impl HuffmanEncoder {
    /// Build an encoder from the symbols that will be encoded.
    ///
    /// Returns `None` for an empty input (nothing to encode).
    pub fn from_symbols(symbols: &[u32]) -> Option<Self> {
        Self::from_symbols_with(symbols, &mut HuffmanScratch::new())
    }

    /// [`HuffmanEncoder::from_symbols`] with a recycled counting buffer.
    pub fn from_symbols_with(symbols: &[u32], scratch: &mut HuffmanScratch) -> Option<Self> {
        if symbols.is_empty() {
            return None;
        }
        // Frequency counting: dense array when the symbol range is
        // moderate (the common quantizer-bin case), hash map otherwise.
        // Both paths yield the same symbol-sorted frequency list.
        let max = symbols.iter().copied().max().unwrap() as usize;
        let mut freqs: Vec<(u32, u64)>;
        if max <= symbols.len().saturating_mul(16) + DENSE_SYMBOL_SLACK {
            let counts = &mut scratch.counts;
            dense_counts(
                symbols,
                max,
                counts,
                split_histogram_applies(symbols.len(), max),
            );
            freqs = counts[..max + 1]
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(s, &c)| (s as u32, c))
                .collect();
        } else {
            let mut freq: HashMap<u32, u64> = HashMap::new();
            for &s in symbols {
                *freq.entry(s).or_insert(0) += 1;
            }
            freqs = freq.into_iter().collect();
            freqs.sort_unstable();
        }

        // Flatten the distribution until no code exceeds MAX_CODE_LEN.
        let mut lengths = code_lengths(&freqs);
        while lengths.iter().any(|&(_, l)| l > MAX_CODE_LEN) {
            for f in freqs.iter_mut() {
                f.1 = (f.1 / 2).max(1);
            }
            lengths = code_lengths(&freqs);
        }

        let coded = canonical_codes(lengths);
        let table = SymbolTable::build(&coded, scratch);
        let entries = coded.iter().map(|&(sym, len, _)| (sym, len)).collect();
        Some(HuffmanEncoder { table, entries })
    }

    /// Hand the encoder's dense symbol→code table back to `scratch` so
    /// the next [`HuffmanEncoder::from_symbols_with`] build reuses its
    /// allocation instead of allocating a fresh table.
    pub fn recycle(self, scratch: &mut HuffmanScratch) {
        if let SymbolTable::Dense(v) = self.table {
            scratch.dense = v;
        }
    }

    /// Number of distinct symbols in the code.
    pub fn num_symbols(&self) -> usize {
        self.entries.len()
    }

    /// Code length in bits for `symbol`, if present.
    pub fn length_of(&self, symbol: u32) -> Option<u32> {
        self.table.get(symbol).map(|(l, _)| l)
    }

    /// Exact size in bits of encoding `symbols` with this table (payload
    /// only, excluding the serialized table).
    pub fn payload_bits(&self, symbols: &[u32]) -> Option<usize> {
        let mut total = 0usize;
        for &s in symbols {
            total += self.table.get(s)?.0 as usize;
        }
        Some(total)
    }

    /// Serialize the code table and the encoded payload.
    ///
    /// Layout: varint symbol-count, then per symbol (varint symbol, u8
    /// length), then varint payload symbol count, varint payload byte
    /// length, payload bits.
    pub fn encode(&self, symbols: &[u32], out: &mut ByteWriter) {
        self.encode_with(symbols, &mut Vec::new(), out);
    }

    /// [`HuffmanEncoder::encode`] with a recycled bitstream backing
    /// store: the payload is accumulated in `bit_buf`'s allocation and
    /// the buffer is handed back (holding the payload) for the next call.
    pub fn encode_with(&self, symbols: &[u32], bit_buf: &mut Vec<u8>, out: &mut ByteWriter) {
        out.put_varint(self.entries.len() as u64);
        for &(sym, len) in &self.entries {
            out.put_varint(sym as u64);
            out.put_u8(len as u8);
        }
        let mut bits = BitWriter::from_vec(std::mem::take(bit_buf));
        match &self.table {
            SymbolTable::Dense(v) => {
                for &s in symbols {
                    let (len, code) = v[s as usize];
                    assert!(len != 0, "symbol not present in Huffman table");
                    bits.put_bits(code, len);
                }
            }
            SymbolTable::Sparse(m) => {
                for s in symbols {
                    let &(len, code) = m.get(s).expect("symbol not present in Huffman table");
                    bits.put_bits(code, len);
                }
            }
        }
        let payload = bits.finish();
        out.put_varint(symbols.len() as u64);
        out.put_len_prefixed(&payload);
        *bit_buf = payload;
    }
}

/// Width of the decoder's primary lookup table: codes no longer than
/// this resolve in a single probe. 11 bits covers the vast majority of
/// real quantizer-bin distributions while keeping the table at 2^11
/// entries (16 KiB), cheap to build per stream.
const PRIMARY_BITS: u32 = 11;

/// Decoder over a serialized canonical Huffman stream.
///
/// Short codes (≤ `PRIMARY_BITS`) decode with one probe of a dense
/// prefix table fed by a 64-bit peek; longer codes fall back to the
/// canonical per-length first-code/offset walk (`O(length)` per symbol).
#[derive(Debug)]
pub struct HuffmanDecoder {
    /// Symbols sorted by (length, symbol) — canonical order.
    symbols: Vec<u32>,
    /// For each length 1..=MAX: the first canonical code of that length.
    first_code: [u64; MAX_CODE_LEN as usize + 1],
    /// Number of codes of each length.
    count: [u32; MAX_CODE_LEN as usize + 1],
    /// Index into `symbols` of the first code of each length.
    offset: [u32; MAX_CODE_LEN as usize + 1],
    /// Primary table indexed by the next `PRIMARY_BITS` bits of the
    /// stream; entry = `symbol << 8 | code_length`, 0 = fall back.
    primary: Vec<u64>,
}

impl HuffmanDecoder {
    /// Build from raw `(symbol, length)` entries with fresh table
    /// allocations (the equivalence tests' entry point; the streaming
    /// path goes through [`HuffmanDecoder::decode_with`]).
    #[cfg(test)]
    fn from_entries(entries: Vec<(u32, u32)>) -> Result<Self> {
        let coded = canonical_codes(entries);
        Self::from_coded(&coded, Vec::new(), Vec::new())
    }

    /// Build the decoder tables from canonical `(symbol, length, code)`
    /// triples, filling the recycled `symbols_buf`/`primary_buf` buffers
    /// (cleared and re-initialized; contents end up identical to a fresh
    /// allocation).
    fn from_coded(
        coded: &[(u32, u32, u64)],
        symbols_buf: Vec<u32>,
        primary_buf: Vec<u64>,
    ) -> Result<Self> {
        // Sanity-check the Kraft inequality so corrupt tables are rejected.
        let kraft: f64 = coded.iter().map(|&(_, l, _)| 2f64.powi(-(l as i32))).sum();
        if kraft > 1.0 + 1e-9 {
            return Err(CodecError::Corrupt("Huffman table violates Kraft bound"));
        }
        let mut symbols = symbols_buf;
        symbols.clear();
        symbols.reserve(coded.len());
        let mut first_code = [0u64; MAX_CODE_LEN as usize + 1];
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        let mut offset = [0u32; MAX_CODE_LEN as usize + 1];
        let mut primary = primary_buf;
        primary.clear();
        primary.resize(1 << PRIMARY_BITS, 0u64);
        for (i, &(sym, len, code)) in coded.iter().enumerate() {
            let l = len as usize;
            if count[l] == 0 {
                first_code[l] = code;
                offset[l] = i as u32;
            }
            count[l] += 1;
            symbols.push(sym);
            // Every PRIMARY_BITS-wide bit pattern starting with this code
            // maps to it (prefix-freeness keeps the ranges disjoint). The
            // `code >> len` guard skips near-corrupt tables that slipped
            // past the float Kraft check; they resolve via the fallback,
            // which bounds-checks every step.
            if len <= PRIMARY_BITS && (code >> len) == 0 {
                let fill = PRIMARY_BITS - len;
                let lo = (code << fill) as usize;
                for slot in &mut primary[lo..lo + (1usize << fill)] {
                    *slot = (sym as u64) << 8 | len as u64;
                }
            }
        }
        Ok(HuffmanDecoder {
            symbols,
            first_code,
            count,
            offset,
            primary,
        })
    }

    /// Decode a stream produced by [`HuffmanEncoder::encode`].
    pub fn decode(reader: &mut ByteReader) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        Self::decode_with(reader, &mut HuffmanScratch::new(), &mut out)?;
        Ok(out)
    }

    /// [`HuffmanDecoder::decode`] with caller-provided working memory:
    /// the serialized table, the canonical decoder tables (including the
    /// 2^11-entry primary lookup) and the output staging all live in
    /// recycled buffers. `out` is cleared and filled with exactly the
    /// symbols the allocating path returns.
    pub fn decode_with(
        reader: &mut ByteReader,
        scratch: &mut HuffmanScratch,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        let n_entries = reader.get_varint()? as usize;
        if n_entries == 0 {
            return Err(CodecError::Corrupt("empty Huffman table"));
        }
        if n_entries > (1 << 28) {
            return Err(CodecError::Corrupt("implausible Huffman table size"));
        }
        scratch.grows.check(scratch.entries.capacity(), n_entries);
        scratch.entries.clear();
        for _ in 0..n_entries {
            let sym = reader.get_varint()? as u32;
            let len = reader.get_u8()? as u32;
            if len == 0 || len > MAX_CODE_LEN {
                return Err(CodecError::Corrupt("invalid Huffman code length"));
            }
            scratch.entries.push((sym, len));
        }
        scratch.grows.check(scratch.coded.capacity(), n_entries);
        scratch.grows.check(scratch.symbols.capacity(), n_entries);
        scratch
            .grows
            .check(scratch.primary.capacity(), 1 << PRIMARY_BITS);
        let mut coded = std::mem::take(&mut scratch.coded);
        canonical_codes_into(&mut scratch.entries, &mut coded);
        let decoder = Self::from_coded(
            &coded,
            std::mem::take(&mut scratch.symbols),
            std::mem::take(&mut scratch.primary),
        );
        scratch.coded = coded;
        let decoder = decoder?;
        let n_symbols = reader.get_varint()? as usize;
        let payload = reader.get_len_prefixed()?;
        let mut bits = BitReader::new(payload);
        let cap = n_symbols.min(1 << 28);
        scratch.grows.check(out.capacity(), cap);
        out.clear();
        out.reserve(cap);
        let mut res = Ok(());
        for _ in 0..n_symbols {
            match decoder.decode_one(&mut bits) {
                Ok(sym) => out.push(sym),
                Err(e) => {
                    res = Err(e);
                    break;
                }
            }
        }
        // Hand the decoder tables back even when the payload was corrupt,
        // so repeated failing decodes don't degrade the arena.
        let HuffmanDecoder {
            symbols, primary, ..
        } = decoder;
        scratch.symbols = symbols;
        scratch.primary = primary;
        res
    }

    /// Decode a single symbol from a bit stream.
    #[inline]
    fn decode_one(&self, bits: &mut BitReader) -> Result<u32> {
        // Fast path: one probe resolves any code of length <= PRIMARY_BITS.
        // The peek zero-pads past the end of the buffer, so a hit is only
        // trusted when the stream really holds that many bits; everything
        // else (long codes, EOF, corrupt prefixes) takes the exact slow
        // path below.
        let entry = self.primary[bits.peek_bits(PRIMARY_BITS) as usize];
        let len = (entry & 0xFF) as u32;
        if len != 0 && len as usize <= bits.remaining_bits() {
            bits.consume(len);
            return Ok((entry >> 8) as u32);
        }
        self.decode_one_slow(bits)
    }

    /// Reference bit-by-bit canonical decode (the pre-table
    /// implementation). Kept as the fallback for codes longer than
    /// `PRIMARY_BITS` and for stream tails, and as the oracle the
    /// equivalence tests compare the fast path against.
    fn decode_one_slow(&self, bits: &mut BitReader) -> Result<u32> {
        let mut code = 0u64;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | bits.get_bit()? as u64;
            let n = self.count[len] as u64;
            if n > 0 {
                let first = self.first_code[len];
                if code >= first && code - first < n {
                    let idx = self.offset[len] as usize + (code - first) as usize;
                    return Ok(self.symbols[idx]);
                }
            }
        }
        Err(CodecError::Corrupt("Huffman code too long"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The split-table histogram must produce exactly the naive counts:
    /// run-heavy and mixed inputs, lengths straddling the `MIN_SYMBOLS`
    /// threshold and every `chunks_exact` remainder size.
    #[test]
    fn split_histogram_counts_match_naive() {
        let max = 300usize;
        for extra in [0usize, 1, 2, 3] {
            for base_len in [64usize, (1 << 12) - 2, 1 << 12, 1 << 14] {
                let len = base_len + extra;
                let mut symbols = Vec::with_capacity(len);
                for i in 0..len {
                    // Long runs (the store-forwarding worst case) mixed
                    // with a pseudo-random tail of the bin range.
                    let s = if i % 3 != 0 {
                        (max / 2) as u32
                    } else {
                        ((i * 2654435761) % (max + 1)) as u32
                    };
                    symbols.push(s);
                }
                let mut counts = Vec::new();
                dense_counts(&symbols, max, &mut counts, true);
                let mut naive = Vec::new();
                dense_counts(&symbols, max, &mut naive, false);
                assert_eq!(&counts[..max + 1], &naive[..max + 1], "len={len}");
                let mut byhand = vec![0u64; max + 1];
                for &s in &symbols {
                    byhand[s as usize] += 1;
                }
                assert_eq!(&counts[..max + 1], &byhand[..], "len={len}");
            }
        }
    }

    fn roundtrip(symbols: &[u32]) -> Vec<u32> {
        let enc = HuffmanEncoder::from_symbols(symbols).unwrap();
        let mut w = ByteWriter::new();
        enc.encode(symbols, &mut w);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        HuffmanDecoder::decode(&mut r).unwrap()
    }

    #[test]
    fn roundtrip_simple() {
        let data = vec![1, 2, 2, 3, 3, 3, 3, 7, 7, 1, 2];
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn roundtrip_single_symbol_run() {
        let data = vec![42u32; 1000];
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn roundtrip_single_element() {
        let data = vec![9u32];
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn roundtrip_large_alphabet() {
        let data: Vec<u32> = (0..5000).map(|i| (i * i) % 1013).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 99% one symbol -> far below 32 bits/symbol.
        let mut data = vec![0u32; 9900];
        data.extend((1..101).map(|i| i as u32));
        let enc = HuffmanEncoder::from_symbols(&data).unwrap();
        let mut w = ByteWriter::new();
        enc.encode(&data, &mut w);
        let bytes = w.finish().len();
        assert!(
            bytes < data.len() / 2,
            "expected compression, got {bytes} bytes for {} symbols",
            data.len()
        );
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(HuffmanEncoder::from_symbols(&[]).is_none());
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut data = vec![5u32; 1000];
        data.extend(vec![6u32; 10]);
        data.extend(vec![7u32; 10]);
        let enc = HuffmanEncoder::from_symbols(&data).unwrap();
        assert!(enc.length_of(5).unwrap() <= enc.length_of(6).unwrap());
    }

    #[test]
    fn payload_bits_matches_encoded_len() {
        let data = vec![1, 1, 2, 3, 1, 2, 1];
        let enc = HuffmanEncoder::from_symbols(&data).unwrap();
        let bits = enc.payload_bits(&data).unwrap();
        let mut w = ByteWriter::new();
        enc.encode(&data, &mut w);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        // Skip table.
        let n = r.get_varint().unwrap();
        for _ in 0..n {
            r.get_varint().unwrap();
            r.get_u8().unwrap();
        }
        r.get_varint().unwrap();
        let payload = r.get_len_prefixed().unwrap();
        assert_eq!(payload.len(), bits.div_ceil(8));
    }

    #[test]
    fn truncated_stream_errors() {
        let data = vec![1, 2, 3, 1, 2, 3, 3, 3];
        let enc = HuffmanEncoder::from_symbols(&data).unwrap();
        let mut w = ByteWriter::new();
        enc.encode(&data, &mut w);
        let buf = w.finish();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(
                HuffmanDecoder::decode(&mut r).is_err(),
                "truncation at {cut} not detected"
            );
        }
    }

    /// Deterministic 64-bit mixer for adversarial-stream generation.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// Table-driven fast decode must agree with the bit-by-bit canonical
    /// walk on every code-length mix, especially around the
    /// PRIMARY_BITS boundary and at MAX_CODE_LEN.
    #[test]
    fn fast_decode_matches_slow_on_adversarial_lengths() {
        // Each mix is a (length, how-many) multiset chosen so the Kraft
        // sum is exactly one (verified below in exact integer arithmetic).
        let mixes: [&[(u32, usize)]; 4] = [
            // One code of every length 1..=31, two of length 32.
            &(1..=31)
                .map(|l| (l, 1))
                .chain([(32, 2)])
                .collect::<Vec<_>>(),
            // Chain 1..=10, then the remainder as length-12 codes:
            // straddles the primary/fallback boundary.
            &(1..=10)
                .map(|l| (l, 1))
                .chain([(12, 4)])
                .collect::<Vec<_>>(),
            // Saturated primary table: every code exactly PRIMARY_BITS.
            &[(11, 2048)],
            // Uniform just past the boundary: all codes miss the table.
            &[(13, 8192)],
        ];
        for (mi, mix) in mixes.iter().enumerate() {
            let kraft: u64 = mix
                .iter()
                .map(|&(l, n)| (n as u64) << (MAX_CODE_LEN + 8 - l))
                .sum();
            assert_eq!(kraft, 1u64 << (MAX_CODE_LEN + 8), "mix {mi} not complete");

            // Distinct, non-contiguous symbol values.
            let mut entries = Vec::new();
            for &(len, n) in mix.iter() {
                for _ in 0..n {
                    entries.push((entries.len() as u32 * 7 + 3, len));
                }
            }
            let coded = canonical_codes(entries.clone());

            // Pseudorandom symbol stream encoded with the canonical codes.
            let mut w = BitWriter::new();
            let mut expect = Vec::new();
            for i in 0..4000u64 {
                let &(sym, len, code) =
                    &coded[(splitmix64(i * 31 + mi as u64) % coded.len() as u64) as usize];
                expect.push(sym);
                w.put_bits(code, len);
            }
            let payload = w.finish();

            let dec = HuffmanDecoder::from_entries(entries).unwrap();
            let mut fast = BitReader::new(&payload);
            let mut slow = BitReader::new(&payload);
            for (i, &want) in expect.iter().enumerate() {
                let a = dec.decode_one(&mut fast).unwrap();
                let b = dec.decode_one_slow(&mut slow).unwrap();
                assert_eq!(a, b, "mix {mi}: divergence at symbol {i}");
                assert_eq!(a, want, "mix {mi}: wrong symbol at {i}");
                assert_eq!(
                    fast.remaining_bits(),
                    slow.remaining_bits(),
                    "mix {mi}: cursor divergence at {i}"
                );
            }
        }
    }

    /// Truncation mid-code must error identically through both paths.
    #[test]
    fn fast_decode_eof_matches_slow() {
        let entries: Vec<(u32, u32)> = (1..=10).map(|l| (l * 11, l)).chain([(121, 10)]).collect();
        let coded = canonical_codes(entries.clone());
        let mut w = BitWriter::new();
        for &(_, len, code) in coded.iter() {
            w.put_bits(code, len);
        }
        let payload = w.finish();
        let dec = HuffmanDecoder::from_entries(entries).unwrap();
        for cut in 0..payload.len() {
            let mut fast = BitReader::new(&payload[..cut]);
            let mut slow = BitReader::new(&payload[..cut]);
            loop {
                let a = dec.decode_one(&mut fast);
                let b = dec.decode_one_slow(&mut slow);
                assert_eq!(a, b, "cut {cut}");
                if a.is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn corrupt_zero_length_rejected() {
        let mut w = ByteWriter::new();
        w.put_varint(1); // one entry
        w.put_varint(7); // symbol 7
        w.put_u8(0); // invalid zero length
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert!(HuffmanDecoder::decode(&mut r).is_err());
    }
}
