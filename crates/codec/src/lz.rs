//! LZSS dictionary coding.
//!
//! The SZ reference implementations run zstd over the Huffman-coded
//! quantization stream; residual structure (runs of identical bins, level
//! periodicity) is removed by dictionary matching. This module implements
//! a classic LZSS with hash-chain match finding that fills the same role:
//!
//! * 64 KiB sliding window,
//! * minimum match length 4, maximum 259 (8-bit length field),
//! * MSB-first flag bits: `0` = literal byte, `1` = (distance, length)
//!   back-reference.
//!
//! The format is framed with the uncompressed length so the decoder can
//! pre-allocate and detect truncation.

use crate::bits::{BitReader, BitWriter};
use crate::byteio::{ByteReader, ByteWriter};
use crate::scratch::GrowCounter;
use crate::{CodecError, Result};

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Bounded chain walk; longer chains give better ratios but slow encoding.
const MAX_CHAIN: usize = 64;

#[inline(always)]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Reusable working memory for [`lzss_compress_with`].
///
/// The match finder allocates two large chain tables (`head` is 2^15
/// entries, `prev` 2^16) plus flag/literal/match staging on every call;
/// for repeated compression of similar-sized inputs these dominate the
/// allocator traffic of the lossless stage. A scratch keeps them alive
/// across calls — buffers are cleared, capacity is retained. The decode
/// side ([`lzss_decompress_with`]) reuses the match staging too.
#[derive(Debug, Default)]
pub struct LzScratch {
    head: Vec<usize>,
    prev: Vec<usize>,
    bits: Vec<u8>,
    literals: Vec<u8>,
    matches: Vec<(u16, u8)>,
    grows: GrowCounter,
}

impl LzScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode-side buffer growth events recorded so far (monotone).
    pub fn grow_events(&self) -> u64 {
        self.grows.get()
    }
}

/// Compress `input` with LZSS. The output starts with a varint of the
/// uncompressed length.
pub fn lzss_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    lzss_compress_with(input, &mut LzScratch::new(), &mut out);
    out
}

/// [`lzss_compress`] with caller-provided working memory: clears `out`
/// and fills it with exactly the bytes `lzss_compress` would return.
pub fn lzss_compress_with(input: &[u8], scratch: &mut LzScratch, out: &mut Vec<u8>) {
    let mut w = ByteWriter::from_vec(std::mem::take(out));
    w.reserve(input.len() / 2 + 16);
    w.put_varint(input.len() as u64);
    if input.is_empty() {
        *out = w.finish();
        return;
    }

    let mut bits = BitWriter::from_vec(std::mem::take(&mut scratch.bits));
    scratch.literals.clear();
    scratch.matches.clear();
    let literals = &mut scratch.literals;
    let matches = &mut scratch.matches;

    // head[h] = most recent position with hash h; prev[i % WINDOW] = chain.
    scratch.head.clear();
    scratch.head.resize(HASH_SIZE, usize::MAX);
    scratch.prev.clear();
    scratch.prev.resize(WINDOW, usize::MAX);
    let head = &mut scratch.head;
    let prev = &mut scratch.prev;

    let n = input.len();
    let mut i = 0;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash4(&input[i..]);
            let mut cand = head[h];
            let mut chain = 0;
            let limit = (n - i).min(MAX_MATCH);
            while cand != usize::MAX && i - cand < WINDOW && chain < MAX_CHAIN {
                // Quick reject: check the byte just past the current best.
                if best_len == 0 || input[cand + best_len] == input[i + best_len] {
                    let mut l = 0;
                    while l < limit && input[cand + l] == input[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l == limit {
                            break;
                        }
                    }
                }
                cand = prev[cand % WINDOW];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            bits.put_bit(true);
            matches.push((best_dist as u16, (best_len - MIN_MATCH) as u8));
            // Insert hash entries for every covered position.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i;
            while j < end {
                let h = hash4(&input[j..]);
                prev[j % WINDOW] = head[h];
                head[h] = j;
                j += 1;
            }
            i += best_len;
        } else {
            bits.put_bit(false);
            literals.push(input[i]);
            if i + MIN_MATCH <= n {
                let h = hash4(&input[i..]);
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }

    let payload = bits.finish();
    w.put_len_prefixed(&payload);
    scratch.bits = payload; // recycle the bitstream backing store
    w.put_len_prefixed(literals);
    w.put_varint(matches.len() as u64);
    for &(dist, len) in matches.iter() {
        w.put_u16(dist);
        w.put_u8(len);
    }
    *out = w.finish();
}

/// Decompress a buffer produced by [`lzss_compress`].
pub fn lzss_decompress(input: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    lzss_decompress_with(input, &mut LzScratch::new(), &mut out)?;
    Ok(out)
}

/// [`lzss_decompress`] with caller-provided working memory: the match
/// list is staged in `scratch` and the decoded bytes replace the
/// contents of `out` (cleared, capacity kept). Decoded bytes are
/// identical to the allocating path.
pub fn lzss_decompress_with(
    input: &[u8],
    scratch: &mut LzScratch,
    out: &mut Vec<u8>,
) -> Result<()> {
    let mut r = ByteReader::new(input);
    let total = r.get_varint()? as usize;
    if total > (1 << 34) {
        return Err(CodecError::Corrupt("implausible uncompressed size"));
    }
    out.clear();
    if total == 0 {
        return Ok(());
    }
    let flags = r.get_len_prefixed()?;
    let literals = r.get_len_prefixed()?;
    let n_matches = r.get_varint()? as usize;
    if n_matches > input.len() {
        return Err(CodecError::Corrupt("implausible match count"));
    }
    scratch.grows.check(scratch.matches.capacity(), n_matches);
    scratch.matches.clear();
    for _ in 0..n_matches {
        let dist = r.get_u16()?;
        let len = r.get_u8()?;
        scratch.matches.push((dist, len));
    }

    let mut bits = BitReader::new(flags);
    let mut lit_iter = literals.iter();
    let mut match_iter = scratch.matches.iter();
    scratch.grows.check(out.capacity(), total);
    out.reserve(total);
    while out.len() < total {
        if bits.get_bit()? {
            let &(dist, len) = match_iter
                .next()
                .ok_or(CodecError::Corrupt("missing match"))?;
            let (dist, len) = (dist as usize, len as usize + MIN_MATCH);
            if dist == 0 || dist > out.len() {
                return Err(CodecError::Corrupt("match distance out of range"));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            let &b = lit_iter
                .next()
                .ok_or(CodecError::Corrupt("missing literal"))?;
            out.push(b);
        }
    }
    if out.len() != total {
        return Err(CodecError::Corrupt("length mismatch after decode"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = lzss_compress(data);
        let d = lzss_decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_short() {
        roundtrip(b"abc");
    }

    #[test]
    fn roundtrip_repetitive() {
        let data: Vec<u8> = b"abcdefgh".iter().cycle().take(10_000).copied().collect();
        let c = lzss_compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "repetitive data should compress well, got {} for {}",
            c.len(),
            data.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_incompressible() {
        // Pseudo-random bytes: xorshift.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_run_of_zeros() {
        roundtrip(&vec![0u8; 100_000]);
    }

    #[test]
    fn roundtrip_overlapping_match() {
        // "aaaa..." forces overlapping copies (dist 1, long match).
        let mut data = vec![b'x'];
        data.extend(vec![b'a'; 500]);
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_long_mixed() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(&(i % 97).to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_errors() {
        let data: Vec<u8> = b"hello world hello world hello world".to_vec();
        let c = lzss_compress(&data);
        for cut in 0..c.len() {
            assert!(
                lzss_decompress(&c[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
    }

    #[test]
    fn corrupt_distance_rejected() {
        // Hand-build: total=4, flags = [1 match], no literals, 1 match with
        // distance 9 (> produced output).
        let mut w = ByteWriter::new();
        w.put_varint(4);
        let mut bits = BitWriter::new();
        bits.put_bit(true);
        w.put_len_prefixed(&bits.finish());
        w.put_len_prefixed(&[]);
        w.put_varint(1);
        w.put_u16(9);
        w.put_u8(0);
        let buf = w.finish();
        assert!(lzss_decompress(&buf).is_err());
    }
}
