//! The composed lossless backend: quantization bins → Huffman → LZSS.
//!
//! Every compressor in the workspace funnels its quantization codes and
//! exact-value side streams through these helpers so that the entropy
//! stage is identical across QoZ and the baselines — exactly the setup the
//! paper's comparisons assume (all SZ-family codecs share Huffman+zstd).

use crate::byteio::{ByteReader, ByteWriter};
use crate::huffman::{HuffmanDecoder, HuffmanEncoder};
use crate::lz::{lzss_compress_with, lzss_decompress, lzss_decompress_with};
use crate::scratch::EntropyScratch;
use crate::{CodecError, Result};

/// Marker distinguishing an empty bin stream from a populated one.
const TAG_EMPTY: u8 = 0;
const TAG_DATA: u8 = 1;

/// Entropy-code a stream of quantization bins.
///
/// Produces a self-contained blob: `tag, LZSS(Huffman(bins))`.
pub fn encode_bins(bins: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_bins_with(bins, &mut EntropyScratch::new(), &mut out);
    out
}

/// [`encode_bins`] with caller-provided working memory: clears `out` and
/// fills it with exactly the bytes `encode_bins` would return, staging
/// the Huffman and LZSS passes in the recycled `scratch` buffers.
pub fn encode_bins_with(bins: &[u32], scratch: &mut EntropyScratch, out: &mut Vec<u8>) {
    let mut w = ByteWriter::from_vec(std::mem::take(out));
    w.reserve(bins.len() / 4 + 16);
    match HuffmanEncoder::from_symbols_with(bins, &mut scratch.huffman) {
        None => {
            w.put_u8(TAG_EMPTY);
        }
        Some(enc) => {
            w.put_u8(TAG_DATA);
            let mut huff = ByteWriter::from_vec(std::mem::take(&mut scratch.huff));
            enc.encode_with(bins, &mut scratch.bits, &mut huff);
            enc.recycle(&mut scratch.huffman);
            let huff = huff.into_vec();
            lzss_compress_with(&huff, &mut scratch.lz, &mut scratch.packed);
            scratch.huff = huff;
            w.put_len_prefixed(&scratch.packed);
        }
    }
    *out = w.finish();
}

/// Inverse of [`encode_bins`].
pub fn decode_bins(blob: &[u8]) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    decode_bins_with(blob, &mut EntropyScratch::new(), &mut out)?;
    Ok(out)
}

/// [`decode_bins`] with caller-provided working memory: the LZSS
/// inflate, the Huffman table rebuild and the decoded symbols all stage
/// in recycled buffers. `out` is cleared and filled with exactly the
/// bins the allocating path returns.
pub fn decode_bins_with(
    blob: &[u8],
    scratch: &mut EntropyScratch,
    out: &mut Vec<u32>,
) -> Result<()> {
    let mut r = ByteReader::new(blob);
    match r.get_u8()? {
        TAG_EMPTY => {
            out.clear();
            Ok(())
        }
        TAG_DATA => {
            let packed = r.get_len_prefixed()?;
            // Stage the inflated Huffman stream in the recycled `huff`
            // buffer (shared with the encode side; hand it back even on
            // error so failing decodes don't shrink the arena).
            let mut huff = std::mem::take(&mut scratch.huff);
            let res = lzss_decompress_with(packed, &mut scratch.lz, &mut huff).and_then(|()| {
                let mut hr = ByteReader::new(&huff);
                HuffmanDecoder::decode_with(&mut hr, &mut scratch.huffman, out)
            });
            scratch.huff = huff;
            res
        }
        _ => Err(CodecError::Corrupt("unknown bin stream tag")),
    }
}

/// Losslessly compress an arbitrary byte stream (used for anchor points
/// and exact-value side streams). Currently LZSS; kept behind a function
/// so the backend can be swapped without touching compressors.
pub fn lossless_compress(data: &[u8]) -> Vec<u8> {
    crate::lz::lzss_compress(data)
}

/// [`lossless_compress`] with caller-provided working memory: clears
/// `out` and fills it with exactly the bytes `lossless_compress` would
/// return.
pub fn lossless_compress_with(data: &[u8], scratch: &mut EntropyScratch, out: &mut Vec<u8>) {
    lzss_compress_with(data, &mut scratch.lz, out);
}

/// Inverse of [`lossless_compress`].
pub fn lossless_decompress(data: &[u8]) -> Result<Vec<u8>> {
    lzss_decompress(data)
}

/// [`lossless_decompress`] with caller-provided working memory: `out`
/// is cleared and filled with exactly the bytes the allocating path
/// returns.
pub fn lossless_decompress_with(
    data: &[u8],
    scratch: &mut EntropyScratch,
    out: &mut Vec<u8>,
) -> Result<()> {
    lzss_decompress_with(data, &mut scratch.lz, out)
}

/// Estimate, in bits, the entropy-coded size of a bin stream without
/// actually encoding it. Used by the online tuner where only relative
/// sizes matter: Shannon entropy of the empirical distribution plus a
/// small per-symbol table cost.
pub fn estimate_bins_bits(bins: &[u32]) -> f64 {
    if bins.is_empty() {
        return 0.0;
    }
    let mut freq = std::collections::HashMap::new();
    for &b in bins {
        *freq.entry(b).or_insert(0u64) += 1;
    }
    let n = bins.len() as f64;
    let mut bits = 0.0;
    for &c in freq.values() {
        let p = c as f64 / n;
        bits -= c as f64 * p.log2();
    }
    // Table overhead: ~5 bytes per distinct symbol.
    bits + freq.len() as f64 * 40.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_roundtrip() {
        let bins: Vec<u32> = (0..10_000).map(|i| 32768 + ((i % 7) as u32)).collect();
        let blob = encode_bins(&bins);
        assert_eq!(decode_bins(&blob).unwrap(), bins);
        // Highly concentrated bins compress strongly.
        assert!(blob.len() < bins.len() / 2);
    }

    #[test]
    fn empty_bins_roundtrip() {
        let blob = encode_bins(&[]);
        assert_eq!(decode_bins(&blob).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn byte_stream_roundtrip() {
        let data: Vec<u8> = (0..9999u32).flat_map(|i| (i % 251).to_le_bytes()).collect();
        let packed = lossless_compress(&data);
        assert_eq!(lossless_decompress(&packed).unwrap(), data);
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(decode_bins(&[9, 0, 0]).is_err());
    }

    #[test]
    fn truncated_blob_rejected() {
        let bins = vec![1u32, 2, 3, 1, 2, 3];
        let blob = encode_bins(&bins);
        for cut in 0..blob.len() {
            assert!(decode_bins(&blob[..cut]).is_err() || cut == 0);
        }
    }

    #[test]
    fn entropy_estimate_tracks_actual() {
        // Skewed stream: estimate within 2x of the real encoded size.
        let mut bins = vec![100u32; 20_000];
        for i in 0..2000 {
            bins[i * 10] = 100 + (i % 50) as u32;
        }
        let est_bytes = estimate_bins_bits(&bins) / 8.0;
        let actual = encode_bins(&bins).len() as f64;
        // The estimate is an iid entropy model; LZSS additionally exploits
        // ordering, so allow a generous band — the tuner only needs
        // *relative* comparisons between candidate configurations.
        assert!(
            est_bytes < actual * 8.0 + 64.0 && actual < est_bytes * 8.0 + 64.0,
            "estimate {est_bytes} vs actual {actual}"
        );
    }
}
