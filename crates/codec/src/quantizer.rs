//! Error-bounded linear-scale quantization (the SZ quantizer).
//!
//! Given a prediction `p` for a true value `x` and an absolute error bound
//! `e`, the residual `x - p` is quantized to the nearest multiple of `2e`:
//!
//! ```text
//! q  = round((x - p) / 2e)          (signed integer)
//! x' = p + 2e * q                   (reconstruction, |x - x'| <= e)
//! ```
//!
//! Quantization codes are mapped into a non-negative range centred at
//! `radius` so they can feed straight into the Huffman stage; code `0` is
//! reserved for *unpredictable* points whose residual exceeds the code
//! range (or whose reconstruction fails the bound due to floating-point
//! rounding). Unpredictable values are stored exactly in a side stream,
//! mirroring SZ's design.

use qoz_tensor::Scalar;

/// Outcome of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantized<T: Scalar> {
    /// Huffman-ready code: `0` = unpredictable, otherwise `q + radius`.
    pub code: u32,
    /// The reconstructed value the decompressor will produce.
    pub reconstructed: T,
}

/// Linear-scale quantizer with a fixed absolute error bound.
#[derive(Debug, Clone)]
pub struct LinearQuantizer {
    error_bound: f64,
    /// Half the number of representable codes; code range is
    /// `[-radius+1, radius-1]` mapped to `[1, 2*radius-1]`.
    radius: u32,
}

impl LinearQuantizer {
    /// Default code radius (2^15), matching SZ's 65536-bin default.
    pub const DEFAULT_RADIUS: u32 = 1 << 15;

    /// Create a quantizer for absolute error bound `e > 0`.
    ///
    /// # Panics
    /// Panics if `e` is not finite and positive.
    pub fn new(error_bound: f64) -> Self {
        Self::with_radius(error_bound, Self::DEFAULT_RADIUS)
    }

    /// Create a quantizer with an explicit code radius (power of two not
    /// required; must be at least 2).
    pub fn with_radius(error_bound: f64, radius: u32) -> Self {
        assert!(
            error_bound.is_finite() && error_bound > 0.0,
            "error bound must be finite and positive, got {error_bound}"
        );
        assert!(radius >= 2, "radius must be >= 2");
        LinearQuantizer {
            error_bound,
            radius,
        }
    }

    /// The absolute error bound.
    #[inline(always)]
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    /// The code radius.
    #[inline(always)]
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Number of distinct codes this quantizer can emit (`2*radius`).
    pub fn num_codes(&self) -> u32 {
        self.radius * 2
    }

    /// Quantize `value` against `prediction`.
    ///
    /// Returns the Huffman code and the reconstruction. When the code is
    /// `0` the caller must store `value` exactly (the reconstruction
    /// returned is `value` itself in that case).
    #[inline]
    pub fn quantize<T: Scalar>(&self, value: T, prediction: f64) -> Quantized<T> {
        let v = value.to_f64();
        if !v.is_finite() || !prediction.is_finite() {
            return Quantized {
                code: 0,
                reconstructed: value,
            };
        }
        let diff = v - prediction;
        let scaled = diff / (2.0 * self.error_bound);
        // Out-of-range residual -> unpredictable.
        if scaled.abs() >= (self.radius - 1) as f64 {
            return Quantized {
                code: 0,
                reconstructed: value,
            };
        }
        let q = scaled.round() as i64;
        let recon_f = prediction + 2.0 * self.error_bound * q as f64;
        let recon = T::from_f64(recon_f);
        // Rounding through the narrower T (f32) can break the bound; fall
        // back to exact storage when it does.
        if (recon.to_f64() - v).abs() > self.error_bound {
            return Quantized {
                code: 0,
                reconstructed: value,
            };
        }
        Quantized {
            code: (q + self.radius as i64) as u32,
            reconstructed: recon,
        }
    }

    /// Reconstruct a value from its code (code must be non-zero; code `0`
    /// values come from the exact side stream instead).
    #[inline]
    pub fn reconstruct<T: Scalar>(&self, code: u32, prediction: f64) -> T {
        debug_assert!(code != 0, "code 0 is the unpredictable marker");
        let q = code as i64 - self.radius as i64;
        T::from_f64(prediction + 2.0 * self.error_bound * q as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_within_bound_after_roundtrip() {
        let q = LinearQuantizer::new(0.01);
        for i in 0..1000 {
            let value = (i as f64) * 0.0037 - 1.5;
            let pred = value + ((i % 17) as f64 - 8.0) * 0.002;
            let out = q.quantize(value, pred);
            assert!(
                (out.reconstructed - value).abs() <= 0.01 + 1e-15,
                "value {value} pred {pred} recon {}",
                out.reconstructed
            );
            if out.code != 0 {
                let r: f64 = q.reconstruct(out.code, pred);
                assert_eq!(r, out.reconstructed);
            }
        }
    }

    #[test]
    fn exact_prediction_gives_center_code() {
        let q = LinearQuantizer::new(1e-3);
        let out = q.quantize(5.0f64, 5.0);
        assert_eq!(out.code, LinearQuantizer::DEFAULT_RADIUS);
        assert_eq!(out.reconstructed, 5.0);
    }

    #[test]
    fn large_residual_is_unpredictable() {
        let q = LinearQuantizer::with_radius(1e-6, 256);
        let out = q.quantize(1.0f64, 0.0);
        assert_eq!(out.code, 0);
        assert_eq!(out.reconstructed, 1.0);
    }

    #[test]
    fn nan_value_is_unpredictable() {
        let q = LinearQuantizer::new(1e-3);
        let out = q.quantize(f64::NAN, 0.0);
        assert_eq!(out.code, 0);
    }

    #[test]
    fn non_finite_prediction_is_unpredictable() {
        let q = LinearQuantizer::new(1e-3);
        let out = q.quantize(1.0f64, f64::INFINITY);
        assert_eq!(out.code, 0);
        assert_eq!(out.reconstructed, 1.0);
    }

    #[test]
    fn f32_rounding_never_violates_bound() {
        let q = LinearQuantizer::new(1e-4);
        // Large magnitudes where f32 ULP > residual grid.
        for i in 0..100 {
            let value = 1.0e7f32 + i as f32;
            let pred = value as f64 + 3.3e-5;
            let out = q.quantize(value, pred);
            assert!(
                (out.reconstructed.to_f64() - value.to_f64()).abs() <= 1e-4,
                "bound violated at {value}"
            );
        }
    }

    #[test]
    fn code_symmetry() {
        let q = LinearQuantizer::new(0.5);
        let plus = q.quantize(1.0f64, 0.0);
        let minus = q.quantize(-1.0f64, 0.0);
        let r = LinearQuantizer::DEFAULT_RADIUS as i64;
        assert_eq!(plus.code as i64 - r, -(minus.code as i64 - r));
    }

    #[test]
    #[should_panic]
    fn zero_bound_rejected() {
        let _ = LinearQuantizer::new(0.0);
    }
}
