//! Framed little-endian byte I/O with LEB128 varints.
//!
//! Compressed streams in this workspace are self-describing: headers and
//! section lengths are written through [`ByteWriter`] and read back with
//! [`ByteReader`], which checks bounds on every access so that truncated
//! or corrupted inputs surface as [`CodecError`] values rather than panics.

use crate::{CodecError, Result};
use bytes::BufMut;

/// Growable little-endian byte sink.
///
/// Backed by a plain `Vec<u8>` so scratch arenas can recycle the
/// allocation across calls: [`ByteWriter::from_vec`] adopts a spent
/// buffer (clearing its contents, keeping its capacity) and
/// [`ByteWriter::into_vec`] hands the backing store back without a copy.
#[derive(Default, Debug)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Adopt a recycled buffer: contents are cleared, capacity is kept.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        ByteWriter { buf }
    }

    /// Finish and return the backing buffer (alias of [`finish`] that
    /// reads naturally at recycle sites).
    ///
    /// [`finish`]: ByteWriter::finish
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Append an LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Append a varint length prefix followed by the bytes.
    pub fn put_len_prefixed(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_bytes(bytes);
    }

    /// Finish and return the accumulated buffer (no copy).
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 || (shift == 63 && (byte & 0x7F) > 1) {
                return Err(CodecError::Corrupt("varint overflow"));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Read a varint length prefix, then that many bytes.
    pub fn get_len_prefixed(&mut self) -> Result<&'a [u8]> {
        let n = self.get_varint()? as usize;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(-2.5);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64().unwrap(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_roundtrip_extremes() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        for &v in &values {
            assert_eq!(r.get_varint().unwrap(), v);
        }
    }

    #[test]
    fn varint_sizes() {
        let mut w = ByteWriter::new();
        w.put_varint(127);
        assert_eq!(w.len(), 1);
        let mut w = ByteWriter::new();
        w.put_varint(128);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn len_prefixed_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_len_prefixed(b"hello");
        w.put_len_prefixed(b"");
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_len_prefixed().unwrap(), b"hello");
        assert_eq!(r.get_len_prefixed().unwrap(), b"");
    }

    #[test]
    fn truncated_read_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u32(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn truncated_varint_errors() {
        let mut r = ByteReader::new(&[0x80, 0x80]);
        assert_eq!(r.get_varint(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes would shift past 64 bits.
        let data = [0xFFu8; 11];
        let mut r = ByteReader::new(&data);
        assert!(matches!(r.get_varint(), Err(CodecError::Corrupt(_))));
    }
}
