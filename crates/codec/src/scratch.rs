//! Reusable stage buffers for repeated compression.
//!
//! Every compression pass walks the same stages — working copy of the
//! input, quantization bins, unpredictable/anchor side streams, Huffman
//! bitstream, LZSS dictionary pass — and, before this module existed,
//! allocated every stage buffer from scratch on every call. Scientific
//! time-series workloads compress the *same* variables every timestep,
//! so a [`Scratch`] arena keeps all of those allocations alive across
//! calls: buffers are cleared (length 0) but keep their capacity, and
//! re-grow automatically when a larger or differently-shaped input
//! arrives, so one arena can serve arbitrary inputs safely.
//!
//! Scratch-based entry points are required to be **byte-identical** to
//! their allocating counterparts — the arena changes where bytes are
//! staged, never which bytes are produced. The golden-bitstream tests
//! pin this.

use crate::huffman::HuffmanScratch;
use crate::lz::LzScratch;
use qoz_tensor::Scalar;

/// Counts buffer-growth events inside scratch-based decode internals.
///
/// Every decode `_with` entry point calls [`GrowCounter::check`] with a
/// staging buffer's current capacity and the size about to be staged
/// into it, *before* the buffer is (re)filled. A warm arena that has
/// already decoded a stream of the same shape therefore records zero
/// new events — the property `tests/decompress_reuse.rs` pins for
/// `Pipeline::decompress_into`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GrowCounter(u64);

impl GrowCounter {
    /// Record one growth event if a buffer of `capacity` must expand to
    /// hold `needed` elements.
    #[inline]
    pub fn check(&mut self, capacity: usize, needed: usize) {
        if needed > capacity {
            self.0 += 1;
        }
    }

    /// Record one growth event unconditionally (for buffers whose
    /// capacity the caller observed out of band, e.g. a destination
    /// array reporting that it had to reallocate).
    #[inline]
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Total growth events recorded so far (monotone).
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Working memory for the entropy stage (`bins → Huffman → LZSS`).
#[derive(Debug, Default)]
pub struct EntropyScratch {
    /// Huffman-serialized bins (table + payload), pre-LZSS.
    pub huff: Vec<u8>,
    /// Huffman bitstream backing store.
    pub bits: Vec<u8>,
    /// LZSS output staging for the current section.
    pub packed: Vec<u8>,
    /// Huffman frequency-count table.
    pub huffman: HuffmanScratch,
    /// LZSS hash chains and flag/literal/match staging.
    pub lz: LzScratch,
}

impl EntropyScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A reusable arena of per-stage buffers for one compression pipeline.
///
/// Generic over the element type because the predictor's working copy of
/// the input lives here too. One arena belongs to one caller at a time
/// (a `qoz_api::Pipeline` handle, one parallel worker in `qoz_pario`);
/// it is `Send` but deliberately not shared.
#[derive(Debug, Default)]
pub struct Scratch<T: Scalar> {
    /// The predictor's working copy of the input; holds the
    /// decompressor-identical reconstruction after a pass.
    pub work: Vec<T>,
    /// Quantization codes in traversal order.
    pub bins: Vec<u32>,
    /// Exact-value byte store for unpredictable points.
    pub unpred: Vec<u8>,
    /// Exact-value byte store for anchor points.
    pub anchors: Vec<u8>,
    /// Encoded-section staging (entropy-coded bins, packed side streams).
    pub section: Vec<u8>,
    /// Entropy-stage working memory.
    pub entropy: EntropyScratch,
    /// Growth events recorded against this arena's own buffers by the
    /// decode internals (the entropy scratches keep their own counters;
    /// [`Scratch::decode_grow_events`] sums all of them).
    pub grows: GrowCounter,
}

impl<T: Scalar> Scratch<T> {
    /// Fresh, empty arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear every stage buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.work.clear();
        self.bins.clear();
        self.unpred.clear();
        self.anchors.clear();
        self.section.clear();
    }

    /// Load `data` into the working buffer, recycling its allocation.
    pub fn load_work(&mut self, data: &[T]) {
        self.work.clear();
        self.work.extend_from_slice(data);
    }

    /// Total decode-stage buffer growth events across the whole arena:
    /// this arena's own buffers plus the LZSS and Huffman scratches.
    ///
    /// The count is monotone and survives [`Scratch::clear`] (clearing
    /// keeps capacity, so it is not a growth event). A warm arena
    /// decoding a stream shaped like one it has already seen records no
    /// new events; callers assert zero-allocation steady state by
    /// sampling this before and after a decode.
    pub fn decode_grow_events(&self) -> u64 {
        self.grows.get() + self.entropy.lz.grow_events() + self.entropy.huffman.grow_events()
    }

    /// Current capacities of every arena-owned stage buffer, in a fixed
    /// order (work, bins, unpred, anchors, section, entropy huff/bits/
    /// packed). The compress path has no internal grow counters — its
    /// buffers grow through ordinary `Vec` reallocation — so callers
    /// that want compress-side growth accounting compare this profile
    /// before and after a call: any entry that increased is one growth
    /// event.
    pub fn capacities(&self) -> [usize; 8] {
        [
            self.work.capacity(),
            self.bins.capacity(),
            self.unpred.capacity(),
            self.anchors.capacity(),
            self.section.capacity(),
            self.entropy.huff.capacity(),
            self.entropy.bits.capacity(),
            self.entropy.packed.capacity(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_keep_capacity_across_clear() {
        let mut s = Scratch::<f32>::new();
        s.load_work(&[1.0; 4096]);
        s.bins.extend(std::iter::repeat(7u32).take(4096));
        s.unpred.extend_from_slice(&[1u8; 1024]);
        let (cw, cb, cu) = (s.work.capacity(), s.bins.capacity(), s.unpred.capacity());
        s.clear();
        assert!(s.work.is_empty() && s.bins.is_empty() && s.unpred.is_empty());
        assert_eq!(s.work.capacity(), cw);
        assert_eq!(s.bins.capacity(), cb);
        assert_eq!(s.unpred.capacity(), cu);
    }

    #[test]
    fn work_regrows_for_larger_inputs() {
        let mut s = Scratch::<f64>::new();
        s.load_work(&[0.5; 8]);
        assert_eq!(s.work.len(), 8);
        s.load_work(&[0.25; 999]);
        assert_eq!(s.work.len(), 999);
        assert!(s.work.iter().all(|&v| v == 0.25));
        // Shrinking inputs are exact too: no stale tail.
        s.load_work(&[1.5; 3]);
        assert_eq!(s.work.as_slice(), &[1.5; 3]);
    }
}
