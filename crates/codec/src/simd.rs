//! Vectorized quantizer kernels with runtime dispatch.
//!
//! Block-granular versions of [`LinearQuantizer::quantize`] and
//! [`LinearQuantizer::reconstruct`]: the engine hands over a batch of
//! values and predictions, the kernel returns codes and reconstructions
//! for every lane. The AVX2/SSE2/NEON paths are **bit-identical** to the
//! scalar quantizer — same codes, same reconstructed bits, on every
//! input including NaN/Inf and out-of-range residuals — which is what
//! lets the compressed golden bitstreams stay pinned across dispatch
//! paths.
//!
//! The two places bit-identity needs actual care:
//!
//! * **Rounding.** Rust's `f64::round()` rounds half *away from zero*;
//!   the x86 vector rounding instructions only offer round-to-nearest-
//!   *even*. The kernels emulate away-from-zero exactly: truncate toward
//!   zero, then bump by one where the (exactly representable) fractional
//!   part reaches ±0.5. On aarch64 `FRINTA` natively rounds ties away.
//! * **No FMA, no reciprocal.** The scalar reference divides by `2e` and
//!   rounds the product `2e·q` before adding the prediction; the vector
//!   code uses the same `div`/`mul`+`add` sequence so every intermediate
//!   rounds identically.
//!
//! Non-finite values fold into the range mask for free: ordered vector
//! compares are false on NaN, so NaN/Inf lanes land in the
//! "unpredictable" fixup exactly like the scalar early returns.

use crate::quantizer::LinearQuantizer;
use qoz_tensor::Scalar;

pub use qoz_tensor::simd::{
    cpu_features, detect, force_scalar, selected, supported, supported_paths, KernelPath,
};

/// Maximum lanes per [`quantize_block`]/[`reconstruct_block`] call.
/// Callers chunk longer runs; the kernels keep per-block staging on the
/// stack.
pub const BLOCK: usize = 64;

/// Quantizer constants pre-derived for the block kernels.
///
/// Construction fails (returns `None`) when the code radius is too large
/// for the i32-based vector conversions; callers then stay on the scalar
/// per-point path (which has no such limit).
#[derive(Debug, Clone, Copy)]
pub struct QuantSpec {
    /// The absolute error bound `e`.
    pub e: f64,
    /// `2e`, the quantization bucket width.
    pub two_e: f64,
    /// `(radius - 1) as f64`: residuals at or beyond this are
    /// unpredictable.
    pub limit: f64,
    /// `radius as f64` (exact; the radius is capped at 2^30).
    pub radius_f: f64,
    /// `2 * radius`: codes must be in `1..num_codes`.
    pub num_codes: u32,
}

impl QuantSpec {
    /// Largest radius the vector kernels accept: codes stay well inside
    /// i32 range so the f64→i32 conversions are value-preserving.
    pub const MAX_RADIUS: u32 = 1 << 30;

    /// Derive the block-kernel constants from a quantizer.
    pub fn from_quantizer(q: &LinearQuantizer) -> Option<Self> {
        if q.radius() > Self::MAX_RADIUS {
            return None;
        }
        Some(QuantSpec {
            e: q.error_bound(),
            two_e: 2.0 * q.error_bound(),
            limit: (q.radius() - 1) as f64,
            radius_f: q.radius() as f64,
            num_codes: q.num_codes(),
        })
    }
}

/// Quantize a block of values against their predictions, exactly as
/// per-point [`LinearQuantizer::quantize`] would.
///
/// Outputs, for every lane `k`:
/// * `vals_f[k]` — `vals[k].to_f64()` (the engine reuses it for the
///   prediction-error statistic),
/// * `codes[k]` — the Huffman-ready code, `0` for unpredictable lanes,
/// * `recons[k]` — the reconstruction (the original value when
///   unpredictable).
///
/// All slices must have the same length, at most [`BLOCK`]. An
/// unsupported `path` silently degrades to scalar.
pub fn quantize_block<T: Scalar>(
    path: KernelPath,
    spec: &QuantSpec,
    vals: &[T],
    preds: &[f64],
    vals_f: &mut [f64],
    codes: &mut [u32],
    recons: &mut [T],
) {
    let n = vals.len();
    assert!(n <= BLOCK, "block too large: {n} > {BLOCK}");
    assert!(preds.len() == n && vals_f.len() == n && codes.len() == n && recons.len() == n);
    for k in 0..n {
        vals_f[k] = vals[k].to_f64();
    }
    let mut recons_f = [0f64; BLOCK];
    quantize_core(path, spec, vals_f, preds, codes, &mut recons_f[..n]);
    // Per-lane epilogue: the narrowing bound check through T and the
    // unpredictable fallback, mirroring the scalar quantizer's tail.
    for k in 0..n {
        if codes[k] != 0 {
            let recon = T::from_f64(recons_f[k]);
            if (recon.to_f64() - vals_f[k]).abs() <= spec.e {
                recons[k] = recon;
                continue;
            }
            codes[k] = 0;
        }
        recons[k] = vals[k];
    }
}

/// `true` when every code in the block is a regular in-range code — the
/// precondition for [`reconstruct_block`]. Blocks containing `0`
/// (unpredictable) or out-of-range codes go through the per-point
/// decoder path instead.
pub fn codes_regular(spec: &QuantSpec, codes: &[u32]) -> bool {
    codes.iter().all(|&c| c != 0 && c < spec.num_codes)
}

/// Reconstruct a block of regular codes against their predictions,
/// exactly as per-point [`LinearQuantizer::reconstruct`] would. Callers
/// must have checked [`codes_regular`] first.
pub fn reconstruct_block<T: Scalar>(
    path: KernelPath,
    spec: &QuantSpec,
    codes: &[u32],
    preds: &[f64],
    out: &mut [T],
) {
    let n = codes.len();
    assert!(n <= BLOCK, "block too large: {n} > {BLOCK}");
    assert!(preds.len() == n && out.len() == n);
    let mut recons_f = [0f64; BLOCK];
    reconstruct_core(path, spec, codes, preds, &mut recons_f[..n]);
    for k in 0..n {
        out[k] = T::from_f64(recons_f[k]);
    }
}

/// Core contract shared by every path: for lane `k`, when
/// `|(v-p)/2e| < limit` set `codes[k] = round(scaled) + radius` (always
/// non-zero) and `recons_f[k] = p + 2e·round(scaled)`; otherwise set
/// `codes[k] = 0` (NaN/Inf lanes compare false and land here).
// Safety: each arm checks (statically or dynamically) that the CPU
// supports the feature the callee was compiled for.
#[allow(unsafe_code)]
fn quantize_core(
    path: KernelPath,
    spec: &QuantSpec,
    vals_f: &[f64],
    preds: &[f64],
    codes: &mut [u32],
    recons_f: &mut [f64],
) {
    match path {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 if supported(KernelPath::Avx2) => unsafe {
            x86::quantize_avx2(spec, vals_f, preds, codes, recons_f)
        },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe { x86::quantize_sse2(spec, vals_f, preds, codes, recons_f) },
        #[cfg(target_arch = "aarch64")]
        KernelPath::Neon => unsafe { neon::quantize_neon(spec, vals_f, preds, codes, recons_f) },
        _ => quantize_scalar(spec, vals_f, preds, codes, recons_f),
    }
}

// Safety: as for `quantize_core`.
#[allow(unsafe_code)]
fn reconstruct_core(
    path: KernelPath,
    spec: &QuantSpec,
    codes: &[u32],
    preds: &[f64],
    recons_f: &mut [f64],
) {
    match path {
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx2 if supported(KernelPath::Avx2) => unsafe {
            x86::reconstruct_avx2(spec, codes, preds, recons_f)
        },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Sse2 => unsafe { x86::reconstruct_sse2(spec, codes, preds, recons_f) },
        #[cfg(target_arch = "aarch64")]
        KernelPath::Neon => unsafe { neon::reconstruct_neon(spec, codes, preds, recons_f) },
        _ => reconstruct_scalar(spec, codes, preds, recons_f),
    }
}

/// Scalar realization of the core contract; also handles vector tails.
/// The arithmetic is lifted verbatim from [`LinearQuantizer::quantize`]
/// (with `2e` hoisted, as the quantizer itself recomputes it per point
/// from the same constant operands).
fn quantize_scalar(
    spec: &QuantSpec,
    vals_f: &[f64],
    preds: &[f64],
    codes: &mut [u32],
    recons_f: &mut [f64],
) {
    for k in 0..vals_f.len() {
        let scaled = (vals_f[k] - preds[k]) / spec.two_e;
        if scaled.abs() < spec.limit {
            let r = scaled.round();
            codes[k] = (r + spec.radius_f) as u32;
            recons_f[k] = preds[k] + spec.two_e * r;
        } else {
            codes[k] = 0;
        }
    }
}

fn reconstruct_scalar(spec: &QuantSpec, codes: &[u32], preds: &[f64], recons_f: &mut [f64]) {
    for k in 0..codes.len() {
        let r = codes[k] as f64 - spec.radius_f;
        recons_f[k] = preds[k] + spec.two_e * r;
    }
}

// Vector intrinsics are inherently `unsafe fn`s; the only obligations
// are slice-bounds (checked by the `k + lanes <= n` loop guards) and
// CPU support (checked by the dispatchers above before calling in).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{quantize_scalar, reconstruct_scalar, QuantSpec};
    use core::arch::x86_64::*;

    /// Collapse a 4×f64 compare mask to a 4×i32 mask (each 64-bit lane
    /// is all-ones or all-zero; keep the low half of each).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mask_pd_to_epi32(m: __m256d) -> __m128i {
        let mi = _mm256_castpd_si256(m);
        let lo = _mm256_castsi256_si128(mi);
        let hi = _mm256_extracti128_si256::<1>(mi);
        _mm_castps_si128(_mm_shuffle_ps::<0b10_00_10_00>(
            _mm_castsi128_ps(lo),
            _mm_castsi128_ps(hi),
        ))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quantize_avx2(
        spec: &QuantSpec,
        vals_f: &[f64],
        preds: &[f64],
        codes: &mut [u32],
        recons_f: &mut [f64],
    ) {
        let n = vals_f.len();
        let two_e = _mm256_set1_pd(spec.two_e);
        let limit = _mm256_set1_pd(spec.limit);
        let radius = _mm256_set1_pd(spec.radius_f);
        let half = _mm256_set1_pd(0.5);
        let neg_half = _mm256_set1_pd(-0.5);
        let one = _mm256_set1_pd(1.0);
        let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(i64::MAX));
        let mut k = 0usize;
        while k + 4 <= n {
            let v = _mm256_loadu_pd(vals_f.as_ptr().add(k));
            let p = _mm256_loadu_pd(preds.as_ptr().add(k));
            let scaled = _mm256_div_pd(_mm256_sub_pd(v, p), two_e);
            let in_range = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_and_pd(scaled, abs_mask), limit);
            // round() = half away from zero: trunc, then bump where the
            // exact fractional part reaches ±0.5.
            let t = _mm256_round_pd::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(scaled);
            let frac = _mm256_sub_pd(scaled, t);
            let bump_pos = _mm256_and_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(frac, half), one);
            let bump_neg = _mm256_and_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(frac, neg_half), one);
            let r = _mm256_sub_pd(_mm256_add_pd(t, bump_pos), bump_neg);
            // code = r + radius is an exact small integer; the f64→i32
            // conversion is value-preserving on in-range lanes and the
            // mask zeroes the rest.
            let code = _mm256_cvtpd_epi32(_mm256_add_pd(r, radius));
            let masked = _mm_and_si128(code, mask_pd_to_epi32(in_range));
            _mm_storeu_si128(codes.as_mut_ptr().add(k) as *mut __m128i, masked);
            // mul then add — no FMA; the scalar reference rounds 2e·q
            // before the sum.
            let rec = _mm256_add_pd(p, _mm256_mul_pd(two_e, r));
            _mm256_storeu_pd(recons_f.as_mut_ptr().add(k), rec);
            k += 4;
        }
        quantize_scalar(
            spec,
            &vals_f[k..],
            &preds[k..],
            &mut codes[k..],
            &mut recons_f[k..],
        );
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn quantize_sse2(
        spec: &QuantSpec,
        vals_f: &[f64],
        preds: &[f64],
        codes: &mut [u32],
        recons_f: &mut [f64],
    ) {
        let n = vals_f.len();
        let two_e = _mm_set1_pd(spec.two_e);
        let limit = _mm_set1_pd(spec.limit);
        let radius = _mm_set1_pd(spec.radius_f);
        let half = _mm_set1_pd(0.5);
        let neg_half = _mm_set1_pd(-0.5);
        let one = _mm_set1_pd(1.0);
        let abs_mask = _mm_castsi128_pd(_mm_set1_epi64x(i64::MAX));
        let mut k = 0usize;
        while k + 2 <= n {
            let v = _mm_loadu_pd(vals_f.as_ptr().add(k));
            let p = _mm_loadu_pd(preds.as_ptr().add(k));
            let scaled = _mm_div_pd(_mm_sub_pd(v, p), two_e);
            let in_range = _mm_cmplt_pd(_mm_and_pd(scaled, abs_mask), limit);
            // SSE2 has no ROUNDPD; truncate through i32 instead. In-range
            // lanes satisfy |scaled| < 2^30 so the trip is exact;
            // out-of-range lanes produce garbage the mask discards.
            let t = _mm_cvtepi32_pd(_mm_cvttpd_epi32(scaled));
            let frac = _mm_sub_pd(scaled, t);
            let bump_pos = _mm_and_pd(_mm_cmpge_pd(frac, half), one);
            let bump_neg = _mm_and_pd(_mm_cmple_pd(frac, neg_half), one);
            let r = _mm_sub_pd(_mm_add_pd(t, bump_pos), bump_neg);
            let code = _mm_cvtpd_epi32(_mm_add_pd(r, radius));
            // Low 32 bits of each 64-bit mask lane → i32 mask lanes 0,1.
            let m32 = _mm_shuffle_epi32::<0b11_11_10_00>(_mm_castpd_si128(in_range));
            let masked = _mm_and_si128(code, m32);
            _mm_storel_epi64(codes.as_mut_ptr().add(k) as *mut __m128i, masked);
            let rec = _mm_add_pd(p, _mm_mul_pd(two_e, r));
            _mm_storeu_pd(recons_f.as_mut_ptr().add(k), rec);
            k += 2;
        }
        quantize_scalar(
            spec,
            &vals_f[k..],
            &preds[k..],
            &mut codes[k..],
            &mut recons_f[k..],
        );
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn reconstruct_avx2(
        spec: &QuantSpec,
        codes: &[u32],
        preds: &[f64],
        recons_f: &mut [f64],
    ) {
        let n = codes.len();
        let two_e = _mm256_set1_pd(spec.two_e);
        let radius = _mm256_set1_pd(spec.radius_f);
        let mut k = 0usize;
        while k + 4 <= n {
            // Regular codes are < 2^31, so the u32s convert exactly as
            // non-negative i32s.
            let c = _mm_loadu_si128(codes.as_ptr().add(k) as *const __m128i);
            let r = _mm256_sub_pd(_mm256_cvtepi32_pd(c), radius);
            let p = _mm256_loadu_pd(preds.as_ptr().add(k));
            let rec = _mm256_add_pd(p, _mm256_mul_pd(two_e, r));
            _mm256_storeu_pd(recons_f.as_mut_ptr().add(k), rec);
            k += 4;
        }
        reconstruct_scalar(spec, &codes[k..], &preds[k..], &mut recons_f[k..]);
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn reconstruct_sse2(
        spec: &QuantSpec,
        codes: &[u32],
        preds: &[f64],
        recons_f: &mut [f64],
    ) {
        let n = codes.len();
        let two_e = _mm_set1_pd(spec.two_e);
        let radius = _mm_set1_pd(spec.radius_f);
        let mut k = 0usize;
        while k + 2 <= n {
            let c = _mm_loadl_epi64(codes.as_ptr().add(k) as *const __m128i);
            let r = _mm_sub_pd(_mm_cvtepi32_pd(c), radius);
            let p = _mm_loadu_pd(preds.as_ptr().add(k));
            let rec = _mm_add_pd(p, _mm_mul_pd(two_e, r));
            _mm_storeu_pd(recons_f.as_mut_ptr().add(k), rec);
            k += 2;
        }
        reconstruct_scalar(spec, &codes[k..], &preds[k..], &mut recons_f[k..]);
    }
}

// See the `x86` module note on `unsafe`; NEON is baseline on aarch64.
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon {
    use super::{quantize_scalar, reconstruct_scalar, QuantSpec};
    use core::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn quantize_neon(
        spec: &QuantSpec,
        vals_f: &[f64],
        preds: &[f64],
        codes: &mut [u32],
        recons_f: &mut [f64],
    ) {
        let n = vals_f.len();
        let two_e = vdupq_n_f64(spec.two_e);
        let limit = vdupq_n_f64(spec.limit);
        let radius = vdupq_n_f64(spec.radius_f);
        let mut k = 0usize;
        while k + 2 <= n {
            let v = vld1q_f64(vals_f.as_ptr().add(k));
            let p = vld1q_f64(preds.as_ptr().add(k));
            let scaled = vdivq_f64(vsubq_f64(v, p), two_e);
            let in_range = vcltq_f64(vabsq_f64(scaled), limit);
            // FRINTA rounds ties away from zero — exactly f64::round().
            let r = vrndaq_f64(scaled);
            let code64 = vcvtq_s64_f64(vaddq_f64(r, radius));
            let code32 = vreinterpret_u32_s32(vmovn_s64(code64));
            let masked = vand_u32(code32, vmovn_u64(in_range));
            vst1_u32(codes.as_mut_ptr().add(k), masked);
            let rec = vaddq_f64(p, vmulq_f64(two_e, r));
            vst1q_f64(recons_f.as_mut_ptr().add(k), rec);
            k += 2;
        }
        quantize_scalar(
            spec,
            &vals_f[k..],
            &preds[k..],
            &mut codes[k..],
            &mut recons_f[k..],
        );
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn reconstruct_neon(
        spec: &QuantSpec,
        codes: &[u32],
        preds: &[f64],
        recons_f: &mut [f64],
    ) {
        let n = codes.len();
        let two_e = vdupq_n_f64(spec.two_e);
        let radius = vdupq_n_f64(spec.radius_f);
        let mut k = 0usize;
        while k + 2 <= n {
            let c = vld1_u32(codes.as_ptr().add(k));
            let cf = vcvtq_f64_u64(vmovl_u32(c));
            let r = vsubq_f64(cf, radius);
            let p = vld1q_f64(preds.as_ptr().add(k));
            let rec = vaddq_f64(p, vmulq_f64(two_e, r));
            vst1q_f64(recons_f.as_mut_ptr().add(k), rec);
            k += 2;
        }
        reconstruct_scalar(spec, &codes[k..], &preds[k..], &mut recons_f[k..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::LinearQuantizer;

    fn check_block_f64(path: KernelPath, q: &LinearQuantizer, vals: &[f64], preds: &[f64]) {
        let spec = QuantSpec::from_quantizer(q).unwrap();
        let n = vals.len();
        let mut vals_f = vec![0f64; n];
        let mut codes = vec![0u32; n];
        let mut recons = vec![0f64; n];
        quantize_block(
            path,
            &spec,
            vals,
            preds,
            &mut vals_f,
            &mut codes,
            &mut recons,
        );
        for k in 0..n {
            let want = q.quantize(vals[k], preds[k]);
            assert_eq!(codes[k], want.code, "{path} lane {k}: code mismatch");
            assert_eq!(
                recons[k].to_bits(),
                want.reconstructed.to_bits(),
                "{path} lane {k}: recon mismatch"
            );
        }
        if codes_regular(&spec, &codes) {
            let mut out = vec![0f64; n];
            reconstruct_block(path, &spec, &codes, preds, &mut out);
            for k in 0..n {
                let want: f64 = q.reconstruct(codes[k], preds[k]);
                assert_eq!(out[k].to_bits(), want.to_bits(), "{path} lane {k}");
            }
        }
    }

    #[test]
    fn block_matches_scalar_quantizer_all_paths() {
        let q = LinearQuantizer::new(1e-3);
        // Lengths straddle the lane widths to exercise odd tails.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 64] {
            let vals: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
            let preds: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.37).sin() * 3.0 + 1e-4)
                .collect();
            for path in supported_paths() {
                check_block_f64(path, &q, &vals, &preds);
            }
        }
    }

    #[test]
    fn block_handles_specials_like_scalar() {
        let q = LinearQuantizer::with_radius(1e-6, 128);
        let vals = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            1.0,
            1e300,
            -1e300,
            5e-7,
            -5e-7,
            0.5f64.next_down() * 2e-6,
            1e-6,
        ];
        let preds = [
            0.0,
            0.0,
            0.0,
            f64::NAN,
            f64::INFINITY,
            1.0,
            -1e300,
            1e300,
            0.0,
            0.0,
            0.0,
            0.0,
        ];
        for path in supported_paths() {
            check_block_f64(path, &q, &vals, &preds);
        }
    }

    #[test]
    fn half_tie_rounds_away_from_zero_on_all_paths() {
        // scaled lands exactly on ±0.5 and on the nextafter(0.5) edge.
        let q = LinearQuantizer::new(0.5); // two_e = 1.0, scaled = v - p
        let vals = [
            0.5,
            -0.5,
            1.5,
            -1.5,
            2.5,
            0.49999999999999994,
            -0.49999999999999994,
            3.5,
        ];
        let preds = [0.0; 8];
        for path in supported_paths() {
            check_block_f64(path, &q, &vals, &preds);
        }
    }

    #[test]
    fn f32_narrowing_check_matches_scalar() {
        let q = LinearQuantizer::new(1e-4);
        let spec = QuantSpec::from_quantizer(&q).unwrap();
        // Large magnitudes where the f32 ULP exceeds the residual grid:
        // the narrowing bound check must reject exactly the same lanes.
        let vals: Vec<f32> = (0..32).map(|i| 1.0e7f32 + i as f32).collect();
        let preds: Vec<f64> = vals.iter().map(|&v| v as f64 + 3.3e-5).collect();
        let n = vals.len();
        for path in supported_paths() {
            let mut vals_f = vec![0f64; n];
            let mut codes = vec![0u32; n];
            let mut recons = vec![0f32; n];
            quantize_block(
                path,
                &spec,
                &vals,
                &preds,
                &mut vals_f,
                &mut codes,
                &mut recons,
            );
            for k in 0..n {
                let want = q.quantize(vals[k], preds[k]);
                assert_eq!(codes[k], want.code, "{path} lane {k}");
                assert_eq!(
                    recons[k].to_bits(),
                    want.reconstructed.to_bits(),
                    "{path} lane {k}"
                );
            }
        }
    }

    #[test]
    fn oversized_radius_rejected() {
        let q = LinearQuantizer::with_radius(1e-3, (1 << 30) + 1);
        assert!(QuantSpec::from_quantizer(&q).is_none());
        assert!(QuantSpec::from_quantizer(&LinearQuantizer::new(1e-3)).is_some());
    }

    #[test]
    fn codes_regular_flags_zero_and_out_of_range() {
        let q = LinearQuantizer::with_radius(1.0, 16);
        let spec = QuantSpec::from_quantizer(&q).unwrap();
        assert!(codes_regular(&spec, &[1, 16, 31]));
        assert!(!codes_regular(&spec, &[1, 0, 31]));
        assert!(!codes_regular(&spec, &[1, 32]));
    }
}
