//! Fault-injection suite: drive the real daemon through the failures
//! it claims to survive.
//!
//! Every test starts an actual [`Server`] (in-process, Unix socket or
//! TCP) and talks to it over the real wire protocol. The invariants
//! under test are the robustness contract of the crate:
//!
//! 1. the daemon never exits on client-induced failure,
//! 2. it never returns corrupt payloads — damaged inputs earn typed
//!    errors (or explicit zero-filled degraded reads),
//! 3. a killed-and-restarted daemon serves its first repeat request
//!    from the persisted plan, byte-identical to the cold path.

use qoz_codec::ErrorBound;
use qoz_serve::protocol::{kind, read_frame, write_frame, FrameError, MAX_PAYLOAD};
use qoz_serve::{
    Client, ClientConfig, Endpoint, ErrorCode, Request, Response, Server, ServerConfig,
};
use qoz_tensor::{NdArray, Shape};
use std::io::Write;
use std::time::Duration;

fn unix_ep(tag: &str) -> Endpoint {
    Endpoint::Unix(
        std::env::temp_dir()
            .join(format!("qoz_fi_{tag}_{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned(),
    )
}

fn quick_client(ep: Endpoint) -> Client {
    let mut config = ClientConfig::new(ep);
    config.base_backoff = Duration::from_millis(1);
    Client::with_config(config)
}

fn test_field() -> NdArray<f32> {
    NdArray::from_fn(Shape::d2(48, 40), |i| {
        ((i[0] as f32) * 0.21).sin() + ((i[1] as f32) * 0.13).cos()
    })
}

fn compress_request(data: &NdArray<f32>, budget_ms: u64) -> Request {
    let raw: Vec<u8> = data
        .as_slice()
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    Request::Compress {
        name: "field".into(),
        scalar_tag: 0x32,
        dims: data.shape().dims().to_vec(),
        bound: ErrorBound::Abs(1e-3),
        budget_ms,
        raw,
    }
}

/// Local (no daemon) reference blob for byte-identity assertions.
fn local_blob(data: &NdArray<f32>) -> Vec<u8> {
    qoz_api::Session::builder()
        .backend(qoz_api::BackendId::Qoz)
        .bound(ErrorBound::Abs(1e-3))
        .build()
        .unwrap()
        .compress(data)
        .unwrap()
        .blob
}

#[test]
fn round_trip_is_byte_identical_to_local_over_unix_and_tcp() {
    let data = test_field();
    let reference = local_blob(&data);
    for ep in [unix_ep("rt"), Endpoint::Tcp("127.0.0.1:0".into())] {
        let server = Server::start(ServerConfig::new(ep)).unwrap();
        let mut client = quick_client(server.endpoint());
        client.ping().unwrap();

        let (outcome, blob) = client
            .compress("field", &data, ErrorBound::Abs(1e-3), 0)
            .unwrap();
        assert_eq!(outcome, 1, "first call cold-tunes");
        assert_eq!(blob, reference, "served bytes == local bytes");

        let (outcome, warm) = client
            .compress("field", &data, ErrorBound::Abs(1e-3), 0)
            .unwrap();
        assert_eq!(outcome, 2, "second call replays warm");
        assert_eq!(warm, reference, "warm bytes still identical");

        let recon: NdArray<f32> = client.decompress(&blob, 0).unwrap();
        assert_eq!(recon.shape().dims(), data.shape().dims());
        assert!(data.max_abs_diff(&recon) <= 1e-3 * (1.0 + 1e-9));

        let stats = client.stats().unwrap();
        assert!(stats.served >= 4);
        assert_eq!(stats.cold_tunes, 1);
        assert!(stats.warm_hits >= 1);

        // The wire snapshot carries the full telemetry extension:
        // per-kind request counters, plan-cache outcomes, and latency /
        // payload histograms whose counts agree with the traffic.
        let t = stats.telemetry.expect("server sends telemetry extension");
        assert_eq!(
            t.counter("qoz_requests_total", &[("kind", "compress")]),
            Some(2)
        );
        assert_eq!(
            t.counter("qoz_plan_cache_total", &[("outcome", "cold_tuned")]),
            Some(1)
        );
        assert_eq!(
            t.counter("qoz_plan_cache_total", &[("outcome", "warm_hit")]),
            Some(1)
        );
        let lat = t
            .histogram("qoz_request_latency_ns", &[("kind", "compress")])
            .expect("compress latency histogram exists");
        assert_eq!(lat.count, 2);
        assert!(lat.sum > 0, "compress latency sums to nonzero ns");
        let pay = t
            .histogram("qoz_request_payload_bytes", &[("kind", "compress")])
            .expect("compress payload histogram exists");
        assert_eq!(pay.count, 2);
        server.shutdown().unwrap();
    }
}

#[test]
fn overload_sheds_with_typed_error_and_daemon_survives() {
    let mut config = ServerConfig::new(unix_ep("overload"));
    config.workers = 1;
    config.queue_depth = 1;
    config.worker_delay = Duration::from_millis(150);
    let server = Server::start(config).unwrap();
    let ep = server.endpoint();

    let data = test_field();
    let req = compress_request(&data, 0);
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let ep = ep.clone();
            let req = req.clone();
            std::thread::spawn(move || quick_client(ep).call_once(&req))
        })
        .collect();
    let mut overloaded = 0;
    let mut ok = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(Response::Compressed { .. }) => ok += 1,
            Ok(Response::Error {
                code: ErrorCode::Overloaded,
                ..
            }) => overloaded += 1,
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert!(ok >= 1, "some requests are served");
    assert!(overloaded >= 1, "excess load is shed, not buffered");

    // The daemon shed load; it did not die or wedge.
    let mut client = quick_client(ep);
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.shed >= overloaded as u64);
    // Sheds land on their own dedicated error counter.
    let t = stats.telemetry.unwrap();
    assert!(
        t.counter("qoz_errors_total", &[("code", "overloaded")])
            .unwrap_or(0)
            >= overloaded as u64
    );
    server.shutdown().unwrap();
}

#[test]
fn deadline_exceeded_is_typed_and_counted() {
    let mut config = ServerConfig::new(unix_ep("deadline"));
    config.worker_delay = Duration::from_millis(50);
    let server = Server::start(config).unwrap();
    let mut client = quick_client(server.endpoint());

    let data = test_field();
    match client.compress("field", &data, ErrorBound::Abs(1e-3), 1) {
        Err(qoz_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::DeadlineExceeded)
        }
        other => panic!("wanted DeadlineExceeded, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.deadline_missed >= 1);
    // Deadline misses land on their own dedicated error counter.
    assert!(
        stats
            .telemetry
            .unwrap()
            .counter("qoz_errors_total", &[("code", "deadline_exceeded")])
            .unwrap_or(0)
            >= 1
    );
    // A request with a sane budget still succeeds afterwards.
    client
        .compress("field", &data, ErrorBound::Abs(1e-3), 30_000)
        .unwrap();
    server.shutdown().unwrap();
}

#[test]
fn corrupt_frames_earn_typed_errors_and_daemon_stays_up() {
    let server = Server::start(ServerConfig::new(unix_ep("corrupt"))).unwrap();
    let ep = server.endpoint();

    // (a) garbage magic: answered with BadFrame, connection dropped.
    let mut chan = ep.connect().unwrap();
    chan.write_all(b"XXXXXXXXXXXXXXXXXXXXX").unwrap();
    let (k, payload) = read_frame(&mut chan, MAX_PAYLOAD).unwrap();
    match Response::decode(k, &payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("wanted BadFrame, got {other:?}"),
    }

    // (b) checksum flip: also BadFrame.
    let mut chan = ep.connect().unwrap();
    let mut wire = Vec::new();
    write_frame(&mut wire, kind::PING, &[]).unwrap();
    let last = wire.len() - 1;
    wire[last] ^= 0xFF;
    chan.write_all(&wire).unwrap();
    let (k, payload) = read_frame(&mut chan, MAX_PAYLOAD).unwrap();
    match Response::decode(k, &payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("wanted BadFrame, got {other:?}"),
    }

    // (c) oversized declared length: rejected before allocation.
    let mut chan = ep.connect().unwrap();
    let mut head = Vec::new();
    head.extend_from_slice(b"QZRP");
    head.push(kind::DECOMPRESS);
    head.extend_from_slice(&u32::MAX.to_le_bytes());
    chan.write_all(&head).unwrap();
    let (k, payload) = read_frame(&mut chan, MAX_PAYLOAD).unwrap();
    match Response::decode(k, &payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("wanted BadFrame, got {other:?}"),
    }

    // (d) sound frame, structurally-lying payload: BadRequest, and the
    // *same connection* keeps working.
    let mut chan = ep.connect().unwrap();
    let garbage: Vec<u8> = (0..24).map(|i| (i * 31 + 7) as u8).collect();
    write_frame(&mut chan, kind::COMPRESS, &garbage).unwrap();
    let (k, payload) = read_frame(&mut chan, MAX_PAYLOAD).unwrap();
    match Response::decode(k, &payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("wanted BadRequest, got {other:?}"),
    }
    write_frame(&mut chan, kind::PING, &[]).unwrap();
    let (k, payload) = read_frame(&mut chan, MAX_PAYLOAD).unwrap();
    assert_eq!(Response::decode(k, &payload).unwrap(), Response::Pong);

    // (e) mid-frame disconnect: no response owed; the daemon survives.
    let mut chan = ep.connect().unwrap();
    chan.write_all(&[b'Q', b'Z', b'R', b'P', kind::PING])
        .unwrap();
    drop(chan);

    // After all of the above, the daemon is healthy.
    let mut client = quick_client(ep);
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.bad_frames >= 4);
    // The legacy aggregate splits into dedicated counters: (a)-(c) are
    // frame-level damage, (d) is a structurally-lying payload.
    let t = stats.telemetry.unwrap();
    assert!(
        t.counter("qoz_errors_total", &[("code", "bad_frame")])
            .unwrap_or(0)
            >= 3
    );
    assert!(
        t.counter("qoz_errors_total", &[("code", "bad_request")])
            .unwrap_or(0)
            >= 1
    );
    server.shutdown().unwrap();
}

#[test]
fn draining_daemon_rejects_new_work_with_shutting_down() {
    let server = Server::start(ServerConfig::new(unix_ep("drain"))).unwrap();
    let mut client = quick_client(server.endpoint());
    client.ping().unwrap();
    server.begin_shutdown();
    let data = test_field();
    match client.call_once(&compress_request(&data, 0)).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("wanted ShuttingDown, got {other:?}"),
    }
    // Control plane still answers while draining.
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.shutdown_rejects >= 1);
    assert!(
        stats
            .telemetry
            .unwrap()
            .counter("qoz_errors_total", &[("code", "shutting_down")])
            .unwrap_or(0)
            >= 1
    );
    server.shutdown().unwrap();
}

#[test]
fn kill_and_restart_serves_first_repeat_request_warm_from_persisted_plans() {
    let plan_path = std::env::temp_dir().join(format!("qoz_fi_plans_{}.qzpl", std::process::id()));
    let _ = std::fs::remove_file(&plan_path);
    let data = test_field();
    let reference = local_blob(&data);

    // Generation 1: cold tune, then graceful shutdown persists plans.
    let mut config = ServerConfig::new(unix_ep("warm1"));
    config.plan_path = Some(plan_path.clone());
    let server = Server::start(config).unwrap();
    let mut client = quick_client(server.endpoint());
    let (outcome, blob) = client
        .compress("field", &data, ErrorBound::Abs(1e-3), 0)
        .unwrap();
    assert_eq!(outcome, 1, "generation 1 cold-tunes");
    assert_eq!(blob, reference);
    client.shutdown().unwrap();
    assert!(server.wait_until_draining(Duration::from_secs(5)));
    let persisted = server.shutdown().unwrap();
    assert!(persisted >= 1, "tuned plan written at shutdown");
    assert!(plan_path.exists());

    // Generation 2: a brand-new process-equivalent primed from disk.
    let mut config = ServerConfig::new(unix_ep("warm2"));
    config.plan_path = Some(plan_path.clone());
    let server = Server::start(config).unwrap();
    let mut client = quick_client(server.endpoint());
    let (outcome, blob) = client
        .compress("field", &data, ErrorBound::Abs(1e-3), 0)
        .unwrap();
    assert_eq!(outcome, 2, "restarted daemon serves its FIRST call warm");
    assert_eq!(blob, reference, "warm restart bytes == cold bytes");
    assert_eq!(client.stats().unwrap().cold_tunes, 0);
    server.shutdown().unwrap();
    let _ = std::fs::remove_file(&plan_path);
}

#[test]
fn corrupt_plan_file_means_cold_start_not_crash() {
    let plan_path =
        std::env::temp_dir().join(format!("qoz_fi_badplan_{}.qzpl", std::process::id()));
    std::fs::write(&plan_path, b"QZPLgarbage that is not a plan file").unwrap();
    let mut config = ServerConfig::new(unix_ep("badplan"));
    config.plan_path = Some(plan_path.clone());
    let server = Server::start(config).unwrap();
    let mut client = quick_client(server.endpoint());
    let data = test_field();
    let (outcome, _) = client
        .compress("field", &data, ErrorBound::Abs(1e-3), 0)
        .unwrap();
    assert_eq!(outcome, 1, "corrupt plan file degrades to a cold start");
    server.shutdown().unwrap();
    let _ = std::fs::remove_file(&plan_path);
}

#[test]
fn region_reads_serve_degraded_with_faults_and_strict_with_typed_error() {
    // Build a small archive under the server's root.
    let root = std::env::temp_dir().join(format!("qoz_fi_root_{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();
    let archive_path = root.join("dump.qzar");
    let field = NdArray::from_fn(Shape::d3(13, 11, 9), |i| {
        (i[0] as f32 * 0.3).sin() + (i[1] as f32 * 0.2).cos() + i[2] as f32 * 0.01
    });
    let mut w = qoz_archive::ArchiveWriter::new().with_chunk_side(4);
    w.add_variable(
        "rho",
        &field,
        &qoz_sz3::Sz3::default(),
        ErrorBound::Abs(1e-3),
    )
    .unwrap();
    w.write_to(&archive_path.to_string_lossy()).unwrap();

    let mut config = ServerConfig::new(unix_ep("region"));
    config.archive_root = Some(root.clone());
    config.workers = 1; // deterministic reader cache
    let server = Server::start(config).unwrap();
    let mut client = quick_client(server.endpoint());

    // Clean read matches a local read bit-for-bit.
    let origin = [0usize, 0, 0];
    let size = [8usize, 8, 8];
    let (slab, faults) = client
        .region_read::<f32>("dump.qzar", "rho", &origin, &size, false, 0)
        .unwrap();
    assert_eq!(faults, 0);
    let local = qoz_archive::ArchiveReader::open(&archive_path.to_string_lossy())
        .unwrap()
        .read_region::<f32>("rho", &qoz_tensor::Region::new(&origin, &size))
        .unwrap();
    assert_eq!(slab.as_slice(), local.as_slice());

    // Containment: escapes are refused before touching the filesystem.
    match client.region_read::<f32>("../etc/passwd", "rho", &origin, &size, false, 0) {
        Err(qoz_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::BadRequest)
        }
        other => panic!("wanted BadRequest for path escape, got {other:?}"),
    }

    // Corrupt the first chunk's first payload byte on disk.
    let bytes = std::fs::read(&archive_path).unwrap();
    let reader = qoz_archive::ArchiveReader::from_bytes(&bytes).unwrap();
    let payload_start = bytes.len() as u64 - reader.payload_len();
    let chunk0 = payload_start + reader.toc().vars[0].chunks[0].offset;
    drop(reader);
    let mut damaged = bytes.clone();
    damaged[chunk0 as usize] ^= 0xFF;
    std::fs::write(&archive_path, &damaged).unwrap();

    // Strict read: typed CorruptInput, never silent garbage.
    match client.region_read::<f32>("dump.qzar", "rho", &origin, &size, false, 0) {
        Err(qoz_serve::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::CorruptInput)
        }
        other => panic!("wanted CorruptInput, got {other:?}"),
    }

    // Tolerant read: degraded slab + explicit fault count.
    let (degraded, faults) = client
        .region_read::<f32>("dump.qzar", "rho", &origin, &size, true, 0)
        .unwrap();
    assert!(faults >= 1, "damage is reported, not hidden");
    assert_eq!(degraded.shape().dims(), &[8, 8, 8]);

    server.shutdown().unwrap();
    let _ = std::fs::remove_file(&archive_path);
    let _ = std::fs::remove_dir(&root);
}

#[cfg(feature = "chaos")]
mod chaos_suite {
    use super::*;
    use qoz_serve::chaos::ChaosChannel;

    #[test]
    fn worker_panic_is_isolated_answered_and_worker_replaced() {
        let server = Server::start(ServerConfig::new(unix_ep("panic"))).unwrap();
        let mut client = quick_client(server.endpoint());
        match client.call(&Request::ChaosPanic) {
            Err(qoz_serve::ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::WorkerPanic)
            }
            other => panic!("wanted WorkerPanic, got {other:?}"),
        }
        // The daemon is intact and the replacement worker serves.
        let data = test_field();
        client
            .compress("field", &data, ErrorBound::Abs(1e-3), 0)
            .unwrap();
        let stats = client.stats().unwrap();
        assert!(stats.worker_panics >= 1);
        assert!(
            stats
                .telemetry
                .unwrap()
                .counter("qoz_errors_total", &[("code", "worker_panic")])
                .unwrap_or(0)
                >= 1
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn torn_writes_and_short_reads_never_kill_the_daemon() {
        let server = Server::start(ServerConfig::new(unix_ep("chaoswire"))).unwrap();
        let ep = server.endpoint();
        for seed in 0..12u64 {
            let inner = ep.connect().unwrap();
            let mut chan = ChaosChannel::from_seed(inner, seed);
            let mut wire = Vec::new();
            write_frame(&mut wire, kind::PING, &[]).unwrap();
            // Whatever the fault does to this exchange — torn write,
            // injected EOF, stall, flipped bit — it must stay a typed
            // client-side failure; the daemon must not care.
            let _ = chan.write_all(&wire).and_then(|_| {
                read_frame(&mut chan, MAX_PAYLOAD).map_err(|e| match e {
                    FrameError::Io(io) => io,
                    other => std::io::Error::other(other.to_string()),
                })
            });
        }
        let mut client = quick_client(ep);
        client.ping().unwrap();
        server.shutdown().unwrap();
    }
}
