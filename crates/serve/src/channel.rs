//! Transport abstraction: one [`Channel`] trait over TCP and Unix
//! sockets.
//!
//! The daemon, the client, and the chaos layer all speak to a
//! `Box<dyn Channel>`; whether bytes travel over `TcpStream` or
//! `UnixStream` is decided once, at [`Endpoint`] parse time, and never
//! leaks into protocol or server code. An [`Endpoint`] is written
//! `tcp:HOST:PORT` or `unix:PATH` (a bare string containing `/` is
//! taken as a Unix socket path — the common case for a local daemon).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// A bidirectional, timeout-capable byte stream.
///
/// Everything the protocol layer needs from a transport: blocking
/// read/write (inherited), deadline knobs, and a way to identify and
/// drop the peer. Implementations must be safe to hand to one serving
/// thread (`Send`).
pub trait Channel: Read + Write + Send {
    /// Bound the time a single read may block (`None` = forever).
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()>;
    /// Bound the time a single write may block (`None` = forever) —
    /// the slow-client guard.
    fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()>;
    /// Human-readable peer description for logs.
    fn peer(&self) -> String;
    /// Shut the connection down in both directions.
    fn shutdown(&self) -> std::io::Result<()>;
}

impl Channel for TcpStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, d)
    }
    fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_write_timeout(self, d)
    }
    fn peer(&self) -> String {
        self.peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:?".into())
    }
    fn shutdown(&self) -> std::io::Result<()> {
        TcpStream::shutdown(self, std::net::Shutdown::Both)
    }
}

impl Channel for UnixStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        UnixStream::set_read_timeout(self, d)
    }
    fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        UnixStream::set_write_timeout(self, d)
    }
    fn peer(&self) -> String {
        "unix-peer".into()
    }
    fn shutdown(&self) -> std::io::Result<()> {
        UnixStream::shutdown(self, std::net::Shutdown::Both)
    }
}

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(String),
}

impl Endpoint {
    /// Parse `tcp:HOST:PORT`, `unix:PATH`, a bare `/path` (Unix), or a
    /// bare `host:port` (TCP).
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest.rsplit_once(':').is_none() {
                return Err(format!("tcp endpoint needs host:port, got '{rest}'"));
            }
            return Ok(Endpoint::Tcp(rest.to_string()));
        }
        if let Some(rest) = s.strip_prefix("unix:") {
            if rest.is_empty() {
                return Err("unix endpoint needs a path".into());
            }
            return Ok(Endpoint::Unix(rest.to_string()));
        }
        if s.contains('/') {
            return Ok(Endpoint::Unix(s.to_string()));
        }
        if s.rsplit_once(':').is_some() {
            return Ok(Endpoint::Tcp(s.to_string()));
        }
        Err(format!(
            "cannot parse endpoint '{s}' (want tcp:HOST:PORT or unix:PATH)"
        ))
    }

    /// Connect a client channel.
    pub fn connect(&self) -> std::io::Result<Box<dyn Channel>> {
        Ok(match self {
            Endpoint::Tcp(addr) => Box::new(TcpStream::connect(addr)?),
            Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?),
        })
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
            Endpoint::Unix(p) => write!(f, "unix:{p}"),
        }
    }
}

/// A bound, non-blocking listener over either transport.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener (unlinks its socket file on drop).
    Unix(UnixListener, String),
}

impl Listener {
    /// Bind `endpoint` non-blocking (the accept loop polls so it can
    /// observe the shutdown flag). A stale Unix socket file from a
    /// previous crash is removed before binding.
    pub fn bind(endpoint: &Endpoint) -> std::io::Result<Listener> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
            Endpoint::Unix(path) => {
                // Only a socket can be "stale" — refuse to clobber a
                // regular file at the same path.
                if let Ok(meta) = std::fs::symlink_metadata(path) {
                    use std::os::unix::fs::FileTypeExt;
                    if meta.file_type().is_socket() {
                        let _ = std::fs::remove_file(path);
                    }
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
        }
    }

    /// The endpoint actually bound (resolves TCP port 0).
    pub fn local_endpoint(&self) -> Endpoint {
        match self {
            Listener::Tcp(l) => Endpoint::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".into()),
            ),
            Listener::Unix(_, path) => Endpoint::Unix(path.clone()),
        }
    }

    /// Try to accept one connection; `Ok(None)` when none is pending.
    /// Accepted channels are switched back to blocking mode.
    pub fn accept(&self) -> std::io::Result<Option<Box<dyn Channel>>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7777").unwrap(),
            Endpoint::Tcp("127.0.0.1:7777".into())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/qoz.sock").unwrap(),
            Endpoint::Unix("/tmp/qoz.sock".into())
        );
        assert_eq!(
            Endpoint::parse("/tmp/qoz.sock").unwrap(),
            Endpoint::Unix("/tmp/qoz.sock".into())
        );
        assert_eq!(
            Endpoint::parse("localhost:9000").unwrap(),
            Endpoint::Tcp("localhost:9000".into())
        );
        assert!(Endpoint::parse("nonsense").is_err());
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("tcp:portless").is_err());
    }

    #[test]
    fn tcp_and_unix_channels_carry_bytes_identically() {
        // TCP on an ephemeral port.
        let tcp = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let ep = tcp.local_endpoint();
        let mut client = ep.connect().unwrap();
        let mut server = loop {
            if let Some(c) = tcp.accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        client.write_all(b"hello over tcp").unwrap();
        client.flush().unwrap();
        let mut buf = [0u8; 14];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello over tcp");

        // Unix socket in a temp path.
        let path = std::env::temp_dir()
            .join(format!("qoz_serve_chan_{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let unix = Listener::bind(&Endpoint::Unix(path.clone())).unwrap();
        let mut client = Endpoint::Unix(path.clone()).connect().unwrap();
        let mut server = loop {
            if let Some(c) = unix.accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        client.write_all(b"hello over unix").unwrap();
        let mut buf = [0u8; 15];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello over unix");
        drop(unix);
        assert!(
            !std::path::Path::new(&path).exists(),
            "socket file unlinked on drop"
        );
    }

    #[test]
    fn bind_refuses_to_clobber_regular_file() {
        let path = std::env::temp_dir()
            .join(format!("qoz_serve_regular_{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&path, b"precious").unwrap();
        assert!(Listener::bind(&Endpoint::Unix(path.clone())).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"precious");
        std::fs::remove_file(&path).ok();
    }
}
