//! The client half: one connection, bounded retries, jittered backoff.
//!
//! Retry policy in one sentence: transport failures (the connection
//! died, a response frame was damaged) reconnect and retry; server
//! errors retry only when the server itself marks them transient
//! ([`ErrorCode::is_transient`] — overloaded or draining); everything
//! else returns immediately. Retries are *bounded* and each waits an
//! exponentially growing, deterministically jittered backoff, so a
//! thousand shedding clients do not re-dogpile the daemon in lockstep.

use crate::channel::{Channel, Endpoint};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, StatsSnapshot, MAX_PAYLOAD,
};
use qoz_codec::stream::ErrorBound;
use qoz_codec::CodecError;
use qoz_tensor::{NdArray, Scalar, Shape};
use std::time::Duration;

/// Retry and timeout knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address.
    pub endpoint: Endpoint,
    /// Retries after the first attempt (so `max_retries = 4` means at
    /// most 5 attempts).
    pub max_retries: u32,
    /// First backoff; doubles per retry (jittered ±50%, capped at 2 s).
    pub base_backoff: Duration,
    /// Per-read/per-write transport timeout.
    pub io_timeout: Duration,
    /// Jitter seed — fixed so a test's retry schedule replays exactly.
    pub seed: u64,
}

impl ClientConfig {
    /// Defaults: 4 retries from 20 ms, 30 s I/O timeout.
    pub fn new(endpoint: Endpoint) -> Self {
        ClientConfig {
            endpoint,
            max_retries: 4,
            base_backoff: Duration::from_millis(20),
            io_timeout: Duration::from_secs(30),
            seed: 0x9E37_79B9,
        }
    }
}

/// Why a call failed for good (retries, if any were allowed, are
/// already spent when you see one of these).
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, send, or receive).
    Io(std::io::Error),
    /// The response frame was structurally damaged.
    Frame(FrameError),
    /// The response frame was sound but its payload did not parse.
    Protocol(CodecError),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered something structurally valid but of the
    /// wrong kind for the request.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Frame(e) => write!(f, "response frame: {e}"),
            ClientError::Protocol(e) => write!(f, "response payload: {e}"),
            ClientError::Server { code, message } => write!(f, "server {code:?}: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connection to a qoz-serve daemon (reconnects transparently).
pub struct Client {
    config: ClientConfig,
    conn: Option<Box<dyn Channel>>,
    rng: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("endpoint", &self.config.endpoint)
            .field("connected", &self.conn.is_some())
            .finish()
    }
}

impl Client {
    /// Client with default retry policy.
    pub fn connect(endpoint: Endpoint) -> Client {
        Client::with_config(ClientConfig::new(endpoint))
    }

    /// Client with explicit knobs. The connection is opened lazily on
    /// the first call, so constructing a client never blocks.
    pub fn with_config(config: ClientConfig) -> Client {
        let rng = config.seed;
        Client {
            config,
            conn: None,
            rng,
        }
    }

    /// Send `req`, retrying per the config. Server `Error` responses
    /// come back as [`ClientError::Server`] (transient codes are
    /// retried first).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let kind = req.kind();
        let payload = req.encode();
        let mut last: Option<ClientError> = None;
        for attempt in 0..=self.config.max_retries {
            if attempt > 0 {
                // Client-observed retries: every re-attempt after a
                // transient server error or transport failure.
                qoz_telemetry::global()
                    .counter("qoz_client_retries_total", &[])
                    .inc();
                self.backoff(attempt - 1);
            }
            match self.attempt_once(kind, &payload) {
                Ok(Response::Error { code, message }) => {
                    let err = ClientError::Server { code, message };
                    if !code.is_transient() {
                        return Err(err);
                    }
                    last = Some(err);
                }
                Ok(resp) => return Ok(resp),
                Err(e @ (ClientError::Io(_) | ClientError::Frame(_))) => {
                    // The stream state is unknowable — reconnect before
                    // the next attempt.
                    self.conn = None;
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt always runs"))
    }

    /// One attempt, no retries, on the current (or a fresh) connection.
    pub fn call_once(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.attempt_once(req.kind(), &req.encode())
    }

    fn attempt_once(&mut self, kind: u8, payload: &[u8]) -> Result<Response, ClientError> {
        if self.conn.is_none() {
            let chan = self.config.endpoint.connect().map_err(ClientError::Io)?;
            let _ = chan.set_read_timeout(Some(self.config.io_timeout));
            let _ = chan.set_write_timeout(Some(self.config.io_timeout));
            self.conn = Some(chan);
        }
        let chan = self.conn.as_mut().expect("connection just established");
        write_frame(chan, kind, payload).map_err(ClientError::Io)?;
        let (k, resp) = read_frame(chan, MAX_PAYLOAD).map_err(|e| match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Frame(other),
        })?;
        Response::decode(k, &resp).map_err(ClientError::Protocol)
    }

    /// Next backoff for `attempt` (0-based): `base << attempt`,
    /// jittered to 50–150%, capped at 2 s.
    fn backoff(&mut self, attempt: u32) {
        std::thread::sleep(self.backoff_duration(attempt));
    }

    fn backoff_duration(&mut self, attempt: u32) -> Duration {
        let base_ms = self.config.base_backoff.as_millis() as u64;
        let exp_ms = base_ms.saturating_mul(1 << attempt.min(16));
        let jitter = 50 + crate::splitmix64(&mut self.rng) % 101; // 50..=150
        Duration::from_millis((exp_ms * jitter / 100).min(2000))
    }

    // -- typed conveniences ------------------------------------------------

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("wanted Pong")),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::Unexpected("wanted Stats")),
        }
    }

    /// Ask the daemon to drain and stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            _ => Err(ClientError::Unexpected("wanted ShutdownOk")),
        }
    }

    /// Compress one snapshot; returns `(plan outcome byte, blob)`. The
    /// outcome byte mirrors `PlanOutcome` (1 cold, 2 warm hit, 3 warm
    /// rescale, 4 retune).
    pub fn compress<T: Scalar>(
        &mut self,
        name: &str,
        data: &NdArray<T>,
        bound: ErrorBound,
        budget_ms: u64,
    ) -> Result<(u8, Vec<u8>), ClientError> {
        let mut raw = Vec::with_capacity(data.len() * T::BYTES);
        for &v in data.as_slice() {
            raw.extend_from_slice(&v.to_le_bytes_vec());
        }
        let req = Request::Compress {
            name: name.to_string(),
            scalar_tag: T::TYPE_TAG,
            dims: data.shape().dims().to_vec(),
            bound,
            budget_ms,
            raw,
        };
        match self.call(&req)? {
            Response::Compressed { outcome, blob } => Ok((outcome, blob)),
            _ => Err(ClientError::Unexpected("wanted Compressed")),
        }
    }

    /// Decompress any workspace stream on the server.
    pub fn decompress<T: Scalar>(
        &mut self,
        blob: &[u8],
        budget_ms: u64,
    ) -> Result<NdArray<T>, ClientError> {
        let req = Request::Decompress {
            budget_ms,
            blob: blob.to_vec(),
        };
        match self.call(&req)? {
            Response::Decompressed {
                scalar_tag,
                dims,
                raw,
            } => decode_slab(scalar_tag, &dims, &raw),
            _ => Err(ClientError::Unexpected("wanted Decompressed")),
        }
    }

    /// Read a region of an archive the server can reach; returns the
    /// slab and the number of damaged chunks zero-filled into it (only
    /// ever non-zero with `tolerant`).
    pub fn region_read<T: Scalar>(
        &mut self,
        archive: &str,
        var: &str,
        origin: &[usize],
        size: &[usize],
        tolerant: bool,
        budget_ms: u64,
    ) -> Result<(NdArray<T>, u64), ClientError> {
        let req = Request::RegionRead {
            archive: archive.to_string(),
            var: var.to_string(),
            origin: origin.to_vec(),
            size: size.to_vec(),
            budget_ms,
            tolerant,
        };
        match self.call(&req)? {
            Response::Region {
                scalar_tag,
                dims,
                faults,
                raw,
            } => Ok((decode_slab(scalar_tag, &dims, &raw)?, faults)),
            _ => Err(ClientError::Unexpected("wanted Region")),
        }
    }
}

fn decode_slab<T: Scalar>(
    scalar_tag: u8,
    dims: &[usize],
    raw: &[u8],
) -> Result<NdArray<T>, ClientError> {
    if scalar_tag != T::TYPE_TAG {
        return Err(ClientError::Unexpected("scalar type mismatch"));
    }
    let elems: usize = dims.iter().product();
    if elems.checked_mul(T::BYTES) != Some(raw.len()) {
        return Err(ClientError::Unexpected("slab byte count disagrees"));
    }
    let mut vals = Vec::with_capacity(elems);
    for chunk in raw.chunks_exact(T::BYTES) {
        vals.push(T::from_le_slice(chunk));
    }
    Ok(NdArray::from_vec(Shape::new(dims), vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Listener;
    use crate::protocol::kind;

    #[test]
    fn backoff_grows_is_jittered_and_replays_from_seed() {
        let ep = Endpoint::Unix("/tmp/unused.sock".into());
        let mut a = Client::with_config(ClientConfig::new(ep.clone()));
        let mut b = Client::with_config(ClientConfig::new(ep));
        let da: Vec<_> = (0..5).map(|i| a.backoff_duration(i)).collect();
        let db: Vec<_> = (0..5).map(|i| b.backoff_duration(i)).collect();
        assert_eq!(da, db, "same seed, same schedule");
        // Exponential shape survives the jitter: attempt 4 (16x base at
        // >=50% jitter) strictly exceeds attempt 0 (1x base at <=150%).
        assert!(da[4] > da[0]);
        for d in &da {
            assert!(*d <= Duration::from_secs(2), "cap holds");
        }
    }

    #[test]
    fn transient_errors_retry_and_then_succeed() {
        let path = std::env::temp_dir()
            .join(format!("qoz_client_retry_{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let listener = Listener::bind(&Endpoint::Unix(path.clone())).unwrap();
        // A hand-rolled server: Overloaded twice, then Pong.
        let server = std::thread::spawn(move || {
            let mut chan = loop {
                if let Some(c) = listener.accept().unwrap() {
                    break c;
                }
                std::thread::sleep(Duration::from_millis(1));
            };
            for i in 0..3 {
                let (k, _) = read_frame(&mut chan, MAX_PAYLOAD).unwrap();
                assert_eq!(k, kind::PING);
                let resp = if i < 2 {
                    Response::Error {
                        code: ErrorCode::Overloaded,
                        message: "busy".into(),
                    }
                } else {
                    Response::Pong
                };
                write_frame(&mut chan, resp.kind(), &resp.encode()).unwrap();
            }
        });
        let mut config = ClientConfig::new(Endpoint::Unix(path));
        config.base_backoff = Duration::from_millis(1);
        let mut client = Client::with_config(config);
        client.ping().expect("third attempt succeeds");
        // Both re-attempts were observed on the retry counter (global:
        // other tests in this process can only push it higher).
        assert!(
            qoz_telemetry::global()
                .counter("qoz_client_retries_total", &[])
                .get()
                >= 2
        );
        server.join().unwrap();
    }

    #[test]
    fn non_transient_errors_do_not_retry() {
        let path = std::env::temp_dir()
            .join(format!("qoz_client_noretry_{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let listener = Listener::bind(&Endpoint::Unix(path.clone())).unwrap();
        let server = std::thread::spawn(move || {
            let mut chan = loop {
                if let Some(c) = listener.accept().unwrap() {
                    break c;
                }
                std::thread::sleep(Duration::from_millis(1));
            };
            // Exactly one request must arrive; answering CorruptInput
            // must end the exchange.
            let (k, _) = read_frame(&mut chan, MAX_PAYLOAD).unwrap();
            assert_eq!(k, kind::PING);
            let resp = Response::Error {
                code: ErrorCode::CorruptInput,
                message: "nope".into(),
            };
            write_frame(&mut chan, resp.kind(), &resp.encode()).unwrap();
            // A second read should see EOF, not another attempt.
            assert!(read_frame(&mut chan, MAX_PAYLOAD).is_err());
        });
        let mut config = ClientConfig::new(Endpoint::Unix(path));
        config.base_backoff = Duration::from_millis(1);
        let mut client = Client::with_config(config);
        match client.ping() {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::CorruptInput),
            other => panic!("wanted Server(CorruptInput), got {other:?}"),
        }
        drop(client);
        server.join().unwrap();
    }
}
