//! qoz-serve: a fault-tolerant compression daemon.
//!
//! Long-running HPC workflows want compression as a *service*: a warm
//! process that keeps tuned plans and scratch arenas alive across
//! thousands of snapshots instead of paying the cold-tune tax per call.
//! A resident process, though, inherits every failure mode the one-shot
//! CLI never sees — slow clients, malformed frames, overload, worker
//! crashes, kill -9 — so this crate treats robustness as the design
//! axis, not an afterthought:
//!
//! * **Framed protocol** ([`protocol`]) — length-prefixed, checksummed
//!   frames over a transport-abstract [`channel::Channel`]
//!   (TCP or Unix socket). Nothing is trusted before validation; a
//!   hostile peer earns a typed error, never a panic or an allocation
//!   proportional to a lied-about length.
//! * **Bounded admission** ([`server`]) — requests queue into a
//!   [`qoz_pario::BoundedQueue`]; when it is full the daemon answers
//!   [`protocol::ErrorCode::Overloaded`] *immediately* instead of
//!   buffering unbounded memory behind slow workers.
//! * **Deadlines** — every request carries a budget; it is enforced at
//!   dequeue and again between serving stages, so a request that missed
//!   its window is dropped cheaply rather than served uselessly.
//! * **Panic isolation** — a worker panic becomes a typed
//!   [`protocol::ErrorCode::WorkerPanic`] response; the
//!   [`qoz_pario::WorkerPool`] replaces the worker (with fresh state)
//!   and the process never dies.
//! * **Graceful shutdown & warm restart** — SIGTERM (or a `Shutdown`
//!   request) drains in-flight work, rejects new work with
//!   [`protocol::ErrorCode::ShuttingDown`], and persists every tuned
//!   plan ([`qoz_core::PlanSnapshot`]) to disk; a restarted daemon
//!   primes its pipelines from that file and serves its first repeat
//!   request warm, byte-identical to the cold path.
//! * **Fault injection** (`chaos` module, feature `chaos`) — deterministic
//!   torn writes, short reads, stalls and bit-flips wrap any channel or
//!   archive byte source, so the robustness suite drives the *real*
//!   daemon through the failures it claims to survive.
//!
//! The [`Client`] pairs the protocol with bounded retries and jittered
//! exponential backoff, retrying only errors the server marks
//! transient.

pub mod channel;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod client;
pub mod protocol;
pub mod server;

/// Cooperative SIGINT/SIGTERM handling for daemon front-ends (the
/// `qoz-serve` binary and `qoz serve`): signals latch a flag that a
/// foreground loop polls to start a graceful drain.
///
/// Raw `signal(2)` registration: the workspace builds without a libc
/// crate, and the two signals we care about need nothing more than a
/// flag store (which is async-signal-safe).
#[allow(unsafe_code)]
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    /// Route SIGINT and SIGTERM to the latched stop flag.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    /// Whether a stop signal has arrived since [`install`].
    pub fn stop_requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

pub use channel::{Channel, Endpoint, Listener};
pub use client::{Client, ClientConfig, ClientError};
pub use protocol::{ErrorCode, Request, Response, StatsSnapshot};
pub use server::{Server, ServerConfig};

/// SplitMix64: the workspace's tiny deterministic generator. Drives the
/// client's backoff jitter and the chaos module's fault plans — both
/// must replay exactly from a seed.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
