//! The daemon: bounded admission, deadline-checked workers, panic
//! isolation, graceful drain, warm restart.
//!
//! # Lifecycle of a request
//!
//! ```text
//! accept thread ──spawns──► connection thread (one per client)
//!                               │ read_frame  (typed errors, never panics)
//!                               │ decode      (BadRequest on structural lies)
//!                               │ admission   (draining? → ShuttingDown;
//!                               │              queue full? → Overloaded)
//!                               ▼
//!                        BoundedQueue ──pop──► worker (owns pipelines,
//!                               ▲              scratch, archive readers)
//!                               │ deadline at dequeue and between stages
//!                               │ panic? → WorkerPanic reply, worker replaced
//!                               ▼
//!                        response channel ──► connection thread ──► client
//! ```
//!
//! # Warm restart
//!
//! Every cold tune or retune publishes its [`PlanSnapshot`] to a shared
//! map; graceful shutdown writes the map (atomically, temp + rename) to
//! `plan_path`. A restarting daemon reads the file and primes each
//! freshly created pipeline, so the first repeat request after a
//! restart reports `WarmHit` and returns bytes identical to the cold
//! path — the cache never changes the format, only the time.

use crate::channel::{Channel, Endpoint, Listener};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, StatsSnapshot, MAX_PAYLOAD,
};
use qoz_api::{ApiError, BackendId, Pipeline, Session};
use qoz_archive::{ArchiveError, ArchiveReader, FileSource};
use qoz_codec::stream::ErrorBound;
use qoz_codec::{CodecError, Scratch};
use qoz_core::{PlanOutcome, PlanSnapshot};
use qoz_pario::pool::{wait_until, WorkerPool};
use qoz_tensor::{NdArray, Region, Scalar, Shape};
use std::collections::HashMap;
use std::io::Read;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How the daemon listens, queues, and times out.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Worker threads (each owns its own pipelines and arenas).
    pub workers: usize,
    /// Admission queue depth; requests beyond it are shed.
    pub queue_depth: usize,
    /// Deadline budget applied when a request says `budget_ms == 0`.
    pub default_budget: Duration,
    /// How long a graceful shutdown waits for in-flight work.
    pub drain_timeout: Duration,
    /// Request frames larger than this are rejected unread.
    pub max_frame: usize,
    /// Where tuned plans are persisted at shutdown / primed at startup.
    pub plan_path: Option<PathBuf>,
    /// Root under which `RegionRead` archive paths resolve. `None`
    /// disables region serving entirely (safe default: no config, no
    /// filesystem reach).
    pub archive_root: Option<PathBuf>,
    /// Artificial per-job service time — the test knob that makes
    /// overload and deadline behavior deterministic to provoke.
    pub worker_delay: Duration,
}

impl ServerConfig {
    /// Defaults tuned for a local daemon: 2 workers, shallow queue,
    /// 30 s default budget.
    pub fn new(endpoint: Endpoint) -> Self {
        ServerConfig {
            endpoint,
            workers: 2,
            queue_depth: 32,
            default_budget: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            max_frame: MAX_PAYLOAD,
            plan_path: None,
            archive_root: None,
            worker_delay: Duration::ZERO,
        }
    }
}

/// Request kinds in wire order; the `kind` label values of the
/// per-request metric families.
const KIND_NAMES: [&str; 7] = [
    "ping",
    "compress",
    "decompress",
    "region_read",
    "shutdown",
    "stats",
    "chaos_panic",
];

/// Plan-cache outcome label values, `qoz_plan_cache_total{outcome=…}`.
const PLAN_OUTCOME_NAMES: [&str; 4] = ["cold_tuned", "warm_hit", "warm_rescaled", "retuned"];

/// Resolved instruments for one request kind.
struct KindMetrics {
    requests: Arc<qoz_telemetry::Counter>,
    latency: Arc<qoz_telemetry::Histogram>,
    payload: Arc<qoz_telemetry::Histogram>,
}

/// Registry-backed daemon metrics.
///
/// Instruments live in a *per-server* [`qoz_telemetry::Registry`] — the
/// fault-injection suite runs several servers concurrently in one
/// process, so daemon counters must not be process globals. Every
/// hot-path handle is resolved once here; bumping a counter afterwards
/// is a single relaxed atomic add with no registry lock.
///
/// Every error reply the daemon generates — shed, deadline miss, bad
/// frame, bad request, worker panic, shutdown reject, codec/archive/api
/// mapper errors, internal timeouts — is tallied through one choke
/// point ([`Metrics::tally`]), so no reply site can forget its counter.
struct Metrics {
    registry: qoz_telemetry::Registry,
    /// Responses actually written back to a client (any outcome).
    responses: Arc<qoz_telemetry::Counter>,
    /// One dedicated counter per [`ErrorCode`], indexed `code as u8 - 1`.
    errors: [Arc<qoz_telemetry::Counter>; 10],
    /// Plan-cache outcomes, indexed per [`PLAN_OUTCOME_NAMES`].
    plan_outcomes: [Arc<qoz_telemetry::Counter>; 4],
    /// Per-request-kind instruments, indexed per [`KIND_NAMES`].
    kinds: [KindMetrics; 7],
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("responses", &self.responses.get())
            .finish()
    }
}

impl Metrics {
    fn new() -> Metrics {
        let registry = qoz_telemetry::Registry::new();
        let responses = registry.counter("qoz_responses_total", &[]);
        let errors =
            ErrorCode::ALL.map(|c| registry.counter("qoz_errors_total", &[("code", c.as_label())]));
        let plan_outcomes =
            PLAN_OUTCOME_NAMES.map(|o| registry.counter("qoz_plan_cache_total", &[("outcome", o)]));
        let kinds = KIND_NAMES.map(|k| KindMetrics {
            requests: registry.counter("qoz_requests_total", &[("kind", k)]),
            latency: registry.histogram(
                "qoz_request_latency_ns",
                &[("kind", k)],
                qoz_telemetry::LATENCY_BOUNDS_NS,
            ),
            payload: registry.histogram(
                "qoz_request_payload_bytes",
                &[("kind", k)],
                qoz_telemetry::SIZE_BOUNDS_BYTES,
            ),
        });
        Metrics {
            registry,
            responses,
            errors,
            plan_outcomes,
            kinds,
        }
    }

    fn error(&self, code: ErrorCode) -> &qoz_telemetry::Counter {
        &self.errors[code as u8 as usize - 1]
    }

    fn kind(&self, request: &Request) -> &KindMetrics {
        let idx = match request {
            Request::Ping => 0,
            Request::Compress { .. } => 1,
            Request::Decompress { .. } => 2,
            Request::RegionRead { .. } => 3,
            Request::Shutdown => 4,
            Request::Stats => 5,
            Request::ChaosPanic => 6,
        };
        &self.kinds[idx]
    }

    /// The single error-accounting choke point: called on every
    /// response the daemon is about to send, wherever it was built.
    fn tally(&self, resp: &Response) {
        if let Response::Error { code, .. } = resp {
            self.error(*code).inc();
        }
    }

    fn plan_outcome(&self, outcome: PlanOutcome) {
        let idx = match outcome {
            PlanOutcome::ColdTuned => 0,
            PlanOutcome::WarmHit => 1,
            PlanOutcome::WarmRescaled => 2,
            PlanOutcome::Retuned => 3,
        };
        self.plan_outcomes[idx].inc();
    }

    /// Legacy counters derived from the registry, plus the full
    /// telemetry extension: this server's instruments merged with the
    /// process-global layer metrics (pipeline outcomes, archive I/O,
    /// pool health) and the per-stage timers.
    fn snapshot(&self) -> StatsSnapshot {
        let mut telemetry = self.registry.snapshot();
        telemetry.merge(&qoz_telemetry::global().snapshot());
        telemetry.append_stages();
        StatsSnapshot {
            served: self.responses.get(),
            shed: self.error(ErrorCode::Overloaded).get(),
            deadline_missed: self.error(ErrorCode::DeadlineExceeded).get(),
            worker_panics: self.error(ErrorCode::WorkerPanic).get(),
            bad_frames: self.error(ErrorCode::BadFrame).get()
                + self.error(ErrorCode::BadRequest).get(),
            warm_hits: self.plan_outcomes[1].get() + self.plan_outcomes[2].get(),
            cold_tunes: self.plan_outcomes[0].get() + self.plan_outcomes[3].get(),
            shutdown_rejects: self.error(ErrorCode::ShuttingDown).get(),
            telemetry: Some(telemetry),
        }
    }
}

/// Hashable form of an [`ErrorBound`] (bit-exact: the cache key the
/// plan cache itself uses is bit-exact too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BoundKey(u8, u64);

impl BoundKey {
    fn of(b: ErrorBound) -> BoundKey {
        match b {
            ErrorBound::Abs(v) => BoundKey(0, v.to_bits()),
            ErrorBound::Rel(v) => BoundKey(1, v.to_bits()),
        }
    }
}

/// One pipeline per (variable, scalar, bound): the granularity at which
/// scratch arenas and plan caches stay warm.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PipeKey {
    name: String,
    scalar_tag: u8,
    bound: BoundKey,
}

/// Plans persist at the plan-cache key granularity (shape, scalar,
/// bound) — the variable name only selects the pipeline, not the plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    dims: Vec<usize>,
    scalar_tag: u8,
    bound: BoundKey,
}

impl PlanKey {
    fn of_snapshot(s: &PlanSnapshot) -> PlanKey {
        PlanKey {
            dims: s.shape.dims().to_vec(),
            scalar_tag: s.scalar_tag,
            bound: BoundKey::of(s.bound),
        }
    }
}

struct Job {
    request: Request,
    deadline: Instant,
    resp: mpsc::Sender<Response>,
}

struct Shared {
    config: ServerConfig,
    metrics: Metrics,
    /// Set by a `Shutdown` request or [`Server::begin_shutdown`]: new
    /// work is rejected, in-flight work drains.
    draining: AtomicBool,
    /// Set by [`Server::shutdown`]: accept/connection threads exit.
    stop: AtomicBool,
    /// Requests admitted to the queue whose response has not yet been
    /// relayed — the drain condition.
    pending: AtomicU64,
    plans: Mutex<HashMap<PlanKey, PlanSnapshot>>,
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] for a graceful exit.
pub struct Server {
    shared: Arc<Shared>,
    pool: WorkerPool<Job>,
    accept: Option<std::thread::JoinHandle<()>>,
    endpoint: Endpoint,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("endpoint", &self.endpoint)
            .field("draining", &self.is_draining())
            .finish()
    }
}

impl Server {
    /// Bind, prime plans from disk, spawn workers and the accept loop.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = Listener::bind(&config.endpoint)?;
        let endpoint = listener.local_endpoint();
        let shared = Arc::new(Shared {
            metrics: Metrics::new(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            pending: AtomicU64::new(0),
            plans: Mutex::new(load_plans(config.plan_path.as_deref())),
            config,
        });
        let pool = {
            let shared = Arc::clone(&shared);
            WorkerPool::new(
                shared.config.workers.max(1),
                shared.config.queue_depth.max(1),
                move || {
                    let shared = Arc::clone(&shared);
                    let mut state = WorkerState::default();
                    move |job: Job| state.run(&shared, job)
                },
            )
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let queue = pool.queue();
            std::thread::spawn(move || accept_loop(listener, shared, queue))
        };
        Ok(Server {
            shared,
            pool,
            accept: Some(accept),
            endpoint,
        })
    }

    /// The endpoint actually bound (resolves `tcp:…:0`).
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    /// Current counters (legacy fields plus the full telemetry
    /// extension — see [`StatsSnapshot`]).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Prometheus-style text exposition of this server's merged
    /// telemetry (per-instance instruments + process-global layer
    /// metrics + per-stage timers). The daemon binary dumps this at
    /// drain; `qoz remote stats --text` renders the same snapshot
    /// client-side from the wire extension.
    pub fn metrics_text(&self) -> String {
        self.shared
            .metrics
            .snapshot()
            .telemetry
            .unwrap_or_default()
            .render_text()
    }

    /// `true` once a shutdown has been requested (by request or signal).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Ask the daemon to drain: new requests are rejected with
    /// `ShuttingDown`, in-flight requests finish. Idempotent; the
    /// process-level signal handler calls this.
    pub fn begin_shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Block until draining has been requested (returns `false` on
    /// timeout). The daemon main loop parks here.
    pub fn wait_until_draining(&self, timeout: Duration) -> bool {
        wait_until(timeout, || self.is_draining())
    }

    /// Graceful shutdown: drain in-flight work (bounded by
    /// `drain_timeout`), stop the workers and the accept loop, persist
    /// tuned plans. Returns the number of plans written.
    pub fn shutdown(mut self) -> std::io::Result<usize> {
        self.begin_shutdown();
        let shared = Arc::clone(&self.shared);
        let queue = self.pool.queue();
        // In-flight = admitted but unanswered. Draining is best-effort:
        // a wedged client cannot hold the daemon hostage past the
        // timeout.
        wait_until(shared.config.drain_timeout, || {
            shared.pending.load(Ordering::SeqCst) == 0 && queue.is_empty()
        });
        shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.pool.shutdown();
        let plans: Vec<PlanSnapshot> = {
            let map = shared.plans.lock().expect("plan map lock poisoned");
            map.values().cloned().collect()
        };
        if let Some(path) = &shared.config.plan_path {
            persist_plans(path, &plans)?;
        }
        Ok(plans.len())
    }
}

fn load_plans(path: Option<&std::path::Path>) -> HashMap<PlanKey, PlanSnapshot> {
    let mut map = HashMap::new();
    let Some(path) = path else {
        return map;
    };
    let Ok(bytes) = std::fs::read(path) else {
        return map; // no file yet: cold start
    };
    // A damaged plan file must never stop the daemon — plans are an
    // optimization, so corruption just means a cold start.
    if let Ok(snaps) = qoz_core::decode_snapshots(&bytes) {
        for snap in snaps {
            map.insert(PlanKey::of_snapshot(&snap), snap);
        }
    }
    map
}

/// Write the plan file atomically: a crash mid-write leaves the old
/// file (or none), never a torn one.
fn persist_plans(path: &std::path::Path, plans: &[PlanSnapshot]) -> std::io::Result<()> {
    let bytes = qoz_core::encode_snapshots(plans);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Accept + connection threads
// ---------------------------------------------------------------------------

fn accept_loop(listener: Listener, shared: Arc<Shared>, queue: Arc<qoz_pario::BoundedQueue<Job>>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(chan)) => {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                // Connection threads are detached: they exit on
                // disconnect or when `stop` is set (the idle read
                // timeout below guarantees they observe it).
                std::thread::spawn(move || connection_loop(chan, shared, queue));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Poll interval at which an idle connection re-checks the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(50);
/// Once a frame has started arriving, how long until we give up on it.
const FRAME_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// `Read` adapter that replays one already-consumed byte before the
/// stream — lets the idle poll read a single byte cheaply and still
/// hand `read_frame` the full stream.
struct Replay1<'a> {
    first: Option<u8>,
    inner: &'a mut dyn Read,
}

impl Read for Replay1<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(b) = self.first.take() {
            if buf.is_empty() {
                self.first = Some(b);
                return Ok(0);
            }
            buf[0] = b;
            return Ok(1);
        }
        self.inner.read(buf)
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn connection_loop(
    mut chan: Box<dyn Channel>,
    shared: Arc<Shared>,
    queue: Arc<qoz_pario::BoundedQueue<Job>>,
) {
    // A stalled client may never drain our response: bound the write.
    let _ = chan.set_write_timeout(Some(FRAME_IO_TIMEOUT));
    loop {
        // Idle phase: wait for the first byte with a short timeout so
        // the thread observes `stop` promptly and a byte-at-a-time
        // trickler cannot desync us (no partial multi-byte reads here).
        let _ = chan.set_read_timeout(Some(IDLE_POLL));
        let mut first = [0u8; 1];
        let n = match chan.read(&mut first) {
            Ok(0) => return, // peer closed
            Ok(n) => n,
            Err(e) if is_timeout(&e) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        debug_assert_eq!(n, 1);
        // Frame phase: the rest of the frame gets a generous but finite
        // window.
        let _ = chan.set_read_timeout(Some(FRAME_IO_TIMEOUT));
        let mut replay = Replay1 {
            first: Some(first[0]),
            inner: &mut chan,
        };
        let (kind_byte, payload) = match read_frame(&mut replay, shared.config.max_frame) {
            Ok(fr) => fr,
            Err(FrameError::Io(_)) => return, // torn frame / disconnect
            Err(typed) => {
                // The stream is desynced past this point, so answer the
                // typed error and drop the connection — but the daemon
                // itself stays up.
                respond(
                    &mut chan,
                    &shared,
                    Response::Error {
                        code: ErrorCode::BadFrame,
                        message: typed.to_string(),
                    },
                );
                return;
            }
        };
        let request = match Request::decode(kind_byte, &payload) {
            Ok(req) => req,
            Err(e) => {
                // Frame boundaries are intact — the connection can keep
                // going after a structurally-bad request.
                if !respond(
                    &mut chan,
                    &shared,
                    Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                ) {
                    return;
                }
                continue;
            }
        };
        // Per-kind accounting: the request is structurally sound from
        // here on, so it gets a kind label, a payload-size observation,
        // and a latency observation once its response is ready.
        let kind_metrics = shared.metrics.kind(&request);
        kind_metrics.requests.inc();
        kind_metrics.payload.observe(payload.len() as u64);
        let arrived = Instant::now();
        let resp = match request {
            // Control-plane requests bypass the queue: they must work
            // precisely when the data plane is saturated.
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(shared.metrics.snapshot()),
            Request::Shutdown => {
                shared.draining.store(true, Ordering::SeqCst);
                Response::ShutdownOk
            }
            work => admit(work, &shared, &queue),
        };
        kind_metrics
            .latency
            .observe(arrived.elapsed().as_nanos() as u64);
        let keep_going = respond(&mut chan, &shared, resp);
        if !keep_going || shared.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Admission control: draining and overload are decided *here*, before
/// any memory or worker time is spent on the request.
fn admit(request: Request, shared: &Shared, queue: &qoz_pario::BoundedQueue<Job>) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        };
    }
    let budget_ms = match &request {
        Request::Compress { budget_ms, .. }
        | Request::Decompress { budget_ms, .. }
        | Request::RegionRead { budget_ms, .. } => *budget_ms,
        _ => 0,
    };
    let budget = if budget_ms == 0 {
        shared.config.default_budget
    } else {
        Duration::from_millis(budget_ms)
    };
    let deadline = Instant::now() + budget;
    let (tx, rx) = mpsc::channel();
    let job = Job {
        request,
        deadline,
        resp: tx,
    };
    if queue.try_push(job).is_err() {
        return Response::Error {
            code: ErrorCode::Overloaded,
            message: "admission queue full".into(),
        };
    }
    shared.pending.fetch_add(1, Ordering::SeqCst);
    // Workers always answer (panics included), so the extra margin only
    // matters if a worker wedges without panicking.
    let resp = rx
        .recv_timeout(budget + Duration::from_secs(30))
        .unwrap_or_else(|_| Response::Error {
            code: ErrorCode::Internal,
            message: "worker response channel timed out".into(),
        });
    shared.pending.fetch_sub(1, Ordering::SeqCst);
    resp
}

/// Write a response frame; `false` means the client is gone. Error
/// responses are tallied here whether or not the write lands — the
/// daemon generated the failure either way.
fn respond(chan: &mut Box<dyn Channel>, shared: &Shared, resp: Response) -> bool {
    shared.metrics.tally(&resp);
    let ok = write_frame(chan, resp.kind(), &resp.encode()).is_ok();
    if ok {
        shared.metrics.responses.inc();
    }
    ok
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

/// Everything a worker owns privately: warm pipelines per (variable,
/// scalar, bound), typed scratch arenas, and open archive readers.
/// Rebuilt from scratch when a panic replaces the worker.
#[derive(Default)]
struct WorkerState {
    pipes_f32: HashMap<PipeKey, Pipeline<f32>>,
    pipes_f64: HashMap<PipeKey, Pipeline<f64>>,
    scratch_f32: Scratch<f32>,
    scratch_f64: Scratch<f64>,
    readers: HashMap<PathBuf, ArchiveReader<FileSource>>,
}

impl WorkerState {
    fn run(&mut self, shared: &Shared, job: Job) {
        if !shared.config.worker_delay.is_zero() {
            std::thread::sleep(shared.config.worker_delay);
        }
        let Job {
            request,
            deadline,
            resp,
        } = job;
        // Deadline at dequeue: a request that waited out its budget in
        // the queue is dropped for pennies instead of served for
        // dollars.
        if Instant::now() > deadline {
            let _ = resp.send(deadline_response());
            return;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| self.serve(shared, request, deadline)));
        match outcome {
            Ok(response) => {
                let _ = resp.send(response);
            }
            Err(payload) => {
                // Answer first, then let the panic continue so the pool
                // replaces this worker (its state may be mid-mutation).
                let _ = resp.send(Response::Error {
                    code: ErrorCode::WorkerPanic,
                    message: "worker panicked serving this request; worker replaced".into(),
                });
                resume_unwind(payload);
            }
        }
    }

    fn serve(&mut self, shared: &Shared, request: Request, deadline: Instant) -> Response {
        match request {
            Request::Compress {
                name,
                scalar_tag,
                dims,
                bound,
                raw,
                ..
            } => {
                if scalar_tag == f32::TYPE_TAG {
                    serve_compress(
                        &mut self.pipes_f32,
                        shared,
                        name,
                        dims,
                        bound,
                        raw,
                        deadline,
                    )
                } else {
                    serve_compress(
                        &mut self.pipes_f64,
                        shared,
                        name,
                        dims,
                        bound,
                        raw,
                        deadline,
                    )
                }
            }
            Request::Decompress { blob, .. } => self.serve_decompress(&blob, deadline),
            Request::RegionRead {
                archive,
                var,
                origin,
                size,
                tolerant,
                ..
            } => self.serve_region(shared, &archive, &var, &origin, &size, tolerant, deadline),
            Request::ChaosPanic => chaos_panic_response(),
            // Control-plane kinds never reach the queue.
            Request::Ping | Request::Stats | Request::Shutdown => Response::Error {
                code: ErrorCode::Internal,
                message: "control request routed to a worker".into(),
            },
        }
    }

    fn serve_decompress(&mut self, blob: &[u8], deadline: Instant) -> Response {
        let header = match qoz_api::peek_header(blob) {
            Ok(h) => h,
            Err(e) => return error_from_codec(&e),
        };
        if header.scalar_tag == f32::TYPE_TAG {
            decompress_as::<f32>(&mut self.scratch_f32, blob, header.shape, deadline)
        } else if header.scalar_tag == f64::TYPE_TAG {
            decompress_as::<f64>(&mut self.scratch_f64, blob, header.shape, deadline)
        } else {
            Response::Error {
                code: ErrorCode::CorruptInput,
                message: "stream header carries an unknown scalar tag".into(),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn serve_region(
        &mut self,
        shared: &Shared,
        archive: &str,
        var: &str,
        origin: &[usize],
        size: &[usize],
        tolerant: bool,
        deadline: Instant,
    ) -> Response {
        let Some(root) = &shared.config.archive_root else {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: "this server has no --archive-root; region reads are disabled".into(),
            };
        };
        // Containment: requests name archives *relative to the root*;
        // absolute paths and any `..` component are rejected before
        // touching the filesystem.
        let rel = std::path::Path::new(archive);
        if rel.is_absolute()
            || rel
                .components()
                .any(|c| matches!(c, std::path::Component::ParentDir))
        {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: "archive path must be relative to the archive root, without '..'".into(),
            };
        }
        let path = root.join(rel);
        if !self.readers.contains_key(&path) {
            let reader = match ArchiveReader::open(&path.to_string_lossy()) {
                Ok(r) => r,
                Err(e) => return error_from_archive(&e),
            };
            self.readers.insert(path.clone(), reader);
        }
        let reader = &self.readers[&path];
        let entry = reader
            .toc()
            .vars
            .iter()
            .find(|v| v.name == var)
            .map(|v| v.scalar_tag);
        let Some(tag) = entry else {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("archive has no variable '{var}'"),
            };
        };
        let region = Region::new(origin, size);
        if tag == f32::TYPE_TAG {
            region_as::<f32>(
                reader,
                &mut self.scratch_f32,
                var,
                &region,
                tolerant,
                deadline,
            )
        } else {
            region_as::<f64>(
                reader,
                &mut self.scratch_f64,
                var,
                &region,
                tolerant,
                deadline,
            )
        }
    }
}

fn serve_compress<T: Scalar>(
    pipes: &mut HashMap<PipeKey, Pipeline<T>>,
    shared: &Shared,
    name: String,
    dims: Vec<usize>,
    bound: ErrorBound,
    raw: Vec<u8>,
    deadline: Instant,
) -> Response {
    let key = PipeKey {
        name,
        scalar_tag: T::TYPE_TAG,
        bound: BoundKey::of(bound),
    };
    if !pipes.contains_key(&key) {
        let session = match Session::builder()
            .backend(BackendId::Qoz)
            .bound(bound)
            .build()
        {
            Ok(s) => s,
            Err(e) => return error_from_api(&e),
        };
        let mut pipe = session.pipeline::<T>();
        // Warm restart: a persisted plan for this exact (shape, scalar,
        // bound) key lets the very first call replay warm.
        let plan_key = PlanKey {
            dims: dims.clone(),
            scalar_tag: T::TYPE_TAG,
            bound: BoundKey::of(bound),
        };
        if let Some(snap) = shared
            .plans
            .lock()
            .expect("plan map lock poisoned")
            .get(&plan_key)
        {
            pipe.prime_plan(snap.clone());
        }
        pipes.insert(key.clone(), pipe);
    }
    let pipe = pipes.get_mut(&key).expect("pipeline just inserted");
    let mut vals = Vec::with_capacity(raw.len() / T::BYTES);
    for chunk in raw.chunks_exact(T::BYTES) {
        vals.push(T::from_le_slice(chunk));
    }
    let data = NdArray::from_vec(Shape::new(&dims), vals);
    let out = match pipe.compress(&data) {
        Ok(o) => o,
        Err(e) => return error_from_api(&e),
    };
    // Stage boundary: tuning + compression are done; don't ship bytes
    // the client has already given up on.
    if Instant::now() > deadline {
        return deadline_response();
    }
    let outcome_byte = match pipe.last_outcome() {
        None => 0,
        Some(PlanOutcome::ColdTuned) => 1,
        Some(PlanOutcome::WarmHit) => 2,
        Some(PlanOutcome::WarmRescaled) => 3,
        Some(PlanOutcome::Retuned) => 4,
    };
    if let Some(outcome) = pipe.last_outcome() {
        shared.metrics.plan_outcome(outcome);
        if matches!(outcome, PlanOutcome::ColdTuned | PlanOutcome::Retuned) {
            // Publish the fresh plan so (a) sibling workers prime their
            // next pipeline from it and (b) shutdown persists it.
            if let Some(snap) = pipe.plan_snapshot() {
                shared
                    .plans
                    .lock()
                    .expect("plan map lock poisoned")
                    .insert(PlanKey::of_snapshot(&snap), snap);
            }
        }
    }
    Response::Compressed {
        outcome: outcome_byte,
        blob: out.blob,
    }
}

fn decompress_as<T: Scalar>(
    scratch: &mut Scratch<T>,
    blob: &[u8],
    shape: Shape,
    deadline: Instant,
) -> Response {
    let mut out = NdArray::<T>::zeros(shape);
    if let Err(e) = qoz_api::BackendRegistry::new().decompress_into(blob, scratch, &mut out) {
        return error_from_codec(&e);
    }
    if Instant::now() > deadline {
        return deadline_response();
    }
    let mut raw = Vec::with_capacity(out.len() * T::BYTES);
    for &v in out.as_slice() {
        raw.extend_from_slice(&v.to_le_bytes_vec());
    }
    Response::Decompressed {
        scalar_tag: T::TYPE_TAG,
        dims: shape.dims().to_vec(),
        raw,
    }
}

fn region_as<T: Scalar>(
    reader: &ArchiveReader<FileSource>,
    scratch: &mut Scratch<T>,
    var: &str,
    region: &Region,
    tolerant: bool,
    deadline: Instant,
) -> Response {
    let (slab, faults) = if tolerant {
        match reader.read_region_tolerant::<T>(var, region, scratch) {
            Ok((slab, faults)) => (slab, faults.len() as u64),
            Err(e) => return error_from_archive(&e),
        }
    } else {
        match reader.read_region_with::<T>(var, region, scratch) {
            Ok(slab) => (slab, 0),
            Err(e) => return error_from_archive(&e),
        }
    };
    if Instant::now() > deadline {
        return deadline_response();
    }
    let mut raw = Vec::with_capacity(slab.len() * T::BYTES);
    for &v in slab.as_slice() {
        raw.extend_from_slice(&v.to_le_bytes_vec());
    }
    Response::Region {
        scalar_tag: T::TYPE_TAG,
        dims: slab.shape().dims().to_vec(),
        faults,
        raw,
    }
}

/// Chaos builds honor the request by panicking inside the worker — the
/// whole point is to exercise the panic-isolation path end to end.
#[cfg(feature = "chaos")]
fn chaos_panic_response() -> Response {
    panic!("chaos: panic requested by client")
}

#[cfg(not(feature = "chaos"))]
fn chaos_panic_response() -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: "this server was built without the chaos feature".into(),
    }
}

fn deadline_response() -> Response {
    Response::Error {
        code: ErrorCode::DeadlineExceeded,
        message: "request deadline expired before completion".into(),
    }
}

fn error_from_codec(e: &CodecError) -> Response {
    let code = if e.is_newer_format() {
        ErrorCode::NewerFormat
    } else {
        match e {
            CodecError::Io(_) => ErrorCode::Io,
            _ => ErrorCode::CorruptInput,
        }
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn error_from_archive(e: &ArchiveError) -> Response {
    let code = if e.is_newer_format() {
        ErrorCode::NewerFormat
    } else {
        match e {
            ArchiveError::Io(_) => ErrorCode::Io,
            ArchiveError::UnknownVariable(_)
            | ArchiveError::DuplicateVariable(_)
            | ArchiveError::RegionOutOfBounds => ErrorCode::BadRequest,
            _ => ErrorCode::CorruptInput,
        }
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

fn error_from_api(e: &ApiError) -> Response {
    let code = match e {
        ApiError::Codec(c) if c.is_newer_format() => ErrorCode::NewerFormat,
        ApiError::Codec(CodecError::Io(_)) => ErrorCode::Io,
        ApiError::Codec(_) => ErrorCode::CorruptInput,
        _ => ErrorCode::BadRequest,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}
