//! Deterministic fault injection (feature `chaos`).
//!
//! Robustness claims are only as good as the failures actually driven
//! through the system. This module wraps the two byte boundaries the
//! daemon trusts least — the network [`Channel`] and the archive
//! [`ByteSource`] — with injectors that reproduce the classic failure
//! menagerie *deterministically from a seed*: torn writes, short reads,
//! stalls, and bit-flips. Determinism matters more than realism here; a
//! fault that cannot be replayed cannot be debugged, so every fault is
//! a pure function of the seed and the byte position, never of wall
//! clock or scheduling.
//!
//! The injectors are plain wrappers: production code paths run
//! unchanged underneath them, which is the point — the fault-injection
//! suite exercises the *real* server and the *real* reader, not mocks.

use crate::channel::Channel;
use qoz_archive::{ArchiveError, ByteSource};
use std::io::{Read, Write};
use std::time::Duration;

/// One injectable fault at the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Pass everything through untouched (the control arm).
    None,
    /// Deliver only the first `after` outgoing bytes, then sever the
    /// connection — a mid-frame disconnect as the peer sees it.
    TornWrite {
        /// Outgoing bytes delivered before the cut.
        after: u64,
    },
    /// Deliver only the first `after` incoming bytes, then report EOF.
    ShortRead {
        /// Incoming bytes delivered before the EOF.
        after: u64,
    },
    /// Sleep before the first byte is read (a slow peer).
    Stall {
        /// Stall length in milliseconds.
        ms: u64,
    },
    /// Flip one bit of the `at`-th outgoing byte (checksum fodder).
    BitFlip {
        /// Zero-based index into the outgoing byte stream.
        at: u64,
        /// Bit index 0–7.
        bit: u8,
    },
}

impl Fault {
    /// Derive a fault from a seed: same seed, same fault, forever. The
    /// positions are kept small so they land inside a frame header or
    /// early payload, where they bite hardest.
    pub fn from_seed(seed: u64) -> Fault {
        let mut s = seed;
        let roll = crate::splitmix64(&mut s);
        let pos = crate::splitmix64(&mut s) % 32;
        let bit = (crate::splitmix64(&mut s) % 8) as u8;
        match roll % 4 {
            0 => Fault::TornWrite { after: pos },
            1 => Fault::ShortRead { after: pos },
            2 => Fault::Stall { ms: 1 + pos % 10 },
            _ => Fault::BitFlip { at: pos, bit },
        }
    }
}

/// A [`Channel`] that injects one [`Fault`] into an inner channel.
pub struct ChaosChannel {
    inner: Box<dyn Channel>,
    fault: Fault,
    written: u64,
    read: u64,
    stalled: bool,
}

impl std::fmt::Debug for ChaosChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosChannel")
            .field("fault", &self.fault)
            .field("written", &self.written)
            .field("read", &self.read)
            .finish()
    }
}

impl ChaosChannel {
    /// Wrap `inner`, injecting `fault`.
    pub fn new(inner: Box<dyn Channel>, fault: Fault) -> ChaosChannel {
        ChaosChannel {
            inner,
            fault,
            written: 0,
            read: 0,
            stalled: false,
        }
    }

    /// Wrap `inner` with the fault derived from `seed`.
    pub fn from_seed(inner: Box<dyn Channel>, seed: u64) -> ChaosChannel {
        ChaosChannel::new(inner, Fault::from_seed(seed))
    }

    /// The injected fault (for test assertions/logs).
    pub fn fault(&self) -> Fault {
        self.fault
    }
}

impl Write for ChaosChannel {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.fault {
            Fault::TornWrite { after } => {
                if self.written >= after {
                    // The torn half is already on the wire; sever so the
                    // peer sees a mid-frame disconnect, not a stall.
                    let _ = self.inner.shutdown();
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::BrokenPipe,
                        "chaos: torn write",
                    ));
                }
                let allowed = ((after - self.written) as usize).min(buf.len());
                let n = self.inner.write(&buf[..allowed])?;
                self.written += n as u64;
                Ok(n)
            }
            Fault::BitFlip { at, bit } => {
                let start = self.written;
                let end = start + buf.len() as u64;
                let n = if (start..end).contains(&at) {
                    let mut copy = buf.to_vec();
                    copy[(at - start) as usize] ^= 1 << bit;
                    self.inner.write(&copy)?
                } else {
                    self.inner.write(buf)?
                };
                self.written += n as u64;
                Ok(n)
            }
            _ => {
                let n = self.inner.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl Read for ChaosChannel {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Fault::Stall { ms } = self.fault {
            if !self.stalled {
                self.stalled = true;
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if let Fault::ShortRead { after } = self.fault {
            if self.read >= after {
                return Ok(0); // injected EOF
            }
            let cap = ((after - self.read) as usize).min(buf.len());
            let n = self.inner.read(&mut buf[..cap])?;
            self.read += n as u64;
            return Ok(n);
        }
        let n = self.inner.read(buf)?;
        self.read += n as u64;
        Ok(n)
    }
}

impl Channel for ChaosChannel {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(d)
    }
    fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_write_timeout(d)
    }
    fn peer(&self) -> String {
        format!("chaos({:?})<{}>", self.fault, self.inner.peer())
    }
    fn shutdown(&self) -> std::io::Result<()> {
        self.inner.shutdown()
    }
}

/// A [`ByteSource`] that damages an inner source: an optional bit-flip
/// at an absolute offset and/or an apparent truncation.
#[derive(Debug)]
pub struct ChaosByteSource<S> {
    inner: S,
    flip: Option<(u64, u8)>,
    truncate_at: Option<u64>,
}

impl<S: ByteSource> ChaosByteSource<S> {
    /// Pass-through wrapper; add faults with the builder methods.
    pub fn new(inner: S) -> Self {
        ChaosByteSource {
            inner,
            flip: None,
            truncate_at: None,
        }
    }

    /// Flip `bit` of the byte at absolute `offset`.
    pub fn with_bit_flip(mut self, offset: u64, bit: u8) -> Self {
        self.flip = Some((offset, bit));
        self
    }

    /// Make the source appear to end at `len` bytes.
    pub fn with_truncation(mut self, len: u64) -> Self {
        self.truncate_at = Some(len);
        self
    }
}

impl<S: ByteSource> ByteSource for ChaosByteSource<S> {
    fn len(&self) -> u64 {
        match self.truncate_at {
            Some(t) => self.inner.len().min(t),
            None => self.inner.len(),
        }
    }

    fn read_at(&self, offset: u64, len: usize) -> qoz_archive::Result<Vec<u8>> {
        if let Some(t) = self.truncate_at {
            let end = offset
                .checked_add(len as u64)
                .ok_or(ArchiveError::Truncated)?;
            if end > t {
                return Err(ArchiveError::Truncated);
            }
        }
        let mut bytes = self.inner.read_at(offset, len)?;
        if let Some((at, bit)) = self.flip {
            if at >= offset && at < offset + len as u64 {
                bytes[(at - offset) as usize] ^= 1 << bit;
            }
        }
        Ok(bytes)
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Endpoint, Listener};
    use qoz_archive::SliceSource;

    fn unix_pair(tag: &str) -> (Box<dyn Channel>, Box<dyn Channel>) {
        let path = std::env::temp_dir()
            .join(format!("qoz_chaos_{tag}_{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let listener = Listener::bind(&Endpoint::Unix(path.clone())).unwrap();
        let client = Endpoint::Unix(path).connect().unwrap();
        let server = loop {
            if let Some(c) = listener.accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        (client, server)
    }

    #[test]
    fn faults_derive_deterministically_from_seeds() {
        for seed in 0..64u64 {
            assert_eq!(Fault::from_seed(seed), Fault::from_seed(seed));
        }
        // The menu is actually diverse across seeds.
        let kinds: std::collections::HashSet<u8> = (0..64u64)
            .map(|s| match Fault::from_seed(s) {
                Fault::None => 0,
                Fault::TornWrite { .. } => 1,
                Fault::ShortRead { .. } => 2,
                Fault::Stall { .. } => 3,
                Fault::BitFlip { .. } => 4,
            })
            .collect();
        assert!(kinds.len() >= 3, "seeds cover several fault kinds");
    }

    #[test]
    fn torn_write_delivers_prefix_then_severs() {
        let (client, mut server) = unix_pair("torn");
        let mut chaos = ChaosChannel::new(client, Fault::TornWrite { after: 5 });
        let err = chaos.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        let mut got = Vec::new();
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"01234", "exactly the torn prefix arrives");
    }

    #[test]
    fn short_read_reports_eof_after_budget() {
        let (mut client, server) = unix_pair("short");
        client.write_all(b"abcdefgh").unwrap();
        let mut chaos = ChaosChannel::new(server, Fault::ShortRead { after: 3 });
        let mut buf = [0u8; 8];
        let mut total = 0;
        loop {
            let n = chaos.read(&mut buf[total..]).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(&buf[..total], b"abc");
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let (client, mut server) = unix_pair("flip");
        let mut chaos = ChaosChannel::new(client, Fault::BitFlip { at: 2, bit: 7 });
        chaos.write_all(&[0u8; 6]).unwrap();
        chaos.flush().unwrap();
        drop(chaos);
        let mut got = Vec::new();
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got, vec![0, 0, 0x80, 0, 0, 0]);
    }

    #[test]
    fn chaos_byte_source_flips_and_truncates() {
        let data: Vec<u8> = (0..=49).collect();
        let flipped = ChaosByteSource::new(SliceSource::new(&data)).with_bit_flip(10, 0);
        assert_eq!(flipped.read_at(8, 4).unwrap(), vec![8, 9, 11, 11]);
        assert_eq!(
            flipped.read_at(20, 2).unwrap(),
            vec![20, 21],
            "elsewhere untouched"
        );

        let short = ChaosByteSource::new(SliceSource::new(&data)).with_truncation(30);
        assert_eq!(short.len(), 30);
        assert!(short.read_at(28, 2).is_ok());
        assert!(matches!(short.read_at(28, 4), Err(ArchiveError::Truncated)));
    }
}
