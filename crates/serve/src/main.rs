//! `qoz-serve` — run the compression daemon from the command line.
//!
//! ```text
//! qoz-serve --listen unix:/tmp/qoz.sock --plan-file /tmp/qoz.plans
//! qoz-serve --listen tcp:127.0.0.1:7070 --workers 4 --archive-root /data
//! ```
//!
//! SIGTERM and SIGINT trigger the graceful path: drain in-flight
//! requests, reject new ones with `ShuttingDown`, persist tuned plans,
//! exit 0. Exit codes follow the CLI convention: 1 runtime, 2 usage.

use qoz_serve::{signals, Endpoint, Server, ServerConfig, StatsSnapshot};
use std::time::Duration;

const USAGE: &str = "\
qoz-serve: fault-tolerant compression daemon

USAGE:
    qoz-serve --listen <ENDPOINT> [OPTIONS]

ENDPOINT:
    unix:/path/to.sock | tcp:HOST:PORT (a bare /path means unix)

OPTIONS:
    --workers <N>          worker threads                    [default: 2]
    --queue <N>            admission queue depth             [default: 32]
    --budget-ms <N>        default per-request deadline      [default: 30000]
    --plan-file <PATH>     persist/prime tuned plans here
    --archive-root <DIR>   serve region reads from this directory
    --max-frame <BYTES>    reject larger request frames      [default: 256 MiB]
    --worker-delay-ms <N>  artificial service time (testing) [default: 0]
    -h, --help             show this help
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut endpoint: Option<Endpoint> = None;
    // Flags may appear in any order relative to --listen, so value
    // flags are staged and applied once the config exists.
    let mut staged: Vec<(String, String)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--listen" => {
                let v = it.next().ok_or("--listen needs an endpoint")?;
                endpoint = Some(Endpoint::parse(v)?);
            }
            flag @ ("--workers" | "--queue" | "--budget-ms" | "--max-frame"
            | "--worker-delay-ms" | "--plan-file" | "--archive-root") => {
                let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                staged.push((flag.to_string(), v.clone()));
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let endpoint = endpoint.ok_or("--listen is required")?;
    let mut cfg = ServerConfig::new(endpoint);
    for (flag, v) in staged {
        let num = || -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|_| format!("{flag} wants a number, got '{v}'"))
        };
        match flag.as_str() {
            "--workers" => cfg.workers = num()?.max(1) as usize,
            "--queue" => cfg.queue_depth = num()?.max(1) as usize,
            "--budget-ms" => cfg.default_budget = Duration::from_millis(num()?.max(1)),
            "--max-frame" => cfg.max_frame = num()? as usize,
            "--worker-delay-ms" => cfg.worker_delay = Duration::from_millis(num()?),
            "--plan-file" => cfg.plan_path = Some(v.into()),
            "--archive-root" => cfg.archive_root = Some(v.into()),
            _ => unreachable!("staged flags are pre-filtered"),
        }
    }
    Ok(cfg)
}

fn print_stats(s: &StatsSnapshot) {
    eprintln!(
        "qoz-serve: served {} | shed {} | deadline-missed {} | panics {} | bad frames {} | warm {} | cold {} | drain-rejects {}",
        s.served,
        s.shed,
        s.deadline_missed,
        s.worker_panics,
        s.bad_frames,
        s.warm_hits,
        s.cold_tunes,
        s.shutdown_rejects
    );
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return 0;
        }
        Err(msg) => {
            eprintln!("qoz-serve: {msg}");
            eprintln!("{USAGE}");
            return 2;
        }
    };
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qoz-serve: cannot start: {e}");
            return 1;
        }
    };
    signals::install();
    eprintln!("qoz-serve: listening on {}", server.endpoint());
    // Park until a signal or a Shutdown request flips the drain flag.
    loop {
        if signals::stop_requested() {
            server.begin_shutdown();
        }
        if server.is_draining() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("qoz-serve: draining…");
    let stats = server.stats();
    // Final telemetry dump on stdout: the same Prometheus-style text a
    // live `qoz remote stats --text` renders, for post-mortem scraping.
    let exposition = server.metrics_text();
    match server.shutdown() {
        Ok(n) => {
            print_stats(&stats);
            print!("{exposition}");
            eprintln!("qoz-serve: stopped cleanly; {n} tuned plan(s) persisted");
            0
        }
        Err(e) => {
            print_stats(&stats);
            print!("{exposition}");
            eprintln!("qoz-serve: failed to persist plans: {e}");
            1
        }
    }
}

fn main() {
    std::process::exit(run());
}
