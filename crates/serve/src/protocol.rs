//! The qoz-serve wire protocol: length-prefixed, checksummed frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! +--------+------+----------------+-----------+----------------+
//! | "QZRP" | kind | payload_len u32| payload   | fnv1a64(payload)|
//! | 4 B    | 1 B  | LE             | len bytes | u64 LE          |
//! +--------+------+----------------+-----------+----------------+
//! ```
//!
//! The fixed 9-byte header is read first, validated (magic, known kind,
//! sane length), then exactly `payload_len + 8` more bytes. A frame can
//! therefore fail in only four typed ways — bad magic, unknown kind,
//! oversized declared length, checksum mismatch — and every one of them
//! is distinguishable from "the peer hung up" (`Io`). Nothing in this
//! module trusts a single byte it hasn't validated: a malicious or
//! fault-injected peer can at worst earn itself a [`FrameError`],
//! never a panic or an allocation proportional to a lied-about length.
//!
//! Payload encodings reuse the workspace byte toolkit
//! ([`ByteWriter`]/[`ByteReader`]), so request decoding inherits the
//! same varint/length-prefix validation the codec streams use.

use qoz_codec::stream::ErrorBound;
use qoz_codec::{ByteReader, ByteWriter, CodecError};
use std::io::{Read, Write};

/// Frame magic: "QZRP" (QoZ Request Protocol).
pub const FRAME_MAGIC: [u8; 4] = *b"QZRP";
/// Fixed frame header length: magic + kind + payload length.
pub const FRAME_HEADER_LEN: usize = 9;
/// Hard cap on a frame payload. A declared length above this is
/// rejected *before* any allocation — the first line of defense against
/// a peer that lies about its payload size.
pub const MAX_PAYLOAD: usize = 256 << 20;

/// Request frame kinds.
pub mod kind {
    /// Liveness probe.
    pub const PING: u8 = 0x01;
    /// Compress one snapshot through a warm pipeline.
    pub const COMPRESS: u8 = 0x02;
    /// Decompress any workspace stream.
    pub const DECOMPRESS: u8 = 0x03;
    /// Region query against an archive file the server can reach.
    pub const REGION_READ: u8 = 0x04;
    /// Graceful shutdown: drain, persist plans, stop.
    pub const SHUTDOWN: u8 = 0x05;
    /// Server counters.
    pub const STATS: u8 = 0x06;
    /// Panic the handling worker. Only honored by servers built with
    /// the `chaos` feature; everyone else answers `BadRequest`.
    pub const CHAOS_PANIC: u8 = 0x7E;

    /// Response kinds mirror requests with the high bit set.
    pub const PONG: u8 = 0x81;
    /// Successful compress: outcome + blob.
    pub const COMPRESSED: u8 = 0x82;
    /// Successful decompress: scalar/shape/raw bytes.
    pub const DECOMPRESSED: u8 = 0x83;
    /// Successful region read: shape, fault count, raw bytes.
    pub const REGION: u8 = 0x84;
    /// Typed failure: code + message.
    pub const ERROR: u8 = 0x85;
    /// Server counters snapshot.
    pub const STATS_OK: u8 = 0x86;
    /// Shutdown acknowledged; the server is draining.
    pub const SHUTDOWN_OK: u8 = 0x87;
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (includes EOF mid-frame and read timeouts).
    Io(std::io::Error),
    /// The first four bytes are not [`FRAME_MAGIC`].
    BadMagic,
    /// The kind byte is not one this build knows.
    BadKind(u8),
    /// Declared payload length exceeds the cap.
    Oversized(usize),
    /// Payload bytes do not hash to the trailing checksum.
    BadChecksum,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O: {e}"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::Oversized(n) => write!(f, "declared payload of {n} bytes exceeds cap"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

fn known_kind(k: u8) -> bool {
    matches!(
        k,
        kind::PING
            | kind::COMPRESS
            | kind::DECOMPRESS
            | kind::REGION_READ
            | kind::SHUTDOWN
            | kind::STATS
            | kind::CHAOS_PANIC
            | kind::PONG
            | kind::COMPRESSED
            | kind::DECOMPRESSED
            | kind::REGION
            | kind::ERROR
            | kind::STATS_OK
            | kind::SHUTDOWN_OK
    )
}

/// Write one frame.
pub fn write_frame(w: &mut dyn Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut head = [0u8; FRAME_HEADER_LEN];
    head[..4].copy_from_slice(&FRAME_MAGIC);
    head[4] = kind;
    head[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.write_all(&qoz_archive::fnv1a(payload).to_le_bytes())?;
    w.flush()
}

/// Read one frame, returning `(kind, payload)`.
///
/// `max_payload` lets a server cap request sizes below [`MAX_PAYLOAD`];
/// the declared length is checked against it before any allocation.
pub fn read_frame(r: &mut dyn Read, max_payload: usize) -> Result<(u8, Vec<u8>), FrameError> {
    let mut head = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut head)?;
    if head[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let kind = head[4];
    if !known_kind(kind) {
        return Err(FrameError::BadKind(kind));
    }
    let len = u32::from_le_bytes([head[5], head[6], head[7], head[8]]) as usize;
    if len > max_payload.min(MAX_PAYLOAD) {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    if qoz_archive::fnv1a(&payload) != u64::from_le_bytes(sum) {
        return Err(FrameError::BadChecksum);
    }
    Ok((kind, payload))
}

/// Typed failure codes carried by [`kind::ERROR`] responses. The
/// numeric values are wire format — append, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame itself was malformed.
    BadFrame = 1,
    /// The frame was sound but the request inside it was not.
    BadRequest = 2,
    /// Admission queue full — retry with backoff.
    Overloaded = 3,
    /// The request's deadline expired before (or while) serving it.
    DeadlineExceeded = 4,
    /// The handling worker panicked; it has been replaced.
    WorkerPanic = 5,
    /// The server is draining for shutdown.
    ShuttingDown = 6,
    /// Input data (stream or archive) is damaged.
    CorruptInput = 7,
    /// Input was written by a newer format than this server reads.
    NewerFormat = 8,
    /// Server-side I/O failure.
    Io = 9,
    /// Anything else.
    Internal = 10,
}

impl ErrorCode {
    /// Parse a wire byte.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadRequest,
            3 => ErrorCode::Overloaded,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::WorkerPanic,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::CorruptInput,
            8 => ErrorCode::NewerFormat,
            9 => ErrorCode::Io,
            10 => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// `true` for failures worth retrying after a backoff (the server
    /// is healthy, just busy or draining).
    pub fn is_transient(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::ShuttingDown)
    }

    /// Every code, in wire order. Servers use this to pre-register one
    /// error counter per code so the exposition always shows the full
    /// family, zeros included.
    pub const ALL: [ErrorCode; 10] = [
        ErrorCode::BadFrame,
        ErrorCode::BadRequest,
        ErrorCode::Overloaded,
        ErrorCode::DeadlineExceeded,
        ErrorCode::WorkerPanic,
        ErrorCode::ShuttingDown,
        ErrorCode::CorruptInput,
        ErrorCode::NewerFormat,
        ErrorCode::Io,
        ErrorCode::Internal,
    ];

    /// Stable snake_case name, used as the `code` label on the
    /// `qoz_errors_total` metric family. Part of the exposition format:
    /// rename only with a metrics version bump.
    pub fn as_label(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::WorkerPanic => "worker_panic",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::CorruptInput => "corrupt_input",
            ErrorCode::NewerFormat => "newer_format",
            ErrorCode::Io => "io",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Compress one raw snapshot.
    Compress {
        /// Pipeline key: which variable this snapshot belongs to.
        name: String,
        /// Element type tag (`Scalar::TYPE_TAG`).
        scalar_tag: u8,
        /// Array dimensions.
        dims: Vec<usize>,
        /// Error bound to honor.
        bound: ErrorBound,
        /// Per-request deadline budget in ms (0 = server default).
        budget_ms: u64,
        /// Raw little-endian element bytes.
        raw: Vec<u8>,
    },
    /// Decompress a workspace stream.
    Decompress {
        /// Per-request deadline budget in ms (0 = server default).
        budget_ms: u64,
        /// The compressed stream.
        blob: Vec<u8>,
    },
    /// Region query against an archive file.
    RegionRead {
        /// Archive path (resolved under the server's archive root).
        archive: String,
        /// Variable name inside the archive.
        var: String,
        /// Region origin.
        origin: Vec<usize>,
        /// Region extent.
        size: Vec<usize>,
        /// Per-request deadline budget in ms (0 = server default).
        budget_ms: u64,
        /// Serve around damaged chunks (zero-filled) instead of failing.
        tolerant: bool,
    },
    /// Graceful shutdown.
    Shutdown,
    /// Server counters.
    Stats,
    /// Panic the worker (chaos builds only).
    ChaosPanic,
}

impl Request {
    /// Wire kind byte of this request.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Ping => kind::PING,
            Request::Compress { .. } => kind::COMPRESS,
            Request::Decompress { .. } => kind::DECOMPRESS,
            Request::RegionRead { .. } => kind::REGION_READ,
            Request::Shutdown => kind::SHUTDOWN,
            Request::Stats => kind::STATS,
            Request::ChaosPanic => kind::CHAOS_PANIC,
        }
    }

    /// Stable snake_case name, used as the `kind` label on the
    /// per-request metric families (`qoz_requests_total`,
    /// `qoz_request_latency_ns`, `qoz_request_payload_bytes`).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Compress { .. } => "compress",
            Request::Decompress { .. } => "decompress",
            Request::RegionRead { .. } => "region_read",
            Request::Shutdown => "shutdown",
            Request::Stats => "stats",
            Request::ChaosPanic => "chaos_panic",
        }
    }

    /// Serialize the payload (the frame kind travels in the header).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::Ping | Request::Shutdown | Request::Stats | Request::ChaosPanic => {}
            Request::Compress {
                name,
                scalar_tag,
                dims,
                bound,
                budget_ms,
                raw,
            } => {
                w.put_len_prefixed(name.as_bytes());
                w.put_u8(*scalar_tag);
                put_dims(&mut w, dims);
                put_bound(&mut w, *bound);
                w.put_varint(*budget_ms);
                w.put_len_prefixed(raw);
            }
            Request::Decompress { budget_ms, blob } => {
                w.put_varint(*budget_ms);
                w.put_len_prefixed(blob);
            }
            Request::RegionRead {
                archive,
                var,
                origin,
                size,
                budget_ms,
                tolerant,
            } => {
                w.put_len_prefixed(archive.as_bytes());
                w.put_len_prefixed(var.as_bytes());
                put_dims(&mut w, origin);
                put_dims(&mut w, size);
                w.put_varint(*budget_ms);
                w.put_u8(u8::from(*tolerant));
            }
        }
        w.finish()
    }

    /// Parse a request payload for frame `kind`. Every structural
    /// invariant is enforced here so handlers downstream can trust the
    /// value.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> qoz_codec::Result<Request> {
        let mut r = ByteReader::new(payload);
        let req = match kind_byte {
            kind::PING => Request::Ping,
            kind::SHUTDOWN => Request::Shutdown,
            kind::STATS => Request::Stats,
            kind::CHAOS_PANIC => Request::ChaosPanic,
            kind::COMPRESS => {
                let name = get_string(&mut r, "variable name")?;
                let scalar_tag = r.get_u8()?;
                let dims = get_dims(&mut r)?;
                let bound = get_bound(&mut r)?;
                let budget_ms = r.get_varint()?;
                let raw = r.get_len_prefixed()?.to_vec();
                let elems: usize = dims.iter().product();
                let elem_bytes = match scalar_tag {
                    t if t == <f32 as qoz_tensor::Scalar>::TYPE_TAG => 4,
                    t if t == <f64 as qoz_tensor::Scalar>::TYPE_TAG => 8,
                    _ => return Err(CodecError::Corrupt("unknown scalar tag in request")),
                };
                if elems.checked_mul(elem_bytes) != Some(raw.len()) {
                    return Err(CodecError::Corrupt("raw byte count disagrees with shape"));
                }
                Request::Compress {
                    name,
                    scalar_tag,
                    dims,
                    bound,
                    budget_ms,
                    raw,
                }
            }
            kind::DECOMPRESS => Request::Decompress {
                budget_ms: r.get_varint()?,
                blob: r.get_len_prefixed()?.to_vec(),
            },
            kind::REGION_READ => {
                let archive = get_string(&mut r, "archive path")?;
                let var = get_string(&mut r, "variable name")?;
                let origin = get_dims_allow_zero(&mut r)?;
                let size = get_dims(&mut r)?;
                if origin.len() != size.len() {
                    return Err(CodecError::Corrupt("region rank mismatch"));
                }
                Request::RegionRead {
                    archive,
                    var,
                    origin,
                    size,
                    budget_ms: r.get_varint()?,
                    tolerant: match r.get_u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(CodecError::Corrupt("bad tolerant flag")),
                    },
                }
            }
            _ => return Err(CodecError::Corrupt("not a request kind")),
        };
        if r.remaining() != 0 {
            return Err(CodecError::Corrupt("trailing bytes in request"));
        }
        Ok(req)
    }
}

/// Server counters, as carried by a [`Response::Stats`] frame.
///
/// **Wire forward-compatibility contract.** The payload is the eight
/// legacy varints below, in order, optionally followed by a
/// length-prefixed telemetry snapshot blob, optionally followed by
/// further extension bytes this version does not know about. Old
/// clients stop after the eight varints (their decoder has always
/// tolerated what the frame checksum already covers); this decoder
/// parses the telemetry extension when present and *skips* any trailing
/// extension bytes instead of rejecting them, so the next extension can
/// be appended the same way. New fields must only ever be appended.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted and answered (any outcome).
    pub served: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Requests that missed their deadline.
    pub deadline_missed: u64,
    /// Handler panics caught (== workers replaced).
    pub worker_panics: u64,
    /// Malformed frames answered with `BadFrame`.
    pub bad_frames: u64,
    /// Compress calls served from a warm plan.
    pub warm_hits: u64,
    /// Compress calls that cold-tuned or retuned.
    pub cold_tunes: u64,
    /// Requests rejected because the server was draining.
    pub shutdown_rejects: u64,
    /// Full per-instance telemetry (counters, error tallies, latency
    /// and payload-size histograms, plan-cache outcomes). `None` when
    /// the server predates the extension.
    pub telemetry: Option<qoz_telemetry::Snapshot>,
}

impl StatsSnapshot {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for v in [
            self.served,
            self.shed,
            self.deadline_missed,
            self.worker_panics,
            self.bad_frames,
            self.warm_hits,
            self.cold_tunes,
            self.shutdown_rejects,
        ] {
            w.put_varint(v);
        }
        if let Some(t) = &self.telemetry {
            w.put_len_prefixed(&t.encode());
        }
        w.finish()
    }

    /// Decode, consuming the entire remaining payload (unknown future
    /// extension bytes are skipped — see the type-level contract).
    fn decode(r: &mut ByteReader) -> qoz_codec::Result<StatsSnapshot> {
        let mut snap = StatsSnapshot {
            served: r.get_varint()?,
            shed: r.get_varint()?,
            deadline_missed: r.get_varint()?,
            worker_panics: r.get_varint()?,
            bad_frames: r.get_varint()?,
            warm_hits: r.get_varint()?,
            cold_tunes: r.get_varint()?,
            shutdown_rejects: r.get_varint()?,
            telemetry: None,
        };
        if r.remaining() > 0 {
            let blob = r.get_len_prefixed()?;
            snap.telemetry = Some(
                qoz_telemetry::Snapshot::decode(blob)
                    .map_err(|_| CodecError::Corrupt("bad telemetry extension"))?,
            );
        }
        // Skip extensions newer than this decoder.
        let trailing = r.remaining();
        if trailing > 0 {
            r.get_bytes(trailing)?;
        }
        Ok(snap)
    }
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// Compressed stream.
    Compressed {
        /// What the plan cache did: 0 = not applicable, 1 = cold tune,
        /// 2 = warm hit, 3 = warm rescale, 4 = retune.
        outcome: u8,
        /// The compressed bytes (identical to the local path).
        blob: Vec<u8>,
    },
    /// Reconstructed raw data.
    Decompressed {
        /// Element type tag.
        scalar_tag: u8,
        /// Array dimensions.
        dims: Vec<usize>,
        /// Raw little-endian element bytes.
        raw: Vec<u8>,
    },
    /// Region slab (possibly degraded when `faults > 0`).
    Region {
        /// Element type tag.
        scalar_tag: u8,
        /// Slab dimensions.
        dims: Vec<usize>,
        /// Damaged chunks zero-filled in the slab (tolerant mode).
        faults: u64,
        /// Raw little-endian element bytes.
        raw: Vec<u8>,
    },
    /// Typed failure.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Counters snapshot.
    Stats(StatsSnapshot),
    /// Shutdown acknowledged.
    ShutdownOk,
}

impl Response {
    /// Wire kind byte of this response.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Pong => kind::PONG,
            Response::Compressed { .. } => kind::COMPRESSED,
            Response::Decompressed { .. } => kind::DECOMPRESSED,
            Response::Region { .. } => kind::REGION,
            Response::Error { .. } => kind::ERROR,
            Response::Stats(_) => kind::STATS_OK,
            Response::ShutdownOk => kind::SHUTDOWN_OK,
        }
    }

    /// Serialize the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Pong | Response::ShutdownOk => {}
            Response::Compressed { outcome, blob } => {
                w.put_u8(*outcome);
                w.put_len_prefixed(blob);
            }
            Response::Decompressed {
                scalar_tag,
                dims,
                raw,
            } => {
                w.put_u8(*scalar_tag);
                put_dims(&mut w, dims);
                w.put_len_prefixed(raw);
            }
            Response::Region {
                scalar_tag,
                dims,
                faults,
                raw,
            } => {
                w.put_u8(*scalar_tag);
                put_dims(&mut w, dims);
                w.put_varint(*faults);
                w.put_len_prefixed(raw);
            }
            Response::Error { code, message } => {
                w.put_u8(*code as u8);
                w.put_len_prefixed(message.as_bytes());
            }
            Response::Stats(s) => w.put_bytes(&s.encode()),
        }
        w.finish()
    }

    /// Parse a response payload for frame `kind`.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> qoz_codec::Result<Response> {
        let mut r = ByteReader::new(payload);
        let resp = match kind_byte {
            kind::PONG => Response::Pong,
            kind::SHUTDOWN_OK => Response::ShutdownOk,
            kind::COMPRESSED => {
                let outcome = r.get_u8()?;
                if outcome > 4 {
                    return Err(CodecError::Corrupt("bad plan outcome byte"));
                }
                Response::Compressed {
                    outcome,
                    blob: r.get_len_prefixed()?.to_vec(),
                }
            }
            kind::DECOMPRESSED => Response::Decompressed {
                scalar_tag: r.get_u8()?,
                dims: get_dims(&mut r)?,
                raw: r.get_len_prefixed()?.to_vec(),
            },
            kind::REGION => Response::Region {
                scalar_tag: r.get_u8()?,
                dims: get_dims(&mut r)?,
                faults: r.get_varint()?,
                raw: r.get_len_prefixed()?.to_vec(),
            },
            kind::ERROR => {
                let code = ErrorCode::from_u8(r.get_u8()?)
                    .ok_or(CodecError::Corrupt("unknown error code"))?;
                Response::Error {
                    code,
                    message: get_string(&mut r, "error message")?,
                }
            }
            kind::STATS_OK => Response::Stats(StatsSnapshot::decode(&mut r)?),
            _ => return Err(CodecError::Corrupt("not a response kind")),
        };
        if r.remaining() != 0 {
            return Err(CodecError::Corrupt("trailing bytes in response"));
        }
        Ok(resp)
    }
}

const MAX_NAME: usize = 4096;

fn get_string(r: &mut ByteReader, what: &'static str) -> qoz_codec::Result<String> {
    let bytes = r.get_len_prefixed()?;
    if bytes.len() > MAX_NAME {
        return Err(CodecError::Corrupt("string field implausibly long"));
    }
    String::from_utf8(bytes.to_vec()).map_err(|_| {
        let _ = what;
        CodecError::Corrupt("string field is not UTF-8")
    })
}

fn put_dims(w: &mut ByteWriter, dims: &[usize]) {
    w.put_u8(dims.len() as u8);
    for &d in dims {
        w.put_varint(d as u64);
    }
}

fn get_dims_with(r: &mut ByteReader, allow_zero: bool) -> qoz_codec::Result<Vec<usize>> {
    let nd = r.get_u8()? as usize;
    if nd == 0 || nd > qoz_tensor::MAX_NDIM {
        return Err(CodecError::Corrupt("bad rank"));
    }
    let mut dims = Vec::with_capacity(nd);
    for _ in 0..nd {
        let d = r.get_varint()?;
        if (!allow_zero && d == 0) || d > (1 << 40) {
            return Err(CodecError::Corrupt("bad dimension"));
        }
        dims.push(d as usize);
    }
    Ok(dims)
}

fn get_dims(r: &mut ByteReader) -> qoz_codec::Result<Vec<usize>> {
    get_dims_with(r, false)
}

fn get_dims_allow_zero(r: &mut ByteReader) -> qoz_codec::Result<Vec<usize>> {
    get_dims_with(r, true)
}

fn put_bound(w: &mut ByteWriter, bound: ErrorBound) {
    match bound {
        ErrorBound::Abs(v) => {
            w.put_u8(0);
            w.put_f64(v);
        }
        ErrorBound::Rel(v) => {
            w.put_u8(1);
            w.put_f64(v);
        }
    }
}

fn get_bound(r: &mut ByteReader) -> qoz_codec::Result<ErrorBound> {
    let kind_byte = r.get_u8()?;
    let v = r.get_f64()?;
    let bound = match kind_byte {
        0 => ErrorBound::Abs(v),
        1 => ErrorBound::Rel(v),
        _ => return Err(CodecError::Corrupt("bad bound kind")),
    };
    if !bound.is_valid() {
        return Err(CodecError::Corrupt("bad bound value"));
    }
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut wire = Vec::new();
        write_frame(&mut wire, req.kind(), &req.encode()).unwrap();
        let (k, payload) = read_frame(&mut wire.as_slice(), MAX_PAYLOAD).unwrap();
        assert_eq!(k, req.kind());
        assert_eq!(Request::decode(k, &payload).unwrap(), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::ChaosPanic);
        roundtrip_req(Request::Compress {
            name: "rho".into(),
            scalar_tag: 0x32,
            dims: vec![4, 3, 2],
            bound: ErrorBound::Rel(1e-3),
            budget_ms: 250,
            raw: vec![0u8; 4 * 3 * 2 * 4],
        });
        roundtrip_req(Request::Decompress {
            budget_ms: 0,
            blob: vec![1, 2, 3],
        });
        roundtrip_req(Request::RegionRead {
            archive: "dump.qza".into(),
            var: "v@t3".into(),
            origin: vec![0, 8],
            size: vec![4, 4],
            budget_ms: 1000,
            tolerant: true,
        });
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Pong,
            Response::ShutdownOk,
            Response::Compressed {
                outcome: 2,
                blob: vec![9; 17],
            },
            Response::Decompressed {
                scalar_tag: 0x32,
                dims: vec![5, 5],
                raw: vec![0; 100],
            },
            Response::Region {
                scalar_tag: 0x64,
                dims: vec![2, 2, 2],
                faults: 1,
                raw: vec![0; 64],
            },
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
            Response::Stats(StatsSnapshot {
                served: 10,
                shed: 2,
                warm_hits: 7,
                ..Default::default()
            }),
        ] {
            let mut wire = Vec::new();
            write_frame(&mut wire, resp.kind(), &resp.encode()).unwrap();
            let (k, payload) = read_frame(&mut wire.as_slice(), MAX_PAYLOAD).unwrap();
            assert_eq!(Response::decode(k, &payload).unwrap(), resp);
        }
    }

    #[test]
    fn stats_telemetry_extension_roundtrips_and_stays_forward_compatible() {
        let reg = qoz_telemetry::Registry::new();
        reg.counter("qoz_requests_total", &[("kind", "compress")])
            .add(3);
        reg.histogram("qoz_request_latency_ns", &[("kind", "compress")], &[1000])
            .observe(10);
        let snap = StatsSnapshot {
            served: 3,
            warm_hits: 2,
            telemetry: Some(reg.snapshot()),
            ..Default::default()
        };
        let resp = Response::Stats(snap.clone());

        // Extended payload round-trips exactly.
        let decoded = Response::decode(kind::STATS_OK, &resp.encode()).unwrap();
        assert_eq!(decoded, resp);

        // An old-format payload (eight varints only) still parses:
        // that is what a pre-extension server sends.
        let legacy = Response::Stats(StatsSnapshot {
            served: 3,
            warm_hits: 2,
            ..Default::default()
        });
        let mut legacy_payload = resp.encode();
        legacy_payload.truncate(8); // the eight varints are one byte each here
        assert_eq!(
            Response::decode(kind::STATS_OK, &legacy_payload).unwrap(),
            legacy
        );

        // Bytes appended after the telemetry extension (a future,
        // newer-than-us extension) are skipped, not rejected.
        let mut future = resp.encode();
        future.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        assert_eq!(Response::decode(kind::STATS_OK, &future).unwrap(), resp);

        // A corrupt telemetry blob is still an error, not a panic.
        let mut corrupt = resp.encode();
        let n = corrupt.len();
        corrupt[n / 2] ^= 0xFF;
        let _ = Response::decode(kind::STATS_OK, &corrupt);
    }

    #[test]
    fn frame_failures_are_typed() {
        let mut good = Vec::new();
        write_frame(&mut good, kind::PING, &[]).unwrap();

        // Truncation at every prefix is an Io error, never a panic.
        for n in 0..good.len() {
            match read_frame(&mut &good[..n], MAX_PAYLOAD) {
                Err(FrameError::Io(_)) => {}
                other => panic!("prefix {n}: {other:?}"),
            }
        }

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice(), MAX_PAYLOAD),
            Err(FrameError::BadMagic)
        ));

        let mut bad = good.clone();
        bad[4] = 0x55;
        assert!(matches!(
            read_frame(&mut bad.as_slice(), MAX_PAYLOAD),
            Err(FrameError::BadKind(0x55))
        ));

        // An oversized declared length is rejected before allocation.
        let mut bad = good.clone();
        bad[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bad.as_slice(), MAX_PAYLOAD),
            Err(FrameError::Oversized(_))
        ));

        // And against a caller-tightened cap.
        let mut framed = Vec::new();
        write_frame(&mut framed, kind::DECOMPRESS, &[0u8; 100]).unwrap();
        assert!(matches!(
            read_frame(&mut framed.as_slice(), 50),
            Err(FrameError::Oversized(100))
        ));

        // Flipped payload byte → checksum mismatch.
        let mut framed = Vec::new();
        write_frame(&mut framed, kind::DECOMPRESS, &[7u8; 16]).unwrap();
        framed[FRAME_HEADER_LEN + 3] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut framed.as_slice(), MAX_PAYLOAD),
            Err(FrameError::BadChecksum)
        ));
    }

    #[test]
    fn request_decode_validates_structure() {
        // Shape/byte-count mismatch.
        let req = Request::Compress {
            name: "v".into(),
            scalar_tag: 0x32,
            dims: vec![4, 4],
            bound: ErrorBound::Abs(1e-3),
            budget_ms: 0,
            raw: vec![0u8; 5],
        };
        assert!(Request::decode(kind::COMPRESS, &req.encode()).is_err());

        // Unknown scalar tag.
        let req = Request::Compress {
            name: "v".into(),
            scalar_tag: 0x99,
            dims: vec![1],
            bound: ErrorBound::Abs(1e-3),
            budget_ms: 0,
            raw: vec![0u8; 4],
        };
        assert!(Request::decode(kind::COMPRESS, &req.encode()).is_err());

        // Garbage payloads error, never panic.
        for kind_byte in [
            kind::COMPRESS,
            kind::DECOMPRESS,
            kind::REGION_READ,
            kind::ERROR,
        ] {
            for len in 0..32usize {
                let garbage: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
                let _ = Request::decode(kind_byte, &garbage);
                let _ = Response::decode(kind_byte | 0x80, &garbage);
            }
        }

        // Trailing bytes rejected.
        let mut p = Request::Ping.encode();
        p.push(0);
        assert!(Request::decode(kind::PING, &p).is_err());
    }

    #[test]
    fn error_codes_roundtrip_and_classify() {
        for v in 1..=10u8 {
            let c = ErrorCode::from_u8(v).unwrap();
            assert_eq!(c as u8, v);
        }
        assert!(ErrorCode::from_u8(0).is_none());
        assert!(ErrorCode::from_u8(11).is_none());
        assert!(ErrorCode::Overloaded.is_transient());
        assert!(ErrorCode::ShuttingDown.is_transient());
        assert!(!ErrorCode::CorruptInput.is_transient());
        assert!(!ErrorCode::WorkerPanic.is_transient());
    }
}
