//! MGARD+-style multilevel error-bounded lossy compressor (baseline).
//!
//! MGARD (Ainsworth et al.) decomposes the array over a hierarchy of
//! nested grids with piecewise-(multi)linear interpolation and quantizes
//! the multilevel coefficients against a norm-split error budget; MGARD+
//! (Liang et al., IEEE TC 2021) is its performance-optimized successor.
//!
//! This reimplementation keeps the structural essence — a *linear*
//! multilevel hierarchy with a conservatively split error budget — on top
//! of the workspace's shared interpolation engine (documented
//! substitution, `DESIGN.md` §3):
//!
//! * prediction is piecewise-linear only (MGARD's basis), never cubic;
//! * every level works at half the user bound, mirroring how MGARD's
//!   norm-based budget split leaves actual errors well under the L∞
//!   target (and costing compression ratio relative to SZ3/QoZ, exactly
//!   the relative standing Table III reports);
//! * the coefficient streams reuse the shared Huffman+LZSS backend, as
//!   MGARD+ uses Huffman+zstd.

use qoz_codec::stream::{self, Compressor, CompressorId, ErrorBound, Header};
use qoz_codec::{ByteReader, ByteWriter, CodecError, LinearQuantizer, Result};
use qoz_predict::{DimOrder, InterpKind, LevelConfig};
use qoz_sz3::{compress_with_spec, decompress_with_spec, InterpSpec};
use qoz_tensor::{NdArray, Scalar, Shape};

/// Fraction of the user bound each level actually uses (budget split).
const BUDGET_FRACTION: f64 = 0.5;

/// The MGARD+-style baseline compressor.
#[derive(Debug, Clone, Default)]
pub struct Mgard;

/// Build the fixed multilevel spec for a shape/bound.
fn mgard_spec(shape: Shape, abs_eb: f64) -> InterpSpec {
    let cfg = LevelConfig {
        kind: InterpKind::Linear,
        order: DimOrder::Ascending,
    };
    let mut spec = InterpSpec::sz3(shape, abs_eb, cfg);
    for eb in spec.level_ebs.iter_mut() {
        *eb = abs_eb * BUDGET_FRACTION;
    }
    spec.quant_radius = LinearQuantizer::DEFAULT_RADIUS;
    spec
}

impl Mgard {
    /// Typed compression entry point.
    pub fn compress_typed<T: Scalar>(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8> {
        let abs_eb = bound.absolute(data);
        let shape = data.shape();
        let spec = mgard_spec(shape, abs_eb);
        let out = compress_with_spec(data, &spec);

        let mut w = ByteWriter::with_capacity(data.len() / 4 + 64);
        stream::write_header(
            &mut w,
            &Header {
                compressor: CompressorId::Mgard,
                scalar_tag: T::TYPE_TAG,
                shape,
                abs_eb,
                temporal: None,
            },
        );
        w.put_len_prefixed(&qoz_codec::encode_bins(&out.bins));
        w.put_len_prefixed(&qoz_codec::lossless_compress(&out.unpred));
        w.finish()
    }

    /// Typed decompression entry point.
    pub fn decompress_typed<T: Scalar>(&self, blob: &[u8]) -> Result<NdArray<T>> {
        let mut r = ByteReader::new(blob);
        let header = stream::read_header(&mut r)?;
        if header.temporal.is_some() {
            return Err(CodecError::Corrupt(
                "temporal chain member needs chain decode",
            ));
        }
        if header.compressor != CompressorId::Mgard {
            return Err(CodecError::Corrupt("not an MGARD stream"));
        }
        if header.scalar_tag != T::TYPE_TAG {
            return Err(CodecError::Corrupt("scalar type mismatch"));
        }
        // The spec is fully determined by (shape, abs_eb): nothing to
        // store per stream.
        let spec = mgard_spec(header.shape, header.abs_eb);
        let bins = qoz_codec::decode_bins(r.get_len_prefixed()?)?;
        let unpred = qoz_codec::lossless_decompress(r.get_len_prefixed()?)?;
        decompress_with_spec::<T>(header.shape, &spec, &bins, &unpred, &[])
    }
}

impl<T: Scalar> Compressor<T> for Mgard {
    fn id(&self) -> CompressorId {
        CompressorId::Mgard
    }
    fn compress(&self, data: &NdArray<T>, bound: ErrorBound) -> Vec<u8> {
        self.compress_typed(data, bound)
    }
    fn decompress(&self, blob: &[u8]) -> Result<NdArray<T>> {
        self.decompress_typed(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoz_datagen::{Dataset, SizeClass};
    use qoz_metrics::verify_error_bound;

    #[test]
    fn roundtrip_respects_bound_all_datasets() {
        for ds in Dataset::ALL {
            let data = ds.generate(SizeClass::Tiny, 0);
            let bound = ErrorBound::Rel(1e-3);
            let abs = bound.absolute(&data);
            let blob = Mgard.compress_typed(&data, bound);
            let recon = Mgard.decompress_typed::<f32>(&blob).unwrap();
            assert_eq!(
                verify_error_bound(&data, &recon, abs),
                None,
                "{}",
                ds.name()
            );
        }
    }

    #[test]
    fn budget_split_keeps_errors_below_half_bound_mostly() {
        // MGARD's conservatism: max error should stay at or below half
        // the nominal bound (each level quantizes at e/2).
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let bound = ErrorBound::Rel(1e-2);
        let abs = bound.absolute(&data);
        let blob = Mgard.compress_typed(&data, bound);
        let recon = Mgard.decompress_typed::<f32>(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= abs * BUDGET_FRACTION * (1.0 + 1e-9));
    }

    #[test]
    fn f64_roundtrip() {
        let data = NdArray::from_fn(Shape::d3(15, 16, 17), |i| {
            (i[0] as f64 - i[1] as f64) * 0.1 + (i[2] as f64 * 0.4).sin()
        });
        let blob = Mgard.compress_typed(&data, ErrorBound::Abs(1e-5));
        let recon = Mgard.decompress_typed::<f64>(&blob).unwrap();
        assert!(data.max_abs_diff(&recon) <= 1e-5);
    }

    #[test]
    fn compresses_worse_than_sz3_on_smooth_data() {
        // Linear basis + budget split should cost CR vs SZ3, mirroring
        // the paper's Table III ordering.
        let data = Dataset::Miranda.generate(SizeClass::Tiny, 0);
        let bound = ErrorBound::Rel(1e-3);
        let m = Mgard.compress_typed(&data, bound).len();
        let s = qoz_sz3::Sz3::default().compress_typed(&data, bound).len();
        assert!(m >= s, "MGARD {m} should not beat SZ3 {s} here");
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = NdArray::from_fn(Shape::d2(20, 20), |i| (i[0] + i[1]) as f32);
        let blob = Mgard.compress_typed(&data, ErrorBound::Abs(1e-3));
        for cut in [3, blob.len() / 2, blob.len() - 1] {
            assert!(Mgard.decompress_typed::<f32>(&blob[..cut]).is_err());
        }
    }
}
