//! Library backing the `qoz` command-line tool.
//!
//! The CLI works on raw little-endian binary arrays (the format SDRBench
//! distributes): `compress` wraps them into self-describing `.qz`
//! streams, `decompress` unwraps, `info` prints stream headers, `eval`
//! prints a full quality report, and `gen` writes synthetic datasets.
//! All argument parsing and command logic live here so they are unit
//! testable; `main.rs` is a thin shim.

pub mod args;
pub mod commands;
pub mod rawio;

pub use args::{parse_coords, parse_dims, Command};
pub use commands::run;

/// Exit codes the `qoz` binary maps typed failures onto, so scripts and
/// a daemon supervisor can react to *why* a command failed instead of
/// pattern-matching stderr. `0` remains success, `1` the catch-all.
pub mod exit_code {
    /// Generic runtime failure (plain I/O errors and anything
    /// uncategorized).
    pub const RUNTIME: i32 = 1;
    /// Bad arguments or misconfigured flags.
    pub const USAGE: i32 = 2;
    /// Input data is damaged: checksum mismatch, truncation, or a
    /// structurally invalid stream. Retrying won't help; restoring the
    /// input might.
    pub const CORRUPT: i32 = 3;
    /// Input was written by a newer format version than this build
    /// reads. The data is probably fine — upgrade the tool.
    pub const NEWER_FORMAT: i32 = 4;
}

/// CLI error type: message + suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    /// Usage-level error (exit 2).
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: exit_code::USAGE,
        }
    }
    /// Runtime failure (exit 1).
    pub fn runtime(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: exit_code::RUNTIME,
        }
    }
    /// Damaged-input failure (exit 3).
    pub fn corrupt(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: exit_code::CORRUPT,
        }
    }
    /// Newer-format failure (exit 4), with the upgrade hint appended.
    pub fn newer_format(msg: impl Into<String>) -> Self {
        CliError {
            message: format!(
                "{} (hint: this input needs a newer build of qoz; it is \
                 probably not corrupt)",
                msg.into()
            ),
            code: exit_code::NEWER_FORMAT,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::runtime(format!("I/O error: {e}"))
    }
}

impl From<qoz_api::ApiError> for CliError {
    fn from(e: qoz_api::ApiError) -> Self {
        match e {
            // Misconfigured bounds/targets are the user's flags — report
            // them as usage errors (exit 2), like parse-time failures.
            qoz_api::ApiError::InvalidBound(_)
            | qoz_api::ApiError::InvalidTarget(_)
            | qoz_api::ApiError::UnknownBackend(_) => CliError::usage(e.to_string()),
            qoz_api::ApiError::Codec(c) => c.into(),
        }
    }
}

impl From<qoz_codec::CodecError> for CliError {
    fn from(e: qoz_codec::CodecError) -> Self {
        use qoz_codec::CodecError as E;
        let msg = format!("codec error: {e}");
        match e {
            _ if e.is_newer_format() => CliError::newer_format(msg),
            E::UnexpectedEof | E::Corrupt(_) | E::BadVersion { .. } => CliError::corrupt(msg),
            E::Io(_) => CliError::runtime(msg),
        }
    }
}

impl From<qoz_archive::ArchiveError> for CliError {
    fn from(e: qoz_archive::ArchiveError) -> Self {
        use qoz_archive::ArchiveError as E;
        let msg = format!("archive error: {e}");
        match &e {
            _ if e.is_newer_format() => CliError::newer_format(msg),
            E::Truncated
            | E::BadMagic
            | E::Corrupt(_)
            | E::ChecksumMismatch { .. }
            // An *older*-than-released version byte reaches here as
            // BadVersion/NewerFormat with found < supported: corruption.
            | E::NewerFormat { .. }
            | E::Codec(qoz_codec::CodecError::UnexpectedEof)
            | E::Codec(qoz_codec::CodecError::Corrupt(_))
            | E::Codec(qoz_codec::CodecError::BadVersion { .. }) => CliError::corrupt(msg),
            E::UnknownVariable(_)
            | E::DuplicateVariable(_)
            | E::TypeMismatch { .. }
            | E::RegionOutOfBounds => CliError::usage(msg),
            E::Io(_) | E::Codec(qoz_codec::CodecError::Io(_)) => CliError::runtime(msg),
        }
    }
}
