//! Library backing the `qoz` command-line tool.
//!
//! The CLI works on raw little-endian binary arrays (the format SDRBench
//! distributes): `compress` wraps them into self-describing `.qz`
//! streams, `decompress` unwraps, `info` prints stream headers, `eval`
//! prints a full quality report, and `gen` writes synthetic datasets.
//! All argument parsing and command logic live here so they are unit
//! testable; `main.rs` is a thin shim.

pub mod args;
pub mod commands;
pub mod rawio;

pub use args::{parse_coords, parse_dims, Command};
pub use commands::run;

/// CLI error type: message + suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    /// Usage-level error (exit 2).
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: 2,
        }
    }
    /// Runtime failure (exit 1).
    pub fn runtime(msg: impl Into<String>) -> Self {
        CliError {
            message: msg.into(),
            code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::runtime(format!("I/O error: {e}"))
    }
}

impl From<qoz_api::ApiError> for CliError {
    fn from(e: qoz_api::ApiError) -> Self {
        match e {
            // Misconfigured bounds/targets are the user's flags — report
            // them as usage errors (exit 2), like parse-time failures.
            qoz_api::ApiError::InvalidBound(_)
            | qoz_api::ApiError::InvalidTarget(_)
            | qoz_api::ApiError::UnknownBackend(_) => CliError::usage(e.to_string()),
            qoz_api::ApiError::Codec(c) => c.into(),
        }
    }
}

impl From<qoz_codec::CodecError> for CliError {
    fn from(e: qoz_codec::CodecError) -> Self {
        CliError::runtime(format!("codec error: {e}"))
    }
}

impl From<qoz_archive::ArchiveError> for CliError {
    fn from(e: qoz_archive::ArchiveError) -> Self {
        CliError::runtime(format!("archive error: {e}"))
    }
}
