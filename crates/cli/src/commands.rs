//! Command implementations.

use crate::args::{CodecChoice, Command, USAGE};
use crate::rawio;
use crate::CliError;
use qoz_archive::{ArchiveReader, ArchiveWriter};
use qoz_codec::stream::{Compressor, ErrorBound};
use qoz_metrics::{QualityMetric, QualityReport};
use qoz_tensor::{NdArray, Region, Scalar, Shape};

fn make_codec<T: Scalar>(
    choice: CodecChoice,
    metric: QualityMetric,
) -> Box<dyn Compressor<T> + Sync> {
    match choice {
        CodecChoice::Qoz => Box::new(qoz_core::Qoz::for_metric(metric)),
        CodecChoice::Sz3 => Box::new(qoz_sz3::Sz3::default()),
        CodecChoice::Sz2 => Box::new(qoz_sz2::Sz2::default()),
        CodecChoice::Zfp => Box::new(qoz_zfp::Zfp),
        CodecChoice::Mgard => Box::new(qoz_mgard::Mgard),
    }
}

/// Execute a parsed command; returns lines of stdout output.
pub fn run(cmd: Command) -> Result<Vec<String>, CliError> {
    match cmd {
        Command::Help => Ok(vec![USAGE.to_string()]),
        Command::Compress {
            input,
            output,
            dims,
            wide,
            relative,
            bound,
            codec,
            metric,
        } => {
            let shape = Shape::new(&dims);
            let bound = if relative {
                ErrorBound::Rel(bound)
            } else {
                ErrorBound::Abs(bound)
            };
            let (raw_bytes, blob) = if wide {
                let data: NdArray<f64> = rawio::read_raw(&input, shape)?;
                let c = make_codec::<f64>(codec, metric);
                (data.len() * 8, c.compress(&data, bound))
            } else {
                let data: NdArray<f32> = rawio::read_raw(&input, shape)?;
                let c = make_codec::<f32>(codec, metric);
                (data.len() * 4, c.compress(&data, bound))
            };
            rawio::write_bytes(&output, &blob)?;
            Ok(vec![format!(
                "{input} -> {output}: {} -> {} bytes (CR {:.2}x)",
                raw_bytes,
                blob.len(),
                raw_bytes as f64 / blob.len() as f64
            )])
        }
        Command::Decompress { input, output } => {
            let blob = rawio::read_bytes(&input)?;
            let header = peek_header(&blob)?;
            if header.scalar_tag == f64::TYPE_TAG {
                let data: NdArray<f64> =
                    qoz_archive::decompress_stream(&blob).map_err(stream_err)?;
                rawio::write_raw(&output, &data)?;
            } else {
                let data: NdArray<f32> =
                    qoz_archive::decompress_stream(&blob).map_err(stream_err)?;
                rawio::write_raw(&output, &data)?;
            }
            Ok(vec![format!("{input} -> {output}")])
        }
        Command::Archive {
            input,
            output,
            dims,
            wide,
            relative,
            bound,
            codec,
            name,
            chunk,
        } => {
            let shape = Shape::new(&dims);
            let bound = if relative {
                ErrorBound::Rel(bound)
            } else {
                ErrorBound::Abs(bound)
            };
            let mut w = ArchiveWriter::new().with_chunk_side(chunk);
            let (raw_bytes, chunks) = if wide {
                let data: NdArray<f64> = rawio::read_raw(&input, shape)?;
                let c = make_codec::<f64>(codec, QualityMetric::default());
                w.add_variable(&name, &data, &*c, bound)?;
                (data.len() * 8, w.toc().vars[0].chunks.len())
            } else {
                let data: NdArray<f32> = rawio::read_raw(&input, shape)?;
                let c = make_codec::<f32>(codec, QualityMetric::default());
                w.add_variable(&name, &data, &*c, bound)?;
                (data.len() * 4, w.toc().vars[0].chunks.len())
            };
            let written = w.write_to(&output)?;
            Ok(vec![format!(
                "{input} -> {output}: {raw_bytes} -> {written} bytes \
                 (CR {:.2}x, {chunks} chunks of side {chunk})",
                raw_bytes as f64 / written as f64
            )])
        }
        Command::Extract {
            input,
            output,
            var,
            origin,
            size,
        } => {
            let mut r = ArchiveReader::open(&input)?;
            let name = match var {
                Some(v) => v,
                None => {
                    let first = r
                        .toc()
                        .vars
                        .first()
                        .ok_or_else(|| CliError::runtime("archive holds no variables"))?;
                    first.name.clone()
                }
            };
            let meta = r.toc().var(&name)?.clone();
            let region = match (&origin, &size) {
                (Some(o), Some(s)) => {
                    if o.len() != s.len() {
                        return Err(CliError::usage("--origin and --size rank mismatch"));
                    }
                    Region::new(o, s)
                }
                _ => Region::full(meta.shape),
            };
            if meta.scalar_tag == f64::TYPE_TAG {
                let data: NdArray<f64> = r.read_region(&name, &region)?;
                rawio::write_raw(&output, &data)?;
            } else {
                let data: NdArray<f32> = r.read_region(&name, &region)?;
                rawio::write_raw(&output, &data)?;
            }
            Ok(vec![format!(
                "{input}[{name}] {:?}+{:?} -> {output} ({} of {} archive bytes read)",
                region.origin(),
                region.size(),
                r.bytes_read(),
                r.archive_len()
            )])
        }
        Command::Inspect { input, verify } => {
            let mut r = ArchiveReader::open(&input)?;
            let mut out = vec![
                format!("archive       : {input}"),
                format!("size          : {} bytes", r.archive_len()),
                format!("variables     : {}", r.toc().vars.len()),
            ];
            for line in qoz_archive::reader::describe(r.toc()) {
                out.push(format!("  {line}"));
            }
            if verify {
                let report = r.verify()?;
                out.push(format!(
                    "verify        : OK — {} chunks across {} variables, {} payload bytes",
                    report.chunks, report.vars, report.payload_bytes
                ));
            }
            Ok(out)
        }
        Command::Info { input } => {
            let blob = rawio::read_bytes(&input)?;
            let h = peek_header(&blob)?;
            Ok(vec![
                format!("compressor    : {}", h.compressor.name()),
                format!(
                    "scalar type   : {}",
                    if h.scalar_tag == f64::TYPE_TAG {
                        "f64"
                    } else {
                        "f32"
                    }
                ),
                format!("dimensions    : {:?}", h.shape.dims()),
                format!("points        : {}", h.shape.len()),
                format!("abs bound     : {:.6e}", h.abs_eb),
                format!("stream size   : {} bytes", blob.len()),
                format!(
                    "ratio         : {:.2}x",
                    (h.shape.len() * if h.scalar_tag == f64::TYPE_TAG { 8 } else { 4 }) as f64
                        / blob.len() as f64
                ),
            ])
        }
        Command::Eval {
            original,
            recon,
            dims,
            wide,
        } => {
            let shape = Shape::new(&dims);
            let report = if wide {
                let a: NdArray<f64> = rawio::read_raw(&original, shape)?;
                let b: NdArray<f64> = rawio::read_raw(&recon, shape)?;
                QualityReport::new(&a, &b)
            } else {
                let a: NdArray<f32> = rawio::read_raw(&original, shape)?;
                let b: NdArray<f32> = rawio::read_raw(&recon, shape)?;
                QualityReport::new(&a, &b)
            };
            Ok(vec![report.to_string()])
        }
        Command::Gen {
            dataset,
            size,
            output,
        } => {
            use qoz_datagen::{Dataset, SizeClass};
            let ds = match dataset.to_ascii_lowercase().as_str() {
                "cesm" | "cesm-atm" => Dataset::CesmAtm,
                "miranda" => Dataset::Miranda,
                "rtm" => Dataset::Rtm,
                "nyx" => Dataset::Nyx,
                "hurricane" => Dataset::Hurricane,
                "letkf" | "scale-letkf" => Dataset::ScaleLetkf,
                other => return Err(CliError::usage(format!("unknown dataset '{other}'"))),
            };
            let size = match size.to_ascii_lowercase().as_str() {
                "tiny" => SizeClass::Tiny,
                "small" => SizeClass::Small,
                "medium" => SizeClass::Medium,
                other => return Err(CliError::usage(format!("unknown size '{other}'"))),
            };
            let data = ds.generate(size, 0);
            rawio::write_raw(&output, &data)?;
            Ok(vec![format!(
                "{} {:?} -> {output} ({} bytes)",
                ds.name(),
                data.shape().dims(),
                data.len() * 4
            )])
        }
    }
}

// Unwrap the archive layer's Codec wrapper so plain-stream commands
// keep reporting "codec error", not "archive error".
fn stream_err(e: qoz_archive::ArchiveError) -> CliError {
    match e {
        qoz_archive::ArchiveError::Codec(c) => c.into(),
        other => other.into(),
    }
}

fn peek_header(blob: &[u8]) -> Result<qoz_codec::Header, CliError> {
    qoz_archive::dispatch::peek_header(blob).map_err(stream_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("qoz_cli_cmd_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn full_cli_pipeline() {
        let raw = tmp("pipe.f32");
        let qz = tmp("pipe.qz");
        let rec = tmp("pipe_rec.f32");

        // gen -> compress -> info -> decompress -> eval
        run(parse(&sv(&["gen", "-D", "cesm", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let out = run(parse(&sv(&[
            "compress", "-i", &raw, "-o", &qz, "-d", "64x128", "-e", "1e-3",
        ]))
        .unwrap())
        .unwrap();
        assert!(out[0].contains("CR"), "{out:?}");

        let info = run(parse(&sv(&["info", "-i", &qz])).unwrap()).unwrap();
        assert!(info.iter().any(|l| l.contains("QoZ")), "{info:?}");
        assert!(info.iter().any(|l| l.contains("[64, 128]")), "{info:?}");

        run(parse(&sv(&["decompress", "-i", &qz, "-o", &rec])).unwrap()).unwrap();
        let eval =
            run(parse(&sv(&["eval", "-i", &raw, "-r", &rec, "-d", "64x128"])).unwrap()).unwrap();
        assert!(eval[0].contains("PSNR"), "{eval:?}");

        for f in [&raw, &qz, &rec] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn all_codecs_through_cli() {
        let raw = tmp("codecs.f32");
        run(parse(&sv(&["gen", "-D", "miranda", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        for codec in ["qoz", "sz3", "sz2", "zfp", "mgard"] {
            let qz = tmp(&format!("{codec}.qz"));
            let rec = tmp(&format!("{codec}_rec.f32"));
            run(parse(&sv(&[
                "compress", "-i", &raw, "-o", &qz, "-d", "24x32x32", "-e", "1e-2", "--codec", codec,
            ]))
            .unwrap())
            .unwrap();
            run(parse(&sv(&["decompress", "-i", &qz, "-o", &rec])).unwrap()).unwrap();
            std::fs::remove_file(&qz).ok();
            std::fs::remove_file(&rec).ok();
        }
        std::fs::remove_file(&raw).ok();
    }

    #[test]
    fn lossless_eval_is_perfect() {
        let raw = tmp("eval.f32");
        run(parse(&sv(&["gen", "-D", "nyx", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let eval =
            run(parse(&sv(&["eval", "-i", &raw, "-r", &raw, "-d", "32x32x32"])).unwrap()).unwrap();
        assert!(eval[0].contains("max |error|   : 0"), "{eval:?}");
        std::fs::remove_file(&raw).ok();
    }

    #[test]
    fn bad_dims_rejected_cleanly() {
        let raw = tmp("bad.f32");
        run(parse(&sv(&["gen", "-D", "cesm", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let r = run(parse(&sv(&[
            "compress",
            "-i",
            &raw,
            "-o",
            "/dev/null",
            "-d",
            "10x10",
            "-e",
            "1e-3",
        ]))
        .unwrap());
        assert!(r.is_err(), "size mismatch must be reported");
        std::fs::remove_file(&raw).ok();
    }

    #[test]
    fn help_contains_all_commands() {
        let out = run(Command::Help).unwrap();
        for c in [
            "compress",
            "decompress",
            "info",
            "eval",
            "gen",
            "archive",
            "extract",
            "inspect",
        ] {
            assert!(out[0].contains(c));
        }
    }

    #[test]
    fn archive_pipeline_roundtrip() {
        let raw = tmp("arch.f32");
        let qza = tmp("arch.qza");
        let full = tmp("arch_full.f32");
        let slab = tmp("arch_slab.f32");

        run(parse(&sv(&["gen", "-D", "miranda", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let out = run(parse(&sv(&[
            "archive", "-i", &raw, "-o", &qza, "-d", "24x32x32", "-e", "1e-3", "--name", "v",
            "--chunk", "16",
        ]))
        .unwrap())
        .unwrap();
        assert!(out[0].contains("chunks"), "{out:?}");

        let info = run(parse(&sv(&["inspect", "-i", &qza, "--verify"])).unwrap()).unwrap();
        assert!(info.iter().any(|l| l.contains("v:")), "{info:?}");
        assert!(
            info.iter().any(|l| l.contains("verify        : OK")),
            "{info:?}"
        );

        // Full extraction, then a region; the region must equal the
        // corresponding slice of the full extraction.
        run(parse(&sv(&["extract", "-i", &qza, "-o", &full])).unwrap()).unwrap();
        run(parse(&sv(&[
            "extract", "-i", &qza, "-o", &slab, "--var", "v", "--origin", "4x8x8", "--size",
            "8x8x16",
        ]))
        .unwrap())
        .unwrap();
        let whole: NdArray<f32> = rawio::read_raw(&full, Shape::d3(24, 32, 32)).unwrap();
        let part: NdArray<f32> = rawio::read_raw(&slab, Shape::d3(8, 8, 16)).unwrap();
        let expect = whole.extract_region(&Region::new(&[4, 8, 8], &[8, 8, 16]));
        assert_eq!(part.as_slice(), expect.as_slice());

        // Original data must be within bound of the full extraction.
        let orig: NdArray<f32> = rawio::read_raw(&raw, Shape::d3(24, 32, 32)).unwrap();
        let abs = ErrorBound::Rel(1e-3).absolute(&orig);
        assert!(orig.max_abs_diff(&whole) <= abs * (1.0 + 1e-9));

        for f in [&raw, &qza, &full, &slab] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn inspect_rejects_non_archive() {
        let path = tmp("notqza");
        std::fs::write(&path, b"definitely not an archive").unwrap();
        let r = run(Command::Inspect {
            input: path.clone(),
            verify: false,
        });
        assert!(r.is_err());
        std::fs::remove_file(&path).ok();
    }
}
