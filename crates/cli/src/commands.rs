//! Command implementations.
//!
//! Every compression path goes through [`qoz_api::Session`]: the CLI
//! only parses flags, reads raw arrays, and reports what the session
//! did. Streams are written through the session's streaming sink
//! (`compress_into`), not via an intermediate whole-stream buffer.

use crate::args::{Command, USAGE};
use crate::rawio;
use crate::CliError;
use qoz_api::{PlanOutcome, Session, Target};
use qoz_archive::{ArchiveReader, ArchiveWriter};
use qoz_codec::stream::ErrorBound;
use qoz_metrics::QualityReport;
use qoz_tensor::{NdArray, Region, Scalar, Shape};

/// Compress one typed array through `session`, streaming the result to
/// `output`; returns the report line.
fn compress_one<T: Scalar>(
    session: &Session,
    data: &NdArray<T>,
    input: &str,
    output: &str,
) -> Result<String, CliError> {
    let raw_bytes = data.len() * T::BYTES;
    match session.target() {
        Target::Bound(_) => {
            let stats = write_atomically(output, |sink| Ok(session.compress_into(data, sink)?))?;
            Ok(format!(
                "{input} -> {output}: {} -> {} bytes (CR {:.2}x)",
                stats.raw_bytes,
                stats.compressed_bytes,
                stats.ratio()
            ))
        }
        target => {
            // Quality-first: the search produces the blob plus the bound
            // and metric it settled on — report all of it.
            let out = session.compress(data)?;
            write_atomically(output, |sink| {
                std::io::Write::write_all(sink, &out.blob)?;
                Ok(())
            })?;
            let (label, unit) = match target {
                Target::Psnr(_) => ("PSNR", " dB"),
                Target::Ssim(_) => ("SSIM", ""),
                _ => ("CR", "x"),
            };
            Ok(format!(
                "{input} -> {output}: {} -> {} bytes (CR {:.2}x, {label} {:.2}{unit} \
                 at rel bound {:.3e})",
                raw_bytes,
                out.blob.len(),
                out.stats.ratio(),
                out.achieved.unwrap_or(f64::NAN),
                out.rel_bound.unwrap_or(f64::NAN),
            ))
        }
    }
}

/// Compress a time series of same-shape raw files through one reused
/// pipeline (cached tuning plan + scratch arena), one `<name>.qz` per
/// input under `outdir`; returns per-snapshot report lines plus a
/// warm/cold summary. With `temporal`, each snapshot is delta-coded
/// against the prior reconstruction (auto keyframe fallback) and the
/// report tags every stream keyframe/delta/fallback.
fn compress_series<T: Scalar>(
    session: &Session,
    inputs: &[String],
    outdir: &str,
    shape: Shape,
    temporal: bool,
) -> Result<Vec<String>, CliError> {
    // Outputs are named by input basename; two inputs sharing one would
    // silently overwrite each other — reject that up front.
    let names: Vec<String> = inputs
        .iter()
        .map(|input| {
            std::path::Path::new(input)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| input.clone())
        })
        .collect();
    for (i, name) in names.iter().enumerate() {
        if names[..i].contains(name) {
            return Err(CliError::usage(format!(
                "series inputs collide on output name '{name}.qz' \
                 (outputs are named by input file name)"
            )));
        }
    }
    std::fs::create_dir_all(outdir)
        .map_err(|e| CliError::runtime(format!("cannot create {outdir}: {e}")))?;
    let mut pipe = session.pipeline::<T>();
    let mut lines = Vec::with_capacity(inputs.len() + 1);
    for (input, name) in inputs.iter().zip(&names) {
        let data: NdArray<T> = rawio::read_raw(input, shape)?;
        let (out, tag) = if temporal {
            let (outcome, out) = pipe.compress_next(&data)?;
            (out, outcome.name())
        } else {
            let out = pipe.compress(&data)?;
            let tag = match pipe.last_outcome() {
                Some(PlanOutcome::ColdTuned) => "cold tune",
                Some(PlanOutcome::WarmHit) => "warm",
                Some(PlanOutcome::WarmRescaled) => "warm, rescaled",
                Some(PlanOutcome::Retuned) => "retuned",
                None => "untracked",
            };
            (out, tag)
        };
        let output = format!("{outdir}/{name}.qz");
        write_atomically(&output, |sink| {
            std::io::Write::write_all(sink, &out.blob)?;
            Ok(())
        })?;
        lines.push(format!(
            "{input} -> {output}: {} -> {} bytes (CR {:.2}x, {tag})",
            out.stats.raw_bytes,
            out.stats.compressed_bytes,
            out.stats.ratio()
        ));
    }
    let s = pipe.stats();
    if temporal {
        lines.push(format!(
            "series: {} snapshots, {} keyframes + {} deltas ({} estimator fallbacks)",
            inputs.len(),
            s.chain_keyframes + s.chain_fallbacks,
            s.chain_deltas,
            s.chain_fallbacks
        ));
    } else {
        lines.push(format!(
            "series: {} snapshots, {} warm, {} tuned ({} cold + {} drift retunes)",
            inputs.len(),
            s.warm(),
            s.cold_tunes + s.retunes,
            s.cold_tunes,
            s.retunes
        ));
    }
    Ok(lines)
}

/// Decode every stream in `indir` (natural order) into raw files under
/// `outdir`, resolving `--temporal` delta chains: each delta stream is
/// applied on top of the previous snapshot's reconstruction; keyframes
/// and plain streams restart the chain.
fn decompress_series(indir: &str, outdir: &str) -> Result<Vec<String>, CliError> {
    let files = crate::args::expand_dir(indir)?;
    std::fs::create_dir_all(outdir)
        .map_err(|e| CliError::runtime(format!("cannot create {outdir}: {e}")))?;
    // Scalar width comes from the first stream's header; the chain
    // decoder rejects members whose shape/type breaks the chain.
    let first = rawio::read_bytes(&files[0])?;
    if qoz_api::peek_header(&first)?.scalar_tag == f64::TYPE_TAG {
        decompress_series_typed::<f64>(&files, outdir)
    } else {
        decompress_series_typed::<f32>(&files, outdir)
    }
}

fn decompress_series_typed<T: Scalar>(
    files: &[String],
    outdir: &str,
) -> Result<Vec<String>, CliError> {
    let registry = qoz_api::BackendRegistry::new();
    let mut chain = qoz_temporal::TemporalSession::<T>::new();
    let mut lines = Vec::with_capacity(files.len());
    for input in files {
        let blob = rawio::read_bytes(input)?;
        let recon = chain.decompress_next(&blob, |inner| registry.decompress(inner))?;
        let name = std::path::Path::new(input)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| input.clone());
        let name = name.strip_suffix(".qz").unwrap_or(&name).to_string();
        let output = format!("{outdir}/{name}");
        write_atomically(&output, |sink| rawio::write_raw_into(sink, recon))?;
        lines.push(format!("{input} -> {output}"));
    }
    Ok(lines)
}

/// Map a daemon client failure onto the CLI's exit-code taxonomy, so
/// `qoz remote …` against a damaged stream exits 3 exactly like the
/// local commands would.
fn remote_err(e: qoz_serve::ClientError) -> CliError {
    use qoz_serve::ErrorCode;
    match e {
        qoz_serve::ClientError::Server { code, message } => match code {
            ErrorCode::CorruptInput => CliError::corrupt(message),
            ErrorCode::NewerFormat => CliError::newer_format(message),
            ErrorCode::BadRequest => CliError::usage(message),
            other => CliError::runtime(format!("server answered {other:?}: {message}")),
        },
        other => CliError::runtime(format!("remote call failed: {other}")),
    }
}

fn parse_endpoint(s: &str) -> Result<qoz_serve::Endpoint, CliError> {
    qoz_serve::Endpoint::parse(s).map_err(CliError::usage)
}

/// Plan-outcome byte from the wire, phrased like the local series
/// report.
fn outcome_tag(outcome: u8) -> &'static str {
    match outcome {
        1 => "cold tune",
        2 => "warm",
        3 => "warm, rescaled",
        4 => "retuned",
        _ => "untracked",
    }
}

/// Stream into a sibling temp file and rename over `output` on success,
/// so a mid-write failure never truncates an existing output.
fn write_atomically<R>(
    output: &str,
    write: impl FnOnce(&mut dyn std::io::Write) -> Result<R, CliError>,
) -> Result<R, CliError> {
    // Pid-unique temp name: concurrent writers to the same output must
    // not share (and interleave into) one temp file.
    let tmp = format!("{output}.{}.qztmp", std::process::id());
    let attempt = || -> Result<R, CliError> {
        let file = std::fs::File::create(&tmp)
            .map_err(|e| CliError::runtime(format!("cannot create {tmp}: {e}")))?;
        let mut sink = std::io::BufWriter::new(file);
        let result = write(&mut sink)?;
        std::io::Write::flush(&mut sink)?;
        std::fs::rename(&tmp, output)
            .map_err(|e| CliError::runtime(format!("cannot write {output}: {e}")))?;
        Ok(result)
    };
    match attempt() {
        Ok(result) => Ok(result),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// Execute a parsed command; returns lines of stdout output.
pub fn run(cmd: Command) -> Result<Vec<String>, CliError> {
    match cmd {
        Command::Help => Ok(vec![USAGE.to_string()]),
        Command::Compress {
            inputs,
            output,
            dims,
            wide,
            target,
            codec,
            metric,
            temporal,
        } => {
            let shape = Shape::new(&dims);
            // Only force a tuning metric when the user asked for one;
            // otherwise the builder infers it from the target.
            let mut builder = Session::builder().backend(codec).target(target);
            if let Some(metric) = metric {
                builder = builder.metric(metric);
            }
            let session = builder.build()?;
            if inputs.len() > 1 || temporal {
                // Series mode: one pipeline, `output` is a directory.
                // `--temporal` always takes this path — even a one-file
                // series — so chained and plain outputs land the same way.
                return if wide {
                    compress_series::<f64>(&session, &inputs, &output, shape, temporal)
                } else {
                    compress_series::<f32>(&session, &inputs, &output, shape, temporal)
                };
            }
            let input = &inputs[0];
            let line = if wide {
                let data: NdArray<f64> = rawio::read_raw(input, shape)?;
                compress_one(&session, &data, input, &output)?
            } else {
                let data: NdArray<f32> = rawio::read_raw(input, shape)?;
                compress_one(&session, &data, input, &output)?
            };
            Ok(vec![line])
        }
        Command::Decompress { input, output } => {
            if std::path::Path::new(&input).is_dir() {
                // Series mode: decode the directory in natural order,
                // resolving temporal delta chains.
                return decompress_series(&input, &output);
            }
            let blob = rawio::read_bytes(&input)?;
            let header = qoz_api::peek_header(&blob)?;
            let registry = qoz_api::BackendRegistry::new();
            // Temp-file + rename, like compress: a decode that dies
            // mid-write must never leave a truncated output behind.
            if header.scalar_tag == f64::TYPE_TAG {
                let data: NdArray<f64> = registry.decompress(&blob)?;
                write_atomically(&output, |sink| rawio::write_raw_into(sink, &data))?;
            } else {
                let data: NdArray<f32> = registry.decompress(&blob)?;
                write_atomically(&output, |sink| rawio::write_raw_into(sink, &data))?;
            }
            Ok(vec![format!("{input} -> {output}")])
        }
        Command::Archive {
            input,
            output,
            dims,
            wide,
            relative,
            bound,
            codec,
            name,
            chunk,
        } => {
            let shape = Shape::new(&dims);
            let bound = if relative {
                ErrorBound::Rel(bound)
            } else {
                ErrorBound::Abs(bound)
            };
            let session = Session::builder().backend(codec).bound(bound).build()?;
            let mut w = ArchiveWriter::new().with_chunk_side(chunk);
            let (raw_bytes, chunks) = if wide {
                let data: NdArray<f64> = rawio::read_raw(&input, shape)?;
                w.add_variable(&name, &data, &*session.codec::<f64>(), bound)?;
                (data.len() * 8, w.toc().vars[0].chunks.len())
            } else {
                let data: NdArray<f32> = rawio::read_raw(&input, shape)?;
                w.add_variable(&name, &data, &*session.codec::<f32>(), bound)?;
                (data.len() * 4, w.toc().vars[0].chunks.len())
            };
            let written = w.write_to(&output)?;
            Ok(vec![format!(
                "{input} -> {output}: {raw_bytes} -> {written} bytes \
                 (CR {:.2}x, {chunks} chunks of side {chunk})",
                raw_bytes as f64 / written as f64
            )])
        }
        Command::Extract {
            input,
            output,
            var,
            origin,
            size,
        } => {
            let r = ArchiveReader::open(&input)?;
            let name = match var {
                Some(v) => v,
                None => {
                    let first = r
                        .toc()
                        .vars
                        .first()
                        .ok_or_else(|| CliError::runtime("archive holds no variables"))?;
                    first.name.clone()
                }
            };
            let meta = r.toc().var(&name)?.clone();
            let region = match (&origin, &size) {
                (Some(o), Some(s)) => {
                    if o.len() != s.len() {
                        return Err(CliError::usage("--origin and --size rank mismatch"));
                    }
                    Region::new(o, s)
                }
                _ => Region::full(meta.shape),
            };
            if meta.scalar_tag == f64::TYPE_TAG {
                let data: NdArray<f64> = r.read_region(&name, &region)?;
                write_atomically(&output, |sink| rawio::write_raw_into(sink, &data))?;
            } else {
                let data: NdArray<f32> = r.read_region(&name, &region)?;
                write_atomically(&output, |sink| rawio::write_raw_into(sink, &data))?;
            }
            Ok(vec![format!(
                "{input}[{name}] {:?}+{:?} -> {output} ({} of {} archive bytes read)",
                region.origin(),
                region.size(),
                r.bytes_read(),
                r.archive_len()
            )])
        }
        Command::Inspect { input, verify } => {
            let r = ArchiveReader::open(&input)?;
            let mut out = vec![
                format!("archive       : {input}"),
                format!("size          : {} bytes", r.archive_len()),
                format!("variables     : {}", r.toc().vars.len()),
            ];
            for line in qoz_archive::reader::describe(r.toc()) {
                out.push(format!("  {line}"));
            }
            if verify {
                let report = r.verify()?;
                if report.is_clean() {
                    out.push(format!(
                        "verify        : OK — {} chunks across {} variables, {} payload bytes",
                        report.chunks, report.vars, report.payload_bytes
                    ));
                } else {
                    // Emit the full damage map in the error, and fail
                    // with the corrupt exit code so supervisors can tell
                    // "archive damaged" from plain I/O trouble.
                    let mut msg = format!(
                        "archive {input} failed verification: {} of {} chunks damaged",
                        report.faults.len(),
                        report.chunks
                    );
                    for f in &report.faults {
                        msg.push_str(&format!(
                            "\n  var '{}' chunk {}: {}",
                            f.var,
                            f.chunk,
                            match f.kind {
                                qoz_archive::FaultKind::Truncated => "truncated",
                                qoz_archive::FaultKind::BitFlip => "checksum mismatch",
                            }
                        ));
                    }
                    return Err(CliError::corrupt(msg));
                }
            }
            Ok(out)
        }
        Command::Info { input } => {
            let blob = rawio::read_bytes(&input)?;
            let h = qoz_api::peek_header(&blob)?;
            Ok(vec![
                format!("compressor    : {}", h.compressor.name()),
                format!(
                    "scalar type   : {}",
                    if h.scalar_tag == f64::TYPE_TAG {
                        "f64"
                    } else {
                        "f32"
                    }
                ),
                format!("dimensions    : {:?}", h.shape.dims()),
                format!("points        : {}", h.shape.len()),
                format!("abs bound     : {:.6e}", h.abs_eb),
                format!("stream size   : {} bytes", blob.len()),
                format!(
                    "ratio         : {:.2}x",
                    (h.shape.len() * if h.scalar_tag == f64::TYPE_TAG { 8 } else { 4 }) as f64
                        / blob.len() as f64
                ),
            ])
        }
        Command::Eval {
            original,
            recon,
            dims,
            wide,
        } => {
            let shape = Shape::new(&dims);
            let report = if wide {
                let a: NdArray<f64> = rawio::read_raw(&original, shape)?;
                let b: NdArray<f64> = rawio::read_raw(&recon, shape)?;
                QualityReport::new(&a, &b)
            } else {
                let a: NdArray<f32> = rawio::read_raw(&original, shape)?;
                let b: NdArray<f32> = rawio::read_raw(&recon, shape)?;
                QualityReport::new(&a, &b)
            };
            Ok(vec![report.to_string()])
        }
        Command::Serve {
            listen,
            workers,
            queue,
            budget_ms,
            plan_file,
            archive_root,
        } => {
            let mut config = qoz_serve::ServerConfig::new(parse_endpoint(&listen)?);
            if let Some(n) = workers {
                config.workers = n;
            }
            if let Some(n) = queue {
                config.queue_depth = n;
            }
            if let Some(ms) = budget_ms {
                config.default_budget = std::time::Duration::from_millis(ms);
            }
            config.plan_path = plan_file.map(Into::into);
            config.archive_root = archive_root.map(Into::into);
            let server = qoz_serve::Server::start(config)
                .map_err(|e| CliError::runtime(format!("cannot start daemon: {e}")))?;
            // The listening line goes to stderr *now*; the stdout lines
            // this function returns only print after the drain.
            eprintln!("qoz serve: listening on {}", server.endpoint());
            qoz_serve::signals::install();
            loop {
                if qoz_serve::signals::stop_requested() {
                    server.begin_shutdown();
                }
                if server.is_draining() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            let stats = server.stats();
            // Same Prometheus-style dump the standalone daemon binary
            // prints at drain, for post-mortem scraping.
            let exposition = server.metrics_text();
            let persisted = server
                .shutdown()
                .map_err(|e| CliError::runtime(format!("failed to persist plans: {e}")))?;
            let mut lines: Vec<String> = exposition.lines().map(str::to_string).collect();
            lines.push(format!(
                "serve: stopped cleanly; {persisted} tuned plan(s) persisted \
                 (served {}, shed {}, deadline-missed {}, panics {}, bad frames {})",
                stats.served,
                stats.shed,
                stats.deadline_missed,
                stats.worker_panics,
                stats.bad_frames
            ));
            Ok(lines)
        }
        Command::RemoteCompress {
            server,
            input,
            output,
            dims,
            wide,
            relative,
            bound,
            name,
            budget_ms,
        } => {
            let shape = Shape::new(&dims);
            let bound = if relative {
                ErrorBound::Rel(bound)
            } else {
                ErrorBound::Abs(bound)
            };
            let mut client = qoz_serve::Client::connect(parse_endpoint(&server)?);
            let (outcome, blob, raw_bytes) = if wide {
                let data: NdArray<f64> = rawio::read_raw(&input, shape)?;
                let (o, b) = client
                    .compress(&name, &data, bound, budget_ms)
                    .map_err(remote_err)?;
                (o, b, data.len() * 8)
            } else {
                let data: NdArray<f32> = rawio::read_raw(&input, shape)?;
                let (o, b) = client
                    .compress(&name, &data, bound, budget_ms)
                    .map_err(remote_err)?;
                (o, b, data.len() * 4)
            };
            write_atomically(&output, |sink| {
                std::io::Write::write_all(sink, &blob)?;
                Ok(())
            })?;
            Ok(vec![format!(
                "{input} -> {output} via {server}: {raw_bytes} -> {} bytes \
                 (CR {:.2}x, {})",
                blob.len(),
                raw_bytes as f64 / blob.len() as f64,
                outcome_tag(outcome)
            )])
        }
        Command::RemoteDecompress {
            server,
            input,
            output,
            budget_ms,
        } => {
            let blob = rawio::read_bytes(&input)?;
            // Scalar width comes from the (local) stream header; the
            // daemon re-validates it against the blob it receives.
            let header = qoz_api::peek_header(&blob)?;
            let mut client = qoz_serve::Client::connect(parse_endpoint(&server)?);
            if header.scalar_tag == f64::TYPE_TAG {
                let data: NdArray<f64> = client.decompress(&blob, budget_ms).map_err(remote_err)?;
                write_atomically(&output, |sink| rawio::write_raw_into(sink, &data))?;
            } else {
                let data: NdArray<f32> = client.decompress(&blob, budget_ms).map_err(remote_err)?;
                write_atomically(&output, |sink| rawio::write_raw_into(sink, &data))?;
            }
            Ok(vec![format!("{input} -> {output} via {server}")])
        }
        Command::RemoteStats { server, text } => {
            let mut client = qoz_serve::Client::connect(parse_endpoint(&server)?);
            let stats = client.stats().map_err(remote_err)?;
            if text {
                let snap = stats.telemetry.ok_or_else(|| {
                    CliError::runtime("server sent no telemetry extension (daemon predates --text)")
                })?;
                Ok(snap.render_text().lines().map(str::to_string).collect())
            } else {
                // The engine publishes `qoz_kernel_path{path=...} = 1` for
                // the SIMD path its last run dispatched to; before the
                // daemon has compressed anything no path is set yet.
                let kernel = stats
                    .telemetry
                    .as_ref()
                    .and_then(|snap| {
                        snap.gauges.iter().find_map(|(key, v)| {
                            if key.name != "qoz_kernel_path" || *v != 1 {
                                return None;
                            }
                            key.labels
                                .iter()
                                .find(|(k, _)| k == "path")
                                .map(|(_, p)| p.clone())
                        })
                    })
                    .unwrap_or_else(|| "n/a".to_string());
                Ok(vec![format!(
                    "{server}: served {} | shed {} | deadline-missed {} | panics {} \
                     | bad frames {} | warm {} | cold {} | drain-rejects {} | kernel {}",
                    stats.served,
                    stats.shed,
                    stats.deadline_missed,
                    stats.worker_panics,
                    stats.bad_frames,
                    stats.warm_hits,
                    stats.cold_tunes,
                    stats.shutdown_rejects,
                    kernel
                )])
            }
        }
        Command::Gen {
            dataset,
            size,
            output,
        } => {
            use qoz_datagen::{Dataset, SizeClass};
            let size = match size.to_ascii_lowercase().as_str() {
                "tiny" => SizeClass::Tiny,
                "small" => SizeClass::Small,
                "medium" => SizeClass::Medium,
                other => return Err(CliError::usage(format!("unknown size '{other}'"))),
            };
            // The `ts*` names emit a 4-snapshot evolving series (a time
            // axis prepended to the Miranda-like base shape), written
            // time-major so the file splits into per-snapshot chunks for
            // `compress --temporal`.
            let series_shape = |size: SizeClass| {
                let b = Dataset::Miranda.shape(size);
                Shape::new(&[4, b.dim(0), b.dim(1), b.dim(2)])
            };
            let (label, data) = match dataset.to_ascii_lowercase().as_str() {
                "ts" | "timeseries" => (
                    "TS",
                    qoz_datagen::time_series_like(series_shape(size), 0x51C0_FFEE),
                ),
                "ts-advect" => (
                    "TS-advect",
                    qoz_datagen::time_series_advect(series_shape(size), 0x51C0_FFEE),
                ),
                other => {
                    let ds = match other {
                        "cesm" | "cesm-atm" => Dataset::CesmAtm,
                        "miranda" => Dataset::Miranda,
                        "rtm" => Dataset::Rtm,
                        "nyx" => Dataset::Nyx,
                        "hurricane" => Dataset::Hurricane,
                        "letkf" | "scale-letkf" => Dataset::ScaleLetkf,
                        other => return Err(CliError::usage(format!("unknown dataset '{other}'"))),
                    };
                    (ds.name(), ds.generate(size, 0))
                }
            };
            rawio::write_raw(&output, &data)?;
            Ok(vec![format!(
                "{} {:?} -> {output} ({} bytes)",
                label,
                data.shape().dims(),
                data.len() * 4
            )])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("qoz_cli_cmd_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn full_cli_pipeline() {
        let raw = tmp("pipe.f32");
        let qz = tmp("pipe.qz");
        let rec = tmp("pipe_rec.f32");

        // gen -> compress -> info -> decompress -> eval
        run(parse(&sv(&["gen", "-D", "cesm", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let out = run(parse(&sv(&[
            "compress", "-i", &raw, "-o", &qz, "-d", "64x128", "-e", "1e-3",
        ]))
        .unwrap())
        .unwrap();
        assert!(out[0].contains("CR"), "{out:?}");

        let info = run(parse(&sv(&["info", "-i", &qz])).unwrap()).unwrap();
        assert!(info.iter().any(|l| l.contains("QoZ")), "{info:?}");
        assert!(info.iter().any(|l| l.contains("[64, 128]")), "{info:?}");

        run(parse(&sv(&["decompress", "-i", &qz, "-o", &rec])).unwrap()).unwrap();
        let eval =
            run(parse(&sv(&["eval", "-i", &raw, "-r", &rec, "-d", "64x128"])).unwrap()).unwrap();
        assert!(eval[0].contains("PSNR"), "{eval:?}");

        for f in [&raw, &qz, &rec] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn all_codecs_through_cli() {
        let raw = tmp("codecs.f32");
        run(parse(&sv(&["gen", "-D", "miranda", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        for codec in ["qoz", "sz3", "sz2", "zfp", "mgard"] {
            let qz = tmp(&format!("{codec}.qz"));
            let rec = tmp(&format!("{codec}_rec.f32"));
            run(parse(&sv(&[
                "compress", "-i", &raw, "-o", &qz, "-d", "24x32x32", "-e", "1e-2", "--codec", codec,
            ]))
            .unwrap())
            .unwrap();
            run(parse(&sv(&["decompress", "-i", &qz, "-o", &rec])).unwrap()).unwrap();
            std::fs::remove_file(&qz).ok();
            std::fs::remove_file(&rec).ok();
        }
        std::fs::remove_file(&raw).ok();
    }

    #[test]
    fn quality_target_through_cli() {
        let raw = tmp("target.f32");
        let qz = tmp("target.qz");
        let rec = tmp("target_rec.f32");
        run(parse(&sv(&["gen", "-D", "cesm", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let out = run(parse(&sv(&[
            "compress", "-i", &raw, "-o", &qz, "-d", "64x128", "--target", "psnr:50",
        ]))
        .unwrap())
        .unwrap();
        assert!(
            out[0].contains("PSNR") && out[0].contains("rel bound"),
            "{out:?}"
        );
        run(parse(&sv(&["decompress", "-i", &qz, "-o", &rec])).unwrap()).unwrap();
        let a: NdArray<f32> = rawio::read_raw(&raw, Shape::d2(64, 128)).unwrap();
        let b: NdArray<f32> = rawio::read_raw(&rec, Shape::d2(64, 128)).unwrap();
        assert!(qoz_metrics::psnr(&a, &b) >= 50.0);

        // An out-of-range target parses but is rejected centrally by the
        // session builder, surfacing as a usage error (exit 2).
        let err = run(parse(&sv(&[
            "compress", "-i", &raw, "-o", &qz, "-d", "64x128", "--target", "ssim:1.5",
        ]))
        .unwrap())
        .unwrap_err();
        assert_eq!(err.code, 2, "{err}");
        assert!(err.message.contains("SSIM"), "{err}");

        for f in [&raw, &qz, &rec] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn time_series_compress_reuses_one_pipeline() {
        // Three consecutive snapshots of an evolving 3D field.
        let field = qoz_datagen::time_series_like(qoz_tensor::Shape::new(&[3, 16, 16, 16]), 11);
        let step = 16 * 16 * 16;
        let mut paths = Vec::new();
        for t in 0..3 {
            let p = tmp(&format!("series_{t}.f32"));
            let slab = &field.as_slice()[t * step..(t + 1) * step];
            let bytes: Vec<u8> = slab.iter().flat_map(|v| v.to_le_bytes()).collect();
            std::fs::write(&p, bytes).unwrap();
            paths.push(p);
        }
        let outdir = tmp("series_out");
        let out = run(parse(&sv(&[
            "compress",
            "-i",
            &paths.join(","),
            "-o",
            &outdir,
            "-d",
            "16x16x16",
            "-e",
            "1e-3",
        ]))
        .unwrap())
        .unwrap();
        // One line per snapshot plus the summary; the pipeline must have
        // served at least one snapshot warm.
        assert_eq!(out.len(), 4, "{out:?}");
        let summary = out.last().unwrap();
        assert!(summary.contains("3 snapshots"), "{summary}");
        assert!(!summary.contains("0 warm"), "{summary}");

        // Every emitted stream decodes back to its snapshot within bound.
        for (t, p) in paths.iter().enumerate() {
            let name = std::path::Path::new(p)
                .file_name()
                .unwrap()
                .to_string_lossy();
            let qz = format!("{outdir}/{name}.qz");
            let blob = std::fs::read(&qz).unwrap();
            let recon: NdArray<f32> = qoz_api::decompress_stream(&blob).unwrap();
            let slab = &field.as_slice()[t * step..(t + 1) * step];
            let orig = NdArray::from_vec(Shape::d3(16, 16, 16), slab.to_vec());
            let abs = ErrorBound::Rel(1e-3).absolute(&orig);
            assert!(
                orig.max_abs_diff(&recon) <= abs * (1.0 + 1e-9),
                "snapshot {t}"
            );
            std::fs::remove_file(&qz).ok();
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_dir_all(&outdir).ok();
    }

    #[test]
    fn temporal_series_roundtrips_through_directories() {
        // Directory of snapshots -> --temporal compress -> directory
        // decompress; every reconstruction honors the bound against its
        // own raw snapshot, and deltas actually get used.
        let field = qoz_datagen::time_series_like(qoz_tensor::Shape::new(&[4, 12, 12, 12]), 77);
        let step = 12 * 12 * 12;
        let indir = tmp("tser_in");
        std::fs::create_dir_all(&indir).unwrap();
        for t in 0..4 {
            let slab = &field.as_slice()[t * step..(t + 1) * step];
            let bytes: Vec<u8> = slab.iter().flat_map(|v| v.to_le_bytes()).collect();
            std::fs::write(format!("{indir}/u{t}.f32"), bytes).unwrap();
        }
        let outdir = tmp("tser_qz");
        let recdir = tmp("tser_rec");
        let out = run(parse(&sv(&[
            "compress",
            "-i",
            &indir,
            "-o",
            &outdir,
            "-d",
            "12x12x12",
            "-e",
            "1e-3",
            "-m",
            "abs",
            "--temporal",
        ]))
        .unwrap())
        .unwrap();
        assert!(out[0].contains("keyframe"), "{out:?}");
        let summary = out.last().unwrap();
        assert!(summary.contains("deltas"), "{summary}");
        assert!(!summary.contains("0 deltas"), "{summary}");

        // A delta stream must refuse to decode standalone…
        let blob = std::fs::read(format!("{outdir}/u1.f32.qz")).unwrap();
        assert!(qoz_api::decompress_stream::<f32>(&blob).is_err());

        // …but the chain decode serves every snapshot within bound.
        run(parse(&sv(&["decompress", "-i", &outdir, "-o", &recdir])).unwrap()).unwrap();
        for t in 0..4 {
            let recon: NdArray<f32> =
                rawio::read_raw(&format!("{recdir}/u{t}.f32"), Shape::d3(12, 12, 12)).unwrap();
            let slab = &field.as_slice()[t * step..(t + 1) * step];
            let orig = NdArray::from_vec(Shape::d3(12, 12, 12), slab.to_vec());
            assert!(
                orig.max_abs_diff(&recon) <= 1e-3 * (1.0 + 1e-9) + 4.0 * f32::EPSILON as f64,
                "snapshot {t}"
            );
        }
        for d in [&indir, &outdir, &recdir] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn series_inputs_with_colliding_names_rejected() {
        // Same basename in two directories would overwrite one output.
        let err = run(Command::Compress {
            inputs: vec!["runA/x.f32".into(), "runB/x.f32".into()],
            output: tmp("collide_out"),
            dims: vec![8, 8],
            wide: false,
            target: Target::Bound(ErrorBound::Rel(1e-3)),
            codec: qoz_api::BackendId::Qoz,
            metric: None,
            temporal: false,
        })
        .unwrap_err();
        assert_eq!(err.code, 2, "{err}");
        assert!(err.message.contains("collide"), "{err}");
    }

    #[test]
    fn lossless_eval_is_perfect() {
        let raw = tmp("eval.f32");
        run(parse(&sv(&["gen", "-D", "nyx", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let eval =
            run(parse(&sv(&["eval", "-i", &raw, "-r", &raw, "-d", "32x32x32"])).unwrap()).unwrap();
        assert!(eval[0].contains("max |error|   : 0"), "{eval:?}");
        std::fs::remove_file(&raw).ok();
    }

    #[test]
    fn bad_dims_rejected_cleanly() {
        let raw = tmp("bad.f32");
        run(parse(&sv(&["gen", "-D", "cesm", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let r = run(parse(&sv(&[
            "compress",
            "-i",
            &raw,
            "-o",
            "/dev/null",
            "-d",
            "10x10",
            "-e",
            "1e-3",
        ]))
        .unwrap());
        assert!(r.is_err(), "size mismatch must be reported");
        std::fs::remove_file(&raw).ok();
    }

    #[test]
    fn help_contains_all_commands() {
        let out = run(Command::Help).unwrap();
        for c in [
            "compress",
            "decompress",
            "info",
            "eval",
            "gen",
            "archive",
            "extract",
            "inspect",
            "serve",
            "remote",
        ] {
            assert!(out[0].contains(c));
        }
    }

    #[test]
    fn remote_round_trip_through_a_foreground_daemon() {
        let sock = tmp("remote.sock");
        let raw = tmp("remote.f32");
        let qz = tmp("remote.qz");
        let rec = tmp("remote_rec.f32");
        run(parse(&sv(&["gen", "-D", "cesm", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();

        // `qoz serve` blocks, so it runs on a thread; a client Shutdown
        // request ends it.
        let serve_cmd = parse(&sv(&["serve", "--listen", &sock])).unwrap();
        let daemon = std::thread::spawn(move || run(serve_cmd));
        let endpoint = qoz_serve::Endpoint::Unix(sock.clone());
        let mut probe = qoz_serve::Client::connect(endpoint.clone());
        probe.ping().expect("daemon comes up");

        let out = run(parse(&sv(&[
            "remote", "compress", "-s", &sock, "-i", &raw, "-o", &qz, "-d", "64x128", "-e", "1e-3",
            "--name", "t",
        ]))
        .unwrap())
        .unwrap();
        assert!(out[0].contains("cold tune"), "{out:?}");

        run(parse(&sv(&[
            "remote",
            "decompress",
            "-s",
            &sock,
            "-i",
            &qz,
            "-o",
            &rec,
        ]))
        .unwrap())
        .unwrap();
        // The remote stream decodes locally too, within bound.
        let orig: NdArray<f32> = rawio::read_raw(&raw, Shape::d2(64, 128)).unwrap();
        let recon: NdArray<f32> = rawio::read_raw(&rec, Shape::d2(64, 128)).unwrap();
        let abs = ErrorBound::Rel(1e-3).absolute(&orig);
        assert!(orig.max_abs_diff(&recon) <= abs * (1.0 + 1e-9));

        // Remote errors land on the CLI exit-code taxonomy: a damaged
        // stream is exit 3 (corrupt), same as the local commands.
        let broken = tmp("remote_broken.qz");
        let mut blob = std::fs::read(&qz).unwrap();
        blob.truncate(blob.len() / 2);
        std::fs::write(&broken, &blob).unwrap();
        let err = run(parse(&sv(&[
            "remote",
            "decompress",
            "-s",
            &sock,
            "-i",
            &broken,
            "-o",
            &rec,
        ]))
        .unwrap())
        .unwrap_err();
        assert_eq!(err.code, 3, "{err}");

        // Live scrape: the legacy summary and the text exposition.
        let out = run(parse(&sv(&["remote", "stats", "-s", &sock])).unwrap()).unwrap();
        assert!(out[0].contains("served"), "{out:?}");
        let text = run(parse(&sv(&["remote", "stats", "-s", &sock, "--text"])).unwrap()).unwrap();
        assert!(
            text.iter()
                .any(|l| l.starts_with("qoz_requests_total{kind=\"compress\"} ")),
            "{text:?}"
        );
        assert!(
            text.iter()
                .any(|l| l.contains("qoz_request_latency_ns_bucket") && l.contains("le=\"+Inf\"")),
            "{text:?}"
        );

        probe.shutdown().unwrap();
        let lines = daemon.join().unwrap().unwrap();
        // Drain output: the Prometheus-style dump, then the summary.
        assert!(
            lines.iter().any(|l| l.starts_with("qoz_responses_total ")),
            "{lines:?}"
        );
        let last = lines.last().unwrap();
        assert!(last.contains("stopped cleanly"), "{lines:?}");
        for f in [&raw, &qz, &rec, &broken] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn archive_pipeline_roundtrip() {
        let raw = tmp("arch.f32");
        let qza = tmp("arch.qza");
        let full = tmp("arch_full.f32");
        let slab = tmp("arch_slab.f32");

        run(parse(&sv(&["gen", "-D", "miranda", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let out = run(parse(&sv(&[
            "archive", "-i", &raw, "-o", &qza, "-d", "24x32x32", "-e", "1e-3", "--name", "v",
            "--chunk", "16",
        ]))
        .unwrap())
        .unwrap();
        assert!(out[0].contains("chunks"), "{out:?}");

        let info = run(parse(&sv(&["inspect", "-i", &qza, "--verify"])).unwrap()).unwrap();
        assert!(info.iter().any(|l| l.contains("v:")), "{info:?}");
        assert!(
            info.iter().any(|l| l.contains("verify        : OK")),
            "{info:?}"
        );

        // Full extraction, then a region; the region must equal the
        // corresponding slice of the full extraction.
        run(parse(&sv(&["extract", "-i", &qza, "-o", &full])).unwrap()).unwrap();
        run(parse(&sv(&[
            "extract", "-i", &qza, "-o", &slab, "--var", "v", "--origin", "4x8x8", "--size",
            "8x8x16",
        ]))
        .unwrap())
        .unwrap();
        let whole: NdArray<f32> = rawio::read_raw(&full, Shape::d3(24, 32, 32)).unwrap();
        let part: NdArray<f32> = rawio::read_raw(&slab, Shape::d3(8, 8, 16)).unwrap();
        let expect = whole.extract_region(&Region::new(&[4, 8, 8], &[8, 8, 16]));
        assert_eq!(part.as_slice(), expect.as_slice());

        // Original data must be within bound of the full extraction.
        let orig: NdArray<f32> = rawio::read_raw(&raw, Shape::d3(24, 32, 32)).unwrap();
        let abs = ErrorBound::Rel(1e-3).absolute(&orig);
        assert!(orig.max_abs_diff(&whole) <= abs * (1.0 + 1e-9));

        for f in [&raw, &qza, &full, &slab] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn inspect_rejects_non_archive() {
        let path = tmp("notqza");
        std::fs::write(&path, b"definitely not an archive").unwrap();
        let r = run(Command::Inspect {
            input: path.clone(),
            verify: false,
        });
        assert!(r.is_err());
        std::fs::remove_file(&path).ok();
    }
}
