//! Command implementations.

use crate::args::{CodecChoice, Command, USAGE};
use crate::rawio;
use crate::CliError;
use qoz_codec::stream::{Compressor, ErrorBound};
use qoz_metrics::{QualityMetric, QualityReport};
use qoz_tensor::{NdArray, Scalar, Shape};

fn make_codec<T: Scalar>(choice: CodecChoice, metric: QualityMetric) -> Box<dyn Compressor<T>> {
    match choice {
        CodecChoice::Qoz => Box::new(qoz_core::Qoz::for_metric(metric)),
        CodecChoice::Sz3 => Box::new(qoz_sz3::Sz3::default()),
        CodecChoice::Sz2 => Box::new(qoz_sz2::Sz2::default()),
        CodecChoice::Zfp => Box::new(qoz_zfp::Zfp),
        CodecChoice::Mgard => Box::new(qoz_mgard::Mgard),
    }
}

/// Execute a parsed command; returns lines of stdout output.
pub fn run(cmd: Command) -> Result<Vec<String>, CliError> {
    match cmd {
        Command::Help => Ok(vec![USAGE.to_string()]),
        Command::Compress {
            input,
            output,
            dims,
            wide,
            relative,
            bound,
            codec,
            metric,
        } => {
            let shape = Shape::new(&dims);
            let bound = if relative {
                ErrorBound::Rel(bound)
            } else {
                ErrorBound::Abs(bound)
            };
            let (raw_bytes, blob) = if wide {
                let data: NdArray<f64> = rawio::read_raw(&input, shape)?;
                let c = make_codec::<f64>(codec, metric);
                (data.len() * 8, c.compress(&data, bound))
            } else {
                let data: NdArray<f32> = rawio::read_raw(&input, shape)?;
                let c = make_codec::<f32>(codec, metric);
                (data.len() * 4, c.compress(&data, bound))
            };
            rawio::write_bytes(&output, &blob)?;
            Ok(vec![format!(
                "{input} -> {output}: {} -> {} bytes (CR {:.2}x)",
                raw_bytes,
                blob.len(),
                raw_bytes as f64 / blob.len() as f64
            )])
        }
        Command::Decompress { input, output } => {
            let blob = rawio::read_bytes(&input)?;
            let header = peek_header(&blob)?;
            if header.scalar_tag == f64::TYPE_TAG {
                let data: NdArray<f64> = dispatch_decompress(&blob, header.compressor)?;
                rawio::write_raw(&output, &data)?;
            } else {
                let data: NdArray<f32> = dispatch_decompress(&blob, header.compressor)?;
                rawio::write_raw(&output, &data)?;
            }
            Ok(vec![format!("{input} -> {output}")])
        }
        Command::Info { input } => {
            let blob = rawio::read_bytes(&input)?;
            let h = peek_header(&blob)?;
            Ok(vec![
                format!("compressor    : {}", h.compressor.name()),
                format!(
                    "scalar type   : {}",
                    if h.scalar_tag == f64::TYPE_TAG {
                        "f64"
                    } else {
                        "f32"
                    }
                ),
                format!("dimensions    : {:?}", h.shape.dims()),
                format!("points        : {}", h.shape.len()),
                format!("abs bound     : {:.6e}", h.abs_eb),
                format!("stream size   : {} bytes", blob.len()),
                format!(
                    "ratio         : {:.2}x",
                    (h.shape.len() * if h.scalar_tag == f64::TYPE_TAG { 8 } else { 4 }) as f64
                        / blob.len() as f64
                ),
            ])
        }
        Command::Eval {
            original,
            recon,
            dims,
            wide,
        } => {
            let shape = Shape::new(&dims);
            let report = if wide {
                let a: NdArray<f64> = rawio::read_raw(&original, shape)?;
                let b: NdArray<f64> = rawio::read_raw(&recon, shape)?;
                QualityReport::new(&a, &b)
            } else {
                let a: NdArray<f32> = rawio::read_raw(&original, shape)?;
                let b: NdArray<f32> = rawio::read_raw(&recon, shape)?;
                QualityReport::new(&a, &b)
            };
            Ok(vec![report.to_string()])
        }
        Command::Gen {
            dataset,
            size,
            output,
        } => {
            use qoz_datagen::{Dataset, SizeClass};
            let ds = match dataset.to_ascii_lowercase().as_str() {
                "cesm" | "cesm-atm" => Dataset::CesmAtm,
                "miranda" => Dataset::Miranda,
                "rtm" => Dataset::Rtm,
                "nyx" => Dataset::Nyx,
                "hurricane" => Dataset::Hurricane,
                "letkf" | "scale-letkf" => Dataset::ScaleLetkf,
                other => return Err(CliError::usage(format!("unknown dataset '{other}'"))),
            };
            let size = match size.to_ascii_lowercase().as_str() {
                "tiny" => SizeClass::Tiny,
                "small" => SizeClass::Small,
                "medium" => SizeClass::Medium,
                other => return Err(CliError::usage(format!("unknown size '{other}'"))),
            };
            let data = ds.generate(size, 0);
            rawio::write_raw(&output, &data)?;
            Ok(vec![format!(
                "{} {:?} -> {output} ({} bytes)",
                ds.name(),
                data.shape().dims(),
                data.len() * 4
            )])
        }
    }
}

fn peek_header(blob: &[u8]) -> Result<qoz_codec::Header, CliError> {
    let mut r = qoz_codec::ByteReader::new(blob);
    Ok(qoz_codec::stream::read_header(&mut r)?)
}

fn dispatch_decompress<T: Scalar>(
    blob: &[u8],
    id: qoz_codec::CompressorId,
) -> Result<NdArray<T>, CliError> {
    use qoz_codec::CompressorId::*;
    let out = match id {
        Qoz => qoz_core::Qoz::default().decompress_typed(blob)?,
        Sz3 => qoz_sz3::Sz3::default().decompress_typed(blob)?,
        Sz2 => qoz_sz2::Sz2::default().decompress_typed(blob)?,
        Zfp => qoz_zfp::Zfp.decompress_typed(blob)?,
        Mgard => qoz_mgard::Mgard.decompress_typed(blob)?,
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("qoz_cli_cmd_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn full_cli_pipeline() {
        let raw = tmp("pipe.f32");
        let qz = tmp("pipe.qz");
        let rec = tmp("pipe_rec.f32");

        // gen -> compress -> info -> decompress -> eval
        run(parse(&sv(&["gen", "-D", "cesm", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let out = run(parse(&sv(&[
            "compress", "-i", &raw, "-o", &qz, "-d", "64x128", "-e", "1e-3",
        ]))
        .unwrap())
        .unwrap();
        assert!(out[0].contains("CR"), "{out:?}");

        let info = run(parse(&sv(&["info", "-i", &qz])).unwrap()).unwrap();
        assert!(info.iter().any(|l| l.contains("QoZ")), "{info:?}");
        assert!(info.iter().any(|l| l.contains("[64, 128]")), "{info:?}");

        run(parse(&sv(&["decompress", "-i", &qz, "-o", &rec])).unwrap()).unwrap();
        let eval =
            run(parse(&sv(&["eval", "-i", &raw, "-r", &rec, "-d", "64x128"])).unwrap()).unwrap();
        assert!(eval[0].contains("PSNR"), "{eval:?}");

        for f in [&raw, &qz, &rec] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn all_codecs_through_cli() {
        let raw = tmp("codecs.f32");
        run(parse(&sv(&["gen", "-D", "miranda", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        for codec in ["qoz", "sz3", "sz2", "zfp", "mgard"] {
            let qz = tmp(&format!("{codec}.qz"));
            let rec = tmp(&format!("{codec}_rec.f32"));
            run(parse(&sv(&[
                "compress", "-i", &raw, "-o", &qz, "-d", "24x32x32", "-e", "1e-2", "--codec", codec,
            ]))
            .unwrap())
            .unwrap();
            run(parse(&sv(&["decompress", "-i", &qz, "-o", &rec])).unwrap()).unwrap();
            std::fs::remove_file(&qz).ok();
            std::fs::remove_file(&rec).ok();
        }
        std::fs::remove_file(&raw).ok();
    }

    #[test]
    fn lossless_eval_is_perfect() {
        let raw = tmp("eval.f32");
        run(parse(&sv(&["gen", "-D", "nyx", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let eval =
            run(parse(&sv(&["eval", "-i", &raw, "-r", &raw, "-d", "32x32x32"])).unwrap()).unwrap();
        assert!(eval[0].contains("max |error|   : 0"), "{eval:?}");
        std::fs::remove_file(&raw).ok();
    }

    #[test]
    fn bad_dims_rejected_cleanly() {
        let raw = tmp("bad.f32");
        run(parse(&sv(&["gen", "-D", "cesm", "-s", "tiny", "-o", &raw])).unwrap()).unwrap();
        let r = run(parse(&sv(&[
            "compress",
            "-i",
            &raw,
            "-o",
            "/dev/null",
            "-d",
            "10x10",
            "-e",
            "1e-3",
        ]))
        .unwrap());
        assert!(r.is_err(), "size mismatch must be reported");
        std::fs::remove_file(&raw).ok();
    }

    #[test]
    fn help_contains_all_commands() {
        let out = run(Command::Help).unwrap();
        for c in ["compress", "decompress", "info", "eval", "gen"] {
            assert!(out[0].contains(c));
        }
    }
}
