//! `qoz` binary entry point — thin shim over [`qoz_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match qoz_cli::args::parse(&args).and_then(qoz_cli::run) {
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
        }
        Err(e) => {
            eprintln!("qoz: {e}");
            std::process::exit(e.code);
        }
    }
}
