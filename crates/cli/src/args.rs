//! Hand-rolled argument parsing (no external parser dependency).

use crate::CliError;
use qoz_metrics::QualityMetric;

/// Which compressor a command should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodecChoice {
    /// QoZ (default).
    #[default]
    Qoz,
    /// SZ3 baseline.
    Sz3,
    /// SZ2.1 baseline.
    Sz2,
    /// ZFP baseline.
    Zfp,
    /// MGARD+ baseline.
    Mgard,
}

impl CodecChoice {
    fn parse(s: &str) -> Result<Self, CliError> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "qoz" => CodecChoice::Qoz,
            "sz3" => CodecChoice::Sz3,
            "sz2" | "sz2.1" => CodecChoice::Sz2,
            "zfp" => CodecChoice::Zfp,
            "mgard" | "mgard+" => CodecChoice::Mgard,
            other => return Err(CliError::usage(format!("unknown codec '{other}'"))),
        })
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Compress a raw array file.
    Compress {
        /// Input raw file.
        input: String,
        /// Output stream file.
        output: String,
        /// Array dimensions.
        dims: Vec<usize>,
        /// `true` for f64 input, `false` for f32.
        wide: bool,
        /// Relative (`true`) or absolute (`false`) bound.
        relative: bool,
        /// Bound value.
        bound: f64,
        /// Compressor.
        codec: CodecChoice,
        /// QoZ tuning metric.
        metric: QualityMetric,
    },
    /// Decompress a stream file back to raw bytes.
    Decompress {
        /// Input stream file.
        input: String,
        /// Output raw file.
        output: String,
    },
    /// Print a stream header.
    Info {
        /// Stream file.
        input: String,
    },
    /// Quality report between two raw files.
    Eval {
        /// Original raw file.
        original: String,
        /// Reconstructed raw file.
        recon: String,
        /// Array dimensions.
        dims: Vec<usize>,
        /// `true` for f64.
        wide: bool,
    },
    /// Generate a synthetic dataset.
    Gen {
        /// Dataset name (cesm/miranda/rtm/nyx/hurricane/letkf).
        dataset: String,
        /// Size class (tiny/small/medium).
        size: String,
        /// Output raw f32 file.
        output: String,
    },
    /// Print usage.
    Help,
}

/// Parse `AxBxC`-style dimension strings.
pub fn parse_dims(s: &str) -> Result<Vec<usize>, CliError> {
    let dims: Result<Vec<usize>, _> = s
        .split(['x', 'X', ','])
        .map(|p| p.trim().parse::<usize>())
        .collect();
    let dims = dims.map_err(|_| CliError::usage(format!("bad dimensions '{s}'")))?;
    if dims.is_empty() || dims.len() > qoz_tensor::MAX_NDIM || dims.contains(&0) {
        return Err(CliError::usage(format!("bad dimensions '{s}'")));
    }
    Ok(dims)
}

fn metric_of(s: &str) -> Result<QualityMetric, CliError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "cr" | "ratio" => QualityMetric::CompressionRatio,
        "psnr" => QualityMetric::Psnr,
        "ssim" => QualityMetric::Ssim,
        "ac" | "autocorrelation" => QualityMetric::AutoCorrelation,
        other => return Err(CliError::usage(format!("unknown metric '{other}'"))),
    })
}

/// Parse a full argument vector (excluding argv[0]).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };

    // Collect remaining as flag map.
    let rest: Vec<&String> = it.collect();
    let get_flag = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1).map(|s| s.as_str()))
    };
    let require = |name: &str| -> Result<&str, CliError> {
        get_flag(name).ok_or_else(|| CliError::usage(format!("missing required flag {name}")))
    };

    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "compress" => Ok(Command::Compress {
            input: require("-i")?.to_string(),
            output: require("-o")?.to_string(),
            dims: parse_dims(require("-d")?)?,
            wide: get_flag("-t").map(|t| t == "f64").unwrap_or(false),
            relative: get_flag("-m").map(|m| m != "abs").unwrap_or(true),
            bound: require("-e")?
                .parse()
                .map_err(|_| CliError::usage("bad bound value for -e"))?,
            codec: get_flag("--codec")
                .map(CodecChoice::parse)
                .transpose()?
                .unwrap_or_default(),
            metric: get_flag("--metric")
                .map(metric_of)
                .transpose()?
                .unwrap_or_default(),
        }),
        "decompress" => Ok(Command::Decompress {
            input: require("-i")?.to_string(),
            output: require("-o")?.to_string(),
        }),
        "info" => Ok(Command::Info {
            input: require("-i")?.to_string(),
        }),
        "eval" => Ok(Command::Eval {
            original: require("-i")?.to_string(),
            recon: require("-r")?.to_string(),
            dims: parse_dims(require("-d")?)?,
            wide: get_flag("-t").map(|t| t == "f64").unwrap_or(false),
        }),
        "gen" => Ok(Command::Gen {
            dataset: require("-D")?.to_string(),
            size: get_flag("-s").unwrap_or("small").to_string(),
            output: require("-o")?.to_string(),
        }),
        other => Err(CliError::usage(format!("unknown command '{other}'"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
qoz — error-bounded lossy compression for scientific arrays (QoZ, SC'22 reproduction)

USAGE:
  qoz compress   -i in.f32 -o out.qz -d 512x512x512 -e 1e-3 [-m rel|abs]
                 [-t f32|f64] [--codec qoz|sz3|sz2|zfp|mgard]
                 [--metric cr|psnr|ssim|ac]
  qoz decompress -i out.qz -o recon.f32
  qoz info       -i out.qz
  qoz eval       -i in.f32 -r recon.f32 -d 512x512x512 [-t f32|f64]
  qoz gen        -D miranda [-s tiny|small|medium] -o data.f32
  qoz help
";

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_dims_variants() {
        assert_eq!(parse_dims("512x512").unwrap(), vec![512, 512]);
        assert_eq!(parse_dims("100X200X300").unwrap(), vec![100, 200, 300]);
        assert_eq!(parse_dims("8,9").unwrap(), vec![8, 9]);
        assert!(parse_dims("0x4").is_err());
        assert!(parse_dims("axb").is_err());
        assert!(parse_dims("1x2x3x4x5").is_err());
    }

    #[test]
    fn parse_compress_full() {
        let cmd = parse(&sv(&[
            "compress", "-i", "a.f32", "-o", "a.qz", "-d", "64x64", "-e", "1e-3", "--codec", "sz3",
            "--metric", "ssim", "-m", "abs",
        ]))
        .unwrap();
        match cmd {
            Command::Compress {
                input,
                output,
                dims,
                wide,
                relative,
                bound,
                codec,
                metric,
            } => {
                assert_eq!(input, "a.f32");
                assert_eq!(output, "a.qz");
                assert_eq!(dims, vec![64, 64]);
                assert!(!wide);
                assert!(!relative);
                assert_eq!(bound, 1e-3);
                assert_eq!(codec, CodecChoice::Sz3);
                assert_eq!(metric, QualityMetric::Ssim);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn defaults_applied() {
        let cmd = parse(&sv(&[
            "compress", "-i", "a", "-o", "b", "-d", "8x8", "-e", "0.01",
        ]))
        .unwrap();
        match cmd {
            Command::Compress {
                codec,
                metric,
                relative,
                wide,
                ..
            } => {
                assert_eq!(codec, CodecChoice::Qoz);
                assert_eq!(metric, QualityMetric::CompressionRatio);
                assert!(relative);
                assert!(!wide);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn missing_flags_error() {
        assert!(parse(&sv(&["compress", "-i", "a"])).is_err());
        assert!(parse(&sv(&["decompress", "-i", "a"])).is_err());
        assert!(parse(&sv(&["nonsense"])).is_err());
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&sv(&["--help"])).unwrap(), Command::Help);
    }
}
