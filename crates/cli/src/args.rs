//! Hand-rolled argument parsing (no external parser dependency).
//!
//! Backend names and compression targets are `qoz_api` concepts; this
//! module only turns flag strings into them — validation of the values
//! themselves happens centrally in `qoz_api::SessionBuilder::build`.

use crate::CliError;
use qoz_api::{BackendId, BackendRegistry, Target};
use qoz_codec::ErrorBound;
use qoz_metrics::QualityMetric;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Compress one raw array file — or a comma-separated time series of
    /// same-shape files through one reused pipeline.
    Compress {
        /// Input raw file(s). More than one entry switches to series
        /// mode: `output` is then a directory and each input lands in
        /// `<output>/<filename>.qz`.
        inputs: Vec<String>,
        /// Output stream file (single input) or directory (series).
        output: String,
        /// Array dimensions.
        dims: Vec<usize>,
        /// `true` for f64 input, `false` for f32.
        wide: bool,
        /// What to drive the compression toward: an error bound (`-e`)
        /// or a quality/ratio target (`--target`).
        target: Target,
        /// Compressor.
        codec: BackendId,
        /// QoZ tuning metric. `None` (no `--metric` flag) lets the
        /// session builder infer it from the target — a `--target
        /// psnr:..` run tunes QoZ for PSNR without extra flags.
        metric: Option<QualityMetric>,
        /// Delta-code the series against each prior reconstruction
        /// (`--temporal`); snapshots where the residual is rougher than
        /// the field fall back to keyframes automatically.
        temporal: bool,
    },
    /// Decompress a stream file back to raw bytes.
    Decompress {
        /// Input stream file.
        input: String,
        /// Output raw file.
        output: String,
    },
    /// Print a stream header.
    Info {
        /// Stream file.
        input: String,
    },
    /// Quality report between two raw files.
    Eval {
        /// Original raw file.
        original: String,
        /// Reconstructed raw file.
        recon: String,
        /// Array dimensions.
        dims: Vec<usize>,
        /// `true` for f64.
        wide: bool,
    },
    /// Pack a raw array into an indexed QZAR archive.
    Archive {
        /// Input raw file.
        input: String,
        /// Output archive file.
        output: String,
        /// Array dimensions.
        dims: Vec<usize>,
        /// `true` for f64 input, `false` for f32.
        wide: bool,
        /// Relative (`true`) or absolute (`false`) bound.
        relative: bool,
        /// Bound value.
        bound: f64,
        /// Compressor.
        codec: BackendId,
        /// Variable name stored in the archive.
        name: String,
        /// Chunk grid side (elements per dimension).
        chunk: usize,
    },
    /// Extract a full variable or a region from an archive.
    Extract {
        /// Input archive file.
        input: String,
        /// Output raw file.
        output: String,
        /// Variable name (`None` = first variable).
        var: Option<String>,
        /// Region origin (`None` = full variable).
        origin: Option<Vec<usize>>,
        /// Region size (`None` = full variable).
        size: Option<Vec<usize>>,
    },
    /// Print an archive's table of contents.
    Inspect {
        /// Input archive file.
        input: String,
        /// Also verify every chunk checksum.
        verify: bool,
    },
    /// Run the compression daemon in the foreground. Blocks until a
    /// SIGTERM/SIGINT or a client `Shutdown` request starts the drain.
    Serve {
        /// Listen endpoint (`unix:/path` or `tcp:HOST:PORT`).
        listen: String,
        /// Worker threads (`None` = daemon default).
        workers: Option<usize>,
        /// Admission queue depth (`None` = daemon default).
        queue: Option<usize>,
        /// Default per-request deadline in ms (`None` = daemon default).
        budget_ms: Option<u64>,
        /// Persist/prime tuned plans here across restarts.
        plan_file: Option<String>,
        /// Serve `RegionRead` requests from under this directory.
        archive_root: Option<String>,
    },
    /// Compress a raw file on a remote daemon.
    RemoteCompress {
        /// Daemon endpoint.
        server: String,
        /// Input raw file.
        input: String,
        /// Output stream file.
        output: String,
        /// Array dimensions.
        dims: Vec<usize>,
        /// `true` for f64 input, `false` for f32.
        wide: bool,
        /// Relative (`true`) or absolute (`false`) bound.
        relative: bool,
        /// Bound value.
        bound: f64,
        /// Variable name the daemon keys its warm plan cache by.
        name: String,
        /// Per-request deadline in ms (0 = server default).
        budget_ms: u64,
    },
    /// Decompress a stream file on a remote daemon.
    RemoteDecompress {
        /// Daemon endpoint.
        server: String,
        /// Input stream file.
        input: String,
        /// Output raw file.
        output: String,
        /// Per-request deadline in ms (0 = server default).
        budget_ms: u64,
    },
    /// Fetch a daemon's counters (and, with `--text`, its full
    /// telemetry as Prometheus-style text exposition).
    RemoteStats {
        /// Daemon endpoint.
        server: String,
        /// Render the full telemetry extension as text exposition
        /// instead of the legacy counter summary.
        text: bool,
    },
    /// Generate a synthetic dataset.
    Gen {
        /// Dataset name (cesm/miranda/rtm/nyx/hurricane/letkf), or a
        /// 4-snapshot evolving series (ts/ts-advect, time-major).
        dataset: String,
        /// Size class (tiny/small/medium).
        size: String,
        /// Output raw f32 file.
        output: String,
    },
    /// Print usage.
    Help,
}

/// Compare path strings "naturally": runs of ASCII digits compare by
/// numeric value, so `s2.f32` sorts before `s10.f32` — the order a
/// simulation emitted its snapshots, not the lexicographic one.
pub fn natural_cmp(a: &str, b: &str) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].is_ascii_digit() && b[j].is_ascii_digit() {
            let (si, sj) = (i, j);
            while i < a.len() && a[i].is_ascii_digit() {
                i += 1;
            }
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
            let na = &a[si..i];
            let nb = &b[sj..j];
            let ta = &na[na.iter().take_while(|&&c| c == b'0').count()..];
            let tb = &nb[nb.iter().take_while(|&&c| c == b'0').count()..];
            // Same magnitude compares digit-by-digit; ties on value fall
            // back to the run's literal length so "01" != "1" paths
            // still order deterministically.
            let ord = ta
                .len()
                .cmp(&tb.len())
                .then_with(|| ta.cmp(tb))
                .then_with(|| na.len().cmp(&nb.len()));
            if ord != Ordering::Equal {
                return ord;
            }
        } else {
            let ord = a[i].cmp(&b[j]);
            if ord != Ordering::Equal {
                return ord;
            }
            i += 1;
            j += 1;
        }
    }
    (a.len() - i).cmp(&(b.len() - j))
}

/// Expand a `-i DIR` series input into the directory's files, naturally
/// sorted.
pub(crate) fn expand_dir(dir: &str) -> Result<Vec<String>, CliError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError::runtime(format!("cannot read directory {dir}: {e}")))?;
    let mut files: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .map(|e| e.path().to_string_lossy().into_owned())
        .collect();
    if files.is_empty() {
        return Err(CliError::usage(format!("directory {dir} holds no files")));
    }
    files.sort_by(|a, b| natural_cmp(a, b));
    Ok(files)
}

/// Parse `AxBxC`-style dimension strings (extents must be nonzero).
pub fn parse_dims(s: &str) -> Result<Vec<usize>, CliError> {
    let dims = parse_coords(s).map_err(|_| CliError::usage(format!("bad dimensions '{s}'")))?;
    if dims.contains(&0) {
        return Err(CliError::usage(format!("bad dimensions '{s}'")));
    }
    Ok(dims)
}

/// Parse `AxBxC`-style coordinate strings. Unlike [`parse_dims`], zero
/// components are allowed — a region origin is usually `0x0x0`.
pub fn parse_coords(s: &str) -> Result<Vec<usize>, CliError> {
    let coords: Result<Vec<usize>, _> = s
        .split(['x', 'X', ','])
        .map(|p| p.trim().parse::<usize>())
        .collect();
    let coords = coords.map_err(|_| CliError::usage(format!("bad coordinates '{s}'")))?;
    if coords.is_empty() || coords.len() > qoz_tensor::MAX_NDIM {
        return Err(CliError::usage(format!("bad coordinates '{s}'")));
    }
    Ok(coords)
}

fn metric_of(s: &str) -> Result<QualityMetric, CliError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "cr" | "ratio" => QualityMetric::CompressionRatio,
        "psnr" => QualityMetric::Psnr,
        "ssim" => QualityMetric::Ssim,
        "ac" | "autocorrelation" => QualityMetric::AutoCorrelation,
        other => return Err(CliError::usage(format!("unknown metric '{other}'"))),
    })
}

fn codec_of(s: &str) -> Result<BackendId, CliError> {
    BackendRegistry::parse(s).map_err(|e| CliError::usage(e.to_string()))
}

/// Parse a `--target` spec: `psnr:60`, `ssim:0.98` or `cr:100`. The
/// numeric value is range-checked later by the session builder.
fn target_of(s: &str) -> Result<Target, CliError> {
    let bad = || CliError::usage(format!("bad --target '{s}' (want psnr:DB|ssim:S|cr:RATIO)"));
    let (kind, value) = s.split_once(':').ok_or_else(bad)?;
    let v: f64 = value.trim().parse().map_err(|_| bad())?;
    Ok(match kind.to_ascii_lowercase().as_str() {
        "psnr" => Target::Psnr(v),
        "ssim" => Target::Ssim(v),
        "cr" | "ratio" => Target::Ratio(v),
        _ => return Err(bad()),
    })
}

/// Parse a full argument vector (excluding argv\[0\]).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };

    // Collect remaining as flag map.
    let rest: Vec<&String> = it.collect();
    let get_flag = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1).map(|s| s.as_str()))
    };
    let require = |name: &str| -> Result<&str, CliError> {
        get_flag(name).ok_or_else(|| CliError::usage(format!("missing required flag {name}")))
    };
    let has_flag = |name: &str| rest.iter().any(|a| a.as_str() == name);
    // A non-positive or non-finite bound would panic deep inside
    // `ErrorBound::absolute`; reject it here as a usage error.
    let bound_of = |name: &str| -> Result<f64, CliError> {
        require(name)?
            .parse::<f64>()
            .ok()
            .filter(|b| b.is_finite() && *b > 0.0)
            .ok_or_else(|| CliError::usage(format!("bad bound value for {name}")))
    };

    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "compress" => {
            // `-e BOUND` (bound-first) and `--target KIND:VALUE`
            // (quality-first) are alternative ways to state the goal.
            let target = match get_flag("--target") {
                Some(spec) => {
                    if get_flag("-e").is_some() {
                        return Err(CliError::usage("-e and --target are mutually exclusive"));
                    }
                    if get_flag("-m").is_some() {
                        return Err(CliError::usage(
                            "-m only qualifies an -e bound; it cannot combine with --target",
                        ));
                    }
                    target_of(spec)?
                }
                None => {
                    if get_flag("-e").is_none() {
                        return Err(CliError::usage(
                            "state a goal: -e BOUND or --target psnr:DB|ssim:S|cr:RATIO",
                        ));
                    }
                    let bound = bound_of("-e")?;
                    let relative = get_flag("-m").map(|m| m != "abs").unwrap_or(true);
                    Target::Bound(if relative {
                        ErrorBound::Rel(bound)
                    } else {
                        ErrorBound::Abs(bound)
                    })
                }
            };
            // A directory is a series of every file in it, naturally
            // sorted. A comma means an explicit series — unless the
            // whole string names an existing file, so filenames that
            // happen to contain commas keep working as single inputs.
            let raw_inputs = require("-i")?;
            let inputs: Vec<String> = if std::path::Path::new(raw_inputs).is_dir() {
                expand_dir(raw_inputs)?
            } else if raw_inputs.contains(',') && !std::path::Path::new(raw_inputs).exists() {
                raw_inputs
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            } else {
                vec![raw_inputs.to_string()]
            };
            if inputs.is_empty() {
                return Err(CliError::usage("-i needs at least one input file"));
            }
            Ok(Command::Compress {
                inputs,
                output: require("-o")?.to_string(),
                dims: parse_dims(require("-d")?)?,
                wide: get_flag("-t").map(|t| t == "f64").unwrap_or(false),
                target,
                codec: get_flag("--codec")
                    .map(codec_of)
                    .transpose()?
                    .unwrap_or(BackendId::Qoz),
                metric: get_flag("--metric").map(metric_of).transpose()?,
                temporal: has_flag("--temporal"),
            })
        }
        "decompress" => Ok(Command::Decompress {
            input: require("-i")?.to_string(),
            output: require("-o")?.to_string(),
        }),
        "info" => Ok(Command::Info {
            input: require("-i")?.to_string(),
        }),
        "eval" => Ok(Command::Eval {
            original: require("-i")?.to_string(),
            recon: require("-r")?.to_string(),
            dims: parse_dims(require("-d")?)?,
            wide: get_flag("-t").map(|t| t == "f64").unwrap_or(false),
        }),
        "archive" => Ok(Command::Archive {
            input: require("-i")?.to_string(),
            output: require("-o")?.to_string(),
            dims: parse_dims(require("-d")?)?,
            wide: get_flag("-t").map(|t| t == "f64").unwrap_or(false),
            relative: get_flag("-m").map(|m| m != "abs").unwrap_or(true),
            bound: bound_of("-e")?,
            codec: get_flag("--codec")
                .map(codec_of)
                .transpose()?
                .unwrap_or(BackendId::Qoz),
            name: get_flag("--name").unwrap_or("var0").to_string(),
            chunk: match get_flag("--chunk") {
                None => qoz_archive::writer::DEFAULT_CHUNK_SIDE,
                Some(c) => c
                    .parse::<usize>()
                    .ok()
                    .filter(|&c| c > 0)
                    .ok_or_else(|| CliError::usage("bad --chunk value"))?,
            },
        }),
        "extract" => {
            let origin = get_flag("--origin").map(parse_coords).transpose()?;
            let size = get_flag("--size").map(parse_dims).transpose()?;
            if origin.is_some() != size.is_some() {
                return Err(CliError::usage(
                    "--origin and --size must be given together",
                ));
            }
            Ok(Command::Extract {
                input: require("-i")?.to_string(),
                output: require("-o")?.to_string(),
                var: get_flag("--var").map(str::to_string),
                origin,
                size,
            })
        }
        "inspect" => Ok(Command::Inspect {
            input: require("-i")?.to_string(),
            verify: has_flag("--verify"),
        }),
        "serve" => {
            let count_of = |name: &str| -> Result<Option<usize>, CliError> {
                get_flag(name)
                    .map(|v| {
                        v.parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| CliError::usage(format!("bad {name} value '{v}'")))
                    })
                    .transpose()
            };
            Ok(Command::Serve {
                listen: require("--listen")?.to_string(),
                workers: count_of("--workers")?,
                queue: count_of("--queue")?,
                budget_ms: count_of("--budget-ms")?.map(|n| n as u64),
                plan_file: get_flag("--plan-file").map(str::to_string),
                archive_root: get_flag("--archive-root").map(str::to_string),
            })
        }
        "remote" => {
            let budget = match get_flag("--budget-ms") {
                None => 0,
                Some(v) => v
                    .parse::<u64>()
                    .map_err(|_| CliError::usage(format!("bad --budget-ms value '{v}'")))?,
            };
            match rest.first().map(|s| s.as_str()) {
                Some("compress") => Ok(Command::RemoteCompress {
                    server: require("-s")?.to_string(),
                    input: require("-i")?.to_string(),
                    output: require("-o")?.to_string(),
                    dims: parse_dims(require("-d")?)?,
                    wide: get_flag("-t").map(|t| t == "f64").unwrap_or(false),
                    relative: get_flag("-m").map(|m| m != "abs").unwrap_or(true),
                    bound: bound_of("-e")?,
                    name: get_flag("--name").unwrap_or("var0").to_string(),
                    budget_ms: budget,
                }),
                Some("decompress") => Ok(Command::RemoteDecompress {
                    server: require("-s")?.to_string(),
                    input: require("-i")?.to_string(),
                    output: require("-o")?.to_string(),
                    budget_ms: budget,
                }),
                Some("stats") => Ok(Command::RemoteStats {
                    server: require("-s")?.to_string(),
                    text: has_flag("--text"),
                }),
                _ => Err(CliError::usage(
                    "remote needs a verb: remote compress|decompress|stats",
                )),
            }
        }
        "gen" => Ok(Command::Gen {
            dataset: require("-D")?.to_string(),
            size: get_flag("-s").unwrap_or("small").to_string(),
            output: require("-o")?.to_string(),
        }),
        other => Err(CliError::usage(format!("unknown command '{other}'"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
qoz — error-bounded lossy compression for scientific arrays (QoZ, SC'22 reproduction)

USAGE:
  qoz compress   -i in.f32 -o out.qz -d 512x512x512 (-e 1e-3 [-m rel|abs]
                 | --target psnr:60|ssim:0.98|cr:100)
                 [-t f32|f64] [--codec qoz|sz3|sz2|zfp|mgard]
                 [--metric cr|psnr|ssim|ac]
                 time series: -i s0.f32,s1.f32,... (or -i DIR, files in
                 natural order) -o OUTDIR compresses every snapshot
                 through one reused pipeline (cached tuning plan +
                 scratch buffers) into OUTDIR/<name>.qz; --temporal
                 delta-codes each snapshot against the prior
                 reconstruction (auto keyframe fallback), same bound
                 guaranteed per snapshot
  qoz decompress -i out.qz -o recon.f32
                 series: -i DIR -o OUTDIR decodes every stream in DIR in
                 natural order, resolving --temporal delta chains
  qoz info       -i out.qz
  qoz archive    -i in.f32 -o out.qza -d 512x512x512 -e 1e-3 [-m rel|abs]
                 [-t f32|f64] [--codec qoz|sz3|sz2|zfp|mgard]
                 [--name VAR] [--chunk 32]
  qoz extract    -i out.qza -o slab.f32 [--var VAR]
                 [--origin 0x0x0 --size 64x64x64]
  qoz inspect    -i out.qza [--verify]
  qoz eval       -i in.f32 -r recon.f32 -d 512x512x512 [-t f32|f64]
  qoz gen        -D miranda [-s tiny|small|medium] -o data.f32
                 -D ts|ts-advect writes a 4-snapshot time-major series
                 (split it per snapshot to feed compress --temporal)
  qoz serve      --listen unix:/tmp/qoz.sock|tcp:HOST:PORT [--workers 2]
                 [--queue 32] [--budget-ms 30000] [--plan-file PATH]
                 [--archive-root DIR]
                 foreground daemon; SIGTERM/SIGINT (or a client Shutdown
                 request) drains in-flight work and persists tuned plans
  qoz remote compress   -s ENDPOINT -i in.f32 -o out.qz -d 512x512x512
                        -e 1e-3 [-m rel|abs] [-t f32|f64] [--name VAR]
                        [--budget-ms N]
  qoz remote decompress -s ENDPOINT -i out.qz -o recon.f32 [--budget-ms N]
  qoz remote stats      -s ENDPOINT [--text]
                        daemon counters; --text renders the full
                        telemetry as Prometheus-style text exposition
  qoz help
";

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_dims_variants() {
        assert_eq!(parse_dims("512x512").unwrap(), vec![512, 512]);
        assert_eq!(parse_dims("100X200X300").unwrap(), vec![100, 200, 300]);
        assert_eq!(parse_dims("8,9").unwrap(), vec![8, 9]);
        assert!(parse_dims("0x4").is_err());
        assert!(parse_dims("axb").is_err());
        assert!(parse_dims("1x2x3x4x5").is_err());
    }

    #[test]
    fn parse_coords_allows_zeros() {
        assert_eq!(parse_coords("0x0x8").unwrap(), vec![0, 0, 8]);
        assert!(parse_coords("axb").is_err());
        assert!(parse_coords("1x2x3x4x5").is_err());
    }

    #[test]
    fn parse_compress_full() {
        let cmd = parse(&sv(&[
            "compress", "-i", "a.f32", "-o", "a.qz", "-d", "64x64", "-e", "1e-3", "--codec", "sz3",
            "--metric", "ssim", "-m", "abs",
        ]))
        .unwrap();
        match cmd {
            Command::Compress {
                inputs,
                output,
                dims,
                wide,
                target,
                codec,
                metric,
                temporal,
            } => {
                assert_eq!(inputs, vec!["a.f32"]);
                assert_eq!(output, "a.qz");
                assert_eq!(dims, vec![64, 64]);
                assert!(!wide);
                assert_eq!(target, Target::Bound(ErrorBound::Abs(1e-3)));
                assert_eq!(codec, BackendId::Sz3);
                assert_eq!(metric, Some(QualityMetric::Ssim));
                assert!(!temporal, "no --temporal flag");
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn defaults_applied() {
        let cmd = parse(&sv(&[
            "compress", "-i", "a", "-o", "b", "-d", "8x8", "-e", "0.01",
        ]))
        .unwrap();
        match cmd {
            Command::Compress {
                codec,
                metric,
                target,
                wide,
                ..
            } => {
                assert_eq!(codec, BackendId::Qoz);
                assert_eq!(metric, None, "no --metric flag must defer to inference");
                assert_eq!(target, Target::Bound(ErrorBound::Rel(0.01)));
                assert!(!wide);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_series_inputs() {
        let cmd = parse(&sv(&[
            "compress",
            "-i",
            "s0.f32,s1.f32, s2.f32",
            "-o",
            "outdir",
            "-d",
            "8x8",
            "-e",
            "1e-3",
        ]))
        .unwrap();
        match cmd {
            Command::Compress { inputs, output, .. } => {
                assert_eq!(inputs, vec!["s0.f32", "s1.f32", "s2.f32"]);
                assert_eq!(output, "outdir");
            }
            _ => unreachable!(),
        }
        // An input list that collapses to nothing is a usage error.
        assert!(parse(&sv(&[
            "compress", "-i", ",,", "-o", "b", "-d", "8x8", "-e", "1e-3"
        ]))
        .is_err());
    }

    #[test]
    fn existing_file_with_comma_in_name_stays_single_input() {
        let path = std::env::temp_dir()
            .join(format!("qoz_args_a,b_{}.f32", std::process::id()))
            .to_string_lossy()
            .into_owned();
        std::fs::write(&path, b"xx").unwrap();
        let cmd = parse(&sv(&[
            "compress", "-i", &path, "-o", "out.qz", "-d", "8x8", "-e", "1e-3",
        ]))
        .unwrap();
        match cmd {
            Command::Compress { inputs, .. } => assert_eq!(inputs, vec![path.clone()]),
            _ => unreachable!(),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_quality_targets() {
        for (spec, want) in [
            ("psnr:60", Target::Psnr(60.0)),
            ("ssim:0.98", Target::Ssim(0.98)),
            ("cr:100", Target::Ratio(100.0)),
            ("ratio:64", Target::Ratio(64.0)),
            ("PSNR:45.5", Target::Psnr(45.5)),
        ] {
            let cmd = parse(&sv(&[
                "compress", "-i", "a", "-o", "b", "-d", "8x8", "--target", spec,
            ]))
            .unwrap();
            match cmd {
                Command::Compress { target, .. } => assert_eq!(target, want, "{spec}"),
                _ => unreachable!(),
            }
        }
        // Malformed specs and mixing -e with --target are usage errors.
        for bad in ["psnr", "psnr:", "psnr:x", "nrmse:3", "60"] {
            assert!(
                parse(&sv(&[
                    "compress", "-i", "a", "-o", "b", "-d", "8x8", "--target", bad
                ]))
                .is_err(),
                "accepted --target {bad}"
            );
        }
        assert!(parse(&sv(&[
            "compress", "-i", "a", "-o", "b", "-d", "8x8", "-e", "1e-3", "--target", "psnr:60",
        ]))
        .is_err());
        // -m qualifies -e; combining it with --target is likewise an
        // error, not a silent no-op.
        assert!(parse(&sv(&[
            "compress", "-i", "a", "-o", "b", "-d", "8x8", "--target", "cr:100", "-m", "abs",
        ]))
        .is_err());
    }

    #[test]
    fn natural_order_sorts_digit_runs_numerically() {
        let mut v = vec!["s10.f32", "s2.f32", "s1.f32", "a.f32", "s02.f32"];
        v.sort_by(|a, b| natural_cmp(a, b));
        assert_eq!(v, vec!["a.f32", "s1.f32", "s2.f32", "s02.f32", "s10.f32"]);
        assert_eq!(natural_cmp("x9y", "x10y"), std::cmp::Ordering::Less);
        assert_eq!(natural_cmp("x", "x"), std::cmp::Ordering::Equal);
    }

    #[test]
    fn directory_input_expands_to_natural_order_series() {
        let dir = std::env::temp_dir().join(format!("qoz_args_dir_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["u10.f32", "u2.f32", "u1.f32"] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let cmd = parse(&sv(&[
            "compress",
            "-i",
            &dir.to_string_lossy(),
            "-o",
            "outdir",
            "-d",
            "8x8",
            "-e",
            "1e-3",
            "--temporal",
        ]))
        .unwrap();
        match cmd {
            Command::Compress {
                inputs, temporal, ..
            } => {
                let names: Vec<&str> = inputs
                    .iter()
                    .map(|p| {
                        std::path::Path::new(p)
                            .file_name()
                            .unwrap()
                            .to_str()
                            .unwrap()
                    })
                    .collect();
                assert_eq!(names, vec!["u1.f32", "u2.f32", "u10.f32"]);
                assert!(temporal);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_flags_error() {
        assert!(parse(&sv(&["compress", "-i", "a"])).is_err());
        assert!(parse(&sv(&["decompress", "-i", "a"])).is_err());
        assert!(parse(&sv(&["nonsense"])).is_err());
    }

    #[test]
    fn parse_archive_full() {
        let cmd = parse(&sv(&[
            "archive", "-i", "a.f32", "-o", "a.qza", "-d", "64x64x64", "-e", "1e-3", "--codec",
            "zfp", "--name", "temp", "--chunk", "16",
        ]))
        .unwrap();
        match cmd {
            Command::Archive {
                input,
                output,
                dims,
                codec,
                name,
                chunk,
                relative,
                ..
            } => {
                assert_eq!(input, "a.f32");
                assert_eq!(output, "a.qza");
                assert_eq!(dims, vec![64, 64, 64]);
                assert_eq!(codec, BackendId::Zfp);
                assert_eq!(name, "temp");
                assert_eq!(chunk, 16);
                assert!(relative);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Defaults.
        let cmd = parse(&sv(&[
            "archive", "-i", "a", "-o", "b", "-d", "8x8", "-e", "0.1",
        ]))
        .unwrap();
        match cmd {
            Command::Archive { name, chunk, .. } => {
                assert_eq!(name, "var0");
                assert_eq!(chunk, qoz_archive::writer::DEFAULT_CHUNK_SIDE);
            }
            _ => unreachable!(),
        }
        assert!(parse(&sv(&[
            "archive", "-i", "a", "-o", "b", "-d", "8x8", "-e", "0.1", "--chunk", "0"
        ]))
        .is_err());
    }

    #[test]
    fn non_positive_bounds_are_usage_errors() {
        // A bad -e must exit 2 at parse time, never panic later inside
        // ErrorBound::absolute.
        for bad in ["-1", "0", "nan", "inf", "x"] {
            for cmd in ["compress", "archive"] {
                let r = parse(&sv(&[cmd, "-i", "a", "-o", "b", "-d", "8x8", "-e", bad]));
                assert!(r.is_err(), "{cmd} accepted -e {bad}");
            }
        }
    }

    #[test]
    fn parse_extract_and_inspect() {
        let cmd = parse(&sv(&[
            "extract", "-i", "a.qza", "-o", "s.f32", "--var", "temp", "--origin", "0x0x8",
            "--size", "4x4x4",
        ]))
        .unwrap();
        match cmd {
            Command::Extract {
                var, origin, size, ..
            } => {
                assert_eq!(var.as_deref(), Some("temp"));
                assert_eq!(origin, Some(vec![0, 0, 8]));
                assert_eq!(size, Some(vec![4, 4, 4]));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Origin without size (and vice versa) is a usage error.
        assert!(parse(&sv(&["extract", "-i", "a", "-o", "b", "--origin", "0x0"])).is_err());
        assert!(parse(&sv(&["extract", "-i", "a", "-o", "b", "--size", "2x2"])).is_err());

        assert_eq!(
            parse(&sv(&["inspect", "-i", "a.qza"])).unwrap(),
            Command::Inspect {
                input: "a.qza".into(),
                verify: false
            }
        );
        assert_eq!(
            parse(&sv(&["inspect", "-i", "a.qza", "--verify"])).unwrap(),
            Command::Inspect {
                input: "a.qza".into(),
                verify: true
            }
        );
    }

    #[test]
    fn parse_serve_and_remote() {
        let cmd = parse(&sv(&[
            "serve",
            "--listen",
            "unix:/tmp/q.sock",
            "--workers",
            "4",
            "--queue",
            "8",
            "--plan-file",
            "/tmp/q.plans",
            "--archive-root",
            "/data",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                listen,
                workers,
                queue,
                budget_ms,
                plan_file,
                archive_root,
            } => {
                assert_eq!(listen, "unix:/tmp/q.sock");
                assert_eq!(workers, Some(4));
                assert_eq!(queue, Some(8));
                assert_eq!(budget_ms, None, "unset knobs defer to daemon defaults");
                assert_eq!(plan_file.as_deref(), Some("/tmp/q.plans"));
                assert_eq!(archive_root.as_deref(), Some("/data"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&sv(&["serve"])).is_err(), "--listen is required");
        assert!(parse(&sv(&["serve", "--listen", "u:/s", "--workers", "0"])).is_err());

        let cmd = parse(&sv(&[
            "remote",
            "compress",
            "-s",
            "tcp:127.0.0.1:7070",
            "-i",
            "a.f32",
            "-o",
            "a.qz",
            "-d",
            "8x8",
            "-e",
            "1e-3",
            "--name",
            "rho",
            "--budget-ms",
            "500",
        ]))
        .unwrap();
        match cmd {
            Command::RemoteCompress {
                server,
                name,
                budget_ms,
                relative,
                ..
            } => {
                assert_eq!(server, "tcp:127.0.0.1:7070");
                assert_eq!(name, "rho");
                assert_eq!(budget_ms, 500);
                assert!(relative);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            parse(&sv(&[
                "remote",
                "decompress",
                "-s",
                "unix:/s",
                "-i",
                "a.qz",
                "-o",
                "a.f32"
            ]))
            .unwrap(),
            Command::RemoteDecompress {
                server: "unix:/s".into(),
                input: "a.qz".into(),
                output: "a.f32".into(),
                budget_ms: 0,
            }
        );
        assert_eq!(
            parse(&sv(&["remote", "stats", "-s", "unix:/s", "--text"])).unwrap(),
            Command::RemoteStats {
                server: "unix:/s".into(),
                text: true,
            }
        );
        assert_eq!(
            parse(&sv(&["remote", "stats", "-s", "unix:/s"])).unwrap(),
            Command::RemoteStats {
                server: "unix:/s".into(),
                text: false,
            }
        );
        assert!(
            parse(&sv(&["remote", "stats"])).is_err(),
            "-s is required for stats"
        );
        // A missing or unknown verb is a usage error, not a fallthrough.
        assert!(parse(&sv(&["remote"])).is_err());
        assert!(parse(&sv(&["remote", "ping", "-s", "unix:/s"])).is_err());
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&sv(&["--help"])).unwrap(), Command::Help);
    }
}
