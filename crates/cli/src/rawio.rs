//! Raw little-endian array file I/O (the SDRBench interchange format).

use crate::CliError;
use qoz_tensor::{NdArray, Scalar, Shape};
use std::io::{Read, Write};

/// Read a raw little-endian array; the file size must match
/// `shape.len() * T::BYTES` exactly.
pub fn read_raw<T: Scalar>(path: &str, shape: Shape) -> Result<NdArray<T>, CliError> {
    let mut f = std::fs::File::open(path)
        .map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?;
    let expect = shape.len() * T::BYTES;
    let mut buf = Vec::with_capacity(expect);
    f.read_to_end(&mut buf)?;
    if buf.len() != expect {
        return Err(CliError::runtime(format!(
            "{path}: file is {} bytes but shape {:?} needs {expect}",
            buf.len(),
            shape.dims()
        )));
    }
    let data: Vec<T> = buf.chunks_exact(T::BYTES).map(T::from_le_slice).collect();
    Ok(NdArray::from_vec(shape, data))
}

/// Write a raw little-endian array.
pub fn write_raw<T: Scalar>(path: &str, data: &NdArray<T>) -> Result<(), CliError> {
    let mut f = std::fs::File::create(path)
        .map_err(|e| CliError::runtime(format!("cannot create {path}: {e}")))?;
    write_raw_into(&mut f, data)
}

/// Write a raw little-endian array into any byte sink (the atomic
/// temp-file writers hand their sink here).
pub fn write_raw_into<T: Scalar>(sink: &mut dyn Write, data: &NdArray<T>) -> Result<(), CliError> {
    let mut buf = Vec::with_capacity(data.len() * T::BYTES);
    for v in data.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes_vec());
    }
    sink.write_all(&buf)?;
    Ok(())
}

/// Read a whole file as bytes.
pub fn read_bytes(path: &str) -> Result<Vec<u8>, CliError> {
    std::fs::read(path).map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))
}

/// Write bytes to a file.
pub fn write_bytes(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    std::fs::write(path, bytes).map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("qoz_cli_rawio_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn raw_roundtrip_f32() {
        let path = tmp("f32");
        let data = NdArray::from_fn(Shape::d2(7, 9), |i| (i[0] * 9 + i[1]) as f32 * 0.5);
        write_raw(&path, &data).unwrap();
        let back: NdArray<f32> = read_raw(&path, data.shape()).unwrap();
        assert_eq!(back.as_slice(), data.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_roundtrip_f64() {
        let path = tmp("f64");
        let data = NdArray::from_fn(Shape::d1(100), |i| (i[0] as f64).exp().fract());
        write_raw(&path, &data).unwrap();
        let back: NdArray<f64> = read_raw(&path, data.shape()).unwrap();
        assert_eq!(back.as_slice(), data.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn size_mismatch_rejected() {
        let path = tmp("mismatch");
        std::fs::write(&path, vec![0u8; 10]).unwrap();
        let r: Result<NdArray<f32>, _> = read_raw(&path, Shape::d1(4));
        assert!(r.is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_rejected() {
        let r: Result<NdArray<f32>, _> = read_raw("/nonexistent/q.f32", Shape::d1(4));
        assert!(r.is_err());
    }
}
