//! Owned dense row-major arrays.

use crate::region::Region;
use crate::scalar::Scalar;
use crate::shape::Shape;

/// An owned, dense, row-major N-dimensional array.
///
/// This is the unit of compression throughout the workspace: compressors
/// take an `&NdArray<T>` and produce one on decompression. The element type
/// is any [`Scalar`] (`f32` or `f64`).
#[derive(Clone, Debug, PartialEq)]
pub struct NdArray<T: Scalar> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Scalar> NdArray<T> {
    /// Create a zero-filled array.
    pub fn zeros(shape: Shape) -> Self {
        NdArray {
            shape,
            data: vec![T::zero(); shape.len()],
        }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        NdArray { shape, data }
    }

    /// Build an array by evaluating `f` at every multi-index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for idx in shape.indices() {
            data.push(f(&idx[..shape.ndim()]));
        }
        NdArray { shape, data }
    }

    /// The array's shape.
    #[inline(always)]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the array holds no elements (never, by construction).
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view of the underlying buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Flat mutable view of the underlying buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the array, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Reshape in place to `shape`, resetting every element to zero and
    /// reusing the existing allocation when capacity allows — the
    /// destination-side half of a zero-allocation decode loop. Returns
    /// `true` when the backing buffer had to grow.
    pub fn reset_zeros(&mut self, shape: Shape) -> bool {
        let grew = shape.len() > self.data.capacity();
        self.data.clear();
        self.data.resize(shape.len(), T::zero());
        self.shape = shape;
        grew
    }

    /// Element at a multi-index.
    #[inline(always)]
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[self.shape.offset(idx)]
    }

    /// Overwrite the element at a multi-index.
    #[inline(always)]
    pub fn set(&mut self, idx: &[usize], v: T) {
        let off = self.shape.offset(idx);
        self.data[off] = v;
    }

    /// Minimum and maximum over all finite elements.
    ///
    /// Returns `None` when the array contains no finite values.
    pub fn finite_min_max(&self) -> Option<(T, T)> {
        let mut it = self.data.iter().copied().filter(|v| v.is_finite());
        let first = it.next()?;
        let mut min = first;
        let mut max = first;
        for v in it {
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        Some((min, max))
    }

    /// `max - min` over finite elements as `f64`; 0.0 for constant or
    /// all-non-finite arrays.
    pub fn value_range(&self) -> f64 {
        match self.finite_min_max() {
            Some((lo, hi)) => hi.to_f64() - lo.to_f64(),
            None => 0.0,
        }
    }

    /// Copy the elements inside `region` into a fresh, dense array whose
    /// shape equals the region's size.
    pub fn extract_region(&self, region: &Region) -> NdArray<T> {
        region.validate(self.shape);
        let sub_shape = Shape::new(region.size());
        let mut out = Vec::with_capacity(sub_shape.len());
        for idx in sub_shape.indices() {
            let mut src = [0usize; crate::MAX_NDIM];
            for d in 0..self.shape.ndim() {
                src[d] = region.origin()[d] + idx[d];
            }
            out.push(self.data[self.shape.offset(&src[..self.shape.ndim()])]);
        }
        NdArray::from_vec(sub_shape, out)
    }

    /// Write a dense block back into `region` (inverse of
    /// [`NdArray::extract_region`]).
    pub fn insert_region(&mut self, region: &Region, block: &NdArray<T>) {
        region.validate(self.shape);
        assert_eq!(
            block.shape().dims(),
            region.size(),
            "block shape does not match region size"
        );
        for (i, idx) in block.shape().indices().enumerate() {
            let mut dst = [0usize; crate::MAX_NDIM];
            for d in 0..self.shape.ndim() {
                dst[d] = region.origin()[d] + idx[d];
            }
            let off = self.shape.offset(&dst[..self.shape.ndim()]);
            self.data[off] = block.data[i];
        }
    }

    /// Maximum absolute pointwise difference against another array of the
    /// same shape, in `f64`.
    pub fn max_abs_diff(&self, other: &NdArray<T>) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_array(shape: Shape) -> NdArray<f64> {
        let mut k = 0.0;
        NdArray::from_fn(shape, |_| {
            k += 1.0;
            k
        })
    }

    #[test]
    fn zeros_has_right_len() {
        let a = NdArray::<f32>::zeros(Shape::d3(2, 3, 4));
        assert_eq!(a.len(), 24);
        assert!(a.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = NdArray::<f64>::zeros(Shape::d2(3, 4));
        a.set(&[1, 2], 7.5);
        assert_eq!(a.get(&[1, 2]), 7.5);
        assert_eq!(a.as_slice()[4 + 2], 7.5);
    }

    #[test]
    fn from_fn_row_major() {
        let a = NdArray::from_fn(Shape::d2(2, 2), |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn min_max_skips_non_finite() {
        let a = NdArray::from_vec(Shape::d1(4), vec![f32::NAN, -2.0, 5.0, f32::INFINITY]);
        assert_eq!(a.finite_min_max(), Some((-2.0, 5.0)));
        assert_eq!(a.value_range(), 7.0);
    }

    #[test]
    fn value_range_constant_is_zero() {
        let a = NdArray::from_vec(Shape::d1(3), vec![4.0f64; 3]);
        assert_eq!(a.value_range(), 0.0);
    }

    #[test]
    fn extract_insert_region_roundtrip() {
        let a = seq_array(Shape::d2(4, 5));
        let r = Region::new(&[1, 2], &[2, 3]);
        let block = a.extract_region(&r);
        assert_eq!(block.shape().dims(), &[2, 3]);
        assert_eq!(block.get(&[0, 0]), a.get(&[1, 2]));
        assert_eq!(block.get(&[1, 2]), a.get(&[2, 4]));

        let mut b = NdArray::<f64>::zeros(Shape::d2(4, 5));
        b.insert_region(&r, &block);
        assert_eq!(b.get(&[2, 4]), a.get(&[2, 4]));
        assert_eq!(b.get(&[0, 0]), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = seq_array(Shape::d1(5));
        let mut b = a.clone();
        b.set(&[3], b.get(&[3]) + 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }

    #[test]
    #[should_panic]
    fn from_vec_len_mismatch_panics() {
        let _ = NdArray::from_vec(Shape::d1(3), vec![1.0f32; 4]);
    }
}
