//! Rectangular sub-boxes of an array.
//!
//! Regions describe anchor-point blocks and sampled blocks without copying
//! data. A region is an origin plus a size in each dimension; both use the
//! dimensionality of the array they index into.

use crate::shape::{Shape, MAX_NDIM};

/// A rectangular, axis-aligned box inside an [`crate::NdArray`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    origin: [usize; MAX_NDIM],
    size: [usize; MAX_NDIM],
    ndim: usize,
}

impl Region {
    /// Create a region at `origin` with the given `size`.
    ///
    /// # Panics
    /// Panics if lengths mismatch, exceed [`MAX_NDIM`], or any extent is 0.
    pub fn new(origin: &[usize], size: &[usize]) -> Self {
        assert_eq!(origin.len(), size.len(), "origin/size rank mismatch");
        assert!(
            !size.is_empty() && size.len() <= MAX_NDIM,
            "region rank out of range"
        );
        assert!(size.iter().all(|&s| s > 0), "zero-extent region");
        let mut o = [0usize; MAX_NDIM];
        let mut s = [1usize; MAX_NDIM];
        o[..origin.len()].copy_from_slice(origin);
        s[..size.len()].copy_from_slice(size);
        Region {
            origin: o,
            size: s,
            ndim: size.len(),
        }
    }

    /// Region covering an entire shape.
    pub fn full(shape: Shape) -> Self {
        Region::new(&vec![0; shape.ndim()], shape.dims())
    }

    /// The region's rank.
    #[inline(always)]
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Starting index in each dimension.
    #[inline(always)]
    pub fn origin(&self) -> &[usize] {
        &self.origin[..self.ndim]
    }

    /// Extent in each dimension.
    #[inline(always)]
    pub fn size(&self) -> &[usize] {
        &self.size[..self.ndim]
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.size().iter().product()
    }

    /// `true` when the region covers no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Panic unless the region fits inside `shape` with matching rank.
    pub fn validate(&self, shape: Shape) {
        assert_eq!(self.ndim, shape.ndim(), "region rank != array rank");
        for d in 0..self.ndim {
            assert!(
                self.origin[d] + self.size[d] <= shape.dim(d),
                "region {:?}+{:?} exceeds shape {:?} in dim {}",
                self.origin(),
                self.size(),
                shape,
                d
            );
        }
    }

    /// Clip this region to another, returning the overlap.
    ///
    /// Both regions must have the same rank (coordinates are in the same
    /// array's index space). Returns `None` when they do not overlap in
    /// some dimension — regions are half-open boxes `[origin,
    /// origin+size)`, so mere edge adjacency is *not* an overlap.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        assert_eq!(self.ndim, other.ndim, "region rank mismatch");
        let mut origin = [0usize; MAX_NDIM];
        let mut size = [1usize; MAX_NDIM];
        for d in 0..self.ndim {
            let lo = self.origin[d].max(other.origin[d]);
            // Saturating: a half-open box clipped at usize::MAX cannot
            // extend past it, so saturation never invents an overlap —
            // while wrapping addition would fabricate or drop one.
            let hi = self.origin[d]
                .saturating_add(self.size[d])
                .min(other.origin[d].saturating_add(other.size[d]));
            if lo >= hi {
                return None;
            }
            origin[d] = lo;
            size[d] = hi - lo;
        }
        Some(Region {
            origin,
            size,
            ndim: self.ndim,
        })
    }

    /// Split a shape into a grid of regions of at most `block` elements
    /// per side. This is the anchor-block partitioning used by QoZ and
    /// the chunk grid of `qoz_archive`.
    ///
    /// Edge behaviour (relied upon by the archive chunk index):
    ///
    /// * The grid has `ceil(dim / block)` regions along each dimension —
    ///   every element is covered by exactly one region.
    /// * Interior regions are exactly `block` long per side; only the
    ///   *last* region along a dimension shrinks to `dim % block` when
    ///   the extent does not divide evenly (it is never 0).
    /// * A `block` larger than every extent yields a single region equal
    ///   to `Region::full(shape)`; `block == 1` yields one region per
    ///   element.
    /// * Regions are returned in row-major order of their grid position,
    ///   so the k-th region's grid coordinate is `grid.multi_index(k)`
    ///   where `grid` is the shape of per-dimension counts. Callers may
    ///   index chunk tables by this ordering.
    pub fn tile(shape: Shape, block: usize) -> Vec<Region> {
        assert!(block > 0, "block size must be positive");
        let nd = shape.ndim();
        let counts: Vec<usize> = (0..nd).map(|d| shape.dim(d).div_ceil(block)).collect();
        let grid = Shape::new(&counts);
        let mut out = Vec::with_capacity(grid.len());
        for gidx in grid.indices() {
            let mut origin = vec![0usize; nd];
            let mut size = vec![0usize; nd];
            for d in 0..nd {
                origin[d] = gidx[d] * block;
                size[d] = block.min(shape.dim(d) - origin[d]);
            }
            out.push(Region::new(&origin, &size));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_region_covers_shape() {
        let s = Shape::d3(3, 4, 5);
        let r = Region::full(s);
        assert_eq!(r.len(), s.len());
        r.validate(s);
    }

    #[test]
    fn tile_covers_exactly_once() {
        let s = Shape::d2(10, 7);
        let tiles = Region::tile(s, 4);
        // 3 x 2 grid.
        assert_eq!(tiles.len(), 6);
        let total: usize = tiles.iter().map(|r| r.len()).sum();
        assert_eq!(total, s.len());
        // Edge tiles shrink.
        assert_eq!(tiles.last().unwrap().size(), &[2, 3]);
    }

    #[test]
    fn tile_block_larger_than_shape() {
        let s = Shape::d2(3, 3);
        let tiles = Region::tile(s, 16);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].size(), &[3, 3]);
    }

    #[test]
    #[should_panic]
    fn oversized_region_fails_validation() {
        Region::new(&[2, 2], &[3, 3]).validate(Shape::d2(4, 4));
    }

    #[test]
    #[should_panic]
    fn rank_mismatch_fails_validation() {
        Region::new(&[0], &[2]).validate(Shape::d2(4, 4));
    }

    #[test]
    fn tile_3d_counts() {
        let s = Shape::d3(8, 8, 8);
        assert_eq!(Region::tile(s, 4).len(), 8);
    }

    /// Every element is covered exactly once, whatever the divisibility.
    fn assert_exact_cover(shape: Shape, block: usize) {
        let tiles = Region::tile(shape, block);
        let mut seen = vec![0u32; shape.len()];
        for t in &tiles {
            t.validate(shape);
            let sub = Shape::new(t.size());
            for idx in sub.indices() {
                let mut g = [0usize; MAX_NDIM];
                for d in 0..shape.ndim() {
                    g[d] = t.origin()[d] + idx[d];
                }
                seen[shape.offset(&g[..shape.ndim()])] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "tile({shape:?}, {block}) does not cover exactly once"
        );
    }

    #[test]
    fn tile_non_divisible_shapes_cover_exactly() {
        // Prime extents against a non-dividing block: every interior
        // region is full-sized, only the trailing ones shrink.
        let s = Shape::d2(13, 7);
        assert_exact_cover(s, 5);
        let tiles = Region::tile(s, 5);
        assert_eq!(tiles.len(), 3 * 2);
        assert_eq!(tiles[0].size(), &[5, 5]);
        assert_eq!(tiles.last().unwrap().size(), &[3, 2]); // 13%5, 7%5
        assert_exact_cover(Shape::d3(9, 10, 11), 4);
    }

    #[test]
    fn tile_rank4_grid() {
        let s = Shape::new(&[5, 4, 6, 3]);
        let tiles = Region::tile(s, 3);
        // ceil(5/3)*ceil(4/3)*ceil(6/3)*ceil(3/3) = 2*2*2*1.
        assert_eq!(tiles.len(), 8);
        assert_exact_cover(s, 3);
        // Row-major grid order: the last tile sits at the high corner.
        assert_eq!(tiles.last().unwrap().origin(), &[3, 3, 3, 0]);
        assert_eq!(tiles.last().unwrap().size(), &[2, 1, 3, 3]);
    }

    #[test]
    fn tile_one_element_blocks() {
        let s = Shape::d2(3, 2);
        let tiles = Region::tile(s, 1);
        assert_eq!(tiles.len(), 6);
        assert!(tiles.iter().all(|t| t.len() == 1));
        assert_exact_cover(s, 1);
    }

    #[test]
    fn intersect_basic_and_disjoint() {
        let a = Region::new(&[0, 0], &[4, 4]);
        let b = Region::new(&[2, 3], &[5, 5]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.origin(), &[2, 3]);
        assert_eq!(i.size(), &[2, 1]);
        // Symmetric.
        assert_eq!(b.intersect(&a).unwrap(), i);
        // Adjacent boxes (half-open) do not overlap.
        let c = Region::new(&[4, 0], &[2, 4]);
        assert_eq!(a.intersect(&c), None);
        // Fully disjoint.
        let d = Region::new(&[10, 10], &[1, 1]);
        assert_eq!(a.intersect(&d), None);
    }

    #[test]
    fn intersect_containment() {
        let outer = Region::new(&[0, 0, 0], &[8, 8, 8]);
        let inner = Region::new(&[2, 3, 4], &[2, 2, 2]);
        assert_eq!(outer.intersect(&inner).unwrap(), inner);
        assert_eq!(inner.intersect(&outer).unwrap(), inner);
        assert_eq!(outer.intersect(&outer).unwrap(), outer);
    }

    #[test]
    fn intersect_with_tiles_partitions_query() {
        // Intersecting a query region with every tile partitions the
        // query — this is exactly the archive read_region invariant.
        let s = Shape::d3(10, 9, 8);
        let query = Region::new(&[1, 2, 3], &[7, 6, 4]);
        let total: usize = Region::tile(s, 4)
            .iter()
            .filter_map(|t| t.intersect(&query))
            .map(|r| r.len())
            .sum();
        assert_eq!(total, query.len());
    }

    #[test]
    fn intersect_near_usize_max_does_not_wrap() {
        // origin + size overflowing usize must neither panic (debug) nor
        // wrap into a bogus answer (release).
        let huge = Region::new(&[usize::MAX - 1], &[4]);
        let low = Region::new(&[0], &[10]);
        assert_eq!(huge.intersect(&low), None);
        let touching = Region::new(&[usize::MAX - 1], &[usize::MAX]);
        assert_eq!(
            touching
                .intersect(&Region::new(&[usize::MAX - 2], &[2]))
                .unwrap(),
            Region::new(&[usize::MAX - 1], &[1])
        );
    }

    #[test]
    #[should_panic]
    fn intersect_rank_mismatch_panics() {
        let _ = Region::new(&[0], &[2]).intersect(&Region::new(&[0, 0], &[2, 2]));
    }
}
