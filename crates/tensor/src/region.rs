//! Rectangular sub-boxes of an array.
//!
//! Regions describe anchor-point blocks and sampled blocks without copying
//! data. A region is an origin plus a size in each dimension; both use the
//! dimensionality of the array they index into.

use crate::shape::{Shape, MAX_NDIM};

/// A rectangular, axis-aligned box inside an [`crate::NdArray`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    origin: [usize; MAX_NDIM],
    size: [usize; MAX_NDIM],
    ndim: usize,
}

impl Region {
    /// Create a region at `origin` with the given `size`.
    ///
    /// # Panics
    /// Panics if lengths mismatch, exceed [`MAX_NDIM`], or any extent is 0.
    pub fn new(origin: &[usize], size: &[usize]) -> Self {
        assert_eq!(origin.len(), size.len(), "origin/size rank mismatch");
        assert!(
            !size.is_empty() && size.len() <= MAX_NDIM,
            "region rank out of range"
        );
        assert!(size.iter().all(|&s| s > 0), "zero-extent region");
        let mut o = [0usize; MAX_NDIM];
        let mut s = [1usize; MAX_NDIM];
        o[..origin.len()].copy_from_slice(origin);
        s[..size.len()].copy_from_slice(size);
        Region {
            origin: o,
            size: s,
            ndim: size.len(),
        }
    }

    /// Region covering an entire shape.
    pub fn full(shape: Shape) -> Self {
        Region::new(&vec![0; shape.ndim()], shape.dims())
    }

    /// The region's rank.
    #[inline(always)]
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Starting index in each dimension.
    #[inline(always)]
    pub fn origin(&self) -> &[usize] {
        &self.origin[..self.ndim]
    }

    /// Extent in each dimension.
    #[inline(always)]
    pub fn size(&self) -> &[usize] {
        &self.size[..self.ndim]
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.size().iter().product()
    }

    /// `true` when the region covers no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Panic unless the region fits inside `shape` with matching rank.
    pub fn validate(&self, shape: Shape) {
        assert_eq!(self.ndim, shape.ndim(), "region rank != array rank");
        for d in 0..self.ndim {
            assert!(
                self.origin[d] + self.size[d] <= shape.dim(d),
                "region {:?}+{:?} exceeds shape {:?} in dim {}",
                self.origin(),
                self.size(),
                shape,
                d
            );
        }
    }

    /// Split a shape into a grid of regions of at most `block` elements per
    /// side (edge regions may be smaller). This is the anchor-block
    /// partitioning used by QoZ.
    pub fn tile(shape: Shape, block: usize) -> Vec<Region> {
        assert!(block > 0, "block size must be positive");
        let nd = shape.ndim();
        let counts: Vec<usize> = (0..nd).map(|d| shape.dim(d).div_ceil(block)).collect();
        let grid = Shape::new(&counts);
        let mut out = Vec::with_capacity(grid.len());
        for gidx in grid.indices() {
            let mut origin = vec![0usize; nd];
            let mut size = vec![0usize; nd];
            for d in 0..nd {
                origin[d] = gidx[d] * block;
                size[d] = block.min(shape.dim(d) - origin[d]);
            }
            out.push(Region::new(&origin, &size));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_region_covers_shape() {
        let s = Shape::d3(3, 4, 5);
        let r = Region::full(s);
        assert_eq!(r.len(), s.len());
        r.validate(s);
    }

    #[test]
    fn tile_covers_exactly_once() {
        let s = Shape::d2(10, 7);
        let tiles = Region::tile(s, 4);
        // 3 x 2 grid.
        assert_eq!(tiles.len(), 6);
        let total: usize = tiles.iter().map(|r| r.len()).sum();
        assert_eq!(total, s.len());
        // Edge tiles shrink.
        assert_eq!(tiles.last().unwrap().size(), &[2, 3]);
    }

    #[test]
    fn tile_block_larger_than_shape() {
        let s = Shape::d2(3, 3);
        let tiles = Region::tile(s, 16);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].size(), &[3, 3]);
    }

    #[test]
    #[should_panic]
    fn oversized_region_fails_validation() {
        Region::new(&[2, 2], &[3, 3]).validate(Shape::d2(4, 4));
    }

    #[test]
    #[should_panic]
    fn rank_mismatch_fails_validation() {
        Region::new(&[0], &[2]).validate(Shape::d2(4, 4));
    }

    #[test]
    fn tile_3d_counts() {
        let s = Shape::d3(8, 8, 8);
        assert_eq!(Region::tile(s, 4).len(), 8);
    }
}
