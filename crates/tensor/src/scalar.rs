//! The [`Scalar`] trait abstracts over the floating-point element types the
//! compressors support (`f32` and `f64`).
//!
//! All tuning/metric arithmetic inside the workspace is performed in `f64`;
//! `Scalar` therefore only needs cheap, lossless-enough conversions to and
//! from `f64` plus a handful of numeric helpers. Keeping the trait small
//! makes the prediction kernels easy to audit.

use std::fmt::Debug;

/// Element type of a compressible array.
///
/// Implemented for `f32` and `f64`. The trait is sealed in spirit (nothing
/// else in the workspace implements it) but deliberately left open so
/// downstream users can experiment with custom float wrappers.
pub trait Scalar:
    Copy + Clone + Debug + PartialOrd + PartialEq + Default + Send + Sync + 'static
{
    /// Number of bytes of the native representation (4 or 8).
    const BYTES: usize;
    /// Human-readable type tag stored in compressed headers.
    const TYPE_TAG: u8;

    /// Lossless widening to `f64` (for `f32`) or identity (for `f64`).
    fn to_f64(self) -> f64;
    /// Narrowing conversion from `f64` (rounds for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `true` if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
    /// Raw little-endian bytes of the value.
    fn to_le_bytes_vec(self) -> Vec<u8>;
    /// Rebuild a value from little-endian bytes; `bytes.len()` must be `BYTES`.
    fn from_le_slice(bytes: &[u8]) -> Self;
    /// Zero constant.
    fn zero() -> Self;
}

impl Scalar for f32 {
    const BYTES: usize = 4;
    const TYPE_TAG: u8 = 0x32;

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn to_le_bytes_vec(self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
    #[inline]
    fn from_le_slice(bytes: &[u8]) -> Self {
        let mut b = [0u8; 4];
        b.copy_from_slice(&bytes[..4]);
        f32::from_le_bytes(b)
    }
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
}

impl Scalar for f64 {
    const BYTES: usize = 8;
    const TYPE_TAG: u8 = 0x64;

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn to_le_bytes_vec(self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
    #[inline]
    fn from_le_slice(bytes: &[u8]) -> Self {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[..8]);
        f64::from_le_bytes(b)
    }
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip_bytes() {
        let v: f32 = -12.625;
        let bytes = v.to_le_bytes_vec();
        assert_eq!(bytes.len(), f32::BYTES);
        assert_eq!(f32::from_le_slice(&bytes), v);
    }

    #[test]
    fn f64_roundtrip_bytes() {
        let v: f64 = std::f64::consts::PI;
        let bytes = v.to_le_bytes_vec();
        assert_eq!(bytes.len(), f64::BYTES);
        assert_eq!(f64::from_le_slice(&bytes), v);
    }

    #[test]
    fn widening_is_lossless_for_f32() {
        let v: f32 = 0.1;
        assert_eq!(f32::from_f64(v.to_f64()), v);
    }

    #[test]
    fn type_tags_distinct() {
        assert_ne!(f32::TYPE_TAG, f64::TYPE_TAG);
    }

    #[test]
    fn finite_checks() {
        assert!(1.0f32.is_finite());
        assert!(!f32::NAN.is_finite());
        assert!(!f64::INFINITY.is_finite());
    }
}
