//! N-dimensional strided array support for the QoZ compression workspace.
//!
//! Scientific lossy compressors operate on dense 1D/2D/3D floating-point
//! arrays in row-major (C) order. This crate provides the small set of
//! tensor primitives every other crate in the workspace builds on:
//!
//! * [`Shape`] — dimension/stride bookkeeping for up to [`MAX_NDIM`] axes,
//! * [`NdArray`] — an owned, row-major dense array of [`Scalar`] values,
//! * [`Region`] — a rectangular sub-box of an array (used for anchor blocks
//!   and sampling),
//! * [`sample`] — the uniform block sampler of QoZ §VI-A.
//!
//! The crate is deliberately dependency-free and keeps indexing logic in one
//! place so that the prediction kernels in `qoz-predict` can be written
//! against raw linear offsets without re-deriving stride math.

pub mod array;
pub mod region;
pub mod sample;
pub mod scalar;
pub mod shape;
pub mod simd;

pub use array::NdArray;
pub use region::Region;
pub use sample::{sample_blocks, SamplePlan};
pub use scalar::Scalar;
pub use shape::{Shape, MAX_NDIM};
