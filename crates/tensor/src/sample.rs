//! Uniform block sampling (QoZ paper §VI-A).
//!
//! QoZ's online tuning runs trial compressions on a small set of blocks
//! drawn uniformly from the input: fixed block size, fixed stride between
//! block origins. The sampling rate is `block^d / stride^d`. The sampler
//! here reproduces that scheme and additionally derives the stride from a
//! requested sampling rate, which is how the paper's configuration is
//! phrased ("sample 1% of the input for 2D data, 0.5% for 3D").

use crate::array::NdArray;
use crate::region::Region;
use crate::scalar::Scalar;
use crate::shape::Shape;

/// A resolved sampling plan: which blocks of the input will be extracted.
#[derive(Clone, Debug)]
pub struct SamplePlan {
    /// Side length of each sampled block.
    pub block: usize,
    /// Distance between consecutive block origins along every dimension.
    pub stride: usize,
    /// The regions that will be extracted.
    pub regions: Vec<Region>,
}

impl SamplePlan {
    /// Derive a plan from a block size and a target sampling rate in
    /// `(0, 1]`.
    ///
    /// Block origins are spread *evenly across the full domain* (first
    /// origin at 0, last flush with the far edge) rather than packed at
    /// the array start, so the samples represent every region of the
    /// data. At least two blocks per dimension are taken whenever the
    /// extent allows disjoint placement — small arrays therefore sample
    /// above the requested rate, which only makes tuning more accurate.
    pub fn from_rate(shape: Shape, block: usize, rate: f64) -> Self {
        assert!(block > 0, "block size must be positive");
        assert!(
            rate > 0.0 && rate <= 1.0,
            "rate must be in (0,1], got {rate}"
        );
        let nd = shape.ndim();
        let total = shape.len() as f64;
        let block_pts = (block as f64).powi(nd as i32);
        let blocks_needed = (rate * total / block_pts).ceil().max(1.0);
        let per_dim_target = blocks_needed.powf(1.0 / nd as f64).ceil() as usize;

        let mut per_dim: Vec<Vec<usize>> = Vec::with_capacity(nd);
        for d in 0..nd {
            let ext = shape.dim(d);
            if ext <= block {
                per_dim.push(vec![0]);
                continue;
            }
            // Cap so blocks stay pairwise disjoint along this axis.
            let max_disjoint = ext / block;
            let count = per_dim_target
                .clamp(1, max_disjoint)
                .max(2.min(max_disjoint))
                .max(1);
            let span = ext - block; // last valid origin
            let mut origins = Vec::with_capacity(count);
            if count == 1 {
                origins.push(span / 2);
            } else {
                for k in 0..count {
                    origins.push(span * k / (count - 1));
                }
                origins.dedup();
            }
            per_dim.push(origins);
        }

        let counts: Vec<usize> = per_dim.iter().map(|v| v.len()).collect();
        let grid = Shape::new(&counts);
        let mut regions = Vec::with_capacity(grid.len());
        for gidx in grid.indices() {
            let mut origin = vec![0usize; nd];
            let mut size = vec![0usize; nd];
            for d in 0..nd {
                origin[d] = per_dim[d][gidx[d]];
                size[d] = block.min(shape.dim(d) - origin[d]);
            }
            regions.push(Region::new(&origin, &size));
        }
        SamplePlan {
            block,
            stride: block, // informational; origins are evenly spread
            regions,
        }
    }

    /// Build a plan with an explicit origin stride.
    pub fn from_stride(shape: Shape, block: usize, stride: usize) -> Self {
        assert!(stride >= block, "stride must be >= block");
        let nd = shape.ndim();
        // Origins along each dimension: 0, stride, 2*stride, ... while a
        // *full* block still fits. Dimensions shorter than the block get a
        // single, clipped block so small inputs are still sampled.
        let mut per_dim: Vec<Vec<usize>> = Vec::with_capacity(nd);
        for d in 0..nd {
            let ext = shape.dim(d);
            let mut origins = Vec::new();
            if ext <= block {
                origins.push(0);
            } else {
                let mut o = 0;
                while o + block <= ext {
                    origins.push(o);
                    o += stride;
                }
            }
            per_dim.push(origins);
        }
        let counts: Vec<usize> = per_dim.iter().map(|v| v.len()).collect();
        let grid = Shape::new(&counts);
        let mut regions = Vec::with_capacity(grid.len());
        for gidx in grid.indices() {
            let mut origin = vec![0usize; nd];
            let mut size = vec![0usize; nd];
            for d in 0..nd {
                origin[d] = per_dim[d][gidx[d]];
                size[d] = block.min(shape.dim(d) - origin[d]);
            }
            regions.push(Region::new(&origin, &size));
        }
        SamplePlan {
            block,
            stride,
            regions,
        }
    }

    /// Fraction of the input covered by the sampled blocks.
    pub fn achieved_rate(&self, shape: Shape) -> f64 {
        let covered: usize = self.regions.iter().map(|r| r.len()).sum();
        covered as f64 / shape.len() as f64
    }
}

/// Extract the sampled blocks as owned dense arrays.
pub fn sample_blocks<T: Scalar>(data: &NdArray<T>, plan: &SamplePlan) -> Vec<NdArray<T>> {
    plan.regions
        .iter()
        .map(|r| data.extract_region(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_matches_paper_example() {
        // Paper: 2D, block 4, stride 10 => 16% sampling rate.
        let shape = Shape::d2(100, 100);
        let plan = SamplePlan::from_stride(shape, 4, 10);
        let rate = plan.achieved_rate(shape);
        assert!((rate - 0.16).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn from_rate_budget_2d_paper_scale() {
        // At the paper's CESM scale the requested rate is achieved.
        let shape = Shape::d2(900, 1800);
        let plan = SamplePlan::from_rate(shape, 64, 0.01);
        let rate = plan.achieved_rate(shape);
        assert!(rate <= 0.03, "rate {rate} too high");
        assert!(rate >= 0.005, "rate {rate} too low");
    }

    #[test]
    fn from_rate_small_arrays_oversample_for_coverage() {
        // Small arrays prioritize representativeness (>= 2 blocks per
        // axis) over the literal rate.
        let shape = Shape::d2(512, 512);
        let plan = SamplePlan::from_rate(shape, 64, 0.01);
        assert!(plan.regions.len() >= 4);
        // Blocks must span the domain: some origin at 0 and some flush
        // with the far edge.
        let max_origin = plan.regions.iter().map(|r| r.origin()[0]).max().unwrap();
        assert_eq!(max_origin, 512 - 64);
    }

    #[test]
    fn from_rate_blocks_are_disjoint() {
        let shape = Shape::d3(96, 96, 64);
        let plan = SamplePlan::from_rate(shape, 16, 0.005);
        for (i, a) in plan.regions.iter().enumerate() {
            for b in &plan.regions[i + 1..] {
                let overlap = (0..3).all(|d| {
                    a.origin()[d] < b.origin()[d] + b.size()[d]
                        && b.origin()[d] < a.origin()[d] + a.size()[d]
                });
                assert!(!overlap, "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn from_rate_respects_budget_3d() {
        let shape = Shape::d3(128, 128, 128);
        let plan = SamplePlan::from_rate(shape, 16, 0.005);
        let rate = plan.achieved_rate(shape);
        assert!(rate <= 0.02, "rate {rate} too high");
        assert!(!plan.regions.is_empty());
    }

    #[test]
    fn small_input_still_sampled() {
        let shape = Shape::d2(8, 8);
        let plan = SamplePlan::from_rate(shape, 64, 0.01);
        assert_eq!(plan.regions.len(), 1);
        assert_eq!(plan.regions[0].size(), &[8, 8]);
    }

    #[test]
    fn blocks_are_dense_copies() {
        let shape = Shape::d2(32, 32);
        let data = NdArray::from_fn(shape, |i| (i[0] * 32 + i[1]) as f64);
        let plan = SamplePlan::from_stride(shape, 8, 16);
        let blocks = sample_blocks(&data, &plan);
        assert_eq!(blocks.len(), plan.regions.len());
        for (b, r) in blocks.iter().zip(&plan.regions) {
            assert_eq!(b.shape().dims(), r.size());
            assert_eq!(b.get(&[0, 0]), data.get(&[r.origin()[0], r.origin()[1]]));
        }
    }

    #[test]
    fn regions_validate_against_shape() {
        let shape = Shape::d3(50, 60, 70);
        let plan = SamplePlan::from_rate(shape, 16, 0.01);
        for r in &plan.regions {
            r.validate(shape);
        }
    }
}
