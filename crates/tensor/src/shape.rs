//! Dimension and stride bookkeeping.
//!
//! A [`Shape`] describes a dense row-major array of up to [`MAX_NDIM`]
//! dimensions. It pre-computes strides so compressors can translate between
//! multi-indices and linear offsets without repeated multiplication chains.

/// Maximum number of dimensions supported by the workspace.
///
/// The paper evaluates 2D and 3D scientific data; 1D is needed for the
/// innermost interpolation passes and 4D headroom covers time-varying 3D
/// fields treated as independent snapshots.
pub const MAX_NDIM: usize = 4;

/// The dimensions (and derived strides) of a dense row-major array.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_NDIM],
    strides: [usize; MAX_NDIM],
    ndim: usize,
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl Shape {
    /// Create a shape from a dimension list.
    ///
    /// # Panics
    /// Panics if `dims` is empty, longer than [`MAX_NDIM`], or contains a
    /// zero extent — none of those describe a compressible array.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_NDIM,
            "shape must have 1..={MAX_NDIM} dims, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-extent dimension in {dims:?}"
        );
        let mut d = [1usize; MAX_NDIM];
        d[..dims.len()].copy_from_slice(dims);
        let mut strides = [1usize; MAX_NDIM];
        // Row-major: the last dimension is contiguous.
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * d[i + 1];
        }
        Shape {
            dims: d,
            strides,
            ndim: dims.len(),
        }
    }

    /// 1D convenience constructor.
    pub fn d1(n: usize) -> Self {
        Shape::new(&[n])
    }
    /// 2D convenience constructor (`rows`, `cols`).
    pub fn d2(r: usize, c: usize) -> Self {
        Shape::new(&[r, c])
    }
    /// 3D convenience constructor.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Shape::new(&[a, b, c])
    }

    /// Number of dimensions.
    #[inline(always)]
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Extents of each dimension.
    #[inline(always)]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.ndim]
    }

    /// Extent of dimension `d`.
    #[inline(always)]
    pub fn dim(&self, d: usize) -> usize {
        debug_assert!(d < self.ndim);
        self.dims[d]
    }

    /// Row-major strides of each dimension, in elements.
    #[inline(always)]
    pub fn strides(&self) -> &[usize] {
        &self.strides[..self.ndim]
    }

    /// Stride of dimension `d`, in elements.
    #[inline(always)]
    pub fn stride(&self, d: usize) -> usize {
        debug_assert!(d < self.ndim);
        self.strides[d]
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// `true` when the shape has no elements (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear row-major offset of a multi-index.
    ///
    /// `idx.len()` must equal `ndim`; each component must be in range
    /// (checked in debug builds).
    #[inline(always)]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.ndim);
        let mut off = 0;
        for d in 0..self.ndim {
            debug_assert!(
                idx[d] < self.dims[d],
                "index {idx:?} out of bounds for {self:?}"
            );
            off += idx[d] * self.strides[d];
        }
        off
    }

    /// Inverse of [`Shape::offset`]: the multi-index of a linear offset.
    pub fn multi_index(&self, mut off: usize) -> [usize; MAX_NDIM] {
        debug_assert!(off < self.len());
        let mut idx = [0usize; MAX_NDIM];
        for d in 0..self.ndim {
            idx[d] = off / self.strides[d];
            off %= self.strides[d];
        }
        idx
    }

    /// Iterate over all multi-indices in row-major order.
    pub fn indices(&self) -> IndexIter {
        IndexIter {
            shape: *self,
            next: [0; MAX_NDIM],
            remaining: self.len(),
        }
    }
}

/// Row-major iterator over the multi-indices of a [`Shape`].
pub struct IndexIter {
    shape: Shape,
    next: [usize; MAX_NDIM],
    remaining: usize,
}

impl Iterator for IndexIter {
    type Item = [usize; MAX_NDIM];

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.next;
        self.remaining -= 1;
        // Increment like an odometer, last dimension fastest.
        for d in (0..self.shape.ndim()).rev() {
            self.next[d] += 1;
            if self.next[d] < self.shape.dim(d) {
                break;
            }
            self.next[d] = 0;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IndexIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major_3d() {
        let s = Shape::d3(4, 5, 6);
        assert_eq!(s.strides(), &[30, 6, 1]);
        assert_eq!(s.len(), 120);
    }

    #[test]
    fn strides_2d_and_1d() {
        assert_eq!(Shape::d2(7, 3).strides(), &[3, 1]);
        assert_eq!(Shape::d1(9).strides(), &[1]);
    }

    #[test]
    fn offset_roundtrips_multi_index() {
        let s = Shape::d3(3, 4, 5);
        for off in 0..s.len() {
            let idx = s.multi_index(off);
            assert_eq!(s.offset(&idx[..3]), off);
        }
    }

    #[test]
    fn index_iter_visits_all_in_order() {
        let s = Shape::d2(2, 3);
        let v: Vec<_> = s.indices().map(|i| (i[0], i[1])).collect();
        assert_eq!(v, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn index_iter_len_matches() {
        let s = Shape::d3(3, 2, 4);
        assert_eq!(s.indices().count(), s.len());
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        let _ = Shape::new(&[4, 0, 2]);
    }

    #[test]
    #[should_panic]
    fn too_many_dims_rejected() {
        let _ = Shape::new(&[2, 2, 2, 2, 2]);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Shape::d2(2, 3)), "Shape[2, 3]");
    }
}
